//! Crash-consistency demonstration: pull the plug at many points during a
//! red-black-tree workload and show that every failure-safe scheme
//! recovers to a transaction boundary — while PMEM+nolog (the paper's
//! ideal-but-unsafe case) can be left torn.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, thread_arena, Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = WorkloadParams { threads: 2, init_ops: 300, sim_ops: 40, seed: 2026 };
    let workload = generate(Benchmark::RbTree, &params);
    let config = SystemConfig::skylake_like().with_num_cores(2);

    // Per-thread functional snapshots after each transaction: the states
    // a correct recovery may land on.
    let mut snapshots: Vec<Vec<proteus_core::pmem::WordImage>> = Vec::new();
    for program in &workload.programs {
        let mut states = vec![workload.initial_image.clone()];
        let mut img = workload.initial_image.clone();
        let mut cursor = proteus_core::program::Program::new(program.thread);
        for op in &program.ops {
            cursor.ops.push(op.clone());
            if matches!(op, proteus_core::program::Op::TxEnd) {
                cursor.apply_functionally(&mut img);
                states.push(img.clone());
                cursor.ops.clear();
            }
        }
        snapshots.push(states);
    }

    for scheme in [LoggingSchemeKind::SwPmem, LoggingSchemeKind::Atom, LoggingSchemeKind::Proteus] {
        let total = {
            let mut m = System::new(&config, scheme, &workload)?;
            m.run()?.total_cycles
        };
        let mut consistent = 0;
        let probes = 12;
        for i in 1..=probes {
            let mut m = System::new(&config, scheme, &workload)?;
            m.run_until(total * i / (probes + 1));
            let (recovered, _) = m.crash_and_recover()?;
            let ok = workload.programs.iter().enumerate().all(|(t, p)| {
                let (lo, hi) = thread_arena(p.thread);
                snapshots[t]
                    .iter()
                    .any(|snap| recovered.diff(snap).iter().all(|a| *a < lo || *a >= hi))
            });
            if ok {
                consistent += 1;
            }
        }
        println!(
            "{:<14} {consistent}/{probes} crash points recovered to a transaction boundary",
            scheme.label()
        );
        assert_eq!(consistent, probes, "{} must be failure-safe", scheme.label());
    }
    println!("all failure-safe schemes recovered correctly at every probe point");
    Ok(())
}
