//! Crash-consistency demonstration: systematically pull the plug at
//! persist-event crash points during a red-black-tree workload and show
//! that every failure-safe scheme recovers to a transaction boundary —
//! then flip the `disable_persist_ordering` fault knob and watch the
//! same exploration *catch* a core that releases stores before their
//! undo log entries are durable.
//!
//! ```sh
//! cargo run --release --example crash_recovery
//! ```

use proteus_crash::{explore, ExploreSpec, FaultSpec};
use proteus_types::config::LoggingSchemeKind;
use proteus_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = WorkloadParams { threads: 2, init_ops: 120, sim_ops: 12, seed: 2026 };

    println!("clean crashes (full ADR drain) + torn in-service line writes:");
    for scheme in [
        LoggingSchemeKind::SwPmem,
        LoggingSchemeKind::Atom,
        LoggingSchemeKind::Proteus,
        LoggingSchemeKind::ProteusNoLwr,
    ] {
        for fault in [FaultSpec::Clean, FaultSpec::TornLine { mask: 0x0F }] {
            let spec = ExploreSpec {
                fault,
                ..ExploreSpec::new(Benchmark::RbTree, params.clone(), scheme, 64)
            };
            let outcome = explore(&spec)?;
            println!(
                "  {:<14} {:<9} {:>4} crash points over {:>5} persist events: {}",
                scheme.label(),
                fault.label(),
                outcome.points_explored,
                outcome.total_events,
                if outcome.is_consistent() { "all consistent" } else { "VIOLATED" },
            );
            assert!(outcome.is_consistent(), "{} must be failure-safe", scheme.label());
        }
    }

    println!("\nbroken write-ahead ordering (disable_persist_ordering):");
    let broken = ExploreSpec {
        broken_ordering: true,
        ..ExploreSpec::new(
            Benchmark::Queue,
            WorkloadParams { threads: 1, init_ops: 40, sim_ops: 8, seed: 7 },
            LoggingSchemeKind::Proteus,
            256,
        )
    };
    let outcome = explore(&broken)?;
    println!(
        "  {} of {} crash points torn — first violation: {}",
        outcome.violations.len(),
        outcome.points_explored,
        outcome.violations.first().map(|v| v.detail.as_str()).unwrap_or("none"),
    );
    assert!(!outcome.violations.is_empty(), "the broken core must be caught");

    if let Some(repro) = proteus_crash::shrink(&broken)? {
        println!(
            "  shrunk to {} (sim_ops {}, init_ops {}) crashing at persist event {}",
            repro.spec.name(),
            repro.spec.params.sim_ops,
            repro.spec.params.init_ops,
            repro.event,
        );
        let replay = repro.replay()?;
        assert!(replay.violated, "shrunk repro must replay");
        println!("  repro replays: {}", replay.detail);
    }

    println!(
        "\nall failure-safe schemes recovered at every crash point; the broken core was caught"
    );
    Ok(())
}
