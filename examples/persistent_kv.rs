//! A persistent key-value store over the simulated NVM, with a crash in
//! the middle and recovery afterwards.
//!
//! Demonstrates the library's core promise: under Proteus (or any other
//! failure-safe scheme) every durable transaction is all-or-nothing, so
//! after a crash the store recovers to a transaction boundary.
//!
//! ```sh
//! cargo run --release --example persistent_kv
//! ```

use proteus_core::pmem::WordImage;
use proteus_core::program::Program;
use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_types::{Addr, ThreadId};
use proteus_workloads::hashmap::HashMapStruct;
use proteus_workloads::mem::{durable_transaction, DirectMem, NodeAlloc};
use proteus_workloads::GeneratedWorkload;

/// Builds the store with 50 initial keys; deterministic, so it can be
/// replayed to reconstruct the machine's initial image.
fn build_store(image: &mut WordImage, alloc: &mut NodeAlloc) -> HashMapStruct {
    let mut m = DirectMem::new(image);
    let kv = HashMapStruct::create(&mut m, alloc, 64);
    for k in 0..50 {
        kv.insert(&mut m, alloc, k, k * 100);
    }
    kv
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut image = WordImage::new();
    let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 22);
    let kv = build_store(&mut image, &mut alloc);
    let initial = image.clone();

    // A program of 20 durable put transactions: `durable_transaction`
    // dry-runs each put to compute its undo hint, then emits it.
    let mut program = Program::new(ThreadId::new(0));
    for k in 0..20u64 {
        durable_transaction(&mut image, &mut program, &mut alloc, |mut mem, alloc| {
            kv.insert(&mut mem, alloc, k, 7000 + k);
        });
    }

    let workload = GeneratedWorkload {
        name: "persistent-kv".into(),
        programs: vec![program],
        initial_image: initial,
        sharing: None,
    };

    // Run half way, then pull the plug.
    let config = SystemConfig::skylake_like().with_num_cores(1);
    let total = {
        let mut probe = System::new(&config, LoggingSchemeKind::Proteus, &workload)?;
        probe.run()?.total_cycles
    };
    let mut machine = System::new(&config, LoggingSchemeKind::Proteus, &workload)?;
    machine.run_until(total / 2);
    println!("crashed at cycle {} of {}", machine.now(), total);

    // Recover and inspect.
    let (mut recovered, report) = machine.crash_and_recover()?;
    for (thread, outcome) in &report.outcomes {
        println!("recovery on {thread}: {outcome:?}");
    }

    // Every key is either its pre-run value or its committed new value —
    // never a torn mix.
    let mut committed_puts = 0;
    let mut view = DirectMem::new(&mut recovered);
    for k in 0..20u64 {
        let v = kv.get(&mut view, k).expect("key existed before the run");
        assert!(v == k * 100 || v == 7000 + k, "torn value for key {k}: {v}");
        if v == 7000 + k {
            committed_puts += 1;
        }
    }
    println!(
        "{committed_puts}/20 puts had committed before the crash; \
         the rest rolled back cleanly"
    );
    Ok(())
}
