//! Compare every logging scheme on one benchmark, paper style.
//!
//! ```sh
//! cargo run --release --example scheme_shootout [qe|hm|ss|at|bt|rt] [scale]
//! ```

use proteus_sim::report::{f2, Table};
use proteus_sim::runner::sweep_schemes;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = match std::env::args().nth(1).as_deref() {
        Some("qe") | None => Benchmark::Queue,
        Some("hm") => Benchmark::HashMap,
        Some("ss") => Benchmark::StringSwap,
        Some("at") => Benchmark::AvlTree,
        Some("bt") => Benchmark::BTree,
        Some("rt") => Benchmark::RbTree,
        Some(other) => return Err(format!("unknown benchmark {other}").into()),
    };
    let scale: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let params = WorkloadParams::table2(bench, 4, scale);
    let divisor = ((1.0 / scale) as u64).max(1).next_power_of_two().min(64);
    let config = SystemConfig::skylake_like().with_cache_divisor(divisor);

    println!(
        "{} at {:.0}% of Table 2 size ({} txs/thread), 4 cores, fast NVM",
        bench.abbrev(),
        scale * 100.0,
        params.sim_ops
    );
    let sweep = sweep_schemes(&config, bench, &params, &LoggingSchemeKind::ALL)?;

    let mut table = Table::new(["scheme", "speedup", "norm. NVMM writes", "norm. stalls"]);
    for scheme in LoggingSchemeKind::ALL {
        table.row([
            scheme.label().to_string(),
            f2(sweep.speedup(scheme)),
            f2(sweep.nvmm_writes_normalized(scheme)),
            f2(sweep.stalls_normalized(scheme)),
        ]);
    }
    println!("{}", table.render());
    println!("speedups relative to PMEM software logging;");
    println!("writes and stalls relative to PMEM+nolog (the unsafe ideal)");
    Ok(())
}
