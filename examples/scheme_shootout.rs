//! Compare every logging scheme on one workload, paper style.
//!
//! ```sh
//! cargo run --release --example scheme_shootout [WORKLOAD] [scale]
//! ```
//!
//! `WORKLOAD` is any roster CLI name (`qe`, `hm`, ..., `ycsb-a`,
//! `indexer`, ...); run `reproduce workloads` for the full list.

use proteus_sim::report::{f2, Table};
use proteus_sim::runner::sweep_schemes;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workgen::roster;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "qe".to_string());
    let Some(desc) = roster::by_cli_name(&name) else {
        let names: Vec<&str> = roster::all().iter().map(|d| d.cli_name).collect();
        return Err(format!("unknown workload {name}; try one of: {}", names.join(", ")).into());
    };
    let scale: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let sel = desc.sel();
    sel.validate()?;
    let params = desc.params(4, scale);
    let divisor = ((1.0 / scale) as u64).max(1).next_power_of_two().min(64);
    let config = SystemConfig::skylake_like().with_cache_divisor(divisor);

    println!(
        "{} at {:.0}% size ({} txs/thread), 4 cores, fast NVM — {}",
        sel.abbrev(),
        scale * 100.0,
        params.sim_ops,
        desc.blurb
    );
    let sweep = sweep_schemes(&config, sel, &params, &LoggingSchemeKind::ALL)?;

    let mut table = Table::new(["scheme", "speedup", "norm. NVMM writes", "norm. stalls"]);
    for scheme in LoggingSchemeKind::ALL {
        table.row([
            scheme.label().to_string(),
            f2(sweep.speedup(scheme)),
            f2(sweep.nvmm_writes_normalized(scheme)),
            f2(sweep.stalls_normalized(scheme)),
        ]);
    }
    println!("{}", table.render());
    println!("speedups relative to PMEM software logging;");
    println!("writes and stalls relative to PMEM+nolog (the unsafe ideal)");
    Ok(())
}
