//! Quickstart: run one benchmark under Proteus and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use proteus_sim::runner::{run_one, ExperimentSpec};
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
use proteus_workloads::{Benchmark, WorkloadParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A quad-core Skylake-like machine over fast NVM (the paper's
    // Table 1 configuration).
    let config = SystemConfig::skylake_like();

    // The Table 2 hash-map benchmark at 5% of the paper's op counts:
    // 4 threads, each running inserts/deletes in its own maps, every
    // operation wrapped in a durable transaction.
    let spec = ExperimentSpec {
        config,
        scheme: LoggingSchemeKind::Proteus,
        bench: Benchmark::HashMap.into(),
        params: WorkloadParams::table2(Benchmark::HashMap, 4, 0.05),
        engine: EngineConfig::default(),
    };

    let result = run_one(&spec)?;
    let cores = result.summary.cores_merged();
    println!("ran {}", result.name);
    println!("  cycles              : {}", result.summary.total_cycles);
    println!("  transactions        : {}", cores.transactions);
    println!("  micro-ops retired   : {}", cores.uops_retired);
    println!("  log flushes         : {}", cores.log_flushes);
    println!(
        "  LLT elided          : {} ({:.1}% hit rate)",
        cores.log_flushes_elided,
        100.0 - cores.llt_miss_rate_pct().unwrap_or(0.0)
    );
    println!("  NVMM writes (data)  : {}", result.summary.mem.nvmm_data_writes);
    println!(
        "  NVMM writes (log)   : {} — log write removal dropped {}",
        result.summary.mem.nvmm_log_writes, result.summary.mem.lpq_flash_cleared
    );
    Ok(())
}
