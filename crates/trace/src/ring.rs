//! Bounded event ring with explicit overflow accounting.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// A bounded FIFO of trace events.
///
/// When the ring is full, pushing drops the **oldest** event (the most
/// recent window is what post-mortem analysis wants) and increments a
/// counter that every export surfaces — overflow is reported, never
/// silent.
#[derive(Debug)]
pub struct EventRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped_oldest: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity (`TraceConfig::validate` rejects it first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventRing capacity must be nonzero");
        EventRing { events: VecDeque::with_capacity(capacity), capacity, dropped_oldest: 0 }
    }

    /// Appends an event, evicting (and counting) the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped_oldest = self.dropped_oldest.saturating_add(1);
        }
        self.events.push_back(ev);
    }

    /// Events currently retained, oldest first.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events were evicted to make room (0 = lossless trace).
    pub fn dropped_oldest(&self) -> u64 {
        self.dropped_oldest
    }

    /// Consumes the ring into an oldest-first vector plus its drop count.
    pub fn into_parts(self) -> (Vec<TraceEvent>, u64) {
        (self.events.into(), self.dropped_oldest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEventKind;
    use proteus_types::stats::StallCause;

    fn ev(at: u64) -> TraceEvent {
        TraceEvent { at, kind: TraceEventKind::Stall(StallCause::RobFull) }
    }

    #[test]
    fn keeps_newest_and_counts_dropped() {
        let mut r = EventRing::new(3);
        for at in 0..10 {
            r.push(ev(at));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.dropped_oldest(), 7);
        let (events, dropped) = r.into_parts();
        assert_eq!(dropped, 7);
        let stamps: Vec<u64> = events.iter().map(|e| e.at).collect();
        assert_eq!(stamps, vec![7, 8, 9]); // oldest evicted, newest retained, in order
    }

    #[test]
    fn no_drops_below_capacity() {
        let mut r = EventRing::new(8);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.dropped_oldest(), 0);
        assert!(!r.is_empty());
        let (events, dropped) = r.into_parts();
        assert_eq!((events.len(), dropped), (2, 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = EventRing::new(0);
    }
}
