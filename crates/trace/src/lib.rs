//! # proteus-trace — cycle-level observability for the Proteus simulator
//!
//! The paper's headline claims (Figs. 7–8) are *attribution* claims:
//! where dispatch-stall cycles go, which writes reach NVMM, and why
//! ATOM's retirement serialisation costs what it does. End-of-run
//! aggregates (`CoreStats` / `MemStats`) can state the totals but not
//! explain them; this crate captures the *timeline* the totals come
//! from:
//!
//! * a bounded ring of typed, cycle-stamped [`TraceEvent`]s per
//!   component — dispatch stalls (with [`StallCause`]), queue
//!   enqueue/dequeue/reject traffic, persist events, transaction
//!   begin/commit/durable marks — with oldest-dropped overflow
//!   accounting that is always reported, never silent;
//! * periodic queue-occupancy samples aggregated into shared
//!   [`Log2Histogram`]s (time-series distribution, not just the
//!   `*_peak_occupancy` point values);
//! * a per-transaction persist critical path ([`TxRecord`]): cycles
//!   from the last store's retirement to the durable commit, broken
//!   down by which queue the laggard entry waited in.
//!
//! Exports: Chrome trace-event JSON (loadable in Perfetto, one track
//! per core / MC queue / cache level) and a JSONL summary in the same
//! self-describing style as `proteus-harness` telemetry.
//!
//! ## Zero cost when disabled
//!
//! A disabled [`Tracer`] is `Option::None`: no allocation, and every
//! emission site is one branch. The simulator constructs components
//! with disabled tracers unless a `TraceConfig` with `enabled = true`
//! is passed to `System::new_with_trace` — a guard test asserts a
//! traced-off run's `RunSummary` is identical to the seed behaviour.
//!
//! [`StallCause`]: proteus_types::stats::StallCause
//! [`Log2Histogram`]: proteus_types::stats::Log2Histogram

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod record;
pub mod report;
pub mod ring;
pub mod tracer;

pub use event::{CacheLevel, PersistKind, QueueId, TraceEvent, TraceEventKind};
pub use record::{CommitWait, TxRecord};
pub use report::TraceReport;
pub use ring::EventRing;
pub use tracer::{Tracer, TrackDump, TrackKind};
