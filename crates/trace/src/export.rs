//! Exporters: Chrome trace-event JSON (loadable in Perfetto / `chrome://
//! tracing`) and a JSONL summary in the `proteus-harness` telemetry style.
//!
//! Both are hand-rolled writers — the crate is std-only — emitting only
//! ASCII field names and numbers, with string values escaped defensively.

use crate::event::{CacheLevel, QueueId, TraceEventKind};
use crate::report::TraceReport;
use crate::tracer::{TrackDump, TrackKind};
use std::fmt::Write as _;

/// Chrome trace pid for core tracks (tid = core index).
pub const PID_CORES: u32 = 1;
/// Chrome trace pid for memory-controller tracks (tid = queue slot).
pub const PID_MC: u32 = 2;
/// Chrome trace pid for cache counter tracks (tid = level slot).
pub const PID_CACHE: u32 = 3;
/// tid (under [`PID_MC`]) for persist-event instants.
pub const TID_MC_PERSIST: u32 = 100;

/// Escapes a string for embedding in a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct EventWriter {
    out: String,
    first: bool,
}

impl EventWriter {
    fn new() -> Self {
        EventWriter { out: String::from("{\"traceEvents\":[\n"), first: true }
    }

    fn raw(&mut self, json: &str) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
        self.out.push_str(json);
    }

    fn meta_process(&mut self, pid: u32, name: &str) {
        self.raw(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    fn meta_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.raw(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }

    fn instant(&mut self, name: &str, ts: u64, pid: u32, tid: u32) {
        self.raw(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"s\":\"t\"}}",
            esc(name)
        ));
    }

    fn counter(&mut self, name: &str, ts: u64, pid: u32, tid: u32, key: &str, value: u64) {
        self.raw(&format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"{}\":{value}}}}}",
            esc(name),
            esc(key)
        ));
    }

    fn span(&mut self, name: &str, ts: u64, dur: u64, pid: u32, tid: u32, args: &str) {
        self.raw(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{{{args}}}}}",
            esc(name)
        ));
    }

    fn finish(mut self, sample_interval: u64) -> String {
        self.out.push_str("\n],\n");
        let _ = writeln!(
            self.out,
            "\"displayTimeUnit\":\"ns\",\"otherData\":{{\"clock\":\"cycles\",\"sampleInterval\":{sample_interval}}}}}"
        );
        self.out
    }
}

fn pid_tid_for_queue(track: &TrackDump, queue: QueueId) -> (u32, u32) {
    match track.kind {
        TrackKind::Core(i) => (PID_CORES, i),
        TrackKind::Mc | TrackKind::Cache => (PID_MC, queue.slot() as u32),
    }
}

fn dump_track(w: &mut EventWriter, track: &TrackDump) {
    let (pid, tid) = match track.kind {
        TrackKind::Core(i) => (PID_CORES, i),
        TrackKind::Mc => (PID_MC, TID_MC_PERSIST),
        TrackKind::Cache => (PID_CACHE, 0),
    };
    // Cumulative cache samples export as per-interval deltas.
    let mut prev = [(0u64, 0u64); CacheLevel::ALL.len()];
    for ev in &track.events {
        match ev.kind {
            TraceEventKind::Stall(cause) => {
                w.instant(&format!("stall:{cause}"), ev.at, pid, tid);
            }
            TraceEventKind::Enqueue { queue, occupancy }
            | TraceEventKind::Dequeue { queue, occupancy }
            | TraceEventKind::OccupancySample { queue, occupancy } => {
                let (qpid, qtid) = pid_tid_for_queue(track, queue);
                w.counter(
                    &format!("occ:{}", queue.label()),
                    ev.at,
                    qpid,
                    qtid,
                    "occupancy",
                    u64::from(occupancy),
                );
            }
            TraceEventKind::Reject { queue } => {
                let (qpid, qtid) = pid_tid_for_queue(track, queue);
                w.instant(&format!("reject:{}", queue.label()), ev.at, qpid, qtid);
            }
            TraceEventKind::CacheSample { level, hits, misses } => {
                let (ph, pm) = prev[level.slot()];
                prev[level.slot()] = (hits, misses);
                let lt = level.slot() as u32;
                w.counter(
                    &format!("{}:hits", level.label()),
                    ev.at,
                    PID_CACHE,
                    lt,
                    "delta",
                    hits.saturating_sub(ph),
                );
                w.counter(
                    &format!("{}:misses", level.label()),
                    ev.at,
                    PID_CACHE,
                    lt,
                    "delta",
                    misses.saturating_sub(pm),
                );
            }
            TraceEventKind::Persist(kind) => {
                w.instant(&format!("persist:{}", kind.label()), ev.at, PID_MC, TID_MC_PERSIST);
            }
            TraceEventKind::TxBegin { tx } => {
                w.instant(&format!("tx{tx}:begin"), ev.at, pid, tid);
            }
            TraceEventKind::TxCommitRequest { tx } => {
                w.instant(&format!("tx{tx}:commit-request"), ev.at, pid, tid);
            }
            TraceEventKind::TxDurable { tx } => {
                w.instant(&format!("tx{tx}:durable"), ev.at, pid, tid);
            }
            TraceEventKind::LockAcquire { addr } => {
                w.instant(&format!("lock:acquire:{addr:#x}"), ev.at, pid, tid);
            }
            TraceEventKind::LockRelease { addr } => {
                w.instant(&format!("lock:release:{addr:#x}"), ev.at, pid, tid);
            }
            TraceEventKind::CoherenceInvalidate { line } => {
                w.instant(&format!("coh:invalidate:{line:#x}"), ev.at, PID_CACHE, 0);
            }
            TraceEventKind::OwnershipTransfer { line } => {
                w.instant(&format!("coh:transfer:{line:#x}"), ev.at, PID_CACHE, 0);
            }
        }
    }
    for rec in &track.tx_records {
        let args = format!(
            "\"commit_latency\":{},\"laggard\":\"{}\",\"blocked\":{}",
            rec.commit_latency(),
            esc(rec.wait.laggard()),
            rec.wait.total()
        );
        w.span(&format!("tx{}", rec.tx), rec.begin, rec.span().max(1), pid, tid, &args);
    }
}

impl TraceReport {
    /// Serialises the whole report as Chrome trace-event JSON: one track
    /// per core (pid 1), per MC queue (pid 2), and per cache level
    /// (pid 3), with instants for stalls/rejects/persists, counters for
    /// occupancies and cache deltas, and `X` spans for transactions.
    /// Timestamps are CPU cycles.
    pub fn to_chrome_json(&self) -> String {
        let mut w = EventWriter::new();
        w.meta_process(PID_CORES, "cores");
        w.meta_process(PID_MC, "memory-controller");
        w.meta_process(PID_CACHE, "caches");
        for t in &self.tracks {
            match t.kind {
                TrackKind::Core(i) => w.meta_thread(PID_CORES, i, &format!("core{i}")),
                TrackKind::Mc => {
                    for q in [QueueId::ReadQ, QueueId::Wpq, QueueId::Lpq] {
                        w.meta_thread(PID_MC, q.slot() as u32, &format!("mc.{}", q.label()));
                    }
                    w.meta_thread(PID_MC, TID_MC_PERSIST, "mc.persist");
                }
                TrackKind::Cache => {
                    for l in CacheLevel::ALL {
                        w.meta_thread(PID_CACHE, l.slot() as u32, &format!("cache.{}", l.label()));
                    }
                }
            }
        }
        for t in &self.tracks {
            dump_track(&mut w, t);
        }
        w.finish(self.sample_interval)
    }

    /// Serialises a compact JSONL summary consumable by the same tooling
    /// as `proteus-harness` telemetry: every line is a flat JSON object
    /// with a `v` schema version and an `event` discriminator.
    pub fn to_jsonl_summary(&self) -> String {
        let mut out = String::new();
        for t in &self.tracks {
            let _ = writeln!(
                out,
                "{{\"v\":1,\"event\":\"trace-track\",\"track\":\"{}\",\"events\":{},\"dropped\":{},\"capacity\":{}}}",
                esc(&t.name()),
                t.events.len(),
                t.dropped_oldest,
                t.capacity
            );
            for (q, h) in &t.occupancy {
                let _ = writeln!(
                    out,
                    "{{\"v\":1,\"event\":\"trace-occupancy\",\"track\":\"{}\",\"queue\":\"{}\",\"samples\":{},\"max\":{},\"hist\":\"{}\"}}",
                    esc(&t.name()),
                    q.label(),
                    h.count(),
                    h.max(),
                    esc(&h.render())
                );
            }
            for (q, h) in &t.wait {
                let _ = writeln!(
                    out,
                    "{{\"v\":1,\"event\":\"trace-wait\",\"track\":\"{}\",\"queue\":\"{}\",\"samples\":{},\"max\":{},\"hist\":\"{}\"}}",
                    esc(&t.name()),
                    q.label(),
                    h.count(),
                    h.max(),
                    esc(&h.render())
                );
            }
        }
        for r in self.tx_records() {
            let _ = writeln!(
                out,
                "{{\"v\":1,\"event\":\"trace-tx\",\"core\":{},\"tx\":{},\"begin\":{},\"last_store\":{},\"commit_request\":{},\"durable\":{},\"commit_latency\":{},\"laggard\":\"{}\",\"blocked\":{}}}",
                r.core,
                r.tx,
                r.begin,
                r.last_store,
                r.commit_request,
                r.durable,
                r.commit_latency(),
                esc(r.wait.laggard()),
                r.wait.total()
            );
        }
        let _ = writeln!(
            out,
            "{{\"v\":1,\"event\":\"trace-summary\",\"tracks\":{},\"tx_records\":{},\"total_events\":{},\"dropped\":{},\"sample_interval\":{}}}",
            self.tracks.len(),
            self.tx_records().len(),
            self.total_events(),
            self.total_dropped(),
            self.sample_interval
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{PersistKind, TraceEvent};
    use crate::record::{CommitWait, TxRecord};
    use proteus_types::stats::{Log2Histogram, StallCause};

    fn sample_report() -> TraceReport {
        let mut occ = Log2Histogram::new();
        occ.record(3);
        TraceReport {
            tracks: vec![
                TrackDump {
                    kind: TrackKind::Core(0),
                    events: vec![
                        TraceEvent { at: 4, kind: TraceEventKind::Stall(StallCause::LogQFull) },
                        TraceEvent {
                            at: 5,
                            kind: TraceEventKind::Enqueue { queue: QueueId::LogQ, occupancy: 2 },
                        },
                        TraceEvent { at: 9, kind: TraceEventKind::TxDurable { tx: 1 } },
                    ],
                    dropped_oldest: 0,
                    capacity: 64,
                    occupancy: vec![(QueueId::LogQ, occ)],
                    wait: Vec::new(),
                    tx_records: vec![TxRecord {
                        tx: 1,
                        core: 0,
                        begin: 1,
                        last_store: 3,
                        commit_request: 6,
                        durable: 9,
                        wait: CommitWait { logq: 2, ..CommitWait::default() },
                    }],
                },
                TrackDump {
                    kind: TrackKind::Mc,
                    events: vec![
                        TraceEvent { at: 6, kind: TraceEventKind::Persist(PersistKind::LpqAccept) },
                        TraceEvent { at: 7, kind: TraceEventKind::Reject { queue: QueueId::Wpq } },
                    ],
                    dropped_oldest: 2,
                    capacity: 64,
                    occupancy: Vec::new(),
                    wait: Vec::new(),
                    tx_records: Vec::new(),
                },
            ],
            sample_interval: 64,
        }
    }

    #[test]
    fn chrome_json_has_tracks_and_events() {
        let json = sample_report().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"core0\""));
        assert!(json.contains("\"mc.lpq\""));
        assert!(json.contains("stall:logq-full"));
        assert!(json.contains("occ:logq"));
        assert!(json.contains("persist:lpq-accept"));
        assert!(json.contains("reject:wpq"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"laggard\":\"logq-flush\""));
        // Balanced braces (cheap structural sanity; real parsing is done
        // by the tracedump smoke which feeds it through a JSON parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn jsonl_summary_lines_are_self_describing() {
        let report = sample_report();
        let jsonl = report.to_jsonl_summary();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines.iter().all(|l| l.starts_with("{\"v\":1,\"event\":\"trace-")));
        assert!(lines.iter().any(|l| l.contains("\"event\":\"trace-tx\"")));
        assert!(lines.last().unwrap().contains("\"event\":\"trace-summary\""));
        assert!(lines.last().unwrap().contains("\"dropped\":2"));
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }
}
