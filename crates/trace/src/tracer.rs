//! The per-component tracer handle.
//!
//! Every traced component (each core, the memory controller, the cache
//! sampler) owns one [`Tracer`]. Disabled, it is a single `None` — no
//! buffers, no samples, one branch per emission site. Enabled, it owns a
//! bounded [`EventRing`], per-queue occupancy and wait histograms, and the
//! component's transaction records. Ownership (no sharing, no locks) keeps
//! the simulator `Send` and the hot path branch-predictable.

use crate::event::{CacheLevel, QueueId, TraceEvent, TraceEventKind};
use crate::record::TxRecord;
use crate::ring::EventRing;
use proteus_types::stats::Log2Histogram;
use proteus_types::{Cycle, TraceConfig};

/// Which timeline a tracer's events belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// One out-of-order core.
    Core(u32),
    /// The memory controller and its queues.
    Mc,
    /// The cache hierarchy (sampled counters).
    Cache,
}

impl TrackKind {
    /// Stable track name used in exports ("core0", "mc", "cache").
    pub fn name(self) -> String {
        match self {
            TrackKind::Core(i) => format!("core{i}"),
            TrackKind::Mc => "mc".to_string(),
            TrackKind::Cache => "cache".to_string(),
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    kind: TrackKind,
    ring: EventRing,
    sample_interval: Cycle,
    next_sample: Cycle,
    occupancy: [Log2Histogram; QueueId::COUNT],
    wait: [Log2Histogram; QueueId::COUNT],
    tx_records: Vec<TxRecord>,
}

/// Everything one tracer captured, detached from the component.
#[derive(Debug, Clone)]
pub struct TrackDump {
    /// Which timeline this is.
    pub kind: TrackKind,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the ring to make room (0 = lossless).
    pub dropped_oldest: u64,
    /// Ring capacity the track ran with.
    pub capacity: usize,
    /// Occupancy histograms for queues that were sampled at least once.
    pub occupancy: Vec<(QueueId, Log2Histogram)>,
    /// Wait-cycle histograms for queues that recorded at least one wait.
    pub wait: Vec<(QueueId, Log2Histogram)>,
    /// Persist critical-path records for transactions this track committed.
    pub tx_records: Vec<TxRecord>,
}

impl TrackDump {
    /// Stable track name ("core0", "mc", "cache").
    pub fn name(&self) -> String {
        self.kind.name()
    }
}

/// A component's handle into the trace subsystem.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Option<Box<TracerInner>>,
}

impl Tracer {
    /// The no-op tracer: allocates nothing, records nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Creates a tracer for `kind`, or a disabled one if `cfg` says off.
    pub fn new(kind: TrackKind, cfg: &TraceConfig) -> Self {
        if !cfg.enabled {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Box::new(TracerInner {
                kind,
                ring: EventRing::new(cfg.ring_capacity),
                sample_interval: cfg.sample_interval.max(1),
                next_sample: 0,
                occupancy: std::array::from_fn(|_| Log2Histogram::new()),
                wait: std::array::from_fn(|_| Log2Histogram::new()),
                tx_records: Vec::new(),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity (0 when disabled) — the "no buffers when off" guard.
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |t| t.ring.capacity())
    }

    /// Appends a cycle-stamped event. No-op when disabled.
    pub fn emit(&mut self, at: Cycle, kind: TraceEventKind) {
        if let Some(t) = self.inner.as_mut() {
            t.ring.push(TraceEvent { at, kind });
        }
    }

    /// Whether the periodic sampler wants a sample at `now`. Lets callers
    /// skip computing sample values (e.g. aggregating cache stats) on the
    /// overwhelming majority of cycles.
    pub fn sample_due(&self, now: Cycle) -> bool {
        self.inner.as_ref().is_some_and(|t| now >= t.next_sample)
    }

    /// Records a periodic occupancy sample of each `(queue, occupancy)`
    /// pair if one is due, feeding both the log2 histograms and the event
    /// ring. No-op when disabled or not yet due.
    pub fn maybe_sample(&mut self, now: Cycle, queues: &[(QueueId, u32)]) {
        let Some(t) = self.inner.as_mut() else { return };
        if now < t.next_sample {
            return;
        }
        t.next_sample = now + t.sample_interval;
        for &(queue, occupancy) in queues {
            t.occupancy[queue.slot()].record(u64::from(occupancy));
            t.ring.push(TraceEvent {
                at: now,
                kind: TraceEventKind::OccupancySample { queue, occupancy },
            });
        }
    }

    /// Records a periodic cumulative cache-counter sample if one is due.
    /// Callers should gate the (relatively expensive) stat aggregation on
    /// [`Tracer::sample_due`].
    pub fn maybe_sample_cache(&mut self, now: Cycle, levels: &[(CacheLevel, u64, u64)]) {
        let Some(t) = self.inner.as_mut() else { return };
        if now < t.next_sample {
            return;
        }
        t.next_sample = now + t.sample_interval;
        for &(level, hits, misses) in levels {
            t.ring.push(TraceEvent {
                at: now,
                kind: TraceEventKind::CacheSample { level, hits, misses },
            });
        }
    }

    /// Records that an entry spent `cycles` waiting in `queue` before
    /// service (fed into the per-queue wait histogram).
    pub fn record_wait(&mut self, queue: QueueId, cycles: u64) {
        if let Some(t) = self.inner.as_mut() {
            t.wait[queue.slot()].record(cycles);
        }
    }

    /// Appends a committed transaction's critical-path record.
    pub fn record_tx(&mut self, rec: TxRecord) {
        if let Some(t) = self.inner.as_mut() {
            t.tx_records.push(rec);
        }
    }

    /// Detaches everything captured so far, leaving the tracer disabled.
    /// Returns `None` if the tracer was disabled.
    pub fn take_dump(&mut self) -> Option<TrackDump> {
        let t = self.inner.take()?;
        let TracerInner { kind, ring, occupancy, wait, tx_records, .. } = *t;
        let capacity = ring.capacity();
        let (events, dropped_oldest) = ring.into_parts();
        let keep = |hists: [Log2Histogram; QueueId::COUNT]| {
            QueueId::ALL
                .into_iter()
                .zip(hists)
                .filter(|(_, h)| h.count() > 0)
                .collect::<Vec<(QueueId, Log2Histogram)>>()
        };
        Some(TrackDump {
            kind,
            events,
            dropped_oldest,
            capacity,
            occupancy: keep(occupancy),
            wait: keep(wait),
            tx_records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::CommitWait;

    fn on() -> TraceConfig {
        TraceConfig { enabled: true, ring_capacity: 16, sample_interval: 10 }
    }

    #[test]
    fn disabled_tracer_is_free_and_inert() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.capacity(), 0);
        assert!(!t.sample_due(0));
        t.emit(1, TraceEventKind::Reject { queue: QueueId::Wpq });
        t.maybe_sample(1, &[(QueueId::Rob, 4)]);
        t.record_wait(QueueId::ReadQ, 9);
        assert!(t.take_dump().is_none());
        // A config with enabled=false behaves identically.
        assert!(!Tracer::new(TrackKind::Mc, &TraceConfig::disabled()).is_enabled());
    }

    #[test]
    fn sampling_respects_interval() {
        let mut t = Tracer::new(TrackKind::Core(0), &on());
        for now in 0..25 {
            t.maybe_sample(now, &[(QueueId::Rob, now as u32)]);
        }
        let d = t.take_dump().unwrap();
        // Due at 0, 10, 20 — three samples.
        assert_eq!(d.events.len(), 3);
        let (q, h) = &d.occupancy[0];
        assert_eq!(*q, QueueId::Rob);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 20);
    }

    #[test]
    fn dump_carries_records_waits_and_drops() {
        let cfg = TraceConfig { enabled: true, ring_capacity: 4, sample_interval: 1 };
        let mut t = Tracer::new(TrackKind::Mc, &cfg);
        for at in 0..9 {
            t.emit(at, TraceEventKind::Persist(crate::event::PersistKind::WpqAccept));
        }
        t.record_wait(QueueId::ReadQ, 100);
        t.record_tx(TxRecord {
            tx: 1,
            core: 0,
            begin: 0,
            last_store: 5,
            commit_request: 6,
            durable: 9,
            wait: CommitWait::default(),
        });
        let d = t.take_dump().unwrap();
        assert_eq!(d.name(), "mc");
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.dropped_oldest, 5);
        assert_eq!(d.capacity, 4);
        assert_eq!(d.wait.len(), 1);
        assert_eq!(d.wait[0].0, QueueId::ReadQ);
        assert_eq!(d.tx_records.len(), 1);
        assert!(d.occupancy.is_empty()); // never sampled
        assert!(!t.is_enabled()); // dump detaches
    }
}
