//! The trace event taxonomy: every cycle-stamped thing a component can
//! report, small enough to be `Copy` and to live by the million in a ring.

use proteus_types::stats::StallCause;
use proteus_types::Cycle;

/// A hardware queue (or queue-like structure) whose occupancy and
/// enqueue/dequeue/reject traffic the tracer follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueId {
    /// Reorder buffer (core).
    Rob,
    /// Load queue (core).
    LoadQ,
    /// Post-retirement store queue / store buffer (core).
    StoreQ,
    /// Proteus LogQ (core, §4.2).
    LogQ,
    /// Proteus log register file (core, §4.1).
    LogRegs,
    /// Proteus Log Lookup Table (core, §4.4) — reject = capacity eviction.
    Llt,
    /// Memory-controller read queue.
    ReadQ,
    /// ADR-protected write pending queue (MC).
    Wpq,
    /// Log pending queue (MC, §4.3).
    Lpq,
}

impl QueueId {
    /// Every queue, in slot order, for iteration in reports.
    pub const ALL: [QueueId; 9] = [
        QueueId::Rob,
        QueueId::LoadQ,
        QueueId::StoreQ,
        QueueId::LogQ,
        QueueId::LogRegs,
        QueueId::Llt,
        QueueId::ReadQ,
        QueueId::Wpq,
        QueueId::Lpq,
    ];

    /// Number of distinct queues (histogram array size).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for per-queue arrays.
    pub fn slot(self) -> usize {
        match self {
            QueueId::Rob => 0,
            QueueId::LoadQ => 1,
            QueueId::StoreQ => 2,
            QueueId::LogQ => 3,
            QueueId::LogRegs => 4,
            QueueId::Llt => 5,
            QueueId::ReadQ => 6,
            QueueId::Wpq => 7,
            QueueId::Lpq => 8,
        }
    }

    /// Stable lowercase label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            QueueId::Rob => "rob",
            QueueId::LoadQ => "loadq",
            QueueId::StoreQ => "storeq",
            QueueId::LogQ => "logq",
            QueueId::LogRegs => "logregs",
            QueueId::Llt => "llt",
            QueueId::ReadQ => "readq",
            QueueId::Wpq => "wpq",
            QueueId::Lpq => "lpq",
        }
    }
}

/// A durable-state transition observed at the memory controller — the
/// payload-free mirror of `proteus-mem`'s `PersistEventKind`, so the trace
/// crate needs no dependency on the memory model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistKind {
    /// Write became durable by WPQ acceptance (ADR domain).
    WpqAccept,
    /// WPQ entry finished its NVMM bank write.
    WpqDrain,
    /// Log flush became durable by LPQ acceptance.
    LpqAccept,
    /// LPQ entry finished its NVMM bank write.
    LpqDrain,
    /// Commit-time flash clear dropped queue-resident log entries.
    LogClear,
    /// A commit marker was stamped onto a queue-resident log entry.
    MarkerStamp,
    /// A retained commit marker was dropped (§4.3).
    MarkerDrop,
}

impl PersistKind {
    /// Stable label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            PersistKind::WpqAccept => "wpq-accept",
            PersistKind::WpqDrain => "wpq-drain",
            PersistKind::LpqAccept => "lpq-accept",
            PersistKind::LpqDrain => "lpq-drain",
            PersistKind::LogClear => "log-clear",
            PersistKind::MarkerStamp => "marker-stamp",
            PersistKind::MarkerDrop => "marker-drop",
        }
    }
}

/// A cache level, for sampled hit/miss counter tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheLevel {
    /// Per-core L1 data caches (aggregated).
    L1d,
    /// Per-core L2 caches (aggregated).
    L2,
    /// Shared L3.
    L3,
}

impl CacheLevel {
    /// Every level, in slot order.
    pub const ALL: [CacheLevel; 3] = [CacheLevel::L1d, CacheLevel::L2, CacheLevel::L3];

    /// Dense index for per-level arrays.
    pub fn slot(self) -> usize {
        match self {
            CacheLevel::L1d => 0,
            CacheLevel::L2 => 1,
            CacheLevel::L3 => 2,
        }
    }

    /// Stable label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::L1d => "l1d",
            CacheLevel::L2 => "l2",
            CacheLevel::L3 => "l3",
        }
    }
}

/// What happened (the `TraceEvent` payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Dispatch stalled this cycle for the given cause (Fig. 7 attribution).
    Stall(StallCause),
    /// An entry entered `queue`; `occupancy` is the size after the insert.
    Enqueue {
        /// Queue that grew.
        queue: QueueId,
        /// Occupancy after the insert.
        occupancy: u32,
    },
    /// An entry left `queue`; `occupancy` is the size after the removal.
    Dequeue {
        /// Queue that shrank.
        queue: QueueId,
        /// Occupancy after the removal.
        occupancy: u32,
    },
    /// An insert into `queue` was refused (backpressure).
    Reject {
        /// Queue that was full.
        queue: QueueId,
    },
    /// Periodic occupancy sample of `queue`.
    OccupancySample {
        /// Sampled queue.
        queue: QueueId,
        /// Occupancy at the sample instant.
        occupancy: u32,
    },
    /// Periodic cumulative hit/miss sample of a cache level (exporters
    /// emit the per-interval delta).
    CacheSample {
        /// Sampled level.
        level: CacheLevel,
        /// Cumulative hits at the sample instant.
        hits: u64,
        /// Cumulative misses at the sample instant.
        misses: u64,
    },
    /// A durable-state transition at the memory controller.
    Persist(PersistKind),
    /// A transaction began (its `tx-begin` dispatched).
    TxBegin {
        /// Raw transaction ID.
        tx: u64,
    },
    /// The core sent the transaction's commit handshake to the MC.
    TxCommitRequest {
        /// Raw transaction ID.
        tx: u64,
    },
    /// The transaction's commit became durable (tx-end retired).
    TxDurable {
        /// Raw transaction ID.
        tx: u64,
    },
    /// A `wait-value` ticket-lock acquire succeeded (contended workloads).
    LockAcquire {
        /// Raw address of the lock word.
        addr: u64,
    },
    /// A retired store handed a structure ticket lock to its successor.
    LockRelease {
        /// Raw address of the lock word.
        addr: u64,
    },
    /// A read-for-ownership removed a remote cached copy of a shared line.
    CoherenceInvalidate {
        /// Line index of the invalidated copy.
        line: u64,
    },
    /// A remote dirty copy of a shared line moved to the requesting core.
    OwnershipTransfer {
        /// Line index that changed owner.
        line: u64,
    },
}

/// One cycle-stamped event in a component's ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event happened.
    pub at: Cycle,
    /// What happened.
    pub kind: TraceEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_slots_are_dense_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for q in QueueId::ALL {
            let s = q.slot();
            assert!(s < QueueId::COUNT);
            assert!(seen.insert(s));
        }
    }

    #[test]
    fn cache_level_slots_are_dense() {
        for (i, l) in CacheLevel::ALL.iter().enumerate() {
            assert_eq!(l.slot(), i);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(QueueId::Lpq.label(), "lpq");
        assert_eq!(PersistKind::LogClear.label(), "log-clear");
        assert_eq!(CacheLevel::L1d.label(), "l1d");
    }
}
