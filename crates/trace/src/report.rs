//! The whole-run trace report: every track's dump, consistency checking
//! against the run's `RunSummary`, and the text tables `tracedump` and
//! `probe` print.

use crate::event::QueueId;
use crate::record::{CommitWait, TxRecord};
use crate::tracer::{TrackDump, TrackKind};
use proteus_types::stats::RunSummary;
use proteus_types::Cycle;
use std::fmt::Write as _;

/// Everything captured during one traced run.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// One dump per traced component (cores, MC, cache sampler).
    pub tracks: Vec<TrackDump>,
    /// Sampling period the run used (cycles).
    pub sample_interval: Cycle,
}

impl TraceReport {
    /// Total events retained across all tracks.
    pub fn total_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Total events evicted across all tracks (0 = lossless run).
    pub fn total_dropped(&self) -> u64 {
        self.tracks.iter().fold(0, |acc, t| acc.saturating_add(t.dropped_oldest))
    }

    /// All transaction records, in `(core, tx)` order.
    pub fn tx_records(&self) -> Vec<&TxRecord> {
        let mut recs: Vec<&TxRecord> =
            self.tracks.iter().flat_map(|t| t.tx_records.iter()).collect();
        recs.sort_by_key(|r| (r.core, r.tx));
        recs
    }

    /// The dump for `kind`, if that track was traced.
    pub fn track(&self, kind: TrackKind) -> Option<&TrackDump> {
        self.tracks.iter().find(|t| t.kind == kind)
    }

    /// Verifies the trace agrees (±0) with the authoritative `RunSummary`:
    /// every core track must carry exactly `transactions` records, no
    /// record may become durable after its core's last cycle, and no
    /// event may be stamped past the run's total cycles.
    pub fn check_against(&self, summary: &RunSummary) -> Result<(), String> {
        for t in &self.tracks {
            let TrackKind::Core(i) = t.kind else { continue };
            let Some(core) = summary.core.get(i as usize) else {
                return Err(format!("trace has track core{i} but summary has no such core"));
            };
            let records = t.tx_records.len() as u64;
            if records != core.transactions {
                return Err(format!(
                    "core{i}: {records} tx records but summary counted {} transactions",
                    core.transactions
                ));
            }
            for r in &t.tx_records {
                if r.durable > core.cycles {
                    return Err(format!(
                        "core{i} tx{}: durable at cycle {} after core finished at {}",
                        r.tx, r.durable, core.cycles
                    ));
                }
                if r.begin > r.last_store
                    || r.last_store > r.commit_request
                    || r.commit_request > r.durable
                {
                    return Err(format!(
                        "core{i} tx{}: non-monotonic critical path {} -> {} -> {} -> {}",
                        r.tx, r.begin, r.last_store, r.commit_request, r.durable
                    ));
                }
            }
            if let Some(ev) = t.events.iter().find(|e| e.at > summary.total_cycles) {
                return Err(format!(
                    "core{i}: event at cycle {} past run end {}",
                    ev.at, summary.total_cycles
                ));
            }
        }
        Ok(())
    }

    /// Renders the per-transaction persist critical-path table: up to
    /// `limit` rows, followed by an all-transaction totals footer (the
    /// footer always covers every record, whatever the limit).
    pub fn critical_path_table(&self, limit: usize) -> String {
        let recs = self.tx_records();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}  {:<14}",
            "core", "tx", "begin", "laststore", "commitreq", "durable", "latency", "laggard"
        );
        for r in recs.iter().take(limit) {
            let _ = writeln!(
                out,
                "{:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}  {:<14}",
                format!("core{}", r.core),
                r.tx,
                r.begin,
                r.last_store,
                r.commit_request,
                r.durable,
                r.commit_latency(),
                r.wait.laggard()
            );
        }
        if recs.len() > limit {
            let _ = writeln!(out, "... ({} more transactions)", recs.len() - limit);
        }
        let mut wait = CommitWait::default();
        let mut latency_total: u64 = 0;
        let mut latency_max: u64 = 0;
        for r in &recs {
            latency_total = latency_total.saturating_add(r.commit_latency());
            latency_max = latency_max.max(r.commit_latency());
            wait.store_release += r.wait.store_release;
            wait.clwb += r.wait.clwb;
            wait.logq += r.wait.logq;
            wait.atom += r.wait.atom;
            wait.mc_commit += r.wait.mc_commit;
        }
        let mean = if recs.is_empty() { 0.0 } else { latency_total as f64 / recs.len() as f64 };
        let _ = writeln!(
            out,
            "total: {} txs, commit latency sum={} mean={:.1} max={}",
            recs.len(),
            latency_total,
            mean,
            latency_max
        );
        let parts: Vec<String> = wait
            .parts()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(label, n)| format!("{label}={n}"))
            .collect();
        let _ = writeln!(
            out,
            "blocked tx-end cycles: {} ({})",
            wait.total(),
            if parts.is_empty() { "none".to_string() } else { parts.join(" ") }
        );
        out
    }

    /// Renders per-track queue-occupancy histograms (and wait histograms
    /// where recorded).
    pub fn occupancy_table(&self) -> String {
        let mut out = String::new();
        for t in &self.tracks {
            for (q, h) in &t.occupancy {
                let _ = writeln!(
                    out,
                    "{:<7} {:<8} occ  samples={:<8} mean={:<8.2} max={:<6} {}",
                    t.name(),
                    q.label(),
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.max(),
                    h.render()
                );
            }
            for (q, h) in &t.wait {
                let _ = writeln!(
                    out,
                    "{:<7} {:<8} wait samples={:<8} mean={:<8.2} max={:<6} {}",
                    t.name(),
                    q.label(),
                    h.count(),
                    h.mean().unwrap_or(0.0),
                    h.max(),
                    h.render()
                );
            }
        }
        if out.is_empty() {
            out.push_str("(no occupancy samples)\n");
        }
        out
    }

    /// Per-queue occupancy histogram merged across tracks (used by
    /// reports that don't care which component sampled the queue).
    pub fn merged_occupancy(&self) -> Vec<(QueueId, proteus_types::stats::Log2Histogram)> {
        let mut merged: Vec<(QueueId, proteus_types::stats::Log2Histogram)> = Vec::new();
        for t in &self.tracks {
            for (q, h) in &t.occupancy {
                match merged.iter_mut().find(|(mq, _)| mq == q) {
                    Some((_, mh)) => mh.merge(h),
                    None => merged.push((*q, h.clone())),
                }
            }
        }
        merged.sort_by_key(|(q, _)| q.slot());
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::stats::CoreStats;

    fn rec(core: u32, tx: u64, begin: Cycle, durable: Cycle) -> TxRecord {
        TxRecord {
            tx,
            core,
            begin,
            last_store: begin + 1,
            commit_request: begin + 2,
            durable,
            wait: CommitWait { logq: durable - begin - 2, ..CommitWait::default() },
        }
    }

    fn core_track(i: u32, recs: Vec<TxRecord>) -> TrackDump {
        TrackDump {
            kind: TrackKind::Core(i),
            events: Vec::new(),
            dropped_oldest: 0,
            capacity: 16,
            occupancy: Vec::new(),
            wait: Vec::new(),
            tx_records: recs,
        }
    }

    fn summary_with(cores: Vec<CoreStats>) -> RunSummary {
        RunSummary {
            total_cycles: cores.iter().map(|c| c.cycles).max().unwrap_or(0),
            core: cores,
            ..RunSummary::default()
        }
    }

    #[test]
    fn check_against_accepts_consistent_trace() {
        let report = TraceReport {
            tracks: vec![core_track(0, vec![rec(0, 1, 10, 50), rec(0, 2, 60, 90)])],
            sample_interval: 64,
        };
        let mut c = CoreStats::new();
        c.cycles = 100;
        c.transactions = 2;
        assert!(report.check_against(&summary_with(vec![c])).is_ok());
    }

    #[test]
    fn check_against_rejects_count_mismatch_and_late_durable() {
        let report = TraceReport {
            tracks: vec![core_track(0, vec![rec(0, 1, 10, 50)])],
            sample_interval: 64,
        };
        let mut c = CoreStats::new();
        c.cycles = 100;
        c.transactions = 2;
        let err = report.check_against(&summary_with(vec![c.clone()])).unwrap_err();
        assert!(err.contains("tx records"), "{err}");

        c.transactions = 1;
        c.cycles = 40; // durable at 50 is past the core's last cycle
        let err = report.check_against(&summary_with(vec![c])).unwrap_err();
        assert!(err.contains("durable"), "{err}");
    }

    #[test]
    fn critical_path_table_totals_cover_all_rows() {
        let report = TraceReport {
            tracks: vec![core_track(0, (0..5).map(|i| rec(0, i, i * 100, i * 100 + 20)).collect())],
            sample_interval: 64,
        };
        let table = report.critical_path_table(2);
        assert!(table.contains("... (3 more transactions)"));
        // Five txs, each with commit latency 19 (durable - last_store).
        assert!(table.contains("total: 5 txs, commit latency sum=95"), "{table}");
        assert!(table.contains("laggard"));
    }
}
