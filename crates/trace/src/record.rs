//! Per-transaction persist critical-path records.
//!
//! The paper's Fig. 7 argues about *where* commit latency goes: software
//! schemes burn it in fence drains, ATOM in retirement serialisation,
//! Proteus in (small) LogQ waits. A [`TxRecord`] captures exactly that for
//! one transaction: the cycle of the last store's retirement, the commit
//! handshake, the durable point, and a per-cause breakdown of every cycle
//! the `tx-end` sat blocked at the head of the ROB.

use proteus_types::Cycle;

/// Where the blocked `tx-end` cycles went, one counter per wait reason.
///
/// Each cycle the transaction's `tx-end` could not retire is attributed to
/// exactly one category (checked in priority order, matching the order the
/// pipeline drains them), so the counters sum to the total blocked cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitWait {
    /// Retired stores still waiting to leave the store queue (write-back
    /// release path into the caches / WPQ).
    pub store_release: u64,
    /// Outstanding `clwb` acknowledgements (lines still on their way to
    /// the WPQ's ADR domain).
    pub clwb: u64,
    /// Unacknowledged Proteus log flushes (LogQ entries not yet durable in
    /// the LPQ).
    pub logq: u64,
    /// Outstanding ATOM log-entry acknowledgements.
    pub atom: u64,
    /// Commit handshake round trip at the memory controller (flash clear /
    /// marker stamping).
    pub mc_commit: u64,
}

impl CommitWait {
    /// Total blocked cycles across all categories.
    pub fn total(&self) -> u64 {
        self.store_release + self.clwb + self.logq + self.atom + self.mc_commit
    }

    /// `(label, cycles)` pairs in attribution priority order.
    pub fn parts(&self) -> [(&'static str, u64); 5] {
        [
            ("storeq-release", self.store_release),
            ("wpq-clwb", self.clwb),
            ("logq-flush", self.logq),
            ("atom-log", self.atom),
            ("mc-commit", self.mc_commit),
        ]
    }

    /// Label of the dominant wait category — "which queue the laggard
    /// entry waited in" — or `"none"` when nothing blocked.
    pub fn laggard(&self) -> &'static str {
        let mut best = ("none", 0u64);
        for (label, n) in self.parts() {
            if n > best.1 {
                best = (label, n);
            }
        }
        best.0
    }
}

/// The persist critical path of one committed transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxRecord {
    /// Raw transaction ID.
    pub tx: u64,
    /// Core that ran it.
    pub core: u32,
    /// Cycle its `tx-begin` dispatched.
    pub begin: Cycle,
    /// Retirement cycle of its last store (== `begin` for storeless txs).
    pub last_store: Cycle,
    /// Cycle the commit handshake was sent to the memory controller.
    pub commit_request: Cycle,
    /// Cycle the commit became durable (`tx-end` retired).
    pub durable: Cycle,
    /// Breakdown of the cycles `tx-end` sat blocked.
    pub wait: CommitWait,
}

impl TxRecord {
    /// The headline metric: cycles from the last store's retirement to the
    /// durable commit.
    pub fn commit_latency(&self) -> Cycle {
        self.durable.saturating_sub(self.last_store)
    }

    /// Whole-transaction span in cycles.
    pub fn span(&self) -> Cycle {
        self.durable.saturating_sub(self.begin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_total_and_laggard() {
        let w = CommitWait { store_release: 3, clwb: 0, logq: 10, atom: 0, mc_commit: 4 };
        assert_eq!(w.total(), 17);
        assert_eq!(w.laggard(), "logq-flush");
        assert_eq!(CommitWait::default().laggard(), "none");
    }

    #[test]
    fn record_latencies() {
        let r = TxRecord {
            tx: 5,
            core: 1,
            begin: 100,
            last_store: 140,
            commit_request: 150,
            durable: 190,
            wait: CommitWait::default(),
        };
        assert_eq!(r.commit_latency(), 50);
        assert_eq!(r.span(), 90);
    }
}
