//! System configuration, including the paper's Table 1 baseline.
//!
//! [`SystemConfig::skylake_like`] reproduces the configuration the paper
//! evaluated on: a 3.4 GHz quad-core 5-wide out-of-order processor with a
//! three-level cache hierarchy over a single-channel DDR3-1600 memory system
//! whose timing is re-parameterised for NVM latencies.

use crate::clock::{ns_to_cycles, Cycle};
use serde::{Deserialize, Serialize};

/// Out-of-order core parameters (Table 1, "Processor" row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core clock in MHz (3400 = 3.4 GHz).
    pub freq_mhz: u64,
    /// Dispatch/issue/retire width.
    pub width: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Fetch queue entries.
    pub fetchq_entries: usize,
    /// Issue queue entries.
    pub issueq_entries: usize,
    /// Load queue entries.
    pub loadq_entries: usize,
    /// Store queue entries (stores stay queued from dispatch until released
    /// to the cache, which may be after retirement).
    pub storeq_entries: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            freq_mhz: 3400,
            width: 5,
            rob_entries: 224,
            fetchq_entries: 48,
            issueq_entries: 64,
            loadq_entries: 72,
            storeq_entries: 56,
        }
    }
}

/// One cache level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in CPU cycles (hit latency, load-to-use).
    pub latency: Cycle,
}

impl CacheLevelConfig {
    /// Number of sets for 64 B lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly, which indicates a
    /// misconfiguration.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / crate::addr::CACHE_LINE_SIZE;
        let sets = lines as usize / self.ways;
        assert_eq!(
            sets as u64 * self.ways as u64 * crate::addr::CACHE_LINE_SIZE,
            self.size_bytes,
            "cache geometry must divide evenly"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

/// The three-level hierarchy (Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Private per-core L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Private per-core L2.
    pub l2: CacheLevelConfig,
    /// Shared L3.
    pub l3: CacheLevelConfig,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            l1d: CacheLevelConfig { size_bytes: 32 * 1024, ways: 8, latency: 4 },
            l2: CacheLevelConfig { size_bytes: 256 * 1024, ways: 8, latency: 12 },
            l3: CacheLevelConfig { size_bytes: 8 * 1024 * 1024, ways: 16, latency: 42 },
        }
    }
}

/// DDR3-style bank timing in *memory-clock* cycles (800 MHz for DDR3-1600).
///
/// Field names follow the JEDEC parameters in Table 1:
/// `tCAS-tRCD-tRP-tRAS-tRC-tWR-tWTR-tRTP-tRRD-tFAW = 11-11-11-28-39-12-6-6-5-24`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Column access strobe latency.
    pub t_cas: u64,
    /// Row-to-column delay for reads (activation latency).
    pub t_rcd_read: u64,
    /// Row-to-column delay for writes. Equal to `t_rcd_read` on DRAM; the
    /// NVM models raise it to express the slow NVM write path (paper §5.1
    /// increases tRCD to 29 for reads and 109 for writes).
    pub t_rcd_write: u64,
    /// Row precharge time.
    pub t_rp: u64,
    /// Row active time.
    pub t_ras: u64,
    /// Row cycle time.
    pub t_rc: u64,
    /// Write recovery time.
    pub t_wr: u64,
    /// Write-to-read turnaround.
    pub t_wtr: u64,
    /// Read-to-precharge delay.
    pub t_rtp: u64,
    /// Activate-to-activate delay (different banks).
    pub t_rrd: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Data burst length in memory cycles (BL8 on a x64 channel: 4 cycles).
    pub t_burst: u64,
}

impl DramTiming {
    /// DDR3-1600 timing from Table 1.
    pub fn ddr3_1600() -> Self {
        DramTiming {
            t_cas: 11,
            t_rcd_read: 11,
            t_rcd_write: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_wr: 12,
            t_wtr: 6,
            t_rtp: 6,
            t_rrd: 5,
            t_faw: 24,
            t_burst: 4,
        }
    }

    /// Fast NVM from §5.1: tRCD 29 for reads, 109 for writes
    /// (≈50 ns read, ≈150 ns write at 800 MHz).
    pub fn nvm_fast() -> Self {
        DramTiming { t_rcd_read: 29, t_rcd_write: 109, ..Self::ddr3_1600() }
    }

    /// Slow NVM from §7.1: write latency raised to ≈300 ns
    /// (tRCD_write ≈ 229 memory cycles), read kept at ≈50 ns.
    pub fn nvm_slow() -> Self {
        DramTiming { t_rcd_read: 29, t_rcd_write: 229, ..Self::ddr3_1600() }
    }
}

/// Memory technology selector for an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemTech {
    /// Battery-backed DRAM (NVDIMM study, Fig. 10).
    Dram,
    /// Fast NVM: 50 ns read / 150 ns write (Figs. 6-8).
    NvmFast,
    /// Slow NVM: 50 ns read / 300 ns write (Fig. 9).
    NvmSlow,
}

impl MemTech {
    /// The bank timing for this technology.
    pub fn timing(self) -> DramTiming {
        match self {
            MemTech::Dram => DramTiming::ddr3_1600(),
            MemTech::NvmFast => DramTiming::nvm_fast(),
            MemTech::NvmSlow => DramTiming::nvm_slow(),
        }
    }

    /// Short label used in experiment reports.
    pub fn label(self) -> &'static str {
        match self {
            MemTech::Dram => "dram",
            MemTech::NvmFast => "nvm-fast",
            MemTech::NvmSlow => "nvm-slow",
        }
    }
}

/// Memory-system organisation (Table 1, "DRAM" row) and controller queues.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Technology (timing preset).
    pub tech: MemTech,
    /// Number of banks per rank.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_buffer_bytes: u64,
    /// Read queue entries at the memory controller.
    pub read_queue_entries: usize,
    /// Write pending queue entries. With ADR the WPQ is in the persistency
    /// domain, so writes are durable on WPQ arrival.
    pub wpq_entries: usize,
    /// Log pending queue entries (Proteus only; Table 1: 256).
    pub lpq_entries: usize,
    /// Whether the memory controller is inside the persistency domain
    /// (Intel ADR). When false, durability requires NVMM writeback and
    /// `pcommit` must drain the WPQ.
    pub adr: bool,
    /// WPQ occupancy (fraction of entries, in percent) above which the
    /// arbiter starts draining writes aggressively.
    pub wpq_high_watermark_pct: u8,
    /// WPQ occupancy below which draining stops (hysteresis).
    pub wpq_low_watermark_pct: u8,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            tech: MemTech::NvmFast,
            banks: 16,
            row_buffer_bytes: 2048,
            read_queue_entries: 64,
            wpq_entries: 64,
            lpq_entries: 256,
            adr: true,
            wpq_high_watermark_pct: 75,
            wpq_low_watermark_pct: 25,
        }
    }
}

/// Proteus core-side hardware structures (Table 1, "Proteus" row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProteusHwConfig {
    /// Log registers (LR file): entries available for in-flight
    /// `log-load`/`log-flush` pairs.
    pub log_registers: usize,
    /// LogQ entries: maximum concurrent `log-flush` operations.
    pub logq_entries: usize,
    /// Log Lookup Table entries.
    pub llt_entries: usize,
    /// LLT associativity.
    pub llt_ways: usize,
    /// Test-only fault-injection knob: a Proteus core with this flag set
    /// releases retired stores without waiting for their undo log entries
    /// to be acknowledged, and buffers ready log flushes locally until the
    /// transaction's commit fence — the classic write-ahead-logging
    /// violation ("defer the log to commit"). `proteus-crash` uses it to
    /// prove the consistency checker detects broken persist ordering.
    /// Never enable it for performance experiments.
    pub disable_persist_ordering: bool,
}

impl Default for ProteusHwConfig {
    fn default() -> Self {
        ProteusHwConfig {
            log_registers: 8,
            logq_entries: 16,
            llt_entries: 64,
            llt_ways: 8,
            disable_persist_ordering: false,
        }
    }
}

/// The logging scheme exercised by a run (§6 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoggingSchemeKind {
    /// Software undo logging with PMEM instructions (clwb + sfence), the
    /// speedup baseline. ADR applies: clwb completes at the WPQ.
    SwPmem,
    /// Software logging where every persist additionally issues `pcommit`,
    /// forcing WPQ drain to NVMM (the deprecated pre-ADR regime).
    SwPmemPcommit,
    /// Logging removed entirely — not failure-safe, the ideal upper bound.
    NoLog,
    /// ATOM hardware undo logging with posted-log and source-log
    /// optimisations: log entries are created at store retirement and the
    /// store is held until the MC acknowledges the log entry.
    Atom,
    /// Proteus software-supported hardware logging with log write removal
    /// (LogQ + LLT + LPQ + flash clear at tx-end).
    Proteus,
    /// Proteus with log write removal disabled: log flushes drain to NVMM
    /// like ordinary writes.
    ProteusNoLwr,
    /// In-cache-line logging (Cohen et al., ASPLOS'19): the undo entry
    /// for a single-word line mutation lives in a reserved word of the
    /// mutated line itself, with an external-entry fallback for wider
    /// updates.
    Incll,
}

impl LoggingSchemeKind {
    /// All schemes in the order the figures present them.
    ///
    /// Behavioural properties of each scheme (expansion, recovery, core
    /// policy, drain mode, rosters) live in the descriptor registry,
    /// `proteus_core::scheme::registry` — this enum stays a pure
    /// identifier plus its presentation label.
    pub const ALL: [LoggingSchemeKind; 7] = [
        LoggingSchemeKind::SwPmem,
        LoggingSchemeKind::SwPmemPcommit,
        LoggingSchemeKind::Atom,
        LoggingSchemeKind::ProteusNoLwr,
        LoggingSchemeKind::Proteus,
        LoggingSchemeKind::Incll,
        LoggingSchemeKind::NoLog,
    ];

    /// Label used in reports (matches the paper's legend). Also the
    /// stable-hash identity of the scheme (see `crate::hash`), so adding
    /// schemes never perturbs existing spec hashes.
    pub fn label(self) -> &'static str {
        match self {
            LoggingSchemeKind::SwPmem => "PMEM",
            LoggingSchemeKind::SwPmemPcommit => "PMEM+pcommit",
            LoggingSchemeKind::NoLog => "PMEM+nolog",
            LoggingSchemeKind::Atom => "ATOM",
            LoggingSchemeKind::Proteus => "Proteus",
            LoggingSchemeKind::ProteusNoLwr => "Proteus+NoLWR",
            LoggingSchemeKind::Incll => "InCLL",
        }
    }
}

/// Configuration for the `proteus-trace` observability subsystem.
///
/// Deliberately **not** a [`SystemConfig`] field: tracing is a pure
/// observer, and keeping it out of `SystemConfig` guarantees that
/// experiment spec hashes (which hash the system configuration) and
/// `RunSummary` outputs are byte-identical whether or not a run was
/// traced. Pass it to `System::new_with_trace` alongside the config.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch. When false, no trace buffers are allocated and every
    /// emission site reduces to a single branch on a `None`.
    pub enabled: bool,
    /// Capacity of each per-component event ring. When full, the oldest
    /// event is dropped and counted (never silently lost).
    pub ring_capacity: usize,
    /// Queue-occupancy / cache-counter sampling period in cycles.
    pub sample_interval: Cycle,
}

impl TraceConfig {
    /// Tracing off — the default; byte-identical to a pre-trace build.
    pub fn disabled() -> Self {
        TraceConfig { enabled: false, ring_capacity: 0, sample_interval: 0 }
    }

    /// Tracing on with defaults sized for Table-2-scale runs: a 64 Ki-event
    /// ring per component and a 64-cycle sampling period.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true, ring_capacity: 65_536, sample_interval: 64 }
    }

    /// Checks internal consistency (only meaningful when enabled).
    pub fn validate(&self) -> Result<(), String> {
        if self.enabled && (self.ring_capacity == 0 || self.sample_interval == 0) {
            return Err(
                "TraceConfig: ring_capacity and sample_interval must be nonzero when enabled"
                    .to_string(),
            );
        }
        Ok(())
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// Cycle-engine execution knobs.
///
/// Like [`TraceConfig`], deliberately **not** a [`SystemConfig`] field:
/// the engine mode changes how fast wall-clock time passes, never what
/// is simulated, so keeping it out of `SystemConfig` guarantees spec
/// hashes and `RunSummary` outputs are byte-identical across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Skip quiescent windows by advancing `now` straight to the next
    /// component wakeup instead of spinning empty ticks. Cycle-exact by
    /// construction (see DESIGN.md §6); disable only to cross-validate.
    pub fast_forward: bool,
    /// Worker threads for the parallel quantum engine (DESIGN.md §11).
    /// `1` (the default) runs the classic sequential loop; `N > 1` runs
    /// per-core pipelines on up to `N` scoped worker threads between
    /// deterministic memory-clock-edge barriers. Results are
    /// byte-identical across any thread count.
    pub threads: usize,
}

impl EngineConfig {
    /// Fast-forward on — the default engine.
    pub fn fast() -> Self {
        EngineConfig { fast_forward: true, threads: 1 }
    }

    /// Single-step every cycle, as the pre-event-driven engine did.
    pub fn single_step() -> Self {
        EngineConfig { fast_forward: false, threads: 1 }
    }

    /// This configuration with `threads` worker threads.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::fast()
    }
}

/// Complete system configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of cores.
    pub num_cores: usize,
    /// Per-core parameters.
    pub cores: CoreConfig,
    /// Cache hierarchy.
    pub caches: CacheConfig,
    /// Memory system and controller.
    pub mem: MemConfig,
    /// Proteus hardware structures.
    pub proteus: ProteusHwConfig,
}

impl SystemConfig {
    /// The paper's Table 1 configuration: quad-core Skylake-like processor
    /// over fast NVM.
    pub fn skylake_like() -> Self {
        SystemConfig {
            num_cores: 4,
            cores: CoreConfig::default(),
            caches: CacheConfig::default(),
            mem: MemConfig::default(),
            proteus: ProteusHwConfig::default(),
        }
    }

    /// Returns the configuration with a different memory technology.
    pub fn with_mem_tech(mut self, tech: MemTech) -> Self {
        self.mem.tech = tech;
        self
    }

    /// Returns the configuration with a different LogQ size (Fig. 11 sweep).
    pub fn with_logq_entries(mut self, entries: usize) -> Self {
        self.proteus.logq_entries = entries;
        self
    }

    /// Returns the configuration with a different LPQ size (Fig. 12 sweep).
    pub fn with_lpq_entries(mut self, entries: usize) -> Self {
        self.mem.lpq_entries = entries;
        self
    }

    /// Returns the configuration with a different LLT size.
    pub fn with_llt_entries(mut self, entries: usize, ways: usize) -> Self {
        self.proteus.llt_entries = entries;
        self.proteus.llt_ways = ways;
        self
    }

    /// Returns the configuration with a different core count.
    pub fn with_num_cores(mut self, n: usize) -> Self {
        self.num_cores = n;
        self
    }

    /// Returns the configuration with the Proteus write-ahead gate broken
    /// (see [`ProteusHwConfig::disable_persist_ordering`]). Test-only.
    pub fn with_disable_persist_ordering(mut self, broken: bool) -> Self {
        self.proteus.disable_persist_ordering = broken;
        self
    }

    /// Scales the L2 and L3 capacities down by `divisor` (a power of two)
    /// — the standard simulator-downscaling methodology: when a workload
    /// is run at 1/N of its paper size, shrinking the large caches by the
    /// same factor preserves the working-set-to-cache ratio and thus the
    /// miss behaviour that the paper's DRAM-bound baselines exhibit.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is not a power of two.
    pub fn with_cache_divisor(mut self, divisor: u64) -> Self {
        assert!(divisor.is_power_of_two(), "cache divisor must be a power of two");
        self.caches.l2.size_bytes = (self.caches.l2.size_bytes / divisor).max(16 * 1024);
        self.caches.l3.size_bytes = (self.caches.l3.size_bytes / divisor).max(128 * 1024);
        self
    }

    /// NVM read service latency floor in CPU cycles (for documentation and
    /// sanity tests; the bank model derives actual latencies from timing).
    pub fn nominal_read_latency(&self) -> Cycle {
        match self.mem.tech {
            MemTech::Dram => ns_to_cycles(28, self.cores.freq_mhz),
            MemTech::NvmFast | MemTech::NvmSlow => ns_to_cycles(50, self.cores.freq_mhz),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be at least 1".into());
        }
        if self.cores.width == 0 {
            return Err("core width must be at least 1".into());
        }
        if self.proteus.llt_ways == 0
            || !self.proteus.llt_entries.is_multiple_of(self.proteus.llt_ways)
        {
            return Err(format!(
                "LLT entries ({}) must divide evenly by ways ({})",
                self.proteus.llt_entries, self.proteus.llt_ways
            ));
        }
        if self.mem.wpq_low_watermark_pct >= self.mem.wpq_high_watermark_pct {
            return Err("WPQ low watermark must be below high watermark".into());
        }
        if self.proteus.logq_entries == 0 || self.proteus.log_registers == 0 {
            return Err("LogQ and LR sizes must be at least 1".into());
        }
        for (name, lvl) in
            [("l1d", &self.caches.l1d), ("l2", &self.caches.l2), ("l3", &self.caches.l3)]
        {
            let lines = lvl.size_bytes / crate::addr::CACHE_LINE_SIZE;
            if lvl.ways == 0 || !(lines as usize).is_multiple_of(lvl.ways) {
                return Err(format!("{name}: geometry does not divide evenly"));
            }
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_preset_matches_paper() {
        let cfg = SystemConfig::skylake_like();
        assert_eq!(cfg.num_cores, 4);
        assert_eq!(cfg.cores.width, 5);
        assert_eq!(cfg.cores.rob_entries, 224);
        assert_eq!(cfg.cores.loadq_entries, 72);
        assert_eq!(cfg.cores.storeq_entries, 56);
        assert_eq!(cfg.caches.l1d.latency, 4);
        assert_eq!(cfg.caches.l2.latency, 12);
        assert_eq!(cfg.caches.l3.latency, 42);
        assert_eq!(cfg.proteus.log_registers, 8);
        assert_eq!(cfg.proteus.logq_entries, 16);
        assert_eq!(cfg.proteus.llt_entries, 64);
        assert_eq!(cfg.mem.lpq_entries, 256);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn cache_geometry() {
        let cfg = CacheConfig::default();
        assert_eq!(cfg.l1d.sets(), 64);
        assert_eq!(cfg.l2.sets(), 512);
        assert_eq!(cfg.l3.sets(), 8192);
    }

    #[test]
    fn nvm_timing_presets() {
        let fast = DramTiming::nvm_fast();
        assert_eq!(fast.t_rcd_read, 29);
        assert_eq!(fast.t_rcd_write, 109);
        let slow = DramTiming::nvm_slow();
        assert_eq!(slow.t_rcd_write, 229);
        assert_eq!(slow.t_rcd_read, 29);
        let dram = DramTiming::ddr3_1600();
        assert_eq!(dram.t_cas, 11);
        assert_eq!(dram.t_rcd_write, 11);
    }

    #[test]
    fn builder_methods() {
        let cfg = SystemConfig::skylake_like()
            .with_mem_tech(MemTech::Dram)
            .with_logq_entries(8)
            .with_lpq_entries(128)
            .with_llt_entries(32, 8)
            .with_num_cores(2);
        assert_eq!(cfg.mem.tech, MemTech::Dram);
        assert_eq!(cfg.proteus.logq_entries, 8);
        assert_eq!(cfg.mem.lpq_entries, 128);
        assert_eq!(cfg.proteus.llt_entries, 32);
        assert_eq!(cfg.num_cores, 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn cache_divisor_scales_l2_l3_only() {
        let cfg = SystemConfig::skylake_like().with_cache_divisor(8);
        assert_eq!(cfg.caches.l1d.size_bytes, 32 * 1024, "L1 untouched");
        assert_eq!(cfg.caches.l2.size_bytes, 32 * 1024);
        assert_eq!(cfg.caches.l3.size_bytes, 1024 * 1024);
        assert!(cfg.validate().is_ok());
        // Floors hold for extreme divisors.
        let tiny = SystemConfig::skylake_like().with_cache_divisor(1 << 20);
        assert_eq!(tiny.caches.l2.size_bytes, 16 * 1024);
        assert_eq!(tiny.caches.l3.size_bytes, 128 * 1024);
        assert!(tiny.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_divisor_rejects_non_power_of_two() {
        let _ = SystemConfig::skylake_like().with_cache_divisor(3);
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let mut cfg = SystemConfig::skylake_like();
        cfg.proteus.llt_ways = 7;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::skylake_like();
        cfg.num_cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::skylake_like();
        cfg.mem.wpq_low_watermark_pct = 90;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn trace_config_defaults_and_validation() {
        let off = TraceConfig::default();
        assert!(!off.enabled);
        assert_eq!(off, TraceConfig::disabled());
        assert!(off.validate().is_ok());

        let on = TraceConfig::enabled();
        assert!(on.enabled);
        assert!(on.ring_capacity > 0 && on.sample_interval > 0);
        assert!(on.validate().is_ok());

        let bad = TraceConfig { enabled: true, ring_capacity: 0, sample_interval: 64 };
        assert!(bad.validate().is_err());
        let bad = TraceConfig { enabled: true, ring_capacity: 16, sample_interval: 0 };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn scheme_labels_are_unique() {
        assert_eq!(LoggingSchemeKind::Proteus.label(), "Proteus");
        assert_eq!(LoggingSchemeKind::Incll.label(), "InCLL");
        assert_eq!(LoggingSchemeKind::ALL.len(), 7);
        let labels: std::collections::HashSet<_> =
            LoggingSchemeKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), LoggingSchemeKind::ALL.len());
    }
}
