//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The cycle engine keys several per-core structures (MSHR, store-queue
//! line counts, in-flight flush metadata) by line/grain addresses and
//! looks them up every busy cycle. `std`'s default SipHash is keyed and
//! DoS-resistant — properties the simulator does not need — and its
//! per-lookup cost shows up directly in simulated-cycles-per-second.
//! This module provides the well-known Fx multiply-rotate construction
//! (a single wrapping multiply per word, as used by rustc's internal
//! tables) with a **fixed** seed: same key, same hash, on every run and
//! every platform.
//!
//! Determinism note: the simulator's outputs must be byte-identical
//! across runs, so the hasher must not be randomly keyed; beyond that,
//! no simulated state may depend on map *iteration* order. The hot maps
//! are only ever probed by key (or drained via `retain` on a `Vec`), so
//! swapping the hasher cannot change a `RunSummary` — the fast-forward
//! identity suite and the golden pins would catch it if it did.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx construction (64-bit golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word multiply-rotate hasher; see the module docs.
#[derive(Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]; usable as a `HashMap` type
/// parameter default.
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` keyed with the deterministic fast hasher.
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` keyed with the deterministic fast hasher.
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn byte_stream_matches_word_writes_for_aligned_input() {
        let mut a = FastHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FastHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work_as_drop_ins() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        m.insert(42, 1);
        *m.entry(42).or_insert(0) += 1;
        assert_eq!(m[&42], 2);
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
