//! The static inter-core sharing domain.
//!
//! The simulator's traces are pre-generated, so which addresses can ever
//! be shared between cores is known statically: contended workloads place
//! their structures in a dedicated **shared arena** and their ticket-lock
//! words in a dedicated **structure-lock range**. Everything else —
//! per-thread benchmark data, log areas, per-thread flags — stays
//! single-owner, and the coherence layer must treat it exactly as the
//! pre-coherence cache model did (zero cost, zero effect).
//!
//! The two ranges are compile-time constants, not configuration: adding a
//! field to `SystemConfig` would change every spec hash in every recorded
//! ledger (see `hash::FieldHasher`), and there is nothing to configure —
//! the ranges only need to be disjoint from the per-thread layout, which
//! tests pin.

use crate::addr::Addr;

/// Base of the shared data arena contended structures are built in.
/// Sits above the 16 per-thread 64 MiB benchmark arenas (which end at
/// 0x5000_0000) and below the uncacheable log areas at 0x8000_0000.
pub const SHARED_ARENA_BASE: u64 = 0x6000_0000;

/// Size of the shared data arena (64 MiB).
pub const SHARED_ARENA_SIZE: u64 = 64 << 20;

/// Base of the structure ticket-lock words, one cache line per lock.
/// Distinct from the per-thread flag lines at 0x0E00_0000 so single-owner
/// workloads never touch the coherence domain.
pub const STRUCT_LOCK_BASE: u64 = 0x0E10_0000;

/// Size of the structure-lock range (1 MiB — 16 Ki locks).
pub const STRUCT_LOCK_SIZE: u64 = 0x0010_0000;

/// Whether `addr` lies in the shared data arena.
pub fn is_shared_data(addr: Addr) -> bool {
    (SHARED_ARENA_BASE..SHARED_ARENA_BASE + SHARED_ARENA_SIZE).contains(&addr.raw())
}

/// Whether `addr` is a structure ticket-lock word.
pub fn is_struct_lock(addr: Addr) -> bool {
    (STRUCT_LOCK_BASE..STRUCT_LOCK_BASE + STRUCT_LOCK_SIZE).contains(&addr.raw())
}

/// Whether `addr` is in the coherence domain — the only addresses for
/// which inter-core snooping, invalidation, and ownership transfer are
/// modeled. Accesses outside the domain take the pre-coherence fast path
/// bit for bit.
pub fn in_coherence_domain(addr: Addr) -> bool {
    is_shared_data(addr) || is_struct_lock(addr)
}

/// The lock word for structure `index`, one per cache line.
///
/// # Panics
///
/// Panics if `index` would leave the structure-lock range.
pub fn struct_lock_addr(index: usize) -> Addr {
    let offset = index as u64 * crate::addr::CACHE_LINE_SIZE;
    assert!(offset < STRUCT_LOCK_SIZE, "structure index {index} out of lock range");
    Addr::new(STRUCT_LOCK_BASE + offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_is_the_union_of_both_ranges() {
        assert!(in_coherence_domain(Addr::new(SHARED_ARENA_BASE)));
        assert!(in_coherence_domain(Addr::new(SHARED_ARENA_BASE + SHARED_ARENA_SIZE - 8)));
        assert!(in_coherence_domain(struct_lock_addr(0)));
        assert!(!in_coherence_domain(Addr::new(SHARED_ARENA_BASE - 8)));
        assert!(!in_coherence_domain(Addr::new(SHARED_ARENA_BASE + SHARED_ARENA_SIZE)));
    }

    #[test]
    fn single_owner_layout_stays_outside_the_domain() {
        // Per-thread benchmark arenas (DATA_BASE + t * 64 MiB, t < 16).
        for t in 0..16u64 {
            assert!(!in_coherence_domain(Addr::new(0x1000_0000 + t * (64 << 20))));
        }
        // Per-thread flag lines and log areas.
        assert!(!in_coherence_domain(Addr::new(0x0E00_0000)));
        assert!(!in_coherence_domain(Addr::new(0x0F00_0000)));
        assert!(!in_coherence_domain(Addr::new(0x8000_0000)));
    }

    #[test]
    fn lock_addrs_are_line_disjoint() {
        assert_eq!(struct_lock_addr(0).raw(), STRUCT_LOCK_BASE);
        assert_ne!(struct_lock_addr(1).line(), struct_lock_addr(0).line());
    }

    #[test]
    #[should_panic(expected = "out of lock range")]
    fn lock_index_overflow_panics() {
        let _ = struct_lock_addr((STRUCT_LOCK_SIZE / 64) as usize);
    }
}
