//! Statistics counters collected during simulation.
//!
//! The counters mirror the measurements the paper reports: execution cycles
//! (Figs. 6, 9, 10, 11, 12, Table 3), front-end dispatch stalls (Fig. 7),
//! NVMM write counts by type (Fig. 8), and LLT hit rates (Table 4).

use crate::clock::Cycle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why dispatch could not proceed in a given cycle (front-end stall).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallCause {
    /// Reorder buffer full.
    RobFull,
    /// Issue queue full.
    IssueQFull,
    /// Load queue full.
    LoadQFull,
    /// Store queue full.
    StoreQFull,
    /// Proteus LogQ full: a `log-flush` could not allocate an entry
    /// (paper §4.2: dispatch stalls to preserve persist ordering).
    LogQFull,
    /// Proteus log register file exhausted.
    LrFull,
    /// An in-order constraint (sfence/pcommit/tx boundary) is draining.
    FenceDrain,
    /// ATOM: store retirement blocked on log durability backed up into
    /// the pipeline.
    AtomLogWait,
    /// A `wait-value` spin (ticket-lock acquire on a shared structure)
    /// has not observed its expected value yet.
    LockWait,
}

impl StallCause {
    /// All causes, for iteration in reports.
    pub const ALL: [StallCause; 9] = [
        StallCause::RobFull,
        StallCause::IssueQFull,
        StallCause::LoadQFull,
        StallCause::StoreQFull,
        StallCause::LogQFull,
        StallCause::LrFull,
        StallCause::FenceDrain,
        StallCause::AtomLogWait,
        StallCause::LockWait,
    ];

    fn slot(self) -> usize {
        match self {
            StallCause::RobFull => 0,
            StallCause::IssueQFull => 1,
            StallCause::LoadQFull => 2,
            StallCause::StoreQFull => 3,
            StallCause::LogQFull => 4,
            StallCause::LrFull => 5,
            StallCause::FenceDrain => 6,
            StallCause::AtomLogWait => 7,
            StallCause::LockWait => 8,
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallCause::RobFull => "rob-full",
            StallCause::IssueQFull => "issueq-full",
            StallCause::LoadQFull => "loadq-full",
            StallCause::StoreQFull => "storeq-full",
            StallCause::LogQFull => "logq-full",
            StallCause::LrFull => "lr-full",
            StallCause::FenceDrain => "fence-drain",
            StallCause::AtomLogWait => "atom-log-wait",
            StallCause::LockWait => "lock-wait",
        };
        f.write_str(s)
    }
}

/// Per-core pipeline statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Cycles this core was active (until its trace finished).
    pub cycles: Cycle,
    /// Micro-ops retired.
    pub uops_retired: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// `clwb` operations retired.
    pub clwbs: u64,
    /// `sfence`/`mfence` operations retired.
    pub fences: u64,
    /// `log-load` operations retired (Proteus).
    pub log_loads: u64,
    /// `log-flush` operations retired, including LLT-elided ones.
    pub log_flushes: u64,
    /// `log-flush` operations elided by an LLT hit.
    pub log_flushes_elided: u64,
    /// ATOM hardware log entries created at store retirement.
    pub atom_log_entries: u64,
    /// ATOM log entries elided by its per-transaction dedup table.
    pub atom_log_elided: u64,
    /// Transactions committed.
    pub transactions: u64,
    /// LLT lookups (equals `log_flushes` under Proteus).
    pub llt_lookups: u64,
    /// LLT hits.
    pub llt_hits: u64,
    /// Front-end dispatch stall cycles by cause (indexed via
    /// [`StallCause::ALL`] order).
    stall_cycles: [u64; 9],
}

impl CoreStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stalled dispatch cycle.
    pub fn record_stall(&mut self, cause: StallCause) {
        self.stall_cycles[cause.slot()] += 1;
    }

    /// Adds `n` stall cycles attributed to `cause` (bulk restore path,
    /// used when decoding persisted summaries).
    pub fn add_stall_cycles(&mut self, cause: StallCause, n: u64) {
        self.stall_cycles[cause.slot()] += n;
    }

    /// Stall cycles attributed to `cause`.
    pub fn stall(&self, cause: StallCause) -> u64 {
        self.stall_cycles[cause.slot()]
    }

    /// Total front-end stall cycles across all causes.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().sum()
    }

    /// LLT miss rate in percent (Table 4); `None` when no lookups occurred.
    pub fn llt_miss_rate_pct(&self) -> Option<f64> {
        if self.llt_lookups == 0 {
            None
        } else {
            Some(100.0 * (self.llt_lookups - self.llt_hits) as f64 / self.llt_lookups as f64)
        }
    }

    /// Accumulates another core's counters into this one.
    ///
    /// Counter sums saturate rather than wrap: merged aggregates can span
    /// arbitrarily many resumed shards, and a pinned-at-max counter is a
    /// visible anomaly where a wrapped one silently corrupts every ratio
    /// derived from it.
    pub fn merge(&mut self, other: &CoreStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.uops_retired = self.uops_retired.saturating_add(other.uops_retired);
        self.loads = self.loads.saturating_add(other.loads);
        self.stores = self.stores.saturating_add(other.stores);
        self.clwbs = self.clwbs.saturating_add(other.clwbs);
        self.fences = self.fences.saturating_add(other.fences);
        self.log_loads = self.log_loads.saturating_add(other.log_loads);
        self.log_flushes = self.log_flushes.saturating_add(other.log_flushes);
        self.log_flushes_elided = self.log_flushes_elided.saturating_add(other.log_flushes_elided);
        self.atom_log_entries = self.atom_log_entries.saturating_add(other.atom_log_entries);
        self.atom_log_elided = self.atom_log_elided.saturating_add(other.atom_log_elided);
        self.transactions = self.transactions.saturating_add(other.transactions);
        self.llt_lookups = self.llt_lookups.saturating_add(other.llt_lookups);
        self.llt_hits = self.llt_hits.saturating_add(other.llt_hits);
        for i in 0..self.stall_cycles.len() {
            self.stall_cycles[i] = self.stall_cycles[i].saturating_add(other.stall_cycles[i]);
        }
    }
}

/// Memory-controller and NVMM statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Read requests serviced by the NVMM banks.
    pub nvmm_reads: u64,
    /// Data (non-log) writes performed at the NVMM banks.
    pub nvmm_data_writes: u64,
    /// Log writes that reached the NVMM banks (escaped removal).
    pub nvmm_log_writes: u64,
    /// Extra NVMM writes performed to invalidate log entries that had
    /// already escaped to NVMM when their transaction committed.
    pub nvmm_log_invalidation_writes: u64,
    /// Writes accepted into the WPQ.
    pub wpq_inserts: u64,
    /// Log flushes accepted into the LPQ.
    pub lpq_inserts: u64,
    /// LPQ entries flash-cleared at tx-end (writes avoided).
    pub lpq_flash_cleared: u64,
    /// LPQ entries drained to NVMM before their transaction ended.
    pub lpq_drained: u64,
    /// WPQ-resident log entries dropped at commit (commit-marker rule).
    pub wpq_log_dropped: u64,
    /// `pcommit` drains executed.
    pub pcommits: u64,
    /// Cycles any read spent waiting in the read queue (for occupancy
    /// diagnostics).
    pub read_queue_wait_cycles: u64,
    /// Peak WPQ occupancy observed.
    pub wpq_peak_occupancy: usize,
    /// Peak LPQ occupancy observed.
    pub lpq_peak_occupancy: usize,
    /// Requests rejected because the LPQ was full (backpressure events).
    pub lpq_full_rejections: u64,
    /// Requests rejected because the WPQ was full (backpressure events).
    pub wpq_full_rejections: u64,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total writes that physically reached the NVMM banks, the Fig. 8
    /// metric (data + log + log invalidation).
    pub fn total_nvmm_writes(&self) -> u64 {
        self.nvmm_data_writes + self.nvmm_log_writes + self.nvmm_log_invalidation_writes
    }

    /// Accumulates another controller's counters into this one.
    ///
    /// Saturating, for the same reason as [`CoreStats::merge`].
    pub fn merge(&mut self, other: &MemStats) {
        self.nvmm_reads = self.nvmm_reads.saturating_add(other.nvmm_reads);
        self.nvmm_data_writes = self.nvmm_data_writes.saturating_add(other.nvmm_data_writes);
        self.nvmm_log_writes = self.nvmm_log_writes.saturating_add(other.nvmm_log_writes);
        self.nvmm_log_invalidation_writes =
            self.nvmm_log_invalidation_writes.saturating_add(other.nvmm_log_invalidation_writes);
        self.wpq_inserts = self.wpq_inserts.saturating_add(other.wpq_inserts);
        self.lpq_inserts = self.lpq_inserts.saturating_add(other.lpq_inserts);
        self.lpq_flash_cleared = self.lpq_flash_cleared.saturating_add(other.lpq_flash_cleared);
        self.lpq_drained = self.lpq_drained.saturating_add(other.lpq_drained);
        self.wpq_log_dropped = self.wpq_log_dropped.saturating_add(other.wpq_log_dropped);
        self.pcommits = self.pcommits.saturating_add(other.pcommits);
        self.read_queue_wait_cycles =
            self.read_queue_wait_cycles.saturating_add(other.read_queue_wait_cycles);
        self.wpq_peak_occupancy = self.wpq_peak_occupancy.max(other.wpq_peak_occupancy);
        self.lpq_peak_occupancy = self.lpq_peak_occupancy.max(other.lpq_peak_occupancy);
        self.lpq_full_rejections =
            self.lpq_full_rejections.saturating_add(other.lpq_full_rejections);
        self.wpq_full_rejections =
            self.wpq_full_rejections.saturating_add(other.wpq_full_rejections);
    }
}

/// Cache statistics for one level.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// Lines flushed by `clwb`.
    pub clwb_flushes: u64,
}

impl CacheStats {
    /// Hit rate in percent; `None` when no accesses occurred.
    pub fn hit_rate_pct(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        if total == 0 {
            None
        } else {
            Some(100.0 * self.hits as f64 / total as f64)
        }
    }

    /// Accumulates another cache's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writebacks += other.writebacks;
        self.clwb_flushes += other.clwb_flushes;
    }
}

/// Inter-core coherence statistics (all zero when no line is shared:
/// the protocol only acts on cross-core interactions inside the shared
/// coherence domain, so single-owner workloads never move these).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceStats {
    /// Remote private copies invalidated by a store (M/S/I: a writer
    /// gains exclusive ownership before mutating the line).
    pub invalidations: u64,
    /// Dirty lines transferred from a remote private cache to satisfy
    /// another core's access (cache-to-cache ownership transfer).
    pub remote_transfers: u64,
    /// Loads in the shared domain that missed every private cache and
    /// had no remote dirty owner (coherence misses: the line had to
    /// come from L3 or memory).
    pub coherence_misses: u64,
    /// `wait-value` spins resolved (successful lock acquires).
    pub lock_acquires: u64,
}

impl CoherenceStats {
    /// Whether any coherence activity was observed.
    pub fn is_zero(&self) -> bool {
        *self == CoherenceStats::default()
    }

    /// Accumulates another system's counters into this one (saturating,
    /// for the same reason as [`CoreStats::merge`]).
    pub fn merge(&mut self, other: &CoherenceStats) {
        self.invalidations = self.invalidations.saturating_add(other.invalidations);
        self.remote_transfers = self.remote_transfers.saturating_add(other.remote_transfers);
        self.coherence_misses = self.coherence_misses.saturating_add(other.coherence_misses);
        self.lock_acquires = self.lock_acquires.saturating_add(other.lock_acquires);
    }
}

/// Full-run summary: everything a figure or table needs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Wall-clock of the simulated run: max cycles over all cores.
    pub total_cycles: Cycle,
    /// Per-core statistics, indexed by core.
    pub core: Vec<CoreStats>,
    /// Memory-controller statistics.
    pub mem: MemStats,
    /// L1 statistics aggregated over cores.
    pub l1d: CacheStats,
    /// L2 statistics aggregated over cores.
    pub l2: CacheStats,
    /// Shared L3 statistics.
    pub l3: CacheStats,
    /// Inter-core coherence statistics (all zero for single-owner
    /// workloads; serialized only when non-zero so pre-coherence
    /// ledgers and goldens stay byte-identical).
    #[serde(default, skip_serializing_if = "CoherenceStats::is_zero")]
    pub coherence: CoherenceStats,
}

impl RunSummary {
    /// Aggregated core stats over all cores.
    pub fn cores_merged(&self) -> CoreStats {
        let mut total = CoreStats::new();
        for c in &self.core {
            total.merge(c);
        }
        total
    }

    /// Speedup of this run relative to a baseline run of the same work:
    /// `baseline_cycles / self_cycles`.
    ///
    /// Zero-cycle runs (degenerate empty workloads) are treated as one
    /// cycle on either side, so the result is always finite and
    /// NaN-free: two empty runs compare as exactly 1.0.
    pub fn speedup_over(&self, baseline: &RunSummary) -> f64 {
        baseline.total_cycles.max(1) as f64 / self.total_cycles.max(1) as f64
    }
}

/// A fixed-size log2-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v` with `floor(log2(v)) == i - 1`; bucket 0
/// counts zeros, and the last bucket absorbs everything at or beyond its
/// lower bound. This is the one shared histogram used for trace queue
/// occupancies, memory-controller wait times, and harness per-job wall
/// times — every log2 breakdown in the repo renders identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Histogram {
    buckets: [u64; Log2Histogram::BUCKETS],
    count: u64,
    max: u64,
    sum: u64,
}

impl Log2Histogram {
    /// Number of buckets: zeros plus `floor(log2(v))` in `0..=30`, with
    /// the last bucket open-ended (covers u64 values `>= 2^30`).
    pub const BUCKETS: usize = 32;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(Self::BUCKETS - 1)
        }
    }

    /// Records one sample. Totals saturate rather than wrap.
    pub fn record(&mut self, value: u64) {
        let slot = Self::slot(value);
        self.buckets[slot] = self.buckets[slot].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Raw bucket counts, lowest bucket first.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Inclusive lower bound of bucket `i` (0, 1, 2, 4, 8, ...).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Accumulates another histogram into this one (saturating).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket where the cumulative sample count first
    /// reaches `q` (clamped to `[0, 1]`) of all samples, or `None` for an
    /// empty histogram. Because buckets are log2-sized this is a bound on
    /// the true quantile, not its exact value — good enough for p50/p99
    /// latency reporting, which is what it exists for.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(n);
            if cumulative >= target {
                return Some(if i == Self::BUCKETS - 1 {
                    self.max
                } else {
                    Self::bucket_floor(i + 1) - 1
                });
            }
        }
        Some(self.max)
    }

    /// Compact one-line rendering of the non-empty buckets, e.g.
    /// `[0]:3 [1]:1 [4-7]:12`, or `empty` for a histogram with no samples.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return "empty".to_string();
        }
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            let lo = Self::bucket_floor(i);
            if i == 0 {
                out.push_str(&format!("[0]:{n}"));
            } else if i == Self::BUCKETS - 1 {
                out.push_str(&format!("[{lo}+]:{n}"));
            } else {
                let hi = Self::bucket_floor(i + 1) - 1;
                if lo == hi {
                    out.push_str(&format!("[{lo}]:{n}"));
                } else {
                    out.push_str(&format!("[{lo}-{hi}]:{n}"));
                }
            }
        }
        out
    }
}

/// Geometric mean of the positive, finite values in `values`.
///
/// The paper reports geometric means across benchmarks; this helper keeps
/// every report using the same definition.
///
/// Degenerate entries — zero, negative, infinite, or NaN ratios, which
/// arise only from empty or crashed runs, never from a meaningful
/// speedup — are ignored rather than poisoning the mean. An empty slice,
/// or one with no usable values, yields `1.0` (the neutral speedup), so
/// the result is always finite and NaN-free.
pub fn geometric_mean(values: &[f64]) -> f64 {
    let mut log_sum = 0.0f64;
    let mut used = 0usize;
    for &v in values {
        if v > 0.0 && v.is_finite() {
            log_sum += v.ln();
            used += 1;
        }
    }
    if used == 0 {
        1.0
    } else {
        (log_sum / used as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_accounting() {
        let mut s = CoreStats::new();
        s.record_stall(StallCause::RobFull);
        s.record_stall(StallCause::RobFull);
        s.record_stall(StallCause::LogQFull);
        assert_eq!(s.stall(StallCause::RobFull), 2);
        assert_eq!(s.stall(StallCause::LogQFull), 1);
        assert_eq!(s.stall(StallCause::LoadQFull), 0);
        assert_eq!(s.total_stall_cycles(), 3);
    }

    #[test]
    fn llt_miss_rate() {
        let mut s = CoreStats::new();
        assert_eq!(s.llt_miss_rate_pct(), None);
        s.llt_lookups = 100;
        s.llt_hits = 75;
        assert_eq!(s.llt_miss_rate_pct(), Some(25.0));
    }

    #[test]
    fn core_merge_accumulates() {
        let mut a = CoreStats::new();
        a.cycles = 100;
        a.stores = 5;
        a.record_stall(StallCause::FenceDrain);
        let mut b = CoreStats::new();
        b.cycles = 200;
        b.stores = 7;
        b.record_stall(StallCause::FenceDrain);
        a.merge(&b);
        assert_eq!(a.cycles, 200); // max, not sum: wall-clock semantics
        assert_eq!(a.stores, 12);
        assert_eq!(a.stall(StallCause::FenceDrain), 2);
    }

    #[test]
    fn total_nvmm_writes_sums_components() {
        let mut m = MemStats::new();
        m.nvmm_data_writes = 10;
        m.nvmm_log_writes = 4;
        m.nvmm_log_invalidation_writes = 1;
        assert_eq!(m.total_nvmm_writes(), 15);
    }

    #[test]
    fn speedup_definition() {
        let mut base = RunSummary::default();
        base.total_cycles = 1500;
        let mut fast = RunSummary::default();
        fast.total_cycles = 1000;
        assert!((fast.speedup_over(&base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn speedup_guards_zero_cycle_runs() {
        let empty = RunSummary::default();
        let mut real = RunSummary::default();
        real.total_cycles = 500;
        // Empty vs empty is the neutral speedup; never NaN or infinite.
        assert_eq!(empty.speedup_over(&empty), 1.0);
        assert!(empty.speedup_over(&real).is_finite());
        assert!(real.speedup_over(&empty).is_finite());
        assert_eq!(real.speedup_over(&empty), 1.0 / 500.0);
    }

    #[test]
    fn geometric_mean_matches_hand_calc() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        let g = geometric_mean(&[2.0, 2.0, 2.0]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_ignores_degenerate_values() {
        // Zero / negative / non-finite entries come only from degenerate
        // runs; they are skipped, not propagated as NaN.
        let g = geometric_mean(&[1.0, 0.0, 4.0, -3.0, f64::INFINITY, f64::NAN]);
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_empty_is_neutral() {
        assert_eq!(geometric_mean(&[]), 1.0);
        assert_eq!(geometric_mean(&[0.0, -1.0]), 1.0);
        assert!(geometric_mean(&[f64::NAN]).is_finite());
    }

    #[test]
    fn add_stall_cycles_bulk_matches_recording() {
        let mut a = CoreStats::new();
        for _ in 0..5 {
            a.record_stall(StallCause::LogQFull);
        }
        let mut b = CoreStats::new();
        b.add_stall_cycles(StallCause::LogQFull, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_hit_rate() {
        let mut c = CacheStats::default();
        assert_eq!(c.hit_rate_pct(), None);
        c.hits = 3;
        c.misses = 1;
        assert_eq!(c.hit_rate_pct(), Some(75.0));
    }

    #[test]
    fn core_merge_saturates_instead_of_wrapping() {
        let mut a = CoreStats::new();
        a.uops_retired = u64::MAX - 1;
        a.transactions = u64::MAX;
        a.add_stall_cycles(StallCause::RobFull, u64::MAX);
        let mut b = CoreStats::new();
        b.uops_retired = 10;
        b.transactions = 3;
        b.add_stall_cycles(StallCause::RobFull, 7);
        a.merge(&b);
        assert_eq!(a.uops_retired, u64::MAX);
        assert_eq!(a.transactions, u64::MAX);
        assert_eq!(a.stall(StallCause::RobFull), u64::MAX);
        assert_eq!(a.total_stall_cycles(), u64::MAX); // sum over slots is itself a plain sum
    }

    #[test]
    fn mem_merge_saturates_instead_of_wrapping() {
        let mut a = MemStats::new();
        a.nvmm_reads = u64::MAX;
        a.read_queue_wait_cycles = u64::MAX - 5;
        a.wpq_peak_occupancy = 9;
        let mut b = MemStats::new();
        b.nvmm_reads = 1;
        b.read_queue_wait_cycles = 100;
        b.wpq_peak_occupancy = 4;
        a.merge(&b);
        assert_eq!(a.nvmm_reads, u64::MAX);
        assert_eq!(a.read_queue_wait_cycles, u64::MAX);
        assert_eq!(a.wpq_peak_occupancy, 9); // peaks still take the max
    }

    #[test]
    fn log2_histogram_bucketing() {
        let mut h = Log2Histogram::new();
        for v in [0, 0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 2); // zeros
        assert_eq!(h.buckets()[1], 1); // v == 1
        assert_eq!(h.buckets()[2], 2); // 2..=3
        assert_eq!(h.buckets()[3], 2); // 4..=7
        assert_eq!(h.buckets()[4], 1); // 8..=15
        assert_eq!(h.buckets()[Log2Histogram::BUCKETS - 1], 1); // open-ended tail
    }

    #[test]
    fn log2_histogram_floors_and_render() {
        assert_eq!(Log2Histogram::bucket_floor(0), 0);
        assert_eq!(Log2Histogram::bucket_floor(1), 1);
        assert_eq!(Log2Histogram::bucket_floor(2), 2);
        assert_eq!(Log2Histogram::bucket_floor(5), 16);
        let mut h = Log2Histogram::new();
        assert_eq!(h.render(), "empty");
        assert_eq!(h.mean(), None);
        h.record(0);
        h.record(5);
        h.record(6);
        assert_eq!(h.render(), "[0]:1 [4-7]:2");
        assert!((h.mean().unwrap() - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn log2_histogram_quantile_bounds() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.quantile_bound(0.5), None);
        for v in [0, 0, 0, 0, 0, 0, 0, 0, 0, 100] {
            h.record(v);
        }
        // Nine of ten samples are zero: every quantile up to 0.9 resolves
        // to the zero bucket, whose upper bound is 0.
        assert_eq!(h.quantile_bound(0.0), Some(0));
        assert_eq!(h.quantile_bound(0.5), Some(0));
        assert_eq!(h.quantile_bound(0.9), Some(0));
        // The tail sample (100) lives in bucket [64-127].
        assert_eq!(h.quantile_bound(0.99), Some(127));
        assert_eq!(h.quantile_bound(1.0), Some(127));
        // Out-of-range q is clamped.
        assert_eq!(h.quantile_bound(7.0), Some(127));
        // A sample in the open-ended top bucket bounds at the observed max.
        let mut t = Log2Histogram::new();
        t.record(u64::MAX - 17);
        assert_eq!(t.quantile_bound(1.0), Some(u64::MAX - 17));
    }

    #[test]
    fn log2_histogram_merge_and_saturation() {
        let mut a = Log2Histogram::new();
        a.record(u64::MAX);
        a.record(u64::MAX); // sum saturates
        assert_eq!(a.sum(), u64::MAX);
        let mut b = Log2Histogram::new();
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), u64::MAX);
        assert_eq!(a.buckets()[2], 1);
    }

    #[test]
    fn stall_causes_all_distinct_slots() {
        let mut seen = std::collections::HashSet::new();
        for c in StallCause::ALL {
            assert!(seen.insert(c.slot()));
        }
    }
}
