//! Cycle counting and clock-domain conversion.
//!
//! The core runs at 3.4 GHz while the DDR3-1600 memory clock runs at
//! 800 MHz (paper Table 1), a ratio of 4.25 CPU cycles per memory cycle.
//! The simulator is stepped in CPU cycles; [`ClockRatio`] converts between
//! domains exactly using a rational accumulator so no drift accumulates
//! over long runs.

use serde::{Deserialize, Serialize};

/// A simulation timestamp or duration in CPU cycles.
pub type Cycle = u64;

/// Exact rational clock ratio between the CPU domain and a slower domain.
///
/// `numer / denom` is the number of CPU cycles per slow-domain cycle
/// (e.g. 17/4 = 4.25 for a 3.4 GHz core over an 800 MHz memory clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockRatio {
    numer: u64,
    denom: u64,
}

impl ClockRatio {
    /// Creates a ratio of `numer / denom` CPU cycles per slow cycle.
    ///
    /// # Panics
    ///
    /// Panics if either component is zero.
    pub fn new(numer: u64, denom: u64) -> Self {
        assert!(numer > 0 && denom > 0, "clock ratio components must be nonzero");
        ClockRatio { numer, denom }
    }

    /// The 3.4 GHz core over 800 MHz DDR3-1600 ratio from Table 1.
    pub fn cpu_over_ddr3_1600() -> Self {
        ClockRatio::new(17, 4)
    }

    /// Converts a duration in slow-domain cycles to CPU cycles, rounding up
    /// (a transfer is not complete until the full slow cycle has elapsed).
    pub fn to_cpu_cycles(&self, slow_cycles: u64) -> Cycle {
        (slow_cycles * self.numer).div_ceil(self.denom)
    }

    /// Converts a duration in CPU cycles to whole elapsed slow-domain
    /// cycles, rounding down.
    pub fn to_slow_cycles(&self, cpu_cycles: Cycle) -> u64 {
        cpu_cycles * self.denom / self.numer
    }
}

/// A component that can report when it next needs to be ticked.
///
/// `next_event_cycle(now)` returns the earliest cycle `>= now` at which
/// ticking the component could change simulated state, assuming no new
/// inputs arrive before then, or `None` if the component is passive
/// until external input (or finished). `now` is the next cycle *to be
/// executed*, so the method is evaluated on post-tick state.
///
/// The contract is asymmetric: **under-reporting** (returning a cycle
/// earlier than the true next event) only costs a wasted tick, while
/// **over-reporting** (returning a cycle later than the true next
/// event) lets the engine skip past a wakeup and silently diverges the
/// simulation. Implementations must therefore round down to `now`
/// whenever progress cannot be ruled out cheaply.
pub trait NextEvent {
    /// Earliest cycle `>= now` at which this component can make
    /// progress, or `None` if it never will without external input.
    fn next_event_cycle(&self, now: Cycle) -> Option<Cycle>;
}

/// Converts nanoseconds to CPU cycles at a given core frequency in MHz.
///
/// Used for NVM latencies specified in wall-clock time (50 ns read /
/// 150 ns write fast; 300 ns write slow).
pub fn ns_to_cycles(ns: u64, core_mhz: u64) -> Cycle {
    (ns * core_mhz).div_ceil(1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_ratio_is_4_25() {
        let r = ClockRatio::cpu_over_ddr3_1600();
        assert_eq!(r.to_cpu_cycles(4), 17);
        assert_eq!(r.to_cpu_cycles(1), 5); // 4.25 rounded up
        assert_eq!(r.to_cpu_cycles(100), 425);
    }

    #[test]
    fn slow_cycle_conversion_floors() {
        let r = ClockRatio::cpu_over_ddr3_1600();
        assert_eq!(r.to_slow_cycles(17), 4);
        assert_eq!(r.to_slow_cycles(16), 3);
        assert_eq!(r.to_slow_cycles(0), 0);
    }

    #[test]
    fn conversion_roundtrip_is_monotone() {
        let r = ClockRatio::cpu_over_ddr3_1600();
        for slow in 0..1000 {
            let cpu = r.to_cpu_cycles(slow);
            assert!(r.to_slow_cycles(cpu) >= slow);
        }
    }

    #[test]
    fn ns_conversion_matches_paper_latencies() {
        // 3.4 GHz core: 50 ns = 170 cycles, 150 ns = 510, 300 ns = 1020.
        assert_eq!(ns_to_cycles(50, 3400), 170);
        assert_eq!(ns_to_cycles(150, 3400), 510);
        assert_eq!(ns_to_cycles(300, 3400), 1020);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_ratio_rejected() {
        let _ = ClockRatio::new(0, 4);
    }
}
