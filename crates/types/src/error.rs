//! Simulator error type.

use crate::addr::Addr;
use crate::ids::{CoreId, ThreadId};
use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulator's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration failed validation.
    InvalidConfig(String),
    /// A thread's log area overflowed within a single transaction; the
    /// paper specifies the processor raises an exception in this case
    /// (§4.1).
    LogAreaOverflow {
        /// Thread whose log wrapped onto live entries.
        thread: ThreadId,
        /// Configured log area capacity in entries.
        capacity: usize,
    },
    /// A logging instruction executed outside a transaction.
    LoggingOutsideTransaction {
        /// The offending core.
        core: CoreId,
    },
    /// A `tx-begin` was issued while a transaction was already open.
    NestedTransaction {
        /// The offending core.
        core: CoreId,
    },
    /// A `tx-end` was issued with no open transaction.
    UnmatchedTxEnd {
        /// The offending core.
        core: CoreId,
    },
    /// An access touched an address outside every mapped region when a
    /// mapping was required.
    UnmappedAddress(Addr),
    /// Recovery found a corrupt or inconsistent log image.
    CorruptLog(String),
    /// The workload asked for more cores/threads than the system has.
    TooManyThreads {
        /// Requested thread count.
        requested: usize,
        /// Available core count.
        available: usize,
    },
    /// A harness worker caught a panic inside an experiment job. The
    /// sweep's sibling jobs completed; this surfaces the first crash to
    /// callers that asked for an all-or-nothing result.
    WorkerPanic {
        /// Human-readable job name (`<bench>/<scheme>/...`).
        job: String,
        /// Panic payload message.
        message: String,
    },
    /// The experiment harness could not read or write its resume ledger
    /// or event stream.
    HarnessIo(String),
    /// The crash-consistency checker found a recovered image that matches
    /// no transaction boundary of its workload (`proteus-crash`).
    ConsistencyViolation(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::LogAreaOverflow { thread, capacity } => {
                write!(f, "log area overflow on {thread}: transaction exceeded {capacity} entries")
            }
            SimError::LoggingOutsideTransaction { core } => {
                write!(f, "logging instruction outside a transaction on {core}")
            }
            SimError::NestedTransaction { core } => {
                write!(f, "nested tx-begin on {core}")
            }
            SimError::UnmatchedTxEnd { core } => {
                write!(f, "tx-end without open transaction on {core}")
            }
            SimError::UnmappedAddress(addr) => write!(f, "access to unmapped address {addr}"),
            SimError::CorruptLog(msg) => write!(f, "corrupt log image: {msg}"),
            SimError::TooManyThreads { requested, available } => {
                write!(f, "workload requested {requested} threads but only {available} cores exist")
            }
            SimError::WorkerPanic { job, message } => {
                write!(f, "experiment job '{job}' panicked: {message}")
            }
            SimError::HarnessIo(msg) => write!(f, "harness i/o failure: {msg}"),
            SimError::ConsistencyViolation(msg) => {
                write!(f, "crash-consistency violation: {msg}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_period() {
        let e = SimError::LogAreaOverflow { thread: ThreadId::new(2), capacity: 128 };
        let s = e.to_string();
        assert!(s.starts_with("log area overflow"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
        let boxed: Box<dyn Error + Send + Sync> = Box::new(SimError::UnmappedAddress(Addr::new(4)));
        assert!(boxed.to_string().contains("0x4"));
    }

    #[test]
    fn variants_format_distinctly() {
        let msgs = [
            SimError::InvalidConfig("x".into()).to_string(),
            SimError::NestedTransaction { core: CoreId::new(0) }.to_string(),
            SimError::UnmatchedTxEnd { core: CoreId::new(0) }.to_string(),
            SimError::CorruptLog("bad".into()).to_string(),
            SimError::TooManyThreads { requested: 8, available: 4 }.to_string(),
        ];
        let unique: std::collections::HashSet<_> = msgs.iter().collect();
        assert_eq!(unique.len(), msgs.len());
    }
}
