//! Physical addresses and cache-line / log-grain arithmetic.
//!
//! The simulator uses a flat 64-bit physical address space. Two alignment
//! granularities matter throughout the system:
//!
//! * the **cache line** (64 bytes), the unit moved between caches and the
//!   memory controller, and
//! * the **log grain** (32 bytes), the unit captured by a single
//!   `log-load`/`log-flush` pair (the paper's logging data size, chosen so
//!   that log data plus metadata fit in one cache line).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size in bytes of a cache line, the transfer unit of the memory hierarchy.
pub const CACHE_LINE_SIZE: u64 = 64;

/// Size in bytes of the logging data captured by one `log-load` (paper §4.1:
/// 32 B of data leaves room for the log-from address and metadata so a full
/// log entry fits in a single 64 B cache line).
pub const LOG_GRAIN_SIZE: u64 = 32;

/// A byte-granularity physical address in the simulated machine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw physical byte address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / CACHE_LINE_SIZE)
    }

    /// Returns the 32-byte log grain containing this address.
    pub const fn log_grain(self) -> LogGrainAddr {
        LogGrainAddr(self.0 / LOG_GRAIN_SIZE)
    }

    /// Returns the address advanced by `bytes`.
    ///
    /// # Panics
    ///
    /// Panics on address overflow, which indicates a simulator bug.
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.checked_add(bytes).expect("address overflow"))
    }

    /// Byte offset of this address within its cache line.
    pub const fn line_offset(self) -> u64 {
        self.0 % CACHE_LINE_SIZE
    }

    /// Whether the address is aligned to a cache-line boundary.
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(CACHE_LINE_SIZE)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-line-granularity address (the raw value is the line *index*, i.e.
/// the byte address divided by [`CACHE_LINE_SIZE`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line index.
    pub const fn from_index(index: u64) -> Self {
        LineAddr(index)
    }

    /// The line index (byte address / 64).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 * CACHE_LINE_SIZE)
    }

    /// The two log grains covered by this line.
    pub const fn log_grains(self) -> [LogGrainAddr; 2] {
        [LogGrainAddr(self.0 * 2), LogGrainAddr(self.0 * 2 + 1)]
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.base().raw())
    }
}

/// A 32-byte log-grain address (raw value is the grain index).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LogGrainAddr(u64);

impl LogGrainAddr {
    /// Creates a grain address from a grain index.
    pub const fn from_index(index: u64) -> Self {
        LogGrainAddr(index)
    }

    /// The grain index (byte address / 32).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of the grain.
    pub const fn base(self) -> Addr {
        Addr(self.0 * LOG_GRAIN_SIZE)
    }

    /// The cache line containing this grain.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / 2)
    }
}

impl fmt::Display for LogGrainAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{:#x}", self.base().raw())
    }
}

/// Kind of a physical memory region, used to route requests.
///
/// Log regions are marked uncacheable (paper §4.2: "To avoid a cache
/// coherence issue, the log area is marked uncacheable"), so `log-flush`
/// traffic bypasses the cache hierarchy entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionKind {
    /// Ordinary cacheable persistent data.
    Data,
    /// A per-thread log area: uncacheable, written by `log-flush`.
    Log,
}

/// A contiguous physical region with a kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// First byte of the region.
    pub start: Addr,
    /// One past the last byte of the region.
    pub end: Addr,
    /// What the region holds.
    pub kind: RegionKind,
}

impl Region {
    /// Creates a region covering `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: Addr, end: Addr, kind: RegionKind) -> Self {
        assert!(start < end, "empty or inverted region {start}..{end}");
        Region { start, end, kind }
    }

    /// Whether the region contains `addr`.
    pub fn contains(&self, addr: Addr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// Region length in bytes.
    pub fn len(&self) -> u64 {
        self.end.raw() - self.start.raw()
    }

    /// Whether the region is empty (never true for a constructed region).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Maps physical addresses to region kinds.
///
/// The default map treats everything as cacheable data; log areas are
/// registered by the log allocator when a thread attaches.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RegionMap {
    regions: Vec<Region>,
}

impl RegionMap {
    /// Creates an empty map (all addresses are [`RegionKind::Data`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a region. Later registrations take precedence on overlap.
    pub fn add(&mut self, region: Region) {
        self.regions.push(region);
    }

    /// The kind of the region containing `addr` ([`RegionKind::Data`] if no
    /// registered region matches).
    pub fn kind_of(&self, addr: Addr) -> RegionKind {
        self.regions
            .iter()
            .rev()
            .find(|r| r.contains(addr))
            .map(|r| r.kind)
            .unwrap_or(RegionKind::Data)
    }

    /// Whether `addr` may be cached.
    pub fn is_cacheable(&self, addr: Addr) -> bool {
        self.kind_of(addr) == RegionKind::Data
    }

    /// Iterates over registered regions.
    pub fn iter(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_grain_arithmetic() {
        let a = Addr::new(0x1050);
        assert_eq!(a.line().base(), Addr::new(0x1040));
        assert_eq!(a.line_offset(), 0x10);
        assert_eq!(a.log_grain().base(), Addr::new(0x1040));
        let b = Addr::new(0x1060);
        assert_eq!(b.log_grain().base(), Addr::new(0x1060));
        assert_eq!(b.line(), a.line());
        assert_ne!(b.log_grain(), a.log_grain());
    }

    #[test]
    fn grains_of_line() {
        let line = Addr::new(0x2000).line();
        let [g0, g1] = line.log_grains();
        assert_eq!(g0.base(), Addr::new(0x2000));
        assert_eq!(g1.base(), Addr::new(0x2020));
        assert_eq!(g0.line(), line);
        assert_eq!(g1.line(), line);
    }

    #[test]
    fn alignment_checks() {
        assert!(Addr::new(0x40).is_line_aligned());
        assert!(!Addr::new(0x41).is_line_aligned());
        assert_eq!(Addr::new(0x40).offset(0x20).raw(), 0x60);
    }

    #[test]
    fn region_map_lookup() {
        let mut map = RegionMap::new();
        map.add(Region::new(Addr::new(0x8000_0000), Addr::new(0x8001_0000), RegionKind::Log));
        assert_eq!(map.kind_of(Addr::new(0x1000)), RegionKind::Data);
        assert_eq!(map.kind_of(Addr::new(0x8000_0100)), RegionKind::Log);
        assert!(!map.is_cacheable(Addr::new(0x8000_0100)));
        assert!(map.is_cacheable(Addr::new(0x7fff_ffff)));
    }

    #[test]
    fn overlapping_regions_last_wins() {
        let mut map = RegionMap::new();
        map.add(Region::new(Addr::new(0), Addr::new(0x1000), RegionKind::Log));
        map.add(Region::new(Addr::new(0), Addr::new(0x1000), RegionKind::Data));
        assert_eq!(map.kind_of(Addr::new(0x10)), RegionKind::Data);
    }

    #[test]
    #[should_panic(expected = "inverted region")]
    fn region_rejects_inverted_bounds() {
        let _ = Region::new(Addr::new(0x10), Addr::new(0x10), RegionKind::Data);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(Addr::new(0x40).line().to_string(), "L0x40");
        assert_eq!(Addr::new(0x60).log_grain().to_string(), "G0x60");
    }
}
