//! Job outcome vocabulary for the experiment harness.
//!
//! One simulation job run by `proteus-harness` ends in exactly one of
//! these states. The harness records outcomes in its resume ledger and
//! event stream; `proteus-sim` converts non-completed outcomes back
//! into [`crate::SimError`] values when a caller asked for an
//! all-or-nothing sweep.

use std::fmt;

/// Terminal state of one harness job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job ran to completion and produced a result payload.
    Completed,
    /// The job returned an error (e.g. a [`crate::SimError`]) after
    /// exhausting its retry budget.
    Failed {
        /// Rendered error message from the final attempt.
        error: String,
    },
    /// The job panicked; the panic was caught and isolated so sibling
    /// jobs kept running.
    Crashed {
        /// Panic payload message from the final attempt.
        panic: String,
    },
}

impl JobOutcome {
    /// Whether the job completed successfully.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed)
    }

    /// Stable lowercase label, used as the ledger's `outcome` field.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Failed { .. } => "failed",
            JobOutcome::Crashed { .. } => "crashed",
        }
    }

    /// The failure message, if any.
    pub fn message(&self) -> Option<&str> {
        match self {
            JobOutcome::Completed => None,
            JobOutcome::Failed { error } => Some(error),
            JobOutcome::Crashed { panic } => Some(panic),
        }
    }

    /// Rebuilds an outcome from its ledger representation; `None` for
    /// unknown labels (e.g. a ledger written by a newer version).
    pub fn from_parts(label: &str, message: Option<&str>) -> Option<JobOutcome> {
        match label {
            "completed" => Some(JobOutcome::Completed),
            "failed" => {
                Some(JobOutcome::Failed { error: message.unwrap_or("unknown error").to_string() })
            }
            "crashed" => {
                Some(JobOutcome::Crashed { panic: message.unwrap_or("unknown panic").to_string() })
            }
            _ => None,
        }
    }
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutcome::Completed => f.write_str("completed"),
            JobOutcome::Failed { error } => write!(f, "failed: {error}"),
            JobOutcome::Crashed { panic } => write!(f, "crashed: {panic}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        let outcomes = [
            JobOutcome::Completed,
            JobOutcome::Failed { error: "bad config".into() },
            JobOutcome::Crashed { panic: "index out of bounds".into() },
        ];
        for o in outcomes {
            let back = JobOutcome::from_parts(o.label(), o.message()).unwrap();
            assert_eq!(back, o);
        }
        assert_eq!(JobOutcome::from_parts("exploded", None), None);
    }

    #[test]
    fn only_completed_is_completed() {
        assert!(JobOutcome::Completed.is_completed());
        assert!(!JobOutcome::Failed { error: "e".into() }.is_completed());
        assert!(!JobOutcome::Crashed { panic: "p".into() }.is_completed());
        assert_eq!(JobOutcome::Completed.message(), None);
    }

    #[test]
    fn display_carries_message() {
        let s = JobOutcome::Crashed { panic: "boom".into() }.to_string();
        assert!(s.contains("boom"), "{s}");
    }
}
