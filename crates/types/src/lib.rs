#![warn(missing_docs)]
//! Common types for the Proteus NVM logging simulator.
//!
//! This crate hosts the vocabulary shared by every other crate in the
//! workspace: physical addresses and cache-line arithmetic ([`addr`]),
//! component identifiers ([`ids`]), clock-domain conversion ([`clock`]),
//! the full system configuration including the paper's Table 1 preset
//! ([`config`]), statistics counters ([`stats`]), the simulator error
//! type ([`error`]), and the experiment-harness vocabulary: stable
//! structural spec hashing ([`hash`]) and job outcomes ([`outcome`]).
//!
//! # Example
//!
//! ```
//! use proteus_types::config::SystemConfig;
//! use proteus_types::addr::Addr;
//!
//! let cfg = SystemConfig::skylake_like();
//! assert_eq!(cfg.cores.rob_entries, 224);
//! let a = Addr::new(0x1040);
//! assert_eq!(a.line().base().raw(), 0x1040 & !63);
//! ```

pub mod addr;
pub mod clock;
pub mod config;
pub mod error;
pub mod fasthash;
pub mod hash;
pub mod ids;
pub mod outcome;
pub mod sharing;
pub mod stats;

pub use addr::{Addr, LineAddr, LogGrainAddr, CACHE_LINE_SIZE, LOG_GRAIN_SIZE};
pub use clock::{ClockRatio, Cycle, NextEvent};
pub use config::{EngineConfig, LoggingSchemeKind, MemTech, SystemConfig, TraceConfig};
pub use error::SimError;
pub use fasthash::{FastBuildHasher, FastMap, FastSet};
pub use hash::{stable_hash_value, FieldHasher, StableHash, StableHasher};
pub use ids::{CoreId, ThreadId, TxId};
pub use outcome::JobOutcome;
