//! Identifiers for cores, threads, and durable transactions.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u32) -> Self {
                $name(raw)
            }

            /// Returns the raw index.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as `usize`, for container indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                $name(raw)
            }
        }
    };
}

id_type!(
    /// A hardware core in the simulated multicore.
    CoreId,
    "core"
);

id_type!(
    /// A software thread. In the headline experiments threads are pinned
    /// one-to-one onto cores, but the types stay distinct because log areas
    /// belong to threads (paper §4.1) while LogQ/LLT state belongs to cores.
    ThreadId,
    "thread"
);

/// A durable transaction identifier.
///
/// Each core tracks the transaction currently executing in its `txID`
/// register (paper Fig. 5); the memory controller uses `(CoreId, TxId)` to
/// flash-clear LPQ entries at `tx-end`. Transaction IDs increase
/// monotonically per thread, which is what lets recovery identify the most
/// recent transaction in a thread's log area.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TxId(u64);

impl TxId {
    /// Creates a transaction ID from a raw value.
    pub const fn new(raw: u64) -> Self {
        TxId(raw)
    }

    /// Returns the raw value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the next transaction ID in this thread's sequence.
    pub const fn next(self) -> TxId {
        TxId(self.0 + 1)
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let c = CoreId::new(3);
        assert_eq!(c.raw(), 3);
        assert_eq!(c.index(), 3);
        assert_eq!(c.to_string(), "core3");
        assert_eq!(ThreadId::new(1).to_string(), "thread1");
    }

    #[test]
    fn txid_sequence() {
        let t = TxId::new(7);
        assert_eq!(t.next().raw(), 8);
        assert!(t.next() > t);
        assert_eq!(t.to_string(), "tx7");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(CoreId::new(0));
        set.insert(CoreId::new(0));
        set.insert(CoreId::new(1));
        assert_eq!(set.len(), 2);
        assert!(CoreId::new(0) < CoreId::new(1));
    }
}
