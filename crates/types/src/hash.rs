//! Stable, structural hashing for experiment specifications.
//!
//! The experiment harness keys its resume ledger by a hash of the full
//! experiment specification (configuration + scheme + benchmark +
//! workload parameters). That hash must be *stable*: independent of the
//! process, the platform's `DefaultHasher` seed, pointer layouts, and —
//! so that adding or reordering struct fields in a refactor does not
//! silently orphan every ledger on disk — independent of the order in
//! which a type hashes its fields.
//!
//! Two pieces provide this:
//!
//! * [`StableHasher`] — a seedless FNV-1a 64-bit byte hasher with
//!   length-prefixed, little-endian primitive encodings;
//! * [`FieldHasher`] — hashes a struct as an unordered set of
//!   `(field name, field hash)` pairs combined commutatively, so the
//!   result depends on field *names and values* but not declaration
//!   order.
//!
//! Derived seeds (e.g. per-spec workload RNG seeds) use the same
//! machinery via [`stable_hash_value`].

use crate::config::{
    CacheConfig, CacheLevelConfig, CoreConfig, DramTiming, LoggingSchemeKind, MemConfig, MemTech,
    ProteusHwConfig, SystemConfig,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// splitmix64 finaliser: a strong 64-bit bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seedless FNV-1a 64-bit hasher over an explicit byte encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        StableHasher { state: FNV_OFFSET }
    }

    /// Hashes raw bytes (no length prefix — callers add their own
    /// framing where ambiguity is possible).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Hashes one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Hashes a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes an `i64` as 8 little-endian bytes.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Hashes an `f64` by value bits, normalising `-0.0` to `0.0` so
    /// numerically equal specs hash equally.
    pub fn write_f64(&mut self, v: f64) {
        let normalised = if v == 0.0 { 0.0f64 } else { v };
        self.write_u64(normalised.to_bits());
    }

    /// Hashes a string, length-prefixed so adjacent strings cannot
    /// collide by re-splitting.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Finalises through a bit mixer (FNV-1a alone diffuses low bits
    /// poorly).
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Types with a process- and platform-independent structural hash.
pub trait StableHash {
    /// Feeds this value's canonical encoding into `h`.
    fn stable_hash(&self, h: &mut StableHasher);
}

/// Hashes one value to a stable 64-bit digest.
pub fn stable_hash_value<T: StableHash + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

macro_rules! impl_stable_hash_uint {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_u64(*self as u64);
            }
        }
    )*};
}

impl_stable_hash_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_stable_hash_int {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_i64(*self as i64);
            }
        }
    )*};
}

impl_stable_hash_int!(i8, i16, i32, i64, isize);

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u8(u8::from(*self));
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_f64(*self);
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str(self);
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_u64(self.len() as u64);
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash + ?Sized> StableHash for &T {
    fn stable_hash(&self, h: &mut StableHasher) {
        (**self).stable_hash(h);
    }
}

/// Hashes a struct as a *set* of named fields, so the digest is
/// independent of the order fields are fed in.
///
/// Each `(name, value)` pair is hashed independently and the per-field
/// digests are combined by wrapping addition — a commutative,
/// associative fold. The type tag and field count are folded in as
/// additional terms, so `Foo { a }` and `Bar { a }` differ, as do
/// structs where one field's name absorbed another's.
#[derive(Debug, Clone)]
pub struct FieldHasher {
    acc: u64,
    count: u64,
}

impl FieldHasher {
    /// Starts a struct digest for the type named `type_tag`.
    pub fn new(type_tag: &str) -> Self {
        let mut h = StableHasher::new();
        h.write_str("type");
        h.write_str(type_tag);
        FieldHasher { acc: mix64(h.finish()), count: 0 }
    }

    /// Folds in one named field.
    pub fn field<T: StableHash + ?Sized>(&mut self, name: &str, value: &T) -> &mut Self {
        let mut h = StableHasher::new();
        h.write_str(name);
        value.stable_hash(&mut h);
        self.acc = self.acc.wrapping_add(mix64(h.finish()));
        self.count += 1;
        self
    }

    /// Finalises the struct digest.
    pub fn finish(&self) -> u64 {
        mix64(self.acc.wrapping_add(mix64(self.count)))
    }
}

/// Implements [`StableHash`] for a struct by listing its fields once.
macro_rules! impl_stable_hash_struct {
    ($ty:ty, $tag:literal, $($field:ident),+ $(,)?) => {
        impl StableHash for $ty {
            fn stable_hash(&self, h: &mut StableHasher) {
                let mut f = FieldHasher::new($tag);
                $( f.field(stringify!($field), &self.$field); )+
                h.write_u64(f.finish());
            }
        }
    };
}

impl StableHash for MemTech {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str("MemTech");
        h.write_str(self.label());
    }
}

impl StableHash for LoggingSchemeKind {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_str("LoggingSchemeKind");
        h.write_str(self.label());
    }
}

impl_stable_hash_struct!(
    CoreConfig,
    "CoreConfig",
    freq_mhz,
    width,
    rob_entries,
    fetchq_entries,
    issueq_entries,
    loadq_entries,
    storeq_entries,
);

impl_stable_hash_struct!(CacheLevelConfig, "CacheLevelConfig", size_bytes, ways, latency);

impl_stable_hash_struct!(CacheConfig, "CacheConfig", l1d, l2, l3);

impl_stable_hash_struct!(
    DramTiming,
    "DramTiming",
    t_cas,
    t_rcd_read,
    t_rcd_write,
    t_rp,
    t_ras,
    t_rc,
    t_wr,
    t_wtr,
    t_rtp,
    t_rrd,
    t_faw,
    t_burst,
);

impl_stable_hash_struct!(
    MemConfig,
    "MemConfig",
    tech,
    banks,
    row_buffer_bytes,
    read_queue_entries,
    wpq_entries,
    lpq_entries,
    adr,
    wpq_high_watermark_pct,
    wpq_low_watermark_pct,
);

impl_stable_hash_struct!(
    ProteusHwConfig,
    "ProteusHwConfig",
    log_registers,
    logq_entries,
    llt_entries,
    llt_ways,
    disable_persist_ordering,
);

impl_stable_hash_struct!(SystemConfig, "SystemConfig", num_cores, cores, caches, mem, proteus);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_does_not_matter() {
        let mut a = FieldHasher::new("Spec");
        a.field("alpha", &1u64).field("beta", &2u64).field("gamma", &"x");
        let mut b = FieldHasher::new("Spec");
        b.field("gamma", &"x").field("alpha", &1u64).field("beta", &2u64);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn field_names_and_values_matter() {
        let base = {
            let mut f = FieldHasher::new("Spec");
            f.field("alpha", &1u64).field("beta", &2u64);
            f.finish()
        };
        let renamed = {
            let mut f = FieldHasher::new("Spec");
            f.field("alpha2", &1u64).field("beta", &2u64);
            f.finish()
        };
        let revalued = {
            let mut f = FieldHasher::new("Spec");
            f.field("alpha", &3u64).field("beta", &2u64);
            f.finish()
        };
        let retagged = {
            let mut f = FieldHasher::new("OtherSpec");
            f.field("alpha", &1u64).field("beta", &2u64);
            f.finish()
        };
        assert_ne!(base, renamed);
        assert_ne!(base, revalued);
        assert_ne!(base, retagged);
    }

    #[test]
    fn extra_field_changes_hash() {
        let two = {
            let mut f = FieldHasher::new("Spec");
            f.field("a", &1u64).field("b", &2u64);
            f.finish()
        };
        let three = {
            let mut f = FieldHasher::new("Spec");
            f.field("a", &1u64).field("b", &2u64).field("c", &0u64);
            f.finish()
        };
        assert_ne!(two, three);
    }

    #[test]
    fn primitive_encodings_are_framed() {
        // Adjacent strings must not re-split.
        let ab_c = stable_hash_value(&vec!["ab".to_string(), "c".to_string()]);
        let a_bc = stable_hash_value(&vec!["a".to_string(), "bc".to_string()]);
        assert_ne!(ab_c, a_bc);
        // Width does not matter, value does.
        assert_eq!(stable_hash_value(&7u8), stable_hash_value(&7u64));
        assert_ne!(stable_hash_value(&7u64), stable_hash_value(&8u64));
        // Negative zero normalises.
        assert_eq!(stable_hash_value(&0.0f64), stable_hash_value(&(-0.0f64)));
        // Option framing.
        assert_ne!(stable_hash_value(&Some(0u64)), stable_hash_value(&Option::<u64>::None));
    }

    #[test]
    fn config_hash_is_deterministic_and_value_sensitive() {
        let a = stable_hash_value(&SystemConfig::skylake_like());
        let b = stable_hash_value(&SystemConfig::skylake_like());
        assert_eq!(a, b);
        let c = stable_hash_value(&SystemConfig::skylake_like().with_num_cores(2));
        assert_ne!(a, c);
        let d = stable_hash_value(&SystemConfig::skylake_like().with_mem_tech(MemTech::Dram));
        assert_ne!(a, d);
        let e = stable_hash_value(&SystemConfig::skylake_like().with_logq_entries(32));
        assert_ne!(a, e);
    }

    #[test]
    fn scheme_hashes_distinct() {
        let hashes: std::collections::HashSet<u64> =
            LoggingSchemeKind::ALL.iter().map(|s| stable_hash_value(s)).collect();
        assert_eq!(hashes.len(), LoggingSchemeKind::ALL.len());
    }
}
