#![warn(missing_docs)]
//! Cache hierarchy model for the Proteus simulator.
//!
//! Implements the three-level write-back, write-allocate hierarchy of
//! Table 1 (private 32 KB L1D and 256 KB L2 per core, shared 8 MB L3),
//! carrying full line data so persist machinery and crash recovery can be
//! verified end-to-end:
//!
//! * [`cache::Cache`] — one set-associative level with LRU replacement;
//! * [`system::CacheSystem`] — the per-core L1/L2 stacks over the shared
//!   L3, with hit promotion, eviction cascades, and the `clwb` flush path
//!   (a `clwb` cleans the freshest dirty copy and surfaces it as a
//!   write-back bound for the memory controller's WPQ).
//!
//! Uncacheable accesses (the Proteus log area, §4.2) never enter this
//! crate — the core sends them straight to the memory controller.

pub mod cache;
pub mod quantum;
pub mod system;

pub use cache::{Cache, EvictedLine};
pub use proteus_coherence::{CoherenceAction, CoherenceEvent};
pub use quantum::{CacheAccess, CorePrivates, QuantumCaches, QuantumGate, SharedTier};
pub use system::{CacheSystem, LookupResult};
