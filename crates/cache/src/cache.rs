//! One set-associative cache level with LRU replacement.

use proteus_core::pmem::LineData;
use proteus_types::addr::LineAddr;
use proteus_types::config::CacheLevelConfig;
use proteus_types::stats::CacheStats;

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine {
    /// The evicted line's address.
    pub line: LineAddr,
    /// Its contents.
    pub data: LineData,
    /// Whether it was dirty (clean evictions are silently dropped by
    /// callers).
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Way {
    tag: u64,
    data: LineData,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back cache with LRU replacement, carrying
/// full line data.
#[derive(Debug)]
pub struct Cache {
    sets: Vec<Vec<Way>>,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    lru_clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from a level configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly (see
    /// [`CacheLevelConfig::sets`]).
    pub fn new(cfg: &CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            sets: (0..sets).map(|_| Vec::with_capacity(cfg.ways)).collect(),
            ways: cfg.ways,
            set_mask: sets as u64 - 1,
            set_shift: 0,
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// A zero-capacity stand-in used by the quantum engine while a real
    /// level is on loan to a worker thread (see `crate::quantum`). Any
    /// access would panic on the empty set vector, which is exactly the
    /// invariant: nothing may touch the hierarchy mid-quantum.
    pub(crate) fn placeholder() -> Self {
        Cache {
            sets: Vec::new(),
            ways: 0,
            set_mask: 0,
            set_shift: 0,
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        ((line.index() >> self.set_shift) & self.set_mask) as usize
    }

    /// Collected statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Looks up `line`, returning its data on a hit and updating LRU.
    pub fn lookup(&mut self, line: LineAddr) -> Option<LineData> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set = self.set_index(line);
        let found = self.sets[set].iter_mut().find(|w| w.tag == line.index());
        match found {
            Some(w) => {
                w.lru = clock;
                self.stats.hits += 1;
                Some(w.data)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Checks presence without updating LRU or statistics.
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|w| w.tag == line.index())
    }

    /// Reads a resident line's data without updating LRU or statistics.
    pub fn peek_data(&self, line: LineAddr) -> Option<LineData> {
        let set = self.set_index(line);
        self.sets[set].iter().find(|w| w.tag == line.index()).map(|w| w.data)
    }

    /// Whether `line` is present and dirty.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|w| w.tag == line.index() && w.dirty)
    }

    /// Writes a word into a resident line, marking it dirty. Returns
    /// `false` if the line is not resident.
    pub fn write_word(&mut self, addr: proteus_types::Addr, value: u64) -> bool {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let line = addr.line();
        let set = self.set_index(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.tag == line.index()) {
            w.data[(addr.line_offset() / 8) as usize] = value;
            w.dirty = true;
            w.lru = clock;
            true
        } else {
            false
        }
    }

    /// Inserts `line` (from a fill or a write-back from the level above),
    /// evicting the LRU way if the set is full. `dirty` marks the
    /// inserted copy. If the line is already resident its data is
    /// updated in place (and the dirty bit is OR-ed).
    pub fn insert(&mut self, line: LineAddr, data: LineData, dirty: bool) -> Option<EvictedLine> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let set = self.set_index(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.tag == line.index()) {
            w.data = data;
            w.dirty |= dirty;
            w.lru = clock;
            return None;
        }
        let evicted = if self.sets[set].len() >= self.ways {
            let (pos, _) = self.sets[set]
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .expect("full set is nonempty");
            let victim = self.sets[set].swap_remove(pos);
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(EvictedLine {
                line: LineAddr::from_index(victim.tag),
                data: victim.data,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        self.sets[set].push(Way { tag: line.index(), data, dirty, lru: clock });
        evicted
    }

    /// Updates a resident line's data in place and marks it clean (the
    /// write-through part of a `clwb`: lower-level shadow copies must
    /// receive the fresh data, or a later clean eviction would expose
    /// stale contents). Returns whether the line was present.
    pub fn update_if_present(&mut self, line: LineAddr, data: LineData) -> bool {
        let set = self.set_index(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.tag == line.index()) {
            w.data = data;
            w.dirty = false;
            true
        } else {
            false
        }
    }

    /// Cleans a resident dirty line, returning its data (the `clwb`
    /// flush path: the copy stays valid but is no longer dirty).
    pub fn clean(&mut self, line: LineAddr) -> Option<LineData> {
        let set = self.set_index(line);
        let w = self.sets[set].iter_mut().find(|w| w.tag == line.index() && w.dirty)?;
        w.dirty = false;
        self.stats.clwb_flushes += 1;
        Some(w.data)
    }

    /// Removes `line` entirely, returning its data and dirty state.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<(LineData, bool)> {
        let set = self.set_index(line);
        let pos = self.sets[set].iter().position(|w| w.tag == line.index())?;
        let w = self.sets[set].swap_remove(pos);
        Some((w.data, w.dirty))
    }

    /// Cleans a resident dirty line like [`Cache::clean`] but without
    /// counting a `clwb` flush — the coherence transfer path, which must
    /// not inflate the flush statistic.
    pub fn clean_for_transfer(&mut self, line: LineAddr) -> Option<LineData> {
        let set = self.set_index(line);
        let w = self.sets[set].iter_mut().find(|w| w.tag == line.index() && w.dirty)?;
        w.dirty = false;
        Some(w.data)
    }
}

/// A private cache level as the coherence snoop scans see it.
impl proteus_coherence::SnoopLevel for Cache {
    fn snoop_contains(&self, line: LineAddr) -> bool {
        self.contains(line)
    }
    fn snoop_peek(&self, line: LineAddr) -> Option<LineData> {
        self.peek_data(line)
    }
    fn snoop_dirty(&self, line: LineAddr) -> bool {
        self.is_dirty(line)
    }
    fn snoop_clean(&mut self, line: LineAddr) -> Option<LineData> {
        self.clean_for_transfer(line)
    }
    fn snoop_invalidate(&mut self, line: LineAddr) -> Option<(LineData, bool)> {
        self.invalidate(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::Addr;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B = 256 B.
        Cache::new(&CacheLevelConfig { size_bytes: 256, ways: 2, latency: 1 })
    }

    fn line(i: u64) -> LineAddr {
        LineAddr::from_index(i)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert_eq!(c.lookup(line(0)), None);
        c.insert(line(0), [1; 8], false);
        assert_eq!(c.lookup(line(0)), Some([1; 8]));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (even line indices with 2 sets).
        c.insert(line(0), [0; 8], false);
        c.insert(line(2), [2; 8], false);
        c.lookup(line(0)); // make line 2 the LRU
        let evicted = c.insert(line(4), [4; 8], false).expect("eviction");
        assert_eq!(evicted.line, line(2));
        assert!(c.contains(line(0)));
        assert!(c.contains(line(4)));
    }

    #[test]
    fn dirty_eviction_carries_data() {
        let mut c = tiny();
        c.insert(line(0), [7; 8], true);
        c.insert(line(2), [0; 8], false);
        let evicted = c.insert(line(4), [0; 8], false).expect("eviction");
        assert_eq!(evicted.line, line(0));
        assert!(evicted.dirty);
        assert_eq!(evicted.data, [7; 8]);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_word_dirties_and_merges() {
        let mut c = tiny();
        c.insert(line(0), [0; 8], false);
        assert!(c.write_word(Addr::new(0x10), 5));
        assert!(c.is_dirty(line(0)));
        let data = c.lookup(line(0)).unwrap();
        assert_eq!(data[2], 5);
        assert!(!c.write_word(Addr::new(0x1000), 5), "absent line rejects write");
    }

    #[test]
    fn clean_returns_data_once() {
        let mut c = tiny();
        c.insert(line(0), [3; 8], true);
        assert_eq!(c.clean(line(0)), Some([3; 8]));
        assert_eq!(c.clean(line(0)), None, "already clean");
        assert!(c.contains(line(0)), "clwb keeps the line resident");
        // Re-dirtying allows another flush.
        c.write_word(Addr::new(0), 9);
        assert!(c.clean(line(0)).is_some());
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut c = tiny();
        c.insert(line(0), [1; 8], true);
        let evicted = c.insert(line(0), [2; 8], false);
        assert!(evicted.is_none());
        assert!(c.is_dirty(line(0)), "dirty bit must be sticky");
        assert_eq!(c.lookup(line(0)), Some([2; 8]));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(line(0), [1; 8], true);
        assert_eq!(c.invalidate(line(0)), Some(([1; 8], true)));
        assert!(!c.contains(line(0)));
        assert_eq!(c.invalidate(line(0)), None);
    }
}
