//! Deterministic shared-tier access for the parallel quantum engine.
//!
//! DESIGN.md §11: inside a quantum, each worker thread owns its core's
//! private L1/L2 outright and advances cycle by cycle. The shared L3 is
//! the one piece of cache state every core can reach, so its accesses
//! must happen in **exactly the sequential order** — (cycle, core
//! index, program order) — or LRU state, eviction choices, and hit
//! latencies would diverge between engines.
//!
//! The [`QuantumGate`] enforces that order without a central scheduler:
//! every core publishes `done[i]` = the next cycle it will execute
//! (i.e. it has finished all cycles `< done[i]`). Core `i` may touch
//! the shared tier during its tick of cycle `t` once
//!
//! * every lower-indexed core has finished `t`   (`done[j] > t`, `j < i`), and
//! * every higher-indexed core has reached `t`   (`done[j] >= t`, `j > i`).
//!
//! While `i` is mid-tick at `t` it holds `done[i] == t`, so no other
//! core can satisfy its own grant condition at any cycle `<= t` — the
//! grant is exclusive for the remainder of the tick, and successive
//! grants are ordered by `(cycle, core)`. The sequential engine ticks
//! cores in index order within a cycle, so this is precisely its order.
//! Deadlock-freedom: order waiting cores by `(cycle, index)`; the
//! minimal one only waits on cores that are not waiting, and a
//! non-waiting core finishes its tick in bounded time.
//!
//! Coherence-domain addresses never take this path at all: snoop scans
//! read *other* cores' private stacks, which no quantum may observe.
//! The engine bounds every quantum so domain accesses fall outside it
//! (`Core::domain_quiet_horizon`), and [`QuantumCaches`] debug-asserts
//! the invariant on every access.

use crate::cache::Cache;
use crate::system::{CacheSystem, LookupResult, Writeback};
use proteus_core::pmem::LineData;
use proteus_types::addr::LineAddr;
use proteus_types::clock::Cycle;
use proteus_types::sharing::in_coherence_domain;
use proteus_types::{Addr, CoreId};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The cache interface a core's tick path needs. Implemented by the
/// full [`CacheSystem`] (sequential engine, barrier work) and by the
/// per-worker [`QuantumCaches`] view (parallel engine, private levels
/// plus gated shared tier). `Core` is generic over this trait, so both
/// engines run the identical pipeline code.
pub trait CacheAccess {
    /// Load the line containing `addr`; see [`CacheSystem::load`].
    fn load(&mut self, core: CoreId, addr: Addr, writebacks: &mut Vec<Writeback>) -> LookupResult;
    /// Store `value` at `addr`; see [`CacheSystem::store`].
    fn store(
        &mut self,
        core: CoreId,
        addr: Addr,
        value: u64,
        writebacks: &mut Vec<Writeback>,
    ) -> LookupResult;
    /// Flush the freshest dirty copy of `addr`'s line; see
    /// [`CacheSystem::clwb`].
    fn clwb(&mut self, core: CoreId, addr: Addr) -> Option<LineData>;
    /// Install a memory fill; see [`CacheSystem::fill`].
    fn fill(
        &mut self,
        core: CoreId,
        line: LineAddr,
        data: LineData,
        writebacks: &mut Vec<Writeback>,
    );
    /// Non-mutating freshest-copy probe; see [`CacheSystem::peek`].
    fn peek(&self, core: CoreId, addr: Addr) -> Option<LineData>;
}

/// One core's private cache levels, on loan from the [`CacheSystem`]
/// for the duration of a quantum.
#[derive(Debug)]
pub struct CorePrivates {
    pub(crate) l1: Cache,
    pub(crate) l2: Cache,
}

/// The shared tier (the L3), on loan from the [`CacheSystem`] into the
/// [`QuantumGate`] for the duration of a quantum.
#[derive(Debug)]
pub struct SharedTier {
    pub(crate) l3: Cache,
}

/// `done[i]` on its own cache line so worker publishes don't false-share.
#[derive(Debug)]
#[repr(align(64))]
struct PaddedCycle(AtomicU64);

/// The rendezvous object of one parallel run: the loaned shared tier
/// plus each core's published progress. See the module docs for the
/// grant protocol.
#[derive(Debug)]
pub struct QuantumGate {
    slot: Mutex<Option<SharedTier>>,
    done: Vec<PaddedCycle>,
}

impl QuantumGate {
    /// A gate for `cores` cores with no quantum in progress.
    pub fn new(cores: usize) -> Self {
        QuantumGate {
            slot: Mutex::new(None),
            done: (0..cores).map(|_| PaddedCycle(AtomicU64::new(0))).collect(),
        }
    }

    /// Installs the shared tier and resets every core's progress to
    /// `start`. Called by the engine thread before handing cores out.
    pub fn open(&self, shared: SharedTier, start: Cycle) {
        for d in &self.done {
            d.0.store(start, Ordering::Relaxed);
        }
        let mut slot = self.slot.lock().expect("quantum gate poisoned");
        debug_assert!(slot.is_none(), "previous quantum not closed");
        *slot = Some(shared);
    }

    /// Takes the shared tier back after every worker returned.
    pub fn close(&self) -> SharedTier {
        self.slot.lock().expect("quantum gate poisoned").take().expect("quantum in progress")
    }

    /// Publishes that `core` has finished every cycle below `next`.
    #[inline]
    pub fn mark_done(&self, core: usize, next: Cycle) {
        self.done[core].0.store(next, Ordering::Release);
    }

    /// Whether `core` holds the shared-access grant for `cycle`.
    #[inline]
    fn granted(&self, core: usize, cycle: Cycle) -> bool {
        self.done.iter().enumerate().all(|(j, d)| {
            let done = d.0.load(Ordering::Acquire);
            match j.cmp(&core) {
                std::cmp::Ordering::Less => done > cycle,
                std::cmp::Ordering::Equal => true,
                std::cmp::Ordering::Greater => done >= cycle,
            }
        })
    }

    /// Spins (yielding) until `core` holds the grant for `cycle`,
    /// returning the nanoseconds spent waiting.
    fn wait_grant(&self, core: usize, cycle: Cycle) -> u64 {
        if self.granted(core, cycle) {
            return 0;
        }
        let start = std::time::Instant::now();
        while !self.granted(core, cycle) {
            std::thread::yield_now();
        }
        start.elapsed().as_nanos() as u64
    }
}

/// One worker's view of the hierarchy during a quantum: owned private
/// L1/L2 plus grant-gated access to the shared tier. Implements
/// [`CacheAccess`] bit-for-bit like [`CacheSystem`] for non-domain
/// addresses; domain addresses are unreachable by construction (the
/// quantum bound) and debug-asserted.
pub struct QuantumCaches<'g> {
    core: usize,
    l1: Cache,
    l2: Cache,
    l1_latency: Cycle,
    l2_latency: Cycle,
    l3_latency: Cycle,
    gate: &'g QuantumGate,
    cycle: Cell<Cycle>,
    granted: Cell<bool>,
    wait_ns: Cell<u64>,
}

impl<'g> QuantumCaches<'g> {
    /// Wraps `privates` for `core`; `latencies` is `(l1, l2, l3)`.
    pub fn new(
        core: usize,
        privates: CorePrivates,
        latencies: (Cycle, Cycle, Cycle),
        gate: &'g QuantumGate,
    ) -> Self {
        QuantumCaches {
            core,
            l1: privates.l1,
            l2: privates.l2,
            l1_latency: latencies.0,
            l2_latency: latencies.1,
            l3_latency: latencies.2,
            gate,
            cycle: Cell::new(0),
            granted: Cell::new(false),
            wait_ns: Cell::new(0),
        }
    }

    /// Marks the start of this core's tick of `cycle`; the shared-tier
    /// grant (if any) is re-acquired lazily on first use.
    pub fn begin_cycle(&mut self, cycle: Cycle) {
        self.cycle.set(cycle);
        self.granted.set(false);
    }

    /// Returns the private levels and the accumulated grant-wait time.
    pub fn into_parts(self) -> (CorePrivates, u64) {
        (CorePrivates { l1: self.l1, l2: self.l2 }, self.wait_ns.get())
    }

    /// Runs `f` on the shared tier under the grant for the current
    /// tick, acquiring it (once per tick) if not yet held.
    fn with_shared<R>(&self, f: impl FnOnce(&mut SharedTier) -> R) -> R {
        if !self.granted.get() {
            let waited = self.gate.wait_grant(self.core, self.cycle.get());
            self.wait_ns.set(self.wait_ns.get() + waited);
            self.granted.set(true);
        }
        debug_assert!(
            self.gate.granted(self.core, self.cycle.get()),
            "shared-tier grant lost mid-tick (core {} cycle {})",
            self.core,
            self.cycle.get()
        );
        let mut slot = self.gate.slot.lock().expect("quantum gate poisoned");
        f(slot.as_mut().expect("quantum in progress"))
    }

    /// Mirror of `CacheSystem::promote_to_l1` for the non-domain path.
    fn promote_to_l1(
        &mut self,
        line: LineAddr,
        data: LineData,
        dirty: bool,
        writebacks: &mut Vec<Writeback>,
    ) {
        if let Some(ev) = self.l1.insert(line, data, dirty) {
            if ev.dirty {
                self.spill_to_l2(ev.line, ev.data, writebacks);
            }
        }
    }

    fn spill_to_l2(&mut self, line: LineAddr, data: LineData, writebacks: &mut Vec<Writeback>) {
        if let Some(ev) = self.l2.insert(line, data, true) {
            if ev.dirty {
                self.with_shared(|sh| {
                    if let Some(ev) = sh.l3.insert(ev.line, ev.data, true) {
                        if ev.dirty {
                            writebacks.push((ev.line, ev.data));
                        }
                    }
                });
            }
        }
    }

    #[inline]
    fn assert_private(&self, addr: Addr) {
        debug_assert!(
            !in_coherence_domain(addr),
            "coherence-domain access inside a quantum (core {} cycle {} addr {:#x}) — \
             the quantum bound must exclude it",
            self.core,
            self.cycle.get(),
            addr.raw()
        );
    }
}

impl CacheAccess for QuantumCaches<'_> {
    fn load(&mut self, core: CoreId, addr: Addr, writebacks: &mut Vec<Writeback>) -> LookupResult {
        debug_assert_eq!(core.index(), self.core, "view is per-core");
        self.assert_private(addr);
        let line = addr.line();
        if let Some(data) = self.l1.lookup(line) {
            return LookupResult::Hit { latency: self.l1_latency, data };
        }
        if let Some(data) = self.l2.lookup(line) {
            let dirty = self.l2.is_dirty(line);
            self.promote_to_l1(line, data, dirty, writebacks);
            return LookupResult::Hit { latency: self.l2_latency, data };
        }
        let hit =
            self.with_shared(|sh| sh.l3.lookup(line).map(|data| (data, sh.l3.is_dirty(line))));
        if let Some((data, dirty)) = hit {
            self.promote_to_l1(line, data, dirty, writebacks);
            return LookupResult::Hit { latency: self.l3_latency, data };
        }
        LookupResult::Miss
    }

    fn store(
        &mut self,
        core: CoreId,
        addr: Addr,
        value: u64,
        writebacks: &mut Vec<Writeback>,
    ) -> LookupResult {
        match self.load(core, addr, writebacks) {
            LookupResult::Hit { latency, mut data } => {
                let ok = self.l1.write_word(addr, value);
                debug_assert!(ok, "load promoted the line into L1");
                data[(addr.line_offset() / 8) as usize] = value;
                LookupResult::Hit { latency, data }
            }
            LookupResult::Miss => LookupResult::Miss,
        }
    }

    fn clwb(&mut self, core: CoreId, addr: Addr) -> Option<LineData> {
        debug_assert_eq!(core.index(), self.core, "view is per-core");
        self.assert_private(addr);
        let line = addr.line();
        if let Some(data) = self.l1.clean(line) {
            self.l2.update_if_present(line, data);
            self.with_shared(|sh| sh.l3.update_if_present(line, data));
            return Some(data);
        }
        if let Some(data) = self.l2.clean(line) {
            self.with_shared(|sh| sh.l3.update_if_present(line, data));
            return Some(data);
        }
        self.with_shared(|sh| sh.l3.clean(line))
    }

    fn fill(
        &mut self,
        _core: CoreId,
        _line: LineAddr,
        _data: LineData,
        _writebacks: &mut Vec<Writeback>,
    ) {
        // Fills happen in `System::handle_event`, which only the engine
        // thread runs between quanta — no memory event can be delivered
        // inside a quantum (the quantum bound excludes them).
        unreachable!("memory fill inside a quantum");
    }

    fn peek(&self, core: CoreId, addr: Addr) -> Option<LineData> {
        debug_assert_eq!(core.index(), self.core, "view is per-core");
        self.assert_private(addr);
        let line = addr.line();
        if self.l1.contains(line) {
            return self.l1.peek_data(line);
        }
        if self.l2.contains(line) {
            return self.l2.peek_data(line);
        }
        self.with_shared(|sh| sh.l3.peek_data(line))
    }
}

impl CacheAccess for CacheSystem {
    fn load(&mut self, core: CoreId, addr: Addr, writebacks: &mut Vec<Writeback>) -> LookupResult {
        CacheSystem::load(self, core, addr, writebacks)
    }

    fn store(
        &mut self,
        core: CoreId,
        addr: Addr,
        value: u64,
        writebacks: &mut Vec<Writeback>,
    ) -> LookupResult {
        CacheSystem::store(self, core, addr, value, writebacks)
    }

    fn clwb(&mut self, core: CoreId, addr: Addr) -> Option<LineData> {
        CacheSystem::clwb(self, core, addr)
    }

    fn fill(
        &mut self,
        core: CoreId,
        line: LineAddr,
        data: LineData,
        writebacks: &mut Vec<Writeback>,
    ) {
        CacheSystem::fill(self, core, line, data, writebacks);
    }

    fn peek(&self, core: CoreId, addr: Addr) -> Option<LineData> {
        CacheSystem::peek(self, core, addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::config::SystemConfig;

    fn two_core_system() -> CacheSystem {
        CacheSystem::new(&SystemConfig::skylake_like().with_num_cores(2))
    }

    /// Drives the same access mix through the full hierarchy and a
    /// single-core quantum view; every result and every statistic must
    /// match bit for bit.
    #[test]
    fn quantum_view_matches_cache_system_on_private_addresses() {
        let cfg = SystemConfig::skylake_like().with_num_cores(2);
        let mut seq = CacheSystem::new(&cfg);
        let mut par = CacheSystem::new(&cfg);
        let core = CoreId::new(0);
        let mut wb_seq = Vec::new();
        let mut wb_par = Vec::new();

        // Preload identical lines via fill on both.
        for i in 0..64u64 {
            let a = Addr::new(0x1_0000 + i * 64);
            CacheSystem::fill(&mut seq, core, a.line(), [i; 8], &mut wb_seq);
            CacheSystem::fill(&mut par, core, a.line(), [i; 8], &mut wb_par);
        }

        let gate = QuantumGate::new(2);
        let (mut privates, shared) = par.begin_quantum();
        gate.open(shared, 0);
        // Core 1 idles "ahead" so core 0 holds the grant immediately.
        gate.mark_done(1, u64::MAX);
        let pair = privates.remove(0);
        let mut view = QuantumCaches::new(0, pair, par.level_latencies(), &gate);
        view.begin_cycle(0);

        for i in 0..96u64 {
            let a = Addr::new(0x1_0000 + (i % 80) * 64 + (i % 8) * 8);
            let l_seq = CacheAccess::load(&mut seq, core, a, &mut wb_seq);
            let l_par = CacheAccess::load(&mut view, core, a, &mut wb_par);
            assert_eq!(l_seq, l_par, "load {i}");
            let s_seq = CacheAccess::store(&mut seq, core, a, i, &mut wb_seq);
            let s_par = CacheAccess::store(&mut view, core, a, i, &mut wb_par);
            assert_eq!(s_seq, s_par, "store {i}");
            if i % 7 == 0 {
                assert_eq!(
                    CacheAccess::clwb(&mut seq, core, a),
                    CacheAccess::clwb(&mut view, core, a),
                    "clwb {i}"
                );
            }
            assert_eq!(
                CacheAccess::peek(&seq, core, a),
                CacheAccess::peek(&view, core, a),
                "peek {i}"
            );
        }
        assert_eq!(wb_seq, wb_par, "L3 eviction write-backs must match");

        let (pair, _waited) = view.into_parts();
        privates.insert(0, pair);
        par.end_quantum(privates, gate.close());
        assert_eq!(seq.stats(), par.stats(), "hit/miss statistics must match");
    }

    /// The grant protocol orders two workers' shared-tier accesses by
    /// (cycle, core): core 1 at cycle 0 cannot get the grant until core
    /// 0 has finished cycle 0.
    #[test]
    fn grant_orders_cores_within_a_cycle() {
        let gate = QuantumGate::new(2);
        let sys = two_core_system();
        let (_, shared) = {
            let mut sys = sys;
            sys.begin_quantum()
        };
        gate.open(shared, 0);
        assert!(gate.granted(0, 0), "lowest core leads the cycle");
        assert!(!gate.granted(1, 0), "core 1 waits for core 0 to finish cycle 0");
        gate.mark_done(0, 1);
        assert!(gate.granted(1, 0), "grant passes to core 1");
        assert!(!gate.granted(0, 1), "core 0 at cycle 1 now waits for core 1");
        gate.mark_done(1, 1);
        assert!(gate.granted(0, 1));
    }
}
