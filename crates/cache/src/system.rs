//! The full hierarchy: per-core L1/L2 stacks over a shared L3.
//!
//! Hits at a lower level promote the line into the upper levels (fill
//! path); evictions cascade downward, and dirty lines evicted from the L3
//! surface as write-backs bound for the memory controller.
//!
//! The paper's headline workloads partition data structures across
//! threads behind locks, so for them no inter-core coherence traffic
//! exists and no line is written by more than one core. Contended
//! workloads share lines inside the static coherence domain
//! (`proteus_types::sharing`), and only for those addresses the
//! `proteus-coherence` protocol kicks in: loads snoop remote private
//! stacks for a dirty owner (ownership transfer through the shared L3),
//! stores read-for-ownership and invalidate every remote copy. Accesses
//! outside the domain take the historical path bit for bit.

use crate::cache::Cache;
use proteus_coherence::{dirty_owner, CoherenceCtrl, CoherenceEvent};
use proteus_core::pmem::LineData;
use proteus_trace::{CacheLevel, Tracer};
use proteus_types::addr::LineAddr;
use proteus_types::clock::Cycle;
use proteus_types::config::{CacheConfig, SystemConfig};
use proteus_types::sharing::in_coherence_domain;
use proteus_types::stats::{CacheStats, CoherenceStats};
use proteus_types::{Addr, CoreId};

/// Outcome of a cache access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LookupResult {
    /// The line was found at some level; `latency` is the load-to-use
    /// latency of that level and `data` the line contents.
    Hit {
        /// Access latency in CPU cycles.
        latency: Cycle,
        /// Line contents after the access.
        data: LineData,
    },
    /// The line is not cached; the caller must fetch it from memory and
    /// call [`CacheSystem::fill`].
    Miss,
}

/// A dirty line headed for the memory controller.
pub type Writeback = (LineAddr, LineData);

/// The system's cache hierarchy.
#[derive(Debug)]
pub struct CacheSystem {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    cfg: CacheConfig,
    coherence: CoherenceCtrl,
}

impl CacheSystem {
    /// Builds the hierarchy for `cfg.num_cores` cores.
    pub fn new(cfg: &SystemConfig) -> Self {
        CacheSystem {
            l1: (0..cfg.num_cores).map(|_| Cache::new(&cfg.caches.l1d)).collect(),
            l2: (0..cfg.num_cores).map(|_| Cache::new(&cfg.caches.l2)).collect(),
            l3: Cache::new(&cfg.caches.l3),
            coherence: CoherenceCtrl::new(cfg.caches.l3.latency),
            cfg: cfg.caches.clone(),
        }
    }

    /// Number of cores served.
    pub fn num_cores(&self) -> usize {
        self.l1.len()
    }

    /// Performs a load of the line containing `addr` for `core`.
    /// On a hit the line is promoted to the L1; evictions caused by the
    /// promotion are appended to `writebacks`.
    pub fn load(
        &mut self,
        core: CoreId,
        addr: Addr,
        writebacks: &mut Vec<Writeback>,
    ) -> LookupResult {
        let line = addr.line();
        let c = core.index();
        if let Some(data) = self.l1[c].lookup(line) {
            return LookupResult::Hit { latency: self.cfg.l1d.latency, data };
        }
        if let Some(data) = self.l2[c].lookup(line) {
            let dirty = self.l2[c].is_dirty(line);
            self.promote_to_l1(c, line, data, dirty, writebacks);
            return LookupResult::Hit { latency: self.cfg.l2.latency, data };
        }
        // Shared lines: a remote private dirty copy is fresher than the
        // L3, so the snoop scan must run before the L3 probe.
        if in_coherence_domain(addr) {
            if let Some(owner) = self.remote_dirty_owner(c, line) {
                let data = self.transfer_ownership(owner, c, line, writebacks);
                return LookupResult::Hit { latency: self.coherence.transfer_latency(), data };
            }
        }
        if let Some(data) = self.l3.lookup(line) {
            let dirty = self.l3.is_dirty(line);
            self.promote_to_l1(c, line, data, dirty, writebacks);
            return LookupResult::Hit { latency: self.cfg.l3.latency, data };
        }
        if in_coherence_domain(addr) {
            self.coherence.note_domain_miss();
        }
        LookupResult::Miss
    }

    /// The core holding a dirty copy of `line` in its private stack,
    /// excluding `requester`.
    fn remote_dirty_owner(&self, requester: usize, line: LineAddr) -> Option<usize> {
        dirty_owner(
            (0..self.l1.len()).filter(|&i| i != requester).map(|i| (i, [&self.l1[i], &self.l2[i]])),
            line,
        )
    }

    /// Moves `line`'s dirty data from `owner`'s private stack to
    /// `requester`: the owner's copies are cleaned in place, the dirty
    /// data lands in the shared L3 (it stays the freshest persistent
    /// copy), and the requester receives a clean private copy.
    fn transfer_ownership(
        &mut self,
        owner: usize,
        requester: usize,
        line: LineAddr,
        writebacks: &mut Vec<Writeback>,
    ) -> LineData {
        let data = self.l1[owner]
            .clean_for_transfer(line)
            .or_else(|| self.l2[owner].clean_for_transfer(line))
            .expect("snoop scan found a dirty owner");
        // A stale clean shadow below the dirty copy must also refresh,
        // or its later eviction could expose old contents.
        self.l2[owner].update_if_present(line, data);
        self.spill_to_l3(line, data, writebacks);
        self.promote_to_l1(requester, line, data, false, writebacks);
        self.coherence.note_transfer(
            line,
            CoreId::new(owner as u32),
            CoreId::new(requester as u32),
        );
        data
    }

    /// Read-for-ownership completion: removes every remote copy of
    /// `line` so the writer's L1 copy is the only one.
    fn invalidate_remote(&mut self, writer: usize, line: LineAddr) {
        for i in 0..self.l1.len() {
            if i == writer {
                continue;
            }
            let removed =
                self.l1[i].invalidate(line).is_some() | self.l2[i].invalidate(line).is_some();
            if removed {
                self.coherence.note_invalidate(
                    line,
                    CoreId::new(i as u32),
                    CoreId::new(writer as u32),
                );
            }
        }
    }

    /// Performs a store of `value` at `addr` for `core` (write-allocate:
    /// the caller fetches on a miss and retries). On a hit the word is
    /// merged and the L1 copy dirtied.
    pub fn store(
        &mut self,
        core: CoreId,
        addr: Addr,
        value: u64,
        writebacks: &mut Vec<Writeback>,
    ) -> LookupResult {
        match self.load(core, addr, writebacks) {
            LookupResult::Hit { latency, mut data } => {
                // Shared lines: the store completes a read-for-ownership —
                // every remote copy disappears before the write, leaving
                // the writer's L1 copy the single (modified) one.
                if in_coherence_domain(addr) {
                    self.invalidate_remote(core.index(), addr.line());
                }
                let ok = self.l1[core.index()].write_word(addr, value);
                debug_assert!(ok, "load promoted the line into L1");
                data[(addr.line_offset() / 8) as usize] = value;
                LookupResult::Hit { latency, data }
            }
            LookupResult::Miss => LookupResult::Miss,
        }
    }

    /// Installs a line fetched from memory into all levels for `core`.
    /// Returns eviction write-backs for the memory controller.
    pub fn fill(
        &mut self,
        core: CoreId,
        line: LineAddr,
        data: LineData,
        writebacks: &mut Vec<Writeback>,
    ) {
        let c = core.index();
        // Shared lines: a fill races the coherence protocol — if any
        // cache acquired a dirty copy while this fetch was in flight, the
        // memory data is stale and must not install (a stale clean copy
        // in the requester's L1 would shadow the fresh remote dirty copy
        // from its own snoop scans, and the L3 insert would clobber a
        // transferred dirty line). The requester retries through the
        // coherent lookup path instead.
        if in_coherence_domain(line.base())
            && (self.l3.is_dirty(line)
                || (0..self.l1.len())
                    .any(|i| self.l1[i].is_dirty(line) || self.l2[i].is_dirty(line)))
        {
            return;
        }
        if let Some(ev) = self.l3.insert(line, data, false) {
            if ev.dirty {
                writebacks.push((ev.line, ev.data));
            }
        }
        self.promote_to_l1(c, line, data, false, writebacks);
    }

    fn promote_to_l1(
        &mut self,
        core: usize,
        line: LineAddr,
        data: LineData,
        dirty: bool,
        writebacks: &mut Vec<Writeback>,
    ) {
        if let Some(ev) = self.l1[core].insert(line, data, dirty) {
            if ev.dirty {
                self.spill_to_l2(core, ev.line, ev.data, writebacks);
            }
        }
    }

    fn spill_to_l2(
        &mut self,
        core: usize,
        line: LineAddr,
        data: LineData,
        writebacks: &mut Vec<Writeback>,
    ) {
        if let Some(ev) = self.l2[core].insert(line, data, true) {
            if ev.dirty {
                self.spill_to_l3(ev.line, ev.data, writebacks);
            }
        }
    }

    fn spill_to_l3(&mut self, line: LineAddr, data: LineData, writebacks: &mut Vec<Writeback>) {
        if let Some(ev) = self.l3.insert(line, data, true) {
            if ev.dirty {
                writebacks.push((ev.line, ev.data));
            }
        }
    }

    /// The `clwb` flush path: cleans the freshest dirty copy of the line
    /// (searching L1, then L2, then L3) and returns its data for the WPQ.
    /// Returns `None` when no dirty copy exists (the flush is a no-op).
    pub fn clwb(&mut self, core: CoreId, addr: Addr) -> Option<LineData> {
        let line = addr.line();
        let c = core.index();
        if let Some(data) = self.l1[c].clean(line) {
            // The flush passes through the hierarchy: lower-level shadow
            // copies receive the fresh data (and become clean), so a
            // later clean eviction of the L1 copy cannot expose stale
            // contents.
            self.l2[c].update_if_present(line, data);
            self.l3.update_if_present(line, data);
            return Some(data);
        }
        if let Some(data) = self.l2[c].clean(line) {
            self.l3.update_if_present(line, data);
            return Some(data);
        }
        self.l3.clean(line)
    }

    /// Non-mutating presence check: returns the freshest cached copy of
    /// the line without touching LRU state or statistics. Used by the
    /// ATOM engine to capture pre-store data when the line happens to be
    /// cached (on a miss, the memory controller sources the log entry
    /// itself — the source-log optimisation).
    pub fn peek(&self, core: CoreId, addr: Addr) -> Option<LineData> {
        let line = addr.line();
        let c = core.index();
        if self.l1[c].contains(line) {
            return self.l1[c].peek_data(line);
        }
        if self.l2[c].contains(line) {
            return self.l2[c].peek_data(line);
        }
        // Shared lines: a remote dirty copy is fresher than the L3 (the
        // read-only half of the coherent load path; `wait-value` lock
        // probes ride on this).
        if in_coherence_domain(addr) {
            if let Some(owner) = self.remote_dirty_owner(c, line) {
                let fresh =
                    self.l1[owner].peek_data(line).or_else(|| self.l2[owner].peek_data(line));
                debug_assert!(fresh.is_some(), "dirty owner must hold the line");
                return fresh;
            }
        }
        self.l3.peek_data(line)
    }

    /// Pre-loads a line as clean into the shared L3 (warm-up).
    pub fn preload_l3(&mut self, line: LineAddr, data: LineData, writebacks: &mut Vec<Writeback>) {
        if let Some(ev) = self.l3.insert(line, data, false) {
            if ev.dirty {
                writebacks.push((ev.line, ev.data));
            }
        }
    }

    /// Feeds `tracer` a periodic cumulative hit/miss sample per level.
    /// The (relatively expensive) cross-core aggregation only runs on
    /// cycles where a sample is actually due.
    pub fn trace_sample(&self, tracer: &mut Tracer, now: Cycle) {
        if !tracer.sample_due(now) {
            return;
        }
        let (l1, l2, l3) = self.stats();
        tracer.maybe_sample_cache(
            now,
            &[
                (CacheLevel::L1d, l1.hits, l1.misses),
                (CacheLevel::L2, l2.hits, l2.misses),
                (CacheLevel::L3, l3.hits, l3.misses),
            ],
        );
    }

    /// Installs a line into the shared L3 before the run starts (clean;
    /// no statistics, no evictions expected in an empty cache). The
    /// simulator preloads lock-word lines of sharing workloads so the
    /// first ticket probe finds them cached instead of cold-polling
    /// memory.
    pub fn preload(&mut self, line: LineAddr, data: LineData) {
        let ev = self.l3.insert(line, data, false);
        debug_assert!(ev.is_none(), "preload runs on an empty cache");
    }

    /// Cache-side coherence statistics (invalidations, transfers,
    /// domain misses; `lock_acquires` is a core-side counter).
    pub fn coherence_stats(&self) -> &CoherenceStats {
        self.coherence.stats()
    }

    /// Enables coherence event capture for the tracer (off by default).
    pub fn enable_coherence_events(&mut self) {
        self.coherence.enable_events();
    }

    /// Takes the coherence events captured since the last drain.
    pub fn drain_coherence_events(&mut self) -> Vec<CoherenceEvent> {
        self.coherence.drain_events()
    }

    /// Hit latencies `(l1d, l2, l3)` — the worker-side quantum view
    /// charges the same latencies as the full hierarchy.
    pub fn level_latencies(&self) -> (Cycle, Cycle, Cycle) {
        (self.cfg.l1d.latency, self.cfg.l2.latency, self.cfg.l3.latency)
    }

    /// Loans the hierarchy out for one parallel quantum: each core's
    /// private L1/L2 pair plus the shared L3 (see `crate::quantum`).
    /// Placeholders take their slots so any accidental access through
    /// `self` mid-quantum panics instead of reading stale state.
    pub fn begin_quantum(
        &mut self,
    ) -> (Vec<crate::quantum::CorePrivates>, crate::quantum::SharedTier) {
        let privates = (0..self.l1.len())
            .map(|i| crate::quantum::CorePrivates {
                l1: std::mem::replace(&mut self.l1[i], Cache::placeholder()),
                l2: std::mem::replace(&mut self.l2[i], Cache::placeholder()),
            })
            .collect();
        let shared = crate::quantum::SharedTier {
            l3: std::mem::replace(&mut self.l3, Cache::placeholder()),
        };
        (privates, shared)
    }

    /// Returns the loaned levels after a quantum. `privates` must be in
    /// core order, exactly as produced by [`CacheSystem::begin_quantum`].
    pub fn end_quantum(
        &mut self,
        privates: Vec<crate::quantum::CorePrivates>,
        shared: crate::quantum::SharedTier,
    ) {
        debug_assert_eq!(privates.len(), self.l1.len(), "one private pair per core");
        for (i, pair) in privates.into_iter().enumerate() {
            self.l1[i] = pair.l1;
            self.l2[i] = pair.l2;
        }
        self.l3 = shared.l3;
    }

    /// Aggregated statistics: (L1 over all cores, L2 over all cores, L3).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        let mut l1 = CacheStats::default();
        for c in &self.l1 {
            l1.merge(c.stats());
        }
        let mut l2 = CacheStats::default();
        for c in &self.l2 {
            l2.merge(c.stats());
        }
        (l1, l2, self.l3.stats().clone())
    }
}

impl proteus_types::NextEvent for CacheSystem {
    /// The hierarchy is entirely reactive: every access is performed
    /// synchronously on behalf of a core and latencies are charged to the
    /// requester, so the caches never need to be woken on their own.
    fn next_event_cycle(&self, _now: Cycle) -> Option<Cycle> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::config::SystemConfig;

    fn sys() -> CacheSystem {
        CacheSystem::new(&SystemConfig::skylake_like())
    }

    fn core() -> CoreId {
        CoreId::new(0)
    }

    #[test]
    fn miss_fill_hit_latencies() {
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(0x1000);
        assert_eq!(s.load(core(), a, &mut wb), LookupResult::Miss);
        s.fill(core(), a.line(), [9; 8], &mut wb);
        match s.load(core(), a, &mut wb) {
            LookupResult::Hit { latency, data } => {
                assert_eq!(latency, 4, "L1 hit after fill");
                assert_eq!(data, [9; 8]);
            }
            LookupResult::Miss => panic!("expected hit"),
        }
        assert!(wb.is_empty());
    }

    #[test]
    fn store_merges_word_and_dirties() {
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(0x1008);
        s.fill(core(), a.line(), [0; 8], &mut wb);
        match s.store(core(), a, 42, &mut wb) {
            LookupResult::Hit { data, .. } => assert_eq!(data[1], 42),
            LookupResult::Miss => panic!("expected hit"),
        }
        // clwb now returns the dirty data.
        let flushed = s.clwb(core(), a).expect("dirty line");
        assert_eq!(flushed[1], 42);
        // Second clwb is a no-op.
        assert_eq!(s.clwb(core(), a), None);
    }

    #[test]
    fn store_miss_requires_fill() {
        let mut s = sys();
        let mut wb = Vec::new();
        assert_eq!(s.store(core(), Addr::new(0x2000), 1, &mut wb), LookupResult::Miss);
    }

    #[test]
    fn l1_eviction_spills_dirty_to_l2_then_hits_there() {
        let mut s = sys();
        let mut wb = Vec::new();
        // L1: 32 KB, 8 ways, 64 sets. Lines with identical set index are
        // 64 lines apart. Fill 9 lines mapping to the same L1 set.
        let stride = 64 * 64; // 64 sets * 64 B
        let base = Addr::new(0x10_0000);
        s.fill(core(), base.line(), [1; 8], &mut wb);
        s.store(core(), base, 7, &mut wb); // dirty the first line
        for i in 1..9u64 {
            s.fill(core(), base.offset(i * stride).line(), [0; 8], &mut wb);
        }
        // The dirty line was evicted from L1 to L2; a load must hit L2
        // with the stored data intact.
        match s.load(core(), base, &mut wb) {
            LookupResult::Hit { latency, data } => {
                assert_eq!(latency, 12, "expected L2 hit");
                assert_eq!(data[0], 7);
            }
            LookupResult::Miss => panic!("dirty data lost on eviction"),
        }
        assert!(wb.is_empty(), "nothing should reach memory yet");
    }

    #[test]
    fn per_core_l1_isolation() {
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(0x3000);
        s.fill(CoreId::new(0), a.line(), [5; 8], &mut wb);
        // Core 1 misses L1/L2 but hits shared L3.
        match s.load(CoreId::new(1), a, &mut wb) {
            LookupResult::Hit { latency, .. } => assert_eq!(latency, 42),
            LookupResult::Miss => panic!("L3 is shared"),
        }
    }

    #[test]
    fn clwb_prefers_freshest_copy() {
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(0x4000);
        s.fill(core(), a.line(), [0; 8], &mut wb);
        s.store(core(), a, 1, &mut wb); // dirty in L1
        let data = s.clwb(core(), a).unwrap();
        assert_eq!(data[0], 1);
    }

    #[test]
    fn shared_line_load_transfers_remote_dirty_copy() {
        use proteus_types::sharing::SHARED_ARENA_BASE;
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(SHARED_ARENA_BASE);
        s.fill(CoreId::new(0), a.line(), [0; 8], &mut wb);
        s.store(CoreId::new(0), a, 0xBEEF, &mut wb);
        // Core 1 must see core 0's unflushed store, at transfer latency.
        match s.load(CoreId::new(1), a, &mut wb) {
            LookupResult::Hit { latency, data } => {
                assert_eq!(data[0], 0xBEEF, "remote dirty data must transfer");
                assert_eq!(latency, 42 + proteus_coherence::REMOTE_HOP_CYCLES);
            }
            LookupResult::Miss => panic!("dirty owner must be snooped"),
        }
        assert_eq!(s.coherence_stats().remote_transfers, 1);
        // The peek path sees the same freshness.
        s.store(CoreId::new(1), a, 0xF00D, &mut wb);
        assert_eq!(s.peek(CoreId::new(0), a).unwrap()[0], 0xF00D);
    }

    #[test]
    fn shared_line_store_invalidates_remote_copies() {
        use proteus_types::sharing::SHARED_ARENA_BASE;
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(SHARED_ARENA_BASE + 64);
        s.fill(CoreId::new(0), a.line(), [3; 8], &mut wb);
        s.fill(CoreId::new(1), a.line(), [3; 8], &mut wb);
        s.store(CoreId::new(0), a, 9, &mut wb);
        assert_eq!(s.coherence_stats().invalidations, 1, "core 1's copy removed");
        // Core 1 re-reads through the coherent path, never a stale L1 hit.
        match s.load(CoreId::new(1), a, &mut wb) {
            LookupResult::Hit { data, .. } => assert_eq!(data[0], 9),
            LookupResult::Miss => panic!("dirty owner or L3 must serve"),
        }
    }

    #[test]
    fn private_lines_never_touch_the_coherence_path() {
        // The exact pre-coherence behavior: a remote dirty copy of a
        // NON-domain line is invisible to other cores (the single-owner
        // invariant makes this unobservable in real workloads).
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(0x1000_0000);
        s.fill(CoreId::new(0), a.line(), [0; 8], &mut wb);
        s.store(CoreId::new(0), a, 7, &mut wb);
        match s.load(CoreId::new(1), a, &mut wb) {
            LookupResult::Hit { latency, data } => {
                assert_eq!(latency, 42, "L3 hit, no snoop");
                assert_eq!(data[0], 0, "stale L3 copy — coherence must not engage");
            }
            LookupResult::Miss => panic!("L3 holds the fill copy"),
        }
        let cs = s.coherence_stats();
        assert_eq!(cs.invalidations + cs.remote_transfers + cs.coherence_misses, 0);
        assert!(cs.is_zero());
    }

    #[test]
    fn coherence_events_capture_transfer_and_invalidate() {
        use proteus_coherence::CoherenceAction;
        use proteus_types::sharing::SHARED_ARENA_BASE;
        let mut s = sys();
        s.enable_coherence_events();
        let mut wb = Vec::new();
        let a = Addr::new(SHARED_ARENA_BASE + 128);
        s.fill(CoreId::new(0), a.line(), [0; 8], &mut wb);
        s.store(CoreId::new(0), a, 1, &mut wb);
        s.store(CoreId::new(1), a, 2, &mut wb);
        let ev = s.drain_coherence_events();
        assert!(ev.iter().any(|e| e.action == CoherenceAction::Transfer));
        assert!(ev.iter().any(|e| e.action == CoherenceAction::Invalidate));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = sys();
        let mut wb = Vec::new();
        let a = Addr::new(0x5000);
        assert_eq!(s.load(core(), a, &mut wb), LookupResult::Miss);
        s.fill(core(), a.line(), [0; 8], &mut wb);
        s.load(core(), a, &mut wb);
        let (l1, _, l3) = s.stats();
        assert!(l1.hits >= 1);
        assert!(l1.misses >= 1);
        assert!(l3.misses >= 1);
    }
}
