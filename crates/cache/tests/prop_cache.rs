//! Property-based tests: the cache hierarchy never loses or corrupts
//! data under random operation sequences.

use proptest::prelude::*;
use proteus_cache::{CacheSystem, LookupResult};
use proteus_core::pmem::WordImage;
use proteus_types::config::SystemConfig;
use proteus_types::{Addr, CoreId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum CacheOp {
    /// Load a word; fill from backing memory on a miss.
    Load { word: u64 },
    /// Store a word (fill first on a miss, as the core does).
    Store { word: u64, value: u64 },
    /// Flush the line (clwb): dirty data moves to the backing memory.
    Clwb { word: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..512).prop_map(|word| CacheOp::Load { word }),
            ((0u64..512), any::<u64>()).prop_map(|(word, value)| CacheOp::Store { word, value }),
            (0u64..512).prop_map(|word| CacheOp::Clwb { word }),
        ],
        1..300,
    )
}

/// Drives a tiny hierarchy against a flat reference: at every point, a
/// load must observe the most recently stored value, regardless of
/// evictions and write-backs.
fn run_model(ops: Vec<CacheOp>) -> Result<(), TestCaseError> {
    let mut cfg = SystemConfig::skylake_like().with_num_cores(1);
    // Tiny caches force heavy eviction traffic.
    cfg.caches.l1d.size_bytes = 1024;
    cfg.caches.l2.size_bytes = 2048;
    cfg.caches.l3.size_bytes = 4096;
    let mut caches = CacheSystem::new(&cfg);
    let core = CoreId::new(0);
    let mut memory = WordImage::new(); // backing store (the "NVMM")
    let mut reference: HashMap<u64, u64> = HashMap::new();
    let mut writebacks = Vec::new();

    let apply_writebacks =
        |memory: &mut WordImage, writebacks: &mut Vec<(proteus_types::addr::LineAddr, _)>| {
            for (line, data) in writebacks.drain(..) {
                memory.write_line(line, &data);
            }
        };

    for op in ops {
        match op {
            CacheOp::Load { word } => {
                let addr = Addr::new(0x1000 + word * 8);
                let value = match caches.load(core, addr, &mut writebacks) {
                    LookupResult::Hit { data, .. } => data[(addr.line_offset() / 8) as usize],
                    LookupResult::Miss => {
                        let data = memory.read_line(addr.line());
                        caches.fill(core, addr.line(), data, &mut writebacks);
                        data[(addr.line_offset() / 8) as usize]
                    }
                };
                apply_writebacks(&mut memory, &mut writebacks);
                let expected = reference.get(&word).copied().unwrap_or(0);
                prop_assert_eq!(value, expected, "load of word {} observed stale data", word);
            }
            CacheOp::Store { word, value } => {
                let addr = Addr::new(0x1000 + word * 8);
                if let LookupResult::Miss = caches.store(core, addr, value, &mut writebacks) {
                    let data = memory.read_line(addr.line());
                    caches.fill(core, addr.line(), data, &mut writebacks);
                    match caches.store(core, addr, value, &mut writebacks) {
                        LookupResult::Hit { .. } => {}
                        LookupResult::Miss => prop_assert!(false, "store missed after fill"),
                    }
                }
                apply_writebacks(&mut memory, &mut writebacks);
                reference.insert(word, value);
            }
            CacheOp::Clwb { word } => {
                let addr = Addr::new(0x1000 + word * 8);
                if let Some(data) = caches.clwb(core, addr) {
                    memory.write_line(addr.line(), &data);
                }
                apply_writebacks(&mut memory, &mut writebacks);
            }
        }
    }

    // Final sweep: every written word must be recoverable.
    for (word, expected) in reference {
        let addr = Addr::new(0x1000 + word * 8);
        let value = match caches.load(core, addr, &mut writebacks) {
            LookupResult::Hit { data, .. } => data[(addr.line_offset() / 8) as usize],
            LookupResult::Miss => memory.read_word(addr),
        };
        apply_writebacks(&mut memory, &mut writebacks);
        prop_assert_eq!(value, expected, "word {} lost", word);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn no_data_is_ever_lost_or_corrupted(ops in arb_ops()) {
        run_model(ops)?;
    }
}

proptest! {
    /// After a clwb, the flushed line's data must equal the freshest
    /// stores, and the copy stays resident (clean).
    #[test]
    fn clwb_returns_freshest_data(values in prop::collection::vec(any::<u64>(), 1..8)) {
        let cfg = SystemConfig::skylake_like().with_num_cores(1);
        let mut caches = CacheSystem::new(&cfg);
        let core = CoreId::new(0);
        let mut wb = Vec::new();
        let base = Addr::new(0x2000);
        caches.fill(core, base.line(), [0; 8], &mut wb);
        for (i, v) in values.iter().enumerate() {
            caches.store(core, base.offset((i as u64 % 8) * 8), *v, &mut wb);
        }
        let data = caches.clwb(core, base).expect("dirty line");
        for (i, v) in values.iter().enumerate().rev().take(8) {
            // The last write to each word wins; earlier writes to the
            // same slot were overwritten.
            let slot = i % 8;
            if values.iter().enumerate().filter(|(j, _)| j % 8 == slot).map(|(j, _)| j).max()
                == Some(i)
            {
                prop_assert_eq!(data[slot], *v);
            }
        }
        prop_assert!(caches.clwb(core, base).is_none(), "line must now be clean");
    }
}
