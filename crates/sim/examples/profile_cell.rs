//! Ad-hoc profiling helper (not part of the test suite): times one
//! bench cell with coarse phase breakdown. Run with
//! `cargo run --release --example profile_cell -- <scheme> <threads>`.

use proteus_sim::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, Benchmark, WorkloadParams};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scheme = match args.get(1).map(|s| s.as_str()) {
        Some("incll") => LoggingSchemeKind::Incll,
        Some("atom") => LoggingSchemeKind::Atom,
        _ => LoggingSchemeKind::Proteus,
    };
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let scale = 0.1f64;
    let divisor = ((1.0 / scale) as u64).next_power_of_two().min(64);
    let cfg = SystemConfig::skylake_like().with_num_cores(threads).with_cache_divisor(divisor);
    let params = WorkloadParams::table2(Benchmark::Queue, threads, scale)
        .with_derived_seed(Benchmark::Queue);
    let t0 = Instant::now();
    let w = generate(Benchmark::Queue, &params);
    eprintln!("generate: {:?}", t0.elapsed());
    let t1 = Instant::now();
    let mut sys = System::new(&cfg, scheme, &w).unwrap();
    eprintln!("System::new (expansion): {:?}", t1.elapsed());
    let t2 = Instant::now();
    let summary = sys.run().unwrap();
    let wall = t2.elapsed();
    eprintln!(
        "run: {:?} ({:.3} Mcycles/s, {} cycles)",
        wall,
        summary.total_cycles as f64 / 1e6 / wall.as_secs_f64(),
        summary.total_cycles
    );
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{summary:?}").hash(&mut h);
    eprintln!("summary-fingerprint: {:x}", h.finish());
}
