#![warn(missing_docs)]
//! Full-system integration of the Proteus NVM logging simulator.
//!
//! This crate wires the pieces together — out-of-order cores
//! (`proteus-cpu`), the cache hierarchy (`proteus-cache`), and the memory
//! controller (`proteus-mem`) — into a steppable [`system::System`], and
//! provides the experiment machinery used to regenerate the paper's
//! figures:
//!
//! * [`system::System`] — builds a multicore machine for one workload and
//!   one logging scheme, steps it cycle by cycle, and produces a
//!   [`proteus_types::stats::RunSummary`];
//! * [`runner`] — parameter sweeps across benchmarks, schemes, memory
//!   technologies, and hardware sizes, orchestrated by
//!   `proteus-harness` (worker pool, per-experiment panic isolation,
//!   resume ledger, telemetry events);
//! * [`persist`] — the JSON codec that lets the resume ledger carry
//!   full run summaries across process restarts;
//! * [`report`] — tabular output matching the paper's figure layouts.
//!
//! # Quickstart
//!
//! ```
//! use proteus_sim::runner::{run_one, ExperimentSpec};
//! use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
//! use proteus_workloads::{Benchmark, WorkloadParams};
//!
//! let spec = ExperimentSpec {
//!     config: SystemConfig::skylake_like().with_num_cores(1),
//!     scheme: LoggingSchemeKind::Proteus,
//!     bench: Benchmark::Queue.into(),
//!     params: WorkloadParams { threads: 1, init_ops: 50, sim_ops: 20, seed: 1 },
//!     engine: EngineConfig::default(),
//! };
//! let result = run_one(&spec)?;
//! assert!(result.summary.total_cycles > 0);
//! # Ok::<(), proteus_types::SimError>(())
//! ```

pub mod parallel;
pub mod persist;
pub mod report;
pub mod runner;
pub mod system;

pub use parallel::EnginePhaseTimes;
pub use proteus_harness::SweepOptions;
pub use runner::{
    run_many, run_many_report, run_many_with, run_one, run_one_traced, run_workload_traced,
    ExperimentResult, ExperimentSpec,
};
pub use system::System;
