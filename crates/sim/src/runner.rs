//! Experiment runner: single runs and harness-orchestrated sweeps.
//!
//! Sweeps run through [`proteus_harness`]: a worker pool with panic
//! isolation (one crashing experiment is recorded, its siblings
//! finish), an optional resume ledger keyed by each spec's stable
//! structural hash, and an optional telemetry event stream. The
//! convenience entry points ([`run_many`], [`sweep_schemes`]) keep
//! their all-or-nothing contract — the first failure comes back as a
//! typed [`SimError`], including [`SimError::WorkerPanic`] for caught
//! panics — while the `*_report` / `*_with` variants expose per-job
//! outcomes and harness options.

use crate::persist;
use crate::system::System;
use proteus_harness::{Harness, JobSpec, PayloadCodec, SweepOptions, SweepReport};
use proteus_trace::TraceReport;
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig, TraceConfig};
use proteus_types::stats::RunSummary;
use proteus_types::{
    stable_hash_value, FieldHasher, JobOutcome, SimError, StableHash, StableHasher,
};
use proteus_workgen::WorkloadSel;
use proteus_workloads::{GeneratedWorkload, WorkloadParams};
use serde::{Deserialize, Serialize};
use std::sync::{Mutex, OnceLock};

/// One experiment: a workload under a scheme on a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Machine configuration.
    pub config: SystemConfig,
    /// Logging scheme under test.
    pub scheme: LoggingSchemeKind,
    /// Workload to run: a paper benchmark or a generated spec.
    /// (`WorkloadSel::Bench` hashes and encodes exactly as the bare
    /// `Benchmark` used to, so pre-existing spec hashes and resume
    /// ledgers are unaffected.)
    pub bench: WorkloadSel,
    /// Workload generation parameters.
    pub params: WorkloadParams,
    /// Cycle-engine execution settings (fast-forward, worker threads).
    /// Deliberately excluded from the stable hash and the sweep wire
    /// form: the engine produces byte-identical results for every
    /// setting, so two specs differing only here are the *same*
    /// experiment and must share resume-ledger entries and derived
    /// seeds.
    pub engine: EngineConfig,
}

impl StableHash for ExperimentSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("ExperimentSpec");
        f.field("config", &self.config)
            .field("scheme", &self.scheme)
            .field("bench", &self.bench)
            .field("params", &self.params);
        h.write_u64(f.finish());
    }
}

impl ExperimentSpec {
    /// Stable structural hash of the full spec: the resume-ledger key
    /// and the basis for derived workload seeds. Independent of field
    /// order, process, and platform.
    pub fn spec_hash(&self) -> u64 {
        stable_hash_value(self)
    }

    /// `"<bench>/<scheme>"`, the human-readable job name.
    pub fn display_name(&self) -> String {
        format!("{}/{}", self.bench.abbrev(), self.scheme.label())
    }

    /// The harness job identity for this spec.
    pub fn job(&self) -> JobSpec {
        JobSpec::new(self.display_name(), self.spec_hash())
    }
}

/// The outcome of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// `"<bench>/<scheme>"`.
    pub name: String,
    /// Run statistics.
    pub summary: RunSummary,
}

/// The ledger codec for experiment results.
pub fn experiment_codec() -> PayloadCodec<ExperimentResult> {
    PayloadCodec { encode: persist::result_to_json, decode: persist::result_from_json }
}

/// A harness configured for experiment sweeps: ledger codec plus the
/// simulated-cycles progress metric.
pub fn experiment_harness() -> Harness<ExperimentResult> {
    Harness::new().with_codec(experiment_codec()).with_metric(|r| r.summary.total_cycles)
}

/// Runs a single experiment, generating the workload internally.
///
/// # Errors
///
/// Propagates configuration, expansion, and simulation errors.
pub fn run_one(spec: &ExperimentSpec) -> Result<ExperimentResult, SimError> {
    let workload = spec.bench.generate(&spec.params);
    run_workload(spec, &workload)
}

/// Runs a single experiment over a pre-generated workload (reuse the
/// workload across schemes so every scheme sees identical operations —
/// the paper's methodology).
///
/// # Errors
///
/// Propagates configuration, expansion, and simulation errors.
pub fn run_workload(
    spec: &ExperimentSpec,
    workload: &GeneratedWorkload,
) -> Result<ExperimentResult, SimError> {
    let (result, _) = run_workload_traced(spec, workload, &TraceConfig::disabled())?;
    Ok(result)
}

/// Runs a single experiment with cycle-level tracing, generating the
/// workload internally. The trace report is `None` when `trace` is
/// disabled.
///
/// # Errors
///
/// Propagates configuration, expansion, and simulation errors.
pub fn run_one_traced(
    spec: &ExperimentSpec,
    trace: &TraceConfig,
) -> Result<(ExperimentResult, Option<TraceReport>), SimError> {
    let workload = spec.bench.generate(&spec.params);
    run_workload_traced(spec, &workload, trace)
}

/// [`run_workload`] with cycle-level tracing attached to the machine.
///
/// # Errors
///
/// Propagates configuration, expansion, and simulation errors.
pub fn run_workload_traced(
    spec: &ExperimentSpec,
    workload: &GeneratedWorkload,
    trace: &TraceConfig,
) -> Result<(ExperimentResult, Option<TraceReport>), SimError> {
    let mut system = System::new_with_trace(&spec.config, spec.scheme, workload, trace)?;
    system.set_engine(&spec.engine);
    let summary = system.run()?;
    let report = system.take_trace_report();
    Ok((ExperimentResult { name: spec.display_name(), summary }, report))
}

/// Shared sweep core: runs `run_job` for each spec through the harness,
/// capturing typed errors on the side (the harness itself carries only
/// rendered messages).
fn sweep_jobs<F>(
    specs: &[ExperimentSpec],
    opts: &SweepOptions,
    run_job: F,
) -> Result<(SweepReport<ExperimentResult>, Vec<Option<SimError>>), SimError>
where
    F: Fn(usize) -> Result<ExperimentResult, SimError> + Sync,
{
    let jobs: Vec<JobSpec> = specs.iter().map(ExperimentSpec::job).collect();
    let typed_errors: Mutex<Vec<Option<SimError>>> = Mutex::new(vec![None; specs.len()]);
    let report = experiment_harness().run(&jobs, opts, |i| {
        run_job(i).map_err(|e| {
            let rendered = e.to_string();
            typed_errors.lock().expect("error cell lock")[i] = Some(e);
            rendered
        })
    })?;
    let typed_errors = typed_errors.into_inner().expect("error cell lock");
    Ok((report, typed_errors))
}

/// Converts an outcome-rich report into the all-or-nothing contract:
/// the payloads in input order, or the first failure as a typed error.
fn all_or_first_error(
    report: SweepReport<ExperimentResult>,
    mut typed_errors: Vec<Option<SimError>>,
) -> Result<Vec<ExperimentResult>, SimError> {
    for (i, r) in report.results.iter().enumerate() {
        match &r.outcome {
            JobOutcome::Completed => {}
            JobOutcome::Failed { error } => {
                return Err(typed_errors[i].take().unwrap_or_else(|| {
                    SimError::HarnessIo(format!("job '{}' failed: {error}", r.name))
                }));
            }
            JobOutcome::Crashed { panic } => {
                return Err(SimError::WorkerPanic { job: r.name.clone(), message: panic.clone() });
            }
        }
    }
    Ok(report
        .results
        .into_iter()
        .map(|r| r.payload.expect("completed job carries a payload"))
        .collect())
}

/// Runs `specs` in parallel across host threads (one workload
/// generation per spec), preserving input order in the output.
///
/// # Errors
///
/// Returns the first error in input order; a panicking experiment
/// surfaces as [`SimError::WorkerPanic`] after its siblings finish.
pub fn run_many(specs: &[ExperimentSpec]) -> Result<Vec<ExperimentResult>, SimError> {
    run_many_with(specs, &SweepOptions::default())
}

/// [`run_many`] with explicit harness options (worker count, resume
/// ledger, event stream, retries, progress).
///
/// # Errors
///
/// As [`run_many`], plus [`SimError::HarnessIo`] for ledger or event
/// stream failures.
pub fn run_many_with(
    specs: &[ExperimentSpec],
    opts: &SweepOptions,
) -> Result<Vec<ExperimentResult>, SimError> {
    let (report, typed_errors) = sweep_jobs(specs, opts, |i| run_one(&specs[i]))?;
    all_or_first_error(report, typed_errors)
}

/// Runs `specs` and reports every job's outcome instead of stopping at
/// the first failure: crashed or failed experiments appear as their
/// [`JobOutcome`] alongside completed siblings.
///
/// # Errors
///
/// Only infrastructure failures ([`SimError::HarnessIo`]); job
/// failures are in the report.
pub fn run_many_report(
    specs: &[ExperimentSpec],
    opts: &SweepOptions,
) -> Result<SweepReport<ExperimentResult>, SimError> {
    let (report, _) = sweep_jobs(specs, opts, |i| run_one(&specs[i]))?;
    Ok(report)
}

/// A benchmark's results across all schemes, with paper-style derived
/// metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeSweep {
    /// Benchmark abbreviation.
    pub bench: String,
    /// `(scheme label, summary)` per scheme in [`LoggingSchemeKind::ALL`]
    /// order.
    pub results: Vec<(String, RunSummary)>,
}

impl SchemeSweep {
    /// Speedup of `scheme` over the software-logging baseline (Fig. 6
    /// metric).
    pub fn speedup(&self, scheme: LoggingSchemeKind) -> f64 {
        self.summary_of(scheme).speedup_over(self.summary_of(LoggingSchemeKind::SwPmem))
    }

    /// NVMM writes normalised to the no-logging ideal (Fig. 8 metric).
    pub fn nvmm_writes_normalized(&self, scheme: LoggingSchemeKind) -> f64 {
        let base = self.summary_of(LoggingSchemeKind::NoLog).mem.total_nvmm_writes();
        let this = self.summary_of(scheme).mem.total_nvmm_writes();
        this as f64 / base.max(1) as f64
    }

    /// Front-end stall cycles normalised to the no-logging ideal (Fig. 7
    /// metric).
    pub fn stalls_normalized(&self, scheme: LoggingSchemeKind) -> f64 {
        let base = self.summary_of(LoggingSchemeKind::NoLog).cores_merged().total_stall_cycles();
        let this = self.summary_of(scheme).cores_merged().total_stall_cycles();
        this as f64 / base.max(1) as f64
    }

    /// The summary for `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep did not include `scheme`.
    pub fn summary_of(&self, scheme: LoggingSchemeKind) -> &RunSummary {
        &self
            .results
            .iter()
            .find(|(label, _)| label == scheme.label())
            .unwrap_or_else(|| panic!("sweep missing scheme {}", scheme.label()))
            .1
    }
}

/// Runs one benchmark under every scheme (identical workload), in
/// parallel.
///
/// # Errors
///
/// Returns the first simulation error.
pub fn sweep_schemes(
    config: &SystemConfig,
    bench: impl Into<WorkloadSel>,
    params: &WorkloadParams,
    schemes: &[LoggingSchemeKind],
) -> Result<SchemeSweep, SimError> {
    sweep_schemes_with(
        config,
        bench,
        params,
        schemes,
        &SweepOptions::default(),
        &EngineConfig::default(),
    )
}

/// [`sweep_schemes`] with explicit harness options.
///
/// The workload is generated lazily, once, on the first job that
/// actually executes — a fully resumed sweep re-simulates nothing and
/// also regenerates nothing.
///
/// # Errors
///
/// As [`sweep_schemes`], plus [`SimError::HarnessIo`] for ledger or
/// event stream failures.
pub fn sweep_schemes_with(
    config: &SystemConfig,
    bench: impl Into<WorkloadSel>,
    params: &WorkloadParams,
    schemes: &[LoggingSchemeKind],
    opts: &SweepOptions,
    engine: &EngineConfig,
) -> Result<SchemeSweep, SimError> {
    let sel: WorkloadSel = bench.into();
    let specs: Vec<ExperimentSpec> = schemes
        .iter()
        .map(|&scheme| ExperimentSpec {
            config: config.clone(),
            scheme,
            bench: sel.clone(),
            params: params.clone(),
            engine: *engine,
        })
        .collect();
    let workload: OnceLock<GeneratedWorkload> = OnceLock::new();
    let (report, typed_errors) = sweep_jobs(&specs, opts, |i| {
        let w = workload.get_or_init(|| sel.generate(params));
        run_workload(&specs[i], w)
    })?;
    let results = all_or_first_error(report, typed_errors)?;
    Ok(SchemeSweep {
        bench: sel.abbrev().to_string(),
        results: schemes
            .iter()
            .zip(results)
            .map(|(scheme, r)| (scheme.label().to_string(), r.summary))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workloads::Benchmark;

    fn tiny_params() -> WorkloadParams {
        WorkloadParams { threads: 2, init_ops: 40, sim_ops: 12, seed: 9 }
    }

    fn tiny_spec(bench: Benchmark, scheme: LoggingSchemeKind) -> ExperimentSpec {
        ExperimentSpec {
            config: SystemConfig::skylake_like().with_num_cores(2),
            scheme,
            bench: bench.into(),
            params: tiny_params(),
            engine: EngineConfig::default(),
        }
    }

    /// A configuration that passes `validate()` (the geometry divides
    /// evenly) but panics inside the cache model (96 sets is not a
    /// power of two) — the crash-injection vehicle for harness tests.
    fn panic_config() -> SystemConfig {
        let mut config = SystemConfig::skylake_like().with_num_cores(2);
        config.caches.l1d.size_bytes = 48 * 1024;
        config.caches.l1d.ways = 8;
        assert!(config.validate().is_ok(), "must pass validation to reach the simulator");
        config
    }

    #[test]
    fn run_one_produces_cycles_and_stats() {
        let spec = tiny_spec(Benchmark::Queue, LoggingSchemeKind::Proteus);
        let r = run_one(&spec).unwrap();
        assert!(r.summary.total_cycles > 0);
        assert_eq!(r.summary.core.len(), 2);
        assert!(r.summary.cores_merged().transactions >= 24);
        assert_eq!(r.name, "QE/Proteus");
    }

    #[test]
    fn sweep_compares_schemes_consistently() {
        let sweep = sweep_schemes(
            &SystemConfig::skylake_like().with_num_cores(2),
            Benchmark::HashMap,
            &tiny_params(),
            &LoggingSchemeKind::ALL,
        )
        .unwrap();
        assert_eq!(sweep.results.len(), LoggingSchemeKind::ALL.len());
        // The baseline's speedup over itself is exactly 1.
        assert!((sweep.speedup(LoggingSchemeKind::SwPmem) - 1.0).abs() < 1e-12);
        // The ideal beats the baseline.
        assert!(sweep.speedup(LoggingSchemeKind::NoLog) > 1.0);
        // pcommit is slower than ADR.
        assert!(sweep.speedup(LoggingSchemeKind::SwPmemPcommit) < 1.0);
    }

    #[test]
    fn run_many_preserves_order() {
        let specs: Vec<ExperimentSpec> = [Benchmark::Queue, Benchmark::HashMap]
            .into_iter()
            .map(|bench| tiny_spec(bench, LoggingSchemeKind::NoLog))
            .collect();
        let results = run_many(&specs).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].name.starts_with("QE"));
        assert!(results[1].name.starts_with("HM"));
    }

    #[test]
    fn too_many_threads_rejected() {
        let spec = ExperimentSpec {
            config: SystemConfig::skylake_like().with_num_cores(1),
            scheme: LoggingSchemeKind::NoLog,
            bench: Benchmark::Queue.into(),
            params: tiny_params(), // 2 threads
            engine: EngineConfig::default(),
        };
        assert!(matches!(run_one(&spec), Err(SimError::TooManyThreads { .. })));
    }

    /// Regression for the pre-harness runner, which aborted the whole
    /// sweep on any worker panic (`.expect("worker thread panicked")`)
    /// and could tear down sibling experiments: a panicking experiment
    /// must surface as a typed `WorkerPanic` carrying the panic
    /// message, after siblings have completed.
    #[test]
    fn run_many_surfaces_worker_panic_with_message() {
        let specs = vec![
            tiny_spec(Benchmark::Queue, LoggingSchemeKind::NoLog),
            ExperimentSpec {
                config: panic_config(),
                ..tiny_spec(Benchmark::Queue, LoggingSchemeKind::NoLog)
            },
            tiny_spec(Benchmark::HashMap, LoggingSchemeKind::NoLog),
        ];
        let err = run_many(&specs).unwrap_err();
        match err {
            SimError::WorkerPanic { job, message } => {
                assert_eq!(job, format!("QE/{}", LoggingSchemeKind::NoLog.label()));
                assert!(message.contains("power of two"), "panic message lost: {message}");
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
    }

    /// The outcome-rich variant completes siblings of a crashed job.
    #[test]
    fn run_many_report_isolates_the_crash() {
        let specs = vec![
            tiny_spec(Benchmark::Queue, LoggingSchemeKind::NoLog),
            ExperimentSpec {
                config: panic_config(),
                ..tiny_spec(Benchmark::Queue, LoggingSchemeKind::NoLog)
            },
            tiny_spec(Benchmark::HashMap, LoggingSchemeKind::NoLog),
        ];
        let opts = SweepOptions { max_retries: 0, ..SweepOptions::default() };
        let report = run_many_report(&specs, &opts).unwrap();
        assert_eq!(report.completed, 2);
        assert_eq!(report.crashed, 1);
        assert!(report.results[0].outcome.is_completed());
        assert!(matches!(report.results[1].outcome, JobOutcome::Crashed { .. }));
        assert!(report.results[2].outcome.is_completed());
        assert!(report.results[2].payload.is_some());
    }

    /// A clean simulator error keeps its typed identity through the
    /// harness (first-error contract).
    #[test]
    fn run_many_preserves_typed_errors() {
        let mut bad = tiny_spec(Benchmark::Queue, LoggingSchemeKind::NoLog);
        bad.config = bad.config.with_num_cores(1); // params want 2 threads
        let specs = vec![tiny_spec(Benchmark::HashMap, LoggingSchemeKind::NoLog), bad];
        assert!(matches!(
            run_many(&specs),
            Err(SimError::TooManyThreads { requested: 2, available: 1 })
        ));
    }

    #[test]
    fn spec_hash_distinguishes_every_dimension() {
        let base = tiny_spec(Benchmark::Queue, LoggingSchemeKind::Proteus);
        let mut hashes = vec![base.spec_hash()];
        hashes.push(tiny_spec(Benchmark::HashMap, LoggingSchemeKind::Proteus).spec_hash());
        hashes.push(tiny_spec(Benchmark::Queue, LoggingSchemeKind::Atom).spec_hash());
        let mut scaled = base.clone();
        scaled.params.sim_ops += 1;
        hashes.push(scaled.spec_hash());
        let mut reconfigured = base.clone();
        reconfigured.config = reconfigured.config.with_logq_entries(4);
        hashes.push(reconfigured.spec_hash());
        let unique: std::collections::HashSet<u64> = hashes.iter().copied().collect();
        assert_eq!(unique.len(), hashes.len(), "{hashes:x?}");
        // And it is stable: same spec, same hash.
        assert_eq!(
            base.spec_hash(),
            tiny_spec(Benchmark::Queue, LoggingSchemeKind::Proteus).spec_hash()
        );
    }

    /// Identical derived seeds produce bit-identical run summaries: the
    /// whole pipeline from workload generation to simulation is
    /// deterministic.
    #[test]
    fn derived_seed_runs_are_reproducible() {
        let mut spec = tiny_spec(Benchmark::HashMap, LoggingSchemeKind::Proteus);
        spec.params = spec.bench.derived_params(spec.params.clone());
        let a = run_one(&spec).unwrap();
        let b = run_one(&spec).unwrap();
        assert_eq!(a.summary, b.summary);
        // A different benchmark derives a different seed.
        let other = tiny_params().with_derived_seed(Benchmark::Queue);
        assert_ne!(spec.params.seed, other.seed);
    }
}
