//! Experiment runner: single runs and parallel sweeps.

use crate::system::System;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_types::stats::RunSummary;
use proteus_types::SimError;
use proteus_workloads::{generate, Benchmark, GeneratedWorkload, WorkloadParams};
use serde::{Deserialize, Serialize};

/// One experiment: a benchmark under a scheme on a configuration.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Machine configuration.
    pub config: SystemConfig,
    /// Logging scheme under test.
    pub scheme: LoggingSchemeKind,
    /// Benchmark to run.
    pub bench: Benchmark,
    /// Workload generation parameters.
    pub params: WorkloadParams,
}

/// The outcome of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// `"<bench>/<scheme>"`.
    pub name: String,
    /// Run statistics.
    pub summary: RunSummary,
}

/// Runs a single experiment, generating the workload internally.
///
/// # Errors
///
/// Propagates configuration, expansion, and simulation errors.
pub fn run_one(spec: &ExperimentSpec) -> Result<ExperimentResult, SimError> {
    let workload = generate(spec.bench, &spec.params);
    run_workload(spec, &workload)
}

/// Runs a single experiment over a pre-generated workload (reuse the
/// workload across schemes so every scheme sees identical operations —
/// the paper's methodology).
///
/// # Errors
///
/// Propagates configuration, expansion, and simulation errors.
pub fn run_workload(
    spec: &ExperimentSpec,
    workload: &GeneratedWorkload,
) -> Result<ExperimentResult, SimError> {
    let mut system = System::new(&spec.config, spec.scheme, workload)?;
    let summary = system.run()?;
    Ok(ExperimentResult {
        name: format!("{}/{}", spec.bench.abbrev(), spec.scheme.label()),
        summary,
    })
}

/// Runs `specs` in parallel across host threads (one workload generation
/// per spec), preserving input order in the output.
///
/// # Errors
///
/// Returns the first error encountered.
pub fn run_many(specs: &[ExperimentSpec]) -> Result<Vec<ExperimentResult>, SimError> {
    let mut results: Vec<Option<Result<ExperimentResult, SimError>>> =
        (0..specs.len()).map(|_| None).collect();
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(specs.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_cell = parking_lot::Mutex::new(&mut results);
    crossbeam::scope(|scope| {
        for _ in 0..parallelism {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let out = run_one(&specs[i]);
                results_cell.lock()[i] = Some(out);
            });
        }
    })
    .expect("worker thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// A benchmark's results across all schemes, with paper-style derived
/// metrics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemeSweep {
    /// Benchmark abbreviation.
    pub bench: String,
    /// `(scheme label, summary)` per scheme in [`LoggingSchemeKind::ALL`]
    /// order.
    pub results: Vec<(String, RunSummary)>,
}

impl SchemeSweep {
    /// Speedup of `scheme` over the software-logging baseline (Fig. 6
    /// metric).
    pub fn speedup(&self, scheme: LoggingSchemeKind) -> f64 {
        let base = self.cycles_of(LoggingSchemeKind::SwPmem);
        base as f64 / self.cycles_of(scheme) as f64
    }

    /// NVMM writes normalised to the no-logging ideal (Fig. 8 metric).
    pub fn nvmm_writes_normalized(&self, scheme: LoggingSchemeKind) -> f64 {
        let base = self.summary_of(LoggingSchemeKind::NoLog).mem.total_nvmm_writes();
        let this = self.summary_of(scheme).mem.total_nvmm_writes();
        this as f64 / base.max(1) as f64
    }

    /// Front-end stall cycles normalised to the no-logging ideal (Fig. 7
    /// metric).
    pub fn stalls_normalized(&self, scheme: LoggingSchemeKind) -> f64 {
        let base = self
            .summary_of(LoggingSchemeKind::NoLog)
            .cores_merged()
            .total_stall_cycles();
        let this = self.summary_of(scheme).cores_merged().total_stall_cycles();
        this as f64 / base.max(1) as f64
    }

    fn cycles_of(&self, scheme: LoggingSchemeKind) -> u64 {
        self.summary_of(scheme).total_cycles
    }

    /// The summary for `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if the sweep did not include `scheme`.
    pub fn summary_of(&self, scheme: LoggingSchemeKind) -> &RunSummary {
        &self
            .results
            .iter()
            .find(|(label, _)| label == scheme.label())
            .unwrap_or_else(|| panic!("sweep missing scheme {}", scheme.label()))
            .1
    }
}

/// Runs one benchmark under every scheme (identical workload), in
/// parallel.
///
/// # Errors
///
/// Returns the first simulation error.
pub fn sweep_schemes(
    config: &SystemConfig,
    bench: Benchmark,
    params: &WorkloadParams,
    schemes: &[LoggingSchemeKind],
) -> Result<SchemeSweep, SimError> {
    let workload = generate(bench, params);
    let mut results: Vec<Option<Result<(String, RunSummary), SimError>>> =
        (0..schemes.len()).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results_cell = parking_lot::Mutex::new(&mut results);
    crossbeam::scope(|scope| {
        for _ in 0..schemes.len().min(8).max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= schemes.len() {
                    break;
                }
                let spec = ExperimentSpec {
                    config: config.clone(),
                    scheme: schemes[i],
                    bench,
                    params: params.clone(),
                };
                let out = run_workload(&spec, &workload)
                    .map(|r| (schemes[i].label().to_string(), r.summary));
                results_cell.lock()[i] = Some(out);
            });
        }
    })
    .expect("worker thread panicked");
    let results: Result<Vec<_>, _> = results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect();
    Ok(SchemeSweep { bench: bench.abbrev().to_string(), results: results? })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> WorkloadParams {
        WorkloadParams { threads: 2, init_ops: 40, sim_ops: 12, seed: 9 }
    }

    #[test]
    fn run_one_produces_cycles_and_stats() {
        let spec = ExperimentSpec {
            config: SystemConfig::skylake_like().with_num_cores(2),
            scheme: LoggingSchemeKind::Proteus,
            bench: Benchmark::Queue,
            params: tiny_params(),
        };
        let r = run_one(&spec).unwrap();
        assert!(r.summary.total_cycles > 0);
        assert_eq!(r.summary.core.len(), 2);
        assert!(r.summary.cores_merged().transactions >= 24);
        assert_eq!(r.name, "QE/Proteus");
    }

    #[test]
    fn sweep_compares_schemes_consistently() {
        let sweep = sweep_schemes(
            &SystemConfig::skylake_like().with_num_cores(2),
            Benchmark::HashMap,
            &tiny_params(),
            &LoggingSchemeKind::ALL,
        )
        .unwrap();
        assert_eq!(sweep.results.len(), 6);
        // The baseline's speedup over itself is exactly 1.
        assert!((sweep.speedup(LoggingSchemeKind::SwPmem) - 1.0).abs() < 1e-12);
        // The ideal beats the baseline.
        assert!(sweep.speedup(LoggingSchemeKind::NoLog) > 1.0);
        // pcommit is slower than ADR.
        assert!(sweep.speedup(LoggingSchemeKind::SwPmemPcommit) < 1.0);
    }

    #[test]
    fn run_many_preserves_order() {
        let specs: Vec<ExperimentSpec> = [Benchmark::Queue, Benchmark::HashMap]
            .into_iter()
            .map(|bench| ExperimentSpec {
                config: SystemConfig::skylake_like().with_num_cores(2),
                scheme: LoggingSchemeKind::NoLog,
                bench,
                params: tiny_params(),
            })
            .collect();
        let results = run_many(&specs).unwrap();
        assert_eq!(results.len(), 2);
        assert!(results[0].name.starts_with("QE"));
        assert!(results[1].name.starts_with("HM"));
    }

    #[test]
    fn too_many_threads_rejected() {
        let spec = ExperimentSpec {
            config: SystemConfig::skylake_like().with_num_cores(1),
            scheme: LoggingSchemeKind::NoLog,
            bench: Benchmark::Queue,
            params: tiny_params(), // 2 threads
        };
        assert!(matches!(run_one(&spec), Err(SimError::TooManyThreads { .. })));
    }
}
