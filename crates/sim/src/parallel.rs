//! The parallel quantum engine: per-core worker threads between
//! deterministic barriers (DESIGN.md §11).
//!
//! The sequential engine interleaves everything on one thread: each
//! cycle ticks every core (which may touch its private L1/L2 and the
//! shared L3), then the memory controller, then delivers due responses.
//! The quantum engine observes that between two *coherence-visible*
//! points — a response delivery, a memory-controller state change, a
//! shared-line access — the cores only interact through the shared L3,
//! and those accesses can be ordered exactly as the sequential engine
//! orders them without a global lockstep (see
//! [`proteus_cache::QuantumGate`]).
//!
//! So the run loop repeats: compute the next coherence-visible bound
//! `E` (see `System::quantum_end`), loan each core its private cache
//! levels, and let worker threads advance all cores independently
//! through cycles `[T, E)`. Cores record their memory-controller
//! submissions instead of delivering them; at the barrier the main
//! thread replays `submit → mc.tick` in exactly the sequential
//! interleaving, which is sound because `submit` only enqueues a
//! request keyed by its delivery cycle — nothing about the controller's
//! intake depends on *when* in the host's execution the call happens.
//!
//! Determinism: every simulated decision inside a quantum happens at
//! fixed (cycle, core, program-order) coordinates, shared-tier accesses
//! are totally ordered by the gate in that same key, and the barrier
//! replay is single-threaded. Thread count, host scheduling, and
//! rendezvous timing can therefore change only wall-clock numbers —
//! `RunSummary`, persist timelines, and crash images are byte-identical
//! to the sequential engine for every `threads` value, which the
//! fast-forward identity suite asserts.

use proteus_cache::{CorePrivates, QuantumCaches, QuantumGate};
use proteus_cpu::Core;
use proteus_mem::McRequest;
use proteus_types::clock::Cycle;
use std::sync::mpsc::{Receiver, Sender};
use std::time::Instant;

/// One core's recorded memory-controller submission:
/// `(tick cycle, deliver-at cycle, request)`. Replayed at the barrier in
/// (tick cycle, core index, issue order) — the sequential order.
pub(crate) type Submission = (Cycle, Cycle, McRequest);

/// One core plus its loaned private cache levels, in flight between the
/// engine thread and a worker.
pub(crate) struct Unit {
    pub idx: usize,
    pub core: Core,
    pub privates: CorePrivates,
}

/// A quantum assignment for one worker: advance `units` (ascending core
/// index) through cycles `[start, end)`.
pub(crate) struct QuantumTask {
    pub start: Cycle,
    pub end: Cycle,
    pub units: Vec<Unit>,
}

/// A worker's completed quantum: the units back, each with its
/// submission log, plus wall-clock accounting.
pub(crate) struct QuantumResult {
    pub units: Vec<(Unit, Vec<Submission>)>,
    /// `Some(c)` iff every owned core had finished by the end of the
    /// quantum, where `c` is the latest cycle one of them completed in
    /// (`task.start` for cores already done at hand-out). The engine
    /// needs this to stop the memory-controller replay where the
    /// sequential loop would have stopped stepping — ticking the
    /// controller past the machine's completion cycle would drain
    /// write-pending-queue residue the sequential engine never drains.
    pub all_done_at: Option<Cycle>,
    /// Total wall time the worker spent inside the quantum.
    pub work_ns: u64,
    /// Portion of `work_ns` spent spinning for shared-tier grants.
    pub wait_ns: u64,
}

/// Wall-clock accounting of the engine's phases, for
/// `reproduce bench --verbose`. Purely observational — never consulted
/// by simulation logic. `core_tick_ns` sums per-worker spans, so with
/// real hardware parallelism it can exceed the run's wall time.
#[derive(Debug, Clone, Default)]
pub struct EnginePhaseTimes {
    /// Worker time ticking cores and their caches (includes grant waits).
    pub core_tick_ns: u64,
    /// Worker time spinning for shared-tier grants (barrier-wait share
    /// of `core_tick_ns`).
    pub grant_wait_ns: u64,
    /// Main-thread time replaying submissions through the memory
    /// controller and draining its events at each barrier.
    pub mc_drain_ns: u64,
    /// Main-thread time handing cores out and collecting them back
    /// (includes waiting for the slowest worker).
    pub barrier_ns: u64,
    /// Quanta executed.
    pub quanta: u64,
    /// Cycles advanced inside quanta.
    pub quantum_cycles: u64,
    /// Cycles advanced by the sequential `step` path (too-short quanta,
    /// due deliveries, or the engine running with `threads == 1`).
    pub sequential_steps: u64,
}

/// A unit mid-quantum: core index, the core, its gated cache view, its
/// submission log, and the cycle it finished in (if it did).
type ActiveUnit<'g> = (usize, Core, QuantumCaches<'g>, Vec<Submission>, Option<Cycle>);

/// Worker body: pull quantum tasks until the channel closes. Each task
/// ticks every owned core through `[start, end)` in ascending core
/// index per cycle — the order the grant protocol's deadlock-freedom
/// argument relies on — publishing per-cycle progress through `gate`.
pub(crate) fn worker_loop(
    rx: Receiver<QuantumTask>,
    tx: Sender<QuantumResult>,
    gate: &QuantumGate,
    latencies: (Cycle, Cycle, Cycle),
) {
    let mut req_buf = Vec::new();
    while let Ok(task) = rx.recv() {
        let started = Instant::now();
        let mut units: Vec<ActiveUnit<'_>> = task
            .units
            .into_iter()
            .map(|u| {
                let done_at = u.core.is_done().then_some(task.start);
                let caches = QuantumCaches::new(u.idx, u.privates, latencies, gate);
                (u.idx, u.core, caches, Vec::new(), done_at)
            })
            .collect();
        for t in task.start..task.end {
            for (idx, core, caches, log, done_at) in &mut units {
                caches.begin_cycle(t);
                core.tick(t, caches);
                core.drain_requests_into(&mut req_buf);
                for (at, req) in req_buf.drain(..) {
                    log.push((t, at, req));
                }
                if done_at.is_none() && core.is_done() {
                    *done_at = Some(t);
                }
                // Publishing done[idx] = t + 1 releases every grant
                // waiting on this core having finished cycle t.
                gate.mark_done(*idx, t + 1);
            }
        }
        let mut wait_ns = 0;
        let mut all_done_at = Some(task.start);
        let units = units
            .into_iter()
            .map(|(idx, core, caches, log, done_at)| {
                let (privates, waited) = caches.into_parts();
                wait_ns += waited;
                all_done_at = match (all_done_at, done_at) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
                (Unit { idx, core, privates }, log)
            })
            .collect();
        if tx
            .send(QuantumResult {
                units,
                all_done_at,
                work_ns: started.elapsed().as_nanos() as u64,
                wait_ns,
            })
            .is_err()
        {
            return;
        }
    }
}
