//! Tabular report formatting in the layout of the paper's figures.

use proteus_types::stats::geometric_mean;

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal ASCII bar chart (the terminal stand-in for the
/// paper's figures). Bars scale to `width` characters at the maximum
/// value.
///
/// # Panics
///
/// Panics if `labels` and `values` differ in length, or a value is
/// negative.
pub fn bar_chart(labels: &[&str], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len(), "labels/values length mismatch");
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(f64::MIN_POSITIVE);
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value) in labels.iter().zip(values) {
        assert!(*value >= 0.0, "bar values must be non-negative");
        let n = ((value / max) * width as f64).round() as usize;
        out.push_str(&format!("{label:<label_w$}  {} {v}\n", "█".repeat(n), v = f2(*value)));
    }
    out
}

/// Formats a float with two decimals (the paper's speedup precision).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a percentage with one decimal (the paper's Table 4 precision).
pub fn pct1(v: f64) -> String {
    format!("{v:.1}")
}

/// A labelled series plus its geometric mean, the paper's summary metric.
pub fn with_geomean(values: &[f64]) -> (Vec<String>, String) {
    (values.iter().map(|v| f2(*v)).collect(), f2(geometric_mean(values)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["bench", "speedup"]);
        t.row(["QE", "1.44"]);
        t.row(["HM", "1.10"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[2].ends_with("1.44"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(&["a", "bb"], &[1.0, 2.0], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(&"█".repeat(5)));
        assert!(lines[1].contains(&"█".repeat(10)));
        assert!(lines[1].ends_with("2.00"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bar_chart_rejects_ragged_input() {
        let _ = bar_chart(&["a"], &[1.0, 2.0], 10);
    }

    #[test]
    fn geomean_helper() {
        let (cells, gm) = with_geomean(&[1.0, 4.0]);
        assert_eq!(cells, vec!["1.00", "4.00"]);
        assert_eq!(gm, "2.00");
    }
}
