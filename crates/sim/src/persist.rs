//! JSON codec for [`ExperimentResult`], used by the harness ledger.
//!
//! The resume ledger stores each completed experiment's full
//! [`RunSummary`] so a resumed sweep can rebuild its figures without
//! re-simulating. Encoding is explicit field-by-field (no derive): the
//! ledger is an on-disk format read by later runs, and decode failures
//! must degrade to "re-run the job", never to a panic — so
//! [`result_from_json`] returns `Option` and the harness treats `None`
//! as an unreadable record.

use crate::runner::{ExperimentResult, ExperimentSpec};
use proteus_harness::Json;
use proteus_types::config::{
    CacheConfig, CacheLevelConfig, CoreConfig, EngineConfig, LoggingSchemeKind, MemConfig, MemTech,
    ProteusHwConfig, SystemConfig,
};
use proteus_types::stats::{
    CacheStats, CoherenceStats, CoreStats, MemStats, RunSummary, StallCause,
};
use proteus_workgen::WorkloadSel;
use proteus_workloads::WorkloadParams;

fn u(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn core_to_json(c: &CoreStats) -> Json {
    // Stall cycles: only non-zero causes, keyed by their stable label.
    let stalls: Vec<(String, Json)> = StallCause::ALL
        .iter()
        .filter(|&&cause| c.stall(cause) > 0)
        .map(|&cause| (cause.to_string(), Json::U64(c.stall(cause))))
        .collect();
    Json::obj([
        ("cycles", Json::U64(c.cycles)),
        ("uops_retired", Json::U64(c.uops_retired)),
        ("loads", Json::U64(c.loads)),
        ("stores", Json::U64(c.stores)),
        ("clwbs", Json::U64(c.clwbs)),
        ("fences", Json::U64(c.fences)),
        ("log_loads", Json::U64(c.log_loads)),
        ("log_flushes", Json::U64(c.log_flushes)),
        ("log_flushes_elided", Json::U64(c.log_flushes_elided)),
        ("atom_log_entries", Json::U64(c.atom_log_entries)),
        ("atom_log_elided", Json::U64(c.atom_log_elided)),
        ("transactions", Json::U64(c.transactions)),
        ("llt_lookups", Json::U64(c.llt_lookups)),
        ("llt_hits", Json::U64(c.llt_hits)),
        ("stalls", Json::Obj(stalls)),
    ])
}

fn core_from_json(v: &Json) -> Option<CoreStats> {
    let mut c = CoreStats::new();
    c.cycles = u(v, "cycles")?;
    c.uops_retired = u(v, "uops_retired")?;
    c.loads = u(v, "loads")?;
    c.stores = u(v, "stores")?;
    c.clwbs = u(v, "clwbs")?;
    c.fences = u(v, "fences")?;
    c.log_loads = u(v, "log_loads")?;
    c.log_flushes = u(v, "log_flushes")?;
    c.log_flushes_elided = u(v, "log_flushes_elided")?;
    c.atom_log_entries = u(v, "atom_log_entries")?;
    c.atom_log_elided = u(v, "atom_log_elided")?;
    c.transactions = u(v, "transactions")?;
    c.llt_lookups = u(v, "llt_lookups")?;
    c.llt_hits = u(v, "llt_hits")?;
    if let Json::Obj(pairs) = v.get("stalls")? {
        for (label, count) in pairs {
            let cause = StallCause::ALL.iter().find(|c| &c.to_string() == label)?;
            c.add_stall_cycles(*cause, count.as_u64()?);
        }
    } else {
        return None;
    }
    Some(c)
}

fn mem_to_json(m: &MemStats) -> Json {
    Json::obj([
        ("nvmm_reads", Json::U64(m.nvmm_reads)),
        ("nvmm_data_writes", Json::U64(m.nvmm_data_writes)),
        ("nvmm_log_writes", Json::U64(m.nvmm_log_writes)),
        ("nvmm_log_invalidation_writes", Json::U64(m.nvmm_log_invalidation_writes)),
        ("wpq_inserts", Json::U64(m.wpq_inserts)),
        ("lpq_inserts", Json::U64(m.lpq_inserts)),
        ("lpq_flash_cleared", Json::U64(m.lpq_flash_cleared)),
        ("lpq_drained", Json::U64(m.lpq_drained)),
        ("wpq_log_dropped", Json::U64(m.wpq_log_dropped)),
        ("pcommits", Json::U64(m.pcommits)),
        ("read_queue_wait_cycles", Json::U64(m.read_queue_wait_cycles)),
        ("wpq_peak_occupancy", Json::U64(m.wpq_peak_occupancy as u64)),
        ("lpq_peak_occupancy", Json::U64(m.lpq_peak_occupancy as u64)),
        ("lpq_full_rejections", Json::U64(m.lpq_full_rejections)),
        ("wpq_full_rejections", Json::U64(m.wpq_full_rejections)),
    ])
}

fn mem_from_json(v: &Json) -> Option<MemStats> {
    Some(MemStats {
        nvmm_reads: u(v, "nvmm_reads")?,
        nvmm_data_writes: u(v, "nvmm_data_writes")?,
        nvmm_log_writes: u(v, "nvmm_log_writes")?,
        nvmm_log_invalidation_writes: u(v, "nvmm_log_invalidation_writes")?,
        wpq_inserts: u(v, "wpq_inserts")?,
        lpq_inserts: u(v, "lpq_inserts")?,
        lpq_flash_cleared: u(v, "lpq_flash_cleared")?,
        lpq_drained: u(v, "lpq_drained")?,
        wpq_log_dropped: u(v, "wpq_log_dropped")?,
        pcommits: u(v, "pcommits")?,
        read_queue_wait_cycles: u(v, "read_queue_wait_cycles")?,
        wpq_peak_occupancy: v.get("wpq_peak_occupancy")?.as_usize()?,
        lpq_peak_occupancy: v.get("lpq_peak_occupancy")?.as_usize()?,
        lpq_full_rejections: u(v, "lpq_full_rejections")?,
        wpq_full_rejections: u(v, "wpq_full_rejections")?,
    })
}

fn cache_to_json(c: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::U64(c.hits)),
        ("misses", Json::U64(c.misses)),
        ("writebacks", Json::U64(c.writebacks)),
        ("clwb_flushes", Json::U64(c.clwb_flushes)),
    ])
}

fn cache_from_json(v: &Json) -> Option<CacheStats> {
    Some(CacheStats {
        hits: u(v, "hits")?,
        misses: u(v, "misses")?,
        writebacks: u(v, "writebacks")?,
        clwb_flushes: u(v, "clwb_flushes")?,
    })
}

fn coherence_to_json(c: &CoherenceStats) -> Json {
    Json::obj([
        ("invalidations", Json::U64(c.invalidations)),
        ("remote_transfers", Json::U64(c.remote_transfers)),
        ("coherence_misses", Json::U64(c.coherence_misses)),
        ("lock_acquires", Json::U64(c.lock_acquires)),
    ])
}

fn coherence_from_json(v: &Json) -> Option<CoherenceStats> {
    Some(CoherenceStats {
        invalidations: u(v, "invalidations")?,
        remote_transfers: u(v, "remote_transfers")?,
        coherence_misses: u(v, "coherence_misses")?,
        lock_acquires: u(v, "lock_acquires")?,
    })
}

/// Encodes a summary as a JSON object. Coherence counters appear only
/// when non-zero: single-owner summaries stay byte-identical to the
/// pre-coherence encoding, so old ledgers and goldens remain valid.
pub fn summary_to_json(s: &RunSummary) -> Json {
    let mut fields = vec![
        ("total_cycles", Json::U64(s.total_cycles)),
        ("core", Json::Arr(s.core.iter().map(core_to_json).collect())),
        ("mem", mem_to_json(&s.mem)),
        ("l1d", cache_to_json(&s.l1d)),
        ("l2", cache_to_json(&s.l2)),
        ("l3", cache_to_json(&s.l3)),
    ];
    if !s.coherence.is_zero() {
        fields.push(("coherence", coherence_to_json(&s.coherence)));
    }
    Json::obj(fields)
}

/// Decodes a summary; `None` on any missing or mistyped field (the
/// optional `coherence` object defaults to zero when absent).
pub fn summary_from_json(v: &Json) -> Option<RunSummary> {
    Some(RunSummary {
        total_cycles: u(v, "total_cycles")?,
        core: v
            .get("core")?
            .as_arr()?
            .iter()
            .map(core_from_json)
            .collect::<Option<Vec<CoreStats>>>()?,
        mem: mem_from_json(v.get("mem")?)?,
        l1d: cache_from_json(v.get("l1d")?)?,
        l2: cache_from_json(v.get("l2")?)?,
        l3: cache_from_json(v.get("l3")?)?,
        coherence: match v.get("coherence") {
            Some(c) => coherence_from_json(c)?,
            None => CoherenceStats::default(),
        },
    })
}

/// Encodes a workload selector. Paper benchmarks keep their historical
/// encoding (`{"kind":"QE"}`, `LargeTx` with its element count);
/// generated specs nest the full spec. Delegates to
/// [`proteus_workgen::codec`], the single owner of this format.
pub fn bench_to_json(bench: &WorkloadSel) -> Json {
    proteus_workgen::codec::sel_to_json(bench)
}

/// Decodes a workload selector; `None` on unknown kinds.
pub fn bench_from_json(v: &Json) -> Option<WorkloadSel> {
    proteus_workgen::codec::sel_from_json(v)
}

/// Encodes workload parameters (shared with the op-trace header codec).
pub fn params_to_json(p: &WorkloadParams) -> Json {
    proteus_workgen::codec::params_to_json(p)
}

/// Decodes workload parameters; `None` on any missing or mistyped field.
pub fn params_from_json(v: &Json) -> Option<WorkloadParams> {
    proteus_workgen::codec::params_from_json(v)
}

/// Encodes a logging scheme as its stable report label.
pub fn scheme_to_json(s: LoggingSchemeKind) -> Json {
    Json::str(s.label())
}

/// Resolves a scheme from its report label; `None` on unknown labels.
pub fn scheme_from_label(label: &str) -> Option<LoggingSchemeKind> {
    LoggingSchemeKind::ALL.into_iter().find(|s| s.label() == label)
}

fn core_cfg_to_json(c: &CoreConfig) -> Json {
    Json::obj([
        ("freq_mhz", Json::U64(c.freq_mhz)),
        ("width", Json::U64(c.width as u64)),
        ("rob_entries", Json::U64(c.rob_entries as u64)),
        ("fetchq_entries", Json::U64(c.fetchq_entries as u64)),
        ("issueq_entries", Json::U64(c.issueq_entries as u64)),
        ("loadq_entries", Json::U64(c.loadq_entries as u64)),
        ("storeq_entries", Json::U64(c.storeq_entries as u64)),
    ])
}

fn core_cfg_from_json(v: &Json) -> Option<CoreConfig> {
    Some(CoreConfig {
        freq_mhz: u(v, "freq_mhz")?,
        width: v.get("width")?.as_usize()?,
        rob_entries: v.get("rob_entries")?.as_usize()?,
        fetchq_entries: v.get("fetchq_entries")?.as_usize()?,
        issueq_entries: v.get("issueq_entries")?.as_usize()?,
        loadq_entries: v.get("loadq_entries")?.as_usize()?,
        storeq_entries: v.get("storeq_entries")?.as_usize()?,
    })
}

fn cache_level_to_json(c: &CacheLevelConfig) -> Json {
    Json::obj([
        ("size_bytes", Json::U64(c.size_bytes)),
        ("ways", Json::U64(c.ways as u64)),
        ("latency", Json::U64(c.latency)),
    ])
}

fn cache_level_from_json(v: &Json) -> Option<CacheLevelConfig> {
    Some(CacheLevelConfig {
        size_bytes: u(v, "size_bytes")?,
        ways: v.get("ways")?.as_usize()?,
        latency: u(v, "latency")?,
    })
}

fn mem_cfg_to_json(m: &MemConfig) -> Json {
    Json::obj([
        ("tech", Json::str(m.tech.label())),
        ("banks", Json::U64(m.banks as u64)),
        ("row_buffer_bytes", Json::U64(m.row_buffer_bytes)),
        ("read_queue_entries", Json::U64(m.read_queue_entries as u64)),
        ("wpq_entries", Json::U64(m.wpq_entries as u64)),
        ("lpq_entries", Json::U64(m.lpq_entries as u64)),
        ("adr", Json::Bool(m.adr)),
        ("wpq_high_watermark_pct", Json::U64(m.wpq_high_watermark_pct as u64)),
        ("wpq_low_watermark_pct", Json::U64(m.wpq_low_watermark_pct as u64)),
    ])
}

fn mem_cfg_from_json(v: &Json) -> Option<MemConfig> {
    let tech = match v.get("tech")?.as_str()? {
        "dram" => MemTech::Dram,
        "nvm-fast" => MemTech::NvmFast,
        "nvm-slow" => MemTech::NvmSlow,
        _ => return None,
    };
    Some(MemConfig {
        tech,
        banks: v.get("banks")?.as_usize()?,
        row_buffer_bytes: u(v, "row_buffer_bytes")?,
        read_queue_entries: v.get("read_queue_entries")?.as_usize()?,
        wpq_entries: v.get("wpq_entries")?.as_usize()?,
        lpq_entries: v.get("lpq_entries")?.as_usize()?,
        adr: v.get("adr")?.as_bool()?,
        wpq_high_watermark_pct: u8::try_from(u(v, "wpq_high_watermark_pct")?).ok()?,
        wpq_low_watermark_pct: u8::try_from(u(v, "wpq_low_watermark_pct")?).ok()?,
    })
}

fn proteus_cfg_to_json(p: &ProteusHwConfig) -> Json {
    Json::obj([
        ("log_registers", Json::U64(p.log_registers as u64)),
        ("logq_entries", Json::U64(p.logq_entries as u64)),
        ("llt_entries", Json::U64(p.llt_entries as u64)),
        ("llt_ways", Json::U64(p.llt_ways as u64)),
        ("disable_persist_ordering", Json::Bool(p.disable_persist_ordering)),
    ])
}

fn proteus_cfg_from_json(v: &Json) -> Option<ProteusHwConfig> {
    Some(ProteusHwConfig {
        log_registers: v.get("log_registers")?.as_usize()?,
        logq_entries: v.get("logq_entries")?.as_usize()?,
        llt_entries: v.get("llt_entries")?.as_usize()?,
        llt_ways: v.get("llt_ways")?.as_usize()?,
        disable_persist_ordering: v.get("disable_persist_ordering")?.as_bool()?,
    })
}

/// Encodes a full system configuration (every field, no defaults
/// assumed): a decoded config must behave identically on a worker built
/// from a different checkout of the same version.
pub fn config_to_json(c: &SystemConfig) -> Json {
    Json::obj([
        ("num_cores", Json::U64(c.num_cores as u64)),
        ("cores", core_cfg_to_json(&c.cores)),
        (
            "caches",
            Json::obj([
                ("l1d", cache_level_to_json(&c.caches.l1d)),
                ("l2", cache_level_to_json(&c.caches.l2)),
                ("l3", cache_level_to_json(&c.caches.l3)),
            ]),
        ),
        ("mem", mem_cfg_to_json(&c.mem)),
        ("proteus", proteus_cfg_to_json(&c.proteus)),
    ])
}

/// Decodes a system configuration; `None` on any missing field.
pub fn config_from_json(v: &Json) -> Option<SystemConfig> {
    let caches = v.get("caches")?;
    Some(SystemConfig {
        num_cores: v.get("num_cores")?.as_usize()?,
        cores: core_cfg_from_json(v.get("cores")?)?,
        caches: CacheConfig {
            l1d: cache_level_from_json(caches.get("l1d")?)?,
            l2: cache_level_from_json(caches.get("l2")?)?,
            l3: cache_level_from_json(caches.get("l3")?)?,
        },
        mem: mem_cfg_from_json(v.get("mem")?)?,
        proteus: proteus_cfg_from_json(v.get("proteus")?)?,
    })
}

/// Encodes a complete experiment spec (the distributed-sweep wire form).
/// Field order mirrors the spec's stable-hash field order.
pub fn spec_to_json(s: &ExperimentSpec) -> Json {
    Json::obj([
        ("config", config_to_json(&s.config)),
        ("scheme", scheme_to_json(s.scheme)),
        ("bench", bench_to_json(&s.bench)),
        ("params", params_to_json(&s.params)),
    ])
}

/// Decodes an experiment spec; `None` on malformed input.
pub fn spec_from_json(v: &Json) -> Option<ExperimentSpec> {
    Some(ExperimentSpec {
        config: config_from_json(v.get("config")?)?,
        scheme: scheme_from_label(v.get("scheme")?.as_str()?)?,
        bench: bench_from_json(v.get("bench")?)?,
        params: params_from_json(v.get("params")?)?,
        engine: EngineConfig::default(),
    })
}

/// Encodes an experiment result for the ledger.
pub fn result_to_json(r: &ExperimentResult) -> Json {
    Json::obj([("name", Json::str(r.name.clone())), ("summary", summary_to_json(&r.summary))])
}

/// Decodes a ledgered experiment result; `None` on malformed input.
pub fn result_from_json(v: &Json) -> Option<ExperimentResult> {
    Some(ExperimentResult {
        name: v.get("name")?.as_str()?.to_string(),
        summary: summary_from_json(v.get("summary")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workloads::Benchmark;

    fn busy_summary() -> RunSummary {
        let mut core0 = CoreStats::new();
        core0.cycles = 123_456;
        core0.uops_retired = 9999;
        core0.loads = 1000;
        core0.stores = 500;
        core0.clwbs = 77;
        core0.fences = 12;
        core0.log_loads = 3;
        core0.log_flushes = 450;
        core0.log_flushes_elided = 90;
        core0.transactions = 50;
        core0.llt_lookups = 450;
        core0.llt_hits = 90;
        core0.add_stall_cycles(StallCause::RobFull, 200);
        core0.add_stall_cycles(StallCause::LogQFull, 31);
        let mut core1 = CoreStats::new();
        core1.cycles = 120_000;
        core1.add_stall_cycles(StallCause::FenceDrain, 7);
        let mut mem = MemStats::new();
        mem.nvmm_reads = 4000;
        mem.nvmm_data_writes = 800;
        mem.nvmm_log_writes = 120;
        mem.nvmm_log_invalidation_writes = 5;
        mem.wpq_inserts = 900;
        mem.lpq_inserts = 450;
        mem.lpq_flash_cleared = 400;
        mem.lpq_drained = 50;
        mem.wpq_peak_occupancy = 37;
        mem.lpq_peak_occupancy = 12;
        RunSummary {
            total_cycles: 123_456,
            core: vec![core0, core1],
            mem,
            l1d: CacheStats { hits: 9000, misses: 1000, writebacks: 300, clwb_flushes: 77 },
            l2: CacheStats { hits: 700, misses: 300, writebacks: 150, clwb_flushes: 0 },
            l3: CacheStats { hits: 200, misses: 100, writebacks: 80, clwb_flushes: 0 },
            coherence: CoherenceStats::default(),
        }
    }

    #[test]
    fn result_round_trips_exactly() {
        let original = ExperimentResult { name: "QE/Proteus".to_string(), summary: busy_summary() };
        let line = result_to_json(&original).to_line();
        let parsed = proteus_harness::json::parse(&line).unwrap();
        let back = result_from_json(&parsed).unwrap();
        assert_eq!(back.name, original.name);
        assert_eq!(back.summary, original.summary);
        // Derived metrics survive (stall array restored through labels).
        assert_eq!(
            back.summary.cores_merged().total_stall_cycles(),
            original.summary.cores_merged().total_stall_cycles()
        );
        assert_eq!(
            back.summary.core[0].stall(StallCause::LogQFull),
            original.summary.core[0].stall(StallCause::LogQFull)
        );
    }

    #[test]
    fn malformed_records_decode_to_none_not_panic() {
        for text in [
            r#"{}"#,
            r#"{"name":"x"}"#,
            r#"{"name":"x","summary":{}}"#,
            r#"{"name":"x","summary":{"total_cycles":"not a number"}}"#,
            r#"{"name":7,"summary":{}}"#,
        ] {
            let v = proteus_harness::json::parse(text).unwrap();
            assert!(result_from_json(&v).is_none(), "{text}");
        }
        // Unknown stall labels (from a newer simulator) invalidate the
        // record so the job re-runs rather than silently losing cycles.
        let mut v = result_to_json(&ExperimentResult { name: "x".into(), summary: busy_summary() })
            .to_line();
        v = v.replace("rob-full", "weird-new-cause");
        let parsed = proteus_harness::json::parse(&v).unwrap();
        assert!(result_from_json(&parsed).is_none());
    }

    #[test]
    fn bench_params_scheme_round_trip_all_variants() {
        for b in [
            Benchmark::Queue,
            Benchmark::HashMap,
            Benchmark::StringSwap,
            Benchmark::AvlTree,
            Benchmark::BTree,
            Benchmark::RbTree,
            Benchmark::LargeTx { elements: 2048 },
        ] {
            let sel: WorkloadSel = b.into();
            assert_eq!(bench_from_json(&bench_to_json(&sel)), Some(sel));
        }
        let p = WorkloadParams { threads: 3, init_ops: 1234, sim_ops: 567, seed: 0xDEAD_BEEF };
        assert_eq!(params_from_json(&params_to_json(&p)), Some(p));
        for s in LoggingSchemeKind::ALL {
            assert_eq!(scheme_from_label(scheme_to_json(s).as_str().unwrap()), Some(s));
        }
        assert_eq!(scheme_from_label("NotAScheme"), None);
        assert_eq!(bench_from_json(&Json::obj([("kind", Json::str("??"))])), None);
    }

    #[test]
    fn spec_round_trips_exactly_and_preserves_hash() {
        let spec = ExperimentSpec {
            config: SystemConfig::skylake_like()
                .with_num_cores(2)
                .with_mem_tech(MemTech::NvmSlow)
                .with_logq_entries(8)
                .with_cache_divisor(4),
            scheme: LoggingSchemeKind::Proteus,
            bench: Benchmark::HashMap.into(),
            params: WorkloadParams { threads: 2, init_ops: 500, sim_ops: 100, seed: 7 },
            engine: EngineConfig::default(),
        };
        let line = spec_to_json(&spec).to_line();
        let parsed = proteus_harness::json::parse(&line).unwrap();
        let back = spec_from_json(&parsed).unwrap();
        assert_eq!(back, spec);
        // The spec hash is the distributed dedup/resume identity: a
        // wire round trip must never move it.
        assert_eq!(back.spec_hash(), spec.spec_hash());
        // Re-encoding is byte-identical (field order is pinned).
        assert_eq!(spec_to_json(&back).to_line(), line);
    }

    #[test]
    fn spec_encoding_is_byte_pinned() {
        // The wire encoding doubles as an on-disk format; this pins the
        // exact bytes so accidental field reorders or renames fail here
        // rather than silently orphaning ledgers.
        let spec = ExperimentSpec {
            config: SystemConfig::skylake_like(),
            scheme: LoggingSchemeKind::Atom,
            bench: Benchmark::LargeTx { elements: 64 }.into(),
            params: WorkloadParams { threads: 1, init_ops: 10, sim_ops: 5, seed: 42 },
            engine: EngineConfig::default(),
        };
        let line = spec_to_json(&spec).to_line();
        assert_eq!(
            line,
            concat!(
                r#"{"config":{"num_cores":4,"cores":{"freq_mhz":3400,"width":5,"#,
                r#""rob_entries":224,"fetchq_entries":48,"issueq_entries":64,"#,
                r#""loadq_entries":72,"storeq_entries":56},"caches":{"#,
                r#""l1d":{"size_bytes":32768,"ways":8,"latency":4},"#,
                r#""l2":{"size_bytes":262144,"ways":8,"latency":12},"#,
                r#""l3":{"size_bytes":8388608,"ways":16,"latency":42}},"#,
                r#""mem":{"tech":"nvm-fast","banks":16,"row_buffer_bytes":2048,"#,
                r#""read_queue_entries":64,"wpq_entries":64,"lpq_entries":256,"#,
                r#""adr":true,"wpq_high_watermark_pct":75,"wpq_low_watermark_pct":25},"#,
                r#""proteus":{"log_registers":8,"logq_entries":16,"llt_entries":64,"#,
                r#""llt_ways":8,"disable_persist_ordering":false}},"#,
                r#""scheme":"ATOM","bench":{"kind":"LT","elements":64},"#,
                r#""params":{"threads":1,"init_ops":10,"sim_ops":5,"seed":42}}"#,
            )
        );
    }

    #[test]
    fn malformed_specs_decode_to_none_not_panic() {
        for text in [
            r#"{}"#,
            r#"{"config":{},"scheme":"ATOM","bench":{"kind":"QE"},"params":{}}"#,
            r#"{"config":null,"scheme":"NotAScheme","bench":{"kind":"QE"},"params":{"threads":1,"init_ops":1,"sim_ops":1,"seed":1}}"#,
        ] {
            let v = proteus_harness::json::parse(text).unwrap();
            assert!(spec_from_json(&v).is_none(), "{text}");
        }
        // A config missing one nested field is rejected whole.
        let spec = ExperimentSpec {
            config: SystemConfig::skylake_like(),
            scheme: LoggingSchemeKind::Proteus,
            bench: Benchmark::Queue.into(),
            params: WorkloadParams { threads: 1, init_ops: 1, sim_ops: 1, seed: 1 },
            engine: EngineConfig::default(),
        };
        let line = spec_to_json(&spec).to_line().replace(r#""llt_ways":8,"#, "");
        let parsed = proteus_harness::json::parse(&line).unwrap();
        assert!(spec_from_json(&parsed).is_none());
    }
}
