//! JSON codec for [`ExperimentResult`], used by the harness ledger.
//!
//! The resume ledger stores each completed experiment's full
//! [`RunSummary`] so a resumed sweep can rebuild its figures without
//! re-simulating. Encoding is explicit field-by-field (no derive): the
//! ledger is an on-disk format read by later runs, and decode failures
//! must degrade to "re-run the job", never to a panic — so
//! [`result_from_json`] returns `Option` and the harness treats `None`
//! as an unreadable record.

use crate::runner::ExperimentResult;
use proteus_harness::Json;
use proteus_types::stats::{CacheStats, CoreStats, MemStats, RunSummary, StallCause};

fn u(v: &Json, key: &str) -> Option<u64> {
    v.get(key)?.as_u64()
}

fn core_to_json(c: &CoreStats) -> Json {
    // Stall cycles: only non-zero causes, keyed by their stable label.
    let stalls: Vec<(String, Json)> = StallCause::ALL
        .iter()
        .filter(|&&cause| c.stall(cause) > 0)
        .map(|&cause| (cause.to_string(), Json::U64(c.stall(cause))))
        .collect();
    Json::obj([
        ("cycles", Json::U64(c.cycles)),
        ("uops_retired", Json::U64(c.uops_retired)),
        ("loads", Json::U64(c.loads)),
        ("stores", Json::U64(c.stores)),
        ("clwbs", Json::U64(c.clwbs)),
        ("fences", Json::U64(c.fences)),
        ("log_loads", Json::U64(c.log_loads)),
        ("log_flushes", Json::U64(c.log_flushes)),
        ("log_flushes_elided", Json::U64(c.log_flushes_elided)),
        ("atom_log_entries", Json::U64(c.atom_log_entries)),
        ("atom_log_elided", Json::U64(c.atom_log_elided)),
        ("transactions", Json::U64(c.transactions)),
        ("llt_lookups", Json::U64(c.llt_lookups)),
        ("llt_hits", Json::U64(c.llt_hits)),
        ("stalls", Json::Obj(stalls)),
    ])
}

fn core_from_json(v: &Json) -> Option<CoreStats> {
    let mut c = CoreStats::new();
    c.cycles = u(v, "cycles")?;
    c.uops_retired = u(v, "uops_retired")?;
    c.loads = u(v, "loads")?;
    c.stores = u(v, "stores")?;
    c.clwbs = u(v, "clwbs")?;
    c.fences = u(v, "fences")?;
    c.log_loads = u(v, "log_loads")?;
    c.log_flushes = u(v, "log_flushes")?;
    c.log_flushes_elided = u(v, "log_flushes_elided")?;
    c.atom_log_entries = u(v, "atom_log_entries")?;
    c.atom_log_elided = u(v, "atom_log_elided")?;
    c.transactions = u(v, "transactions")?;
    c.llt_lookups = u(v, "llt_lookups")?;
    c.llt_hits = u(v, "llt_hits")?;
    if let Json::Obj(pairs) = v.get("stalls")? {
        for (label, count) in pairs {
            let cause = StallCause::ALL.iter().find(|c| &c.to_string() == label)?;
            c.add_stall_cycles(*cause, count.as_u64()?);
        }
    } else {
        return None;
    }
    Some(c)
}

fn mem_to_json(m: &MemStats) -> Json {
    Json::obj([
        ("nvmm_reads", Json::U64(m.nvmm_reads)),
        ("nvmm_data_writes", Json::U64(m.nvmm_data_writes)),
        ("nvmm_log_writes", Json::U64(m.nvmm_log_writes)),
        ("nvmm_log_invalidation_writes", Json::U64(m.nvmm_log_invalidation_writes)),
        ("wpq_inserts", Json::U64(m.wpq_inserts)),
        ("lpq_inserts", Json::U64(m.lpq_inserts)),
        ("lpq_flash_cleared", Json::U64(m.lpq_flash_cleared)),
        ("lpq_drained", Json::U64(m.lpq_drained)),
        ("wpq_log_dropped", Json::U64(m.wpq_log_dropped)),
        ("pcommits", Json::U64(m.pcommits)),
        ("read_queue_wait_cycles", Json::U64(m.read_queue_wait_cycles)),
        ("wpq_peak_occupancy", Json::U64(m.wpq_peak_occupancy as u64)),
        ("lpq_peak_occupancy", Json::U64(m.lpq_peak_occupancy as u64)),
        ("lpq_full_rejections", Json::U64(m.lpq_full_rejections)),
        ("wpq_full_rejections", Json::U64(m.wpq_full_rejections)),
    ])
}

fn mem_from_json(v: &Json) -> Option<MemStats> {
    Some(MemStats {
        nvmm_reads: u(v, "nvmm_reads")?,
        nvmm_data_writes: u(v, "nvmm_data_writes")?,
        nvmm_log_writes: u(v, "nvmm_log_writes")?,
        nvmm_log_invalidation_writes: u(v, "nvmm_log_invalidation_writes")?,
        wpq_inserts: u(v, "wpq_inserts")?,
        lpq_inserts: u(v, "lpq_inserts")?,
        lpq_flash_cleared: u(v, "lpq_flash_cleared")?,
        lpq_drained: u(v, "lpq_drained")?,
        wpq_log_dropped: u(v, "wpq_log_dropped")?,
        pcommits: u(v, "pcommits")?,
        read_queue_wait_cycles: u(v, "read_queue_wait_cycles")?,
        wpq_peak_occupancy: v.get("wpq_peak_occupancy")?.as_usize()?,
        lpq_peak_occupancy: v.get("lpq_peak_occupancy")?.as_usize()?,
        lpq_full_rejections: u(v, "lpq_full_rejections")?,
        wpq_full_rejections: u(v, "wpq_full_rejections")?,
    })
}

fn cache_to_json(c: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::U64(c.hits)),
        ("misses", Json::U64(c.misses)),
        ("writebacks", Json::U64(c.writebacks)),
        ("clwb_flushes", Json::U64(c.clwb_flushes)),
    ])
}

fn cache_from_json(v: &Json) -> Option<CacheStats> {
    Some(CacheStats {
        hits: u(v, "hits")?,
        misses: u(v, "misses")?,
        writebacks: u(v, "writebacks")?,
        clwb_flushes: u(v, "clwb_flushes")?,
    })
}

/// Encodes a summary as a JSON object.
pub fn summary_to_json(s: &RunSummary) -> Json {
    Json::obj([
        ("total_cycles", Json::U64(s.total_cycles)),
        ("core", Json::Arr(s.core.iter().map(core_to_json).collect())),
        ("mem", mem_to_json(&s.mem)),
        ("l1d", cache_to_json(&s.l1d)),
        ("l2", cache_to_json(&s.l2)),
        ("l3", cache_to_json(&s.l3)),
    ])
}

/// Decodes a summary; `None` on any missing or mistyped field.
pub fn summary_from_json(v: &Json) -> Option<RunSummary> {
    Some(RunSummary {
        total_cycles: u(v, "total_cycles")?,
        core: v
            .get("core")?
            .as_arr()?
            .iter()
            .map(core_from_json)
            .collect::<Option<Vec<CoreStats>>>()?,
        mem: mem_from_json(v.get("mem")?)?,
        l1d: cache_from_json(v.get("l1d")?)?,
        l2: cache_from_json(v.get("l2")?)?,
        l3: cache_from_json(v.get("l3")?)?,
    })
}

/// Encodes an experiment result for the ledger.
pub fn result_to_json(r: &ExperimentResult) -> Json {
    Json::obj([("name", Json::str(r.name.clone())), ("summary", summary_to_json(&r.summary))])
}

/// Decodes a ledgered experiment result; `None` on malformed input.
pub fn result_from_json(v: &Json) -> Option<ExperimentResult> {
    Some(ExperimentResult {
        name: v.get("name")?.as_str()?.to_string(),
        summary: summary_from_json(v.get("summary")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_summary() -> RunSummary {
        let mut core0 = CoreStats::new();
        core0.cycles = 123_456;
        core0.uops_retired = 9999;
        core0.loads = 1000;
        core0.stores = 500;
        core0.clwbs = 77;
        core0.fences = 12;
        core0.log_loads = 3;
        core0.log_flushes = 450;
        core0.log_flushes_elided = 90;
        core0.transactions = 50;
        core0.llt_lookups = 450;
        core0.llt_hits = 90;
        core0.add_stall_cycles(StallCause::RobFull, 200);
        core0.add_stall_cycles(StallCause::LogQFull, 31);
        let mut core1 = CoreStats::new();
        core1.cycles = 120_000;
        core1.add_stall_cycles(StallCause::FenceDrain, 7);
        let mut mem = MemStats::new();
        mem.nvmm_reads = 4000;
        mem.nvmm_data_writes = 800;
        mem.nvmm_log_writes = 120;
        mem.nvmm_log_invalidation_writes = 5;
        mem.wpq_inserts = 900;
        mem.lpq_inserts = 450;
        mem.lpq_flash_cleared = 400;
        mem.lpq_drained = 50;
        mem.wpq_peak_occupancy = 37;
        mem.lpq_peak_occupancy = 12;
        RunSummary {
            total_cycles: 123_456,
            core: vec![core0, core1],
            mem,
            l1d: CacheStats { hits: 9000, misses: 1000, writebacks: 300, clwb_flushes: 77 },
            l2: CacheStats { hits: 700, misses: 300, writebacks: 150, clwb_flushes: 0 },
            l3: CacheStats { hits: 200, misses: 100, writebacks: 80, clwb_flushes: 0 },
        }
    }

    #[test]
    fn result_round_trips_exactly() {
        let original = ExperimentResult { name: "QE/Proteus".to_string(), summary: busy_summary() };
        let line = result_to_json(&original).to_line();
        let parsed = proteus_harness::json::parse(&line).unwrap();
        let back = result_from_json(&parsed).unwrap();
        assert_eq!(back.name, original.name);
        assert_eq!(back.summary, original.summary);
        // Derived metrics survive (stall array restored through labels).
        assert_eq!(
            back.summary.cores_merged().total_stall_cycles(),
            original.summary.cores_merged().total_stall_cycles()
        );
        assert_eq!(
            back.summary.core[0].stall(StallCause::LogQFull),
            original.summary.core[0].stall(StallCause::LogQFull)
        );
    }

    #[test]
    fn malformed_records_decode_to_none_not_panic() {
        for text in [
            r#"{}"#,
            r#"{"name":"x"}"#,
            r#"{"name":"x","summary":{}}"#,
            r#"{"name":"x","summary":{"total_cycles":"not a number"}}"#,
            r#"{"name":7,"summary":{}}"#,
        ] {
            let v = proteus_harness::json::parse(text).unwrap();
            assert!(result_from_json(&v).is_none(), "{text}");
        }
        // Unknown stall labels (from a newer simulator) invalidate the
        // record so the job re-runs rather than silently losing cycles.
        let mut v = result_to_json(&ExperimentResult { name: "x".into(), summary: busy_summary() })
            .to_line();
        v = v.replace("rob-full", "weird-new-cause");
        let parsed = proteus_harness::json::parse(&v).unwrap();
        assert!(result_from_json(&parsed).is_none());
    }
}
