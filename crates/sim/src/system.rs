//! The simulated machine: cores + caches + memory controller.

use crate::parallel::{self, EnginePhaseTimes, QuantumResult, QuantumTask, Submission, Unit};
use proteus_cache::{CacheSystem, CorePrivates, QuantumGate};
use proteus_core::layout::AddressLayout;
use proteus_core::pmem::WordImage;
use proteus_core::recovery::{recover, RecoveryReport};
use proteus_core::scheme::{expand_program_with, registry, ExpandOptions};
use proteus_cpu::core::{decode_core, Core, MC_LINK_DELAY, UNCACHED_DELAY};
use proteus_mem::{CrashFaults, LogDrainMode, McEvent, McRequest, MemoryController, PersistEvent};
use proteus_trace::{TraceReport, Tracer, TrackKind};
use proteus_types::clock::{Cycle, NextEvent};
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig, TraceConfig};
use proteus_types::stats::RunSummary;
use proteus_types::{SimError, ThreadId};
use proteus_workloads::GeneratedWorkload;
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// A complete simulated machine executing one workload under one logging
/// scheme.
#[derive(Debug)]
pub struct System {
    cores: Vec<Core>,
    caches: CacheSystem,
    mc: MemoryController,
    inbox: VecDeque<(Cycle, usize, McEvent)>,
    now: Cycle,
    layout: AddressLayout,
    scheme: LoggingSchemeKind,
    threads: Vec<ThreadId>,
    max_cycles: Cycle,
    cache_tracer: Tracer,
    trace_sample_interval: Cycle,
    /// Event-driven fast-forwarding (see `DESIGN.md` §6). Forced off when
    /// cycle tracing is enabled — tracers sample per cycle.
    fast_forward: bool,
    /// Tracing needs every cycle ticked, so it pins the engine to
    /// single-stepping regardless of [`System::set_fast_forward`].
    single_step_forced: bool,
    /// Cross-validate every skip by single-stepping it and asserting the
    /// state fingerprint never moves (also enabled by the `paranoid`
    /// cargo feature).
    validate_skips: bool,
    /// Reusable buffer for core→controller requests (no per-cycle
    /// allocation).
    req_buf: Vec<(Cycle, McRequest)>,
    /// Cycles left before the engine probes [`System::next_wake`] again.
    /// Non-zero only after a probe found nothing to skip: during busy
    /// stretches the probe itself is the dominant cost, so it backs off
    /// and the engine single-steps in the meantime. Purely a wall-clock
    /// policy — skipped windows are state-neutral by contract, so *when*
    /// the engine looks for them cannot change simulated outcomes.
    probe_delay: u32,
    /// Current backoff step: starts at 1 after every productive skip (the
    /// next idle window often follows a burst of only a few cycles) and
    /// doubles on each unproductive probe up to [`MAX_PROBE_BACKOFF`], so
    /// long busy stretches pay for almost no probes at all.
    probe_backoff: u32,
    /// Worker threads for the parallel quantum engine (see
    /// [`crate::parallel`]); `1` keeps the classic sequential loop.
    /// Wall-clock policy only — outcomes are byte-identical either way.
    engine_threads: usize,
    /// Wall-clock phase accounting (observational; see
    /// [`EnginePhaseTimes`]).
    phase_times: EnginePhaseTimes,
}

/// Ceiling for the exponential probe backoff. Probing costs a scan of
/// every queue in the machine — about as much as simulating one cycle —
/// while real idle windows (DRAM reads, pcommit drains) last hundreds of
/// cycles, so a few dozen cycles of blindness costs little and caps
/// probe overhead in fully busy runs at ~3%.
const MAX_PROBE_BACKOFF: u32 = 32;

/// Shortest window worth running as a parallel quantum. Below this the
/// rendezvous (channel round-trip plus cache-level loan) costs more than
/// the ticks it covers, so the engine single-steps instead.
const MIN_QUANTUM: Cycle = 8;

/// The core a controller event is addressed to.
fn event_core_index(ev: &McEvent) -> usize {
    match ev {
        McEvent::TxEndDone { core, .. } => core.index(),
        McEvent::ReadDone { req_id: id, .. }
        | McEvent::WritebackAck { ack_id: id, .. }
        | McEvent::LogFlushAck { flush_id: id, .. }
        | McEvent::AtomLogAck { log_id: id, .. }
        | McEvent::PcommitDone { commit_id: id, .. } => decode_core(*id).index(),
    }
}

impl System {
    /// Builds a machine for `workload` under `scheme`.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid, the workload
    /// needs more threads than cores, or trace expansion fails.
    pub fn new(
        cfg: &SystemConfig,
        scheme: LoggingSchemeKind,
        workload: &GeneratedWorkload,
    ) -> Result<Self, SimError> {
        Self::new_with_trace(cfg, scheme, workload, &TraceConfig::disabled())
    }

    /// Builds a machine like [`System::new`] but with cycle-level tracing
    /// per `trace`. With `trace.enabled == false` this is exactly
    /// [`System::new`]: no trace buffers are allocated and the run is
    /// bit-identical to an untraced one.
    ///
    /// # Errors
    ///
    /// Returns an error if either configuration is invalid, the workload
    /// needs more threads than cores, or trace expansion fails.
    pub fn new_with_trace(
        cfg: &SystemConfig,
        scheme: LoggingSchemeKind,
        workload: &GeneratedWorkload,
        trace: &TraceConfig,
    ) -> Result<Self, SimError> {
        cfg.validate().map_err(SimError::InvalidConfig)?;
        trace.validate().map_err(SimError::InvalidConfig)?;
        if workload.programs.len() > cfg.num_cores {
            return Err(SimError::TooManyThreads {
                requested: workload.programs.len(),
                available: cfg.num_cores,
            });
        }
        let layout = AddressLayout::default();
        let drain_mode = match registry::descriptor(scheme).drain {
            registry::DrainPolicy::KeepUntilCommit => LogDrainMode::KeepUntilCommit,
            registry::DrainPolicy::DrainAlways => LogDrainMode::DrainAlways,
        };
        let mut mc = MemoryController::new(cfg.mem.clone(), layout.clone(), drain_mode);
        mc.set_tracer(Tracer::new(TrackKind::Mc, trace));
        mc.load_image(workload.initial_image.clone());
        let mut caches = CacheSystem::new(cfg);
        if let Some(sharing) = &workload.sharing {
            // Lock words live on dedicated lines; preloading them into
            // the shared L3 lets the first ticket probe of every thread
            // find the (zero-initialised) ticket cached instead of
            // cold-polling memory.
            for lock in sharing.all_locks() {
                caches.preload(lock.line(), [0; 8]);
            }
        }
        if trace.enabled {
            caches.enable_coherence_events();
        }
        let mut cores = Vec::with_capacity(workload.programs.len());
        let mut threads = Vec::new();
        // One shared handle for every core's expansion instead of a deep
        // image clone per core.
        let shared_image = Arc::new(workload.initial_image.clone());
        for (i, program) in workload.programs.iter().enumerate() {
            let opts = ExpandOptions {
                log_registers: cfg.proteus.log_registers,
                initial_image: Arc::clone(&shared_image),
            };
            let expanded = expand_program_with(program, scheme, &layout, &opts)?;
            threads.push(program.thread);
            let mut core =
                Core::new(proteus_types::CoreId::new(i as u32), cfg, scheme, &layout, expanded);
            core.set_tracer(Tracer::new(TrackKind::Core(i as u32), trace));
            cores.push(core);
        }
        Ok(System {
            cores,
            caches,
            mc,
            inbox: VecDeque::new(),
            now: 0,
            layout,
            scheme,
            threads,
            max_cycles: 20_000_000_000,
            cache_tracer: Tracer::new(TrackKind::Cache, trace),
            trace_sample_interval: trace.sample_interval,
            fast_forward: EngineConfig::default().fast_forward && !trace.enabled,
            single_step_forced: trace.enabled,
            validate_skips: false,
            req_buf: Vec::new(),
            probe_delay: 0,
            probe_backoff: 1,
            engine_threads: EngineConfig::default().threads,
            phase_times: EnginePhaseTimes::default(),
        })
    }

    /// Sets the runaway guard (default 2×10¹⁰ cycles).
    pub fn set_max_cycles(&mut self, max: Cycle) {
        self.max_cycles = max;
    }

    /// Applies an [`EngineConfig`]. Engine settings change wall-clock
    /// behaviour only — every simulated outcome is identical in either
    /// mode.
    pub fn set_engine(&mut self, engine: &EngineConfig) {
        self.set_fast_forward(engine.fast_forward);
        self.engine_threads = engine.threads.max(1);
    }

    /// Whether runs use the parallel quantum engine. Tracing pins the
    /// machine to single-stepping (it samples per cycle), so it also
    /// pins the sequential loop.
    fn parallel_active(&self) -> bool {
        self.engine_threads > 1 && !self.single_step_forced && !self.cores.is_empty()
    }

    /// Wall-clock phase accounting accumulated so far (all zeros until a
    /// run has executed; `sequential_steps` also counts the classic
    /// engine's cycles).
    pub fn phase_times(&self) -> &EnginePhaseTimes {
        &self.phase_times
    }

    /// Enables or disables event-driven fast-forwarding. A no-op (stays
    /// off) when the machine was built with cycle tracing, which samples
    /// per cycle.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on && !self.single_step_forced;
    }

    /// Single-steps every would-be skip and asserts the machine
    /// fingerprint never moves inside it. Testing hook for the
    /// `next_event_cycle` contract; also forced on by the `paranoid`
    /// cargo feature.
    #[doc(hidden)]
    pub fn set_validate_skips(&mut self, on: bool) {
        self.validate_skips = on;
    }

    /// The current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The logging scheme under test.
    pub fn scheme(&self) -> LoggingSchemeKind {
        self.scheme
    }

    /// The address layout in use.
    pub fn layout(&self) -> &AddressLayout {
        &self.layout
    }

    /// Whether every core has drained its trace.
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(Core::is_done)
    }

    /// Advances the machine by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        for core in &mut self.cores {
            core.tick(now, &mut self.caches);
            core.drain_requests_into(&mut self.req_buf);
            for (at, req) in self.req_buf.drain(..) {
                self.mc.submit(req, at);
            }
        }
        self.mc.tick(now);
        self.caches.trace_sample(&mut self.cache_tracer, now);
        if self.cache_tracer.is_enabled() {
            for ev in self.caches.drain_coherence_events() {
                let kind = match ev.action {
                    proteus_cache::CoherenceAction::Transfer => {
                        proteus_trace::TraceEventKind::OwnershipTransfer { line: ev.line.index() }
                    }
                    proteus_cache::CoherenceAction::Invalidate => {
                        proteus_trace::TraceEventKind::CoherenceInvalidate { line: ev.line.index() }
                    }
                };
                self.cache_tracer.emit(now, kind);
            }
        }
        for ev in self.mc.drain_events() {
            self.inbox.push_back((ev.at() + MC_LINK_DELAY, event_core_index(&ev), ev));
        }
        for _ in 0..self.inbox.len() {
            let (at, idx, ev) = self.inbox.pop_front().expect("nonempty");
            if at <= now {
                self.cores[idx].handle_event(&ev, now, &mut self.caches);
            } else {
                self.inbox.push_back((at, idx, ev));
            }
        }
        self.now += 1;
        self.phase_times.sequential_steps += 1;
    }

    /// The earliest cycle at or after `now` at which any component could
    /// make progress, or `None` if nothing ever will (all cores done).
    /// Public so tests and tools can observe the event engine's
    /// scheduling decisions.
    pub fn next_wake(&self) -> Option<Cycle> {
        let now = self.now;
        fn wake(at: Cycle, now: Cycle, best: &mut Option<Cycle>) {
            let at = at.max(now);
            *best = Some(best.map_or(at, |b| b.min(at)));
        }
        let mut best: Option<Cycle> = None;
        // Sources are ordered cheapest-first with an early out at `now`:
        // once anything wants the current cycle no later source can beat
        // it, and in busy phases that spares the queue scans below.
        for (at, _, _) in &self.inbox {
            wake(*at, now, &mut best);
        }
        if best == Some(now) {
            return best;
        }
        for core in &self.cores {
            if let Some(at) = core.next_event_cycle(now, &self.caches) {
                wake(at, now, &mut best);
            }
            if best == Some(now) {
                return best;
            }
        }
        if let Some(at) = self.mc.next_event_cycle(now) {
            wake(at, now, &mut best);
        }
        if let Some(at) = self.caches.next_event_cycle(now) {
            wake(at, now, &mut best);
        }
        best
    }

    /// Advances the machine one event: in fast-forward mode, jumps `now`
    /// to the next wake point (capped at `limit`) before ticking; in
    /// single-step mode, ticks the next cycle.
    fn advance(&mut self, limit: Cycle) {
        if self.fast_forward {
            if self.probe_delay > 0 {
                self.probe_delay -= 1;
            } else {
                let wake = self.next_wake().unwrap_or(limit).min(limit);
                if wake > self.now + 1 {
                    self.skip_to(wake);
                    self.probe_backoff = 1;
                } else {
                    // Nothing worth skipping: the machine is busy. Back
                    // off the probes until the burst has had a chance to
                    // drain.
                    self.probe_delay = self.probe_backoff;
                    self.probe_backoff = (self.probe_backoff * 2).min(MAX_PROBE_BACKOFF);
                }
            }
        }
        if self.now < limit {
            self.step();
        }
    }

    /// Jumps `now` to `target`, crediting the skipped cycles to each
    /// core's stall accounting. In validating mode the skip is instead
    /// single-stepped for real, asserting the state fingerprint never
    /// moves — proving the engine's claim that the window was quiescent.
    fn skip_to(&mut self, target: Cycle) {
        if self.validate_skips || cfg!(feature = "paranoid") {
            self.skip_to_checked(target);
            return;
        }
        let n = target - self.now;
        for core in &mut self.cores {
            core.account_skipped_cycles(n, &self.caches);
        }
        self.now = target;
    }

    fn skip_to_checked(&mut self, target: Cycle) {
        use std::hash::Hasher;
        while self.now < target {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.fingerprint(&mut h);
            let before = h.finish();
            self.step();
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.fingerprint(&mut h);
            assert_eq!(
                before,
                h.finish(),
                "fast-forward would have skipped cycle {} in which state changed \
                 (a next_event_cycle impl over-reported)",
                self.now - 1
            );
        }
    }

    fn fingerprint(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        for core in &self.cores {
            core.debug_fingerprint(h);
        }
        self.mc.debug_fingerprint(h);
        self.inbox.len().hash(h);
    }

    /// The first cycle at or after `now` that might be coherence-visible
    /// to more than one core — the farthest a quantum may run (exclusive)
    /// without any core observing shared-L3/MC state another core's
    /// quantum-local execution could change. Sources, tightest first:
    ///
    /// * a new submission made at `now` is delivered no earlier than
    ///   `now + UNCACHED_DELAY + MC_LINK_DELAY` (the cheapest request
    ///   path out of a core plus the response link);
    /// * pre-existing memory-controller work first changes state at
    ///   `mc.next_event_cycle(now)`, so its earliest delivery is that
    ///   plus the link delay;
    /// * responses already in the inbox are due at their recorded cycle
    ///   (a due delivery forces a zero-length quantum, which the caller
    ///   routes to the sequential `step` path);
    /// * a core about to touch the coherence domain bounds the quantum
    ///   at its [`Core::domain_quiet_horizon`] — domain traffic takes
    ///   snoop paths `QuantumCaches` cannot serve.
    fn quantum_end(&self, limit: Cycle) -> Cycle {
        let t = self.now;
        let mut end = limit.min(t + UNCACHED_DELAY + MC_LINK_DELAY);
        if let Some(n0) = self.mc.next_event_cycle(t) {
            end = end.min(n0.max(t) + MC_LINK_DELAY);
        }
        for (at, _, _) in &self.inbox {
            end = end.min(*at);
        }
        for core in &self.cores {
            if let Some(h) = core.domain_quiet_horizon(t) {
                end = end.min(h);
            }
        }
        end.max(t)
    }

    /// Executes one quantum `[now, end)` on the worker pool, then replays
    /// the recorded memory-controller submissions at the barrier in the
    /// exact sequential interleaving (cycle, core index, issue order).
    fn run_quantum(
        &mut self,
        end: Cycle,
        gate: &QuantumGate,
        task_txs: &[Sender<QuantumTask>],
        res_rx: &Receiver<QuantumResult>,
    ) {
        let start = self.now;
        debug_assert!(
            self.inbox.iter().all(|(at, _, _)| *at >= end),
            "quantum overlaps a due response delivery"
        );
        let handout = Instant::now();
        let (privates, shared) = self.caches.begin_quantum();
        gate.open(shared, start);
        let cores = std::mem::take(&mut self.cores);
        let ncores = cores.len();
        let nworkers = task_txs.len();
        let mut buckets: Vec<Vec<Unit>> = (0..nworkers).map(|_| Vec::new()).collect();
        for (idx, (core, privates)) in cores.into_iter().zip(privates).enumerate() {
            buckets[idx % nworkers].push(Unit { idx, core, privates });
        }
        for (tx, units) in task_txs.iter().zip(buckets) {
            tx.send(QuantumTask { start, end, units }).expect("worker alive");
        }
        let mut returned: Vec<Option<(Core, CorePrivates)>> = (0..ncores).map(|_| None).collect();
        let mut logs: Vec<Vec<Submission>> = (0..ncores).map(|_| Vec::new()).collect();
        let mut all_done_at = Some(start);
        for _ in 0..nworkers {
            let result = res_rx.recv().expect("worker alive");
            self.phase_times.core_tick_ns += result.work_ns;
            self.phase_times.grant_wait_ns += result.wait_ns;
            all_done_at = match (all_done_at, result.all_done_at) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            };
            for (unit, log) in result.units {
                logs[unit.idx] = log;
                returned[unit.idx] = Some((unit.core, unit.privates));
            }
        }
        // If every core finished mid-quantum, the sequential loop would
        // have stopped stepping right after the completing cycle — so the
        // controller replay must stop there too, or it would drain
        // write-pending residue the sequential engine leaves in place.
        let stop = all_done_at.map_or(end, |c| (c + 1).min(end));
        let mut privates = Vec::with_capacity(ncores);
        for slot in returned {
            let (core, pair) = slot.expect("every core returned");
            self.cores.push(core);
            privates.push(pair);
        }
        self.caches.end_quantum(privates, gate.close());
        self.phase_times.barrier_ns += handout.elapsed().as_nanos() as u64;

        // Replay: feed each cycle's submissions to the controller in core
        // order, tick it, and bank its responses for delivery. `submit`
        // only enqueues keyed by the delivery cycle, so making the calls
        // here instead of inside the workers' ticks is unobservable.
        let replay = Instant::now();
        let mut streams: Vec<_> = logs.into_iter().map(|l| l.into_iter().peekable()).collect();
        for t in start..stop {
            for stream in &mut streams {
                while stream.peek().is_some_and(|(tick, _, _)| *tick == t) {
                    let (_, at, req) = stream.next().expect("peeked");
                    self.mc.submit(req, at);
                }
            }
            self.mc.tick(t);
            for ev in self.mc.drain_events() {
                let at = ev.at() + MC_LINK_DELAY;
                debug_assert!(
                    at >= end,
                    "quantum bound failed to cover a response due at {at} (quantum end {end})"
                );
                self.inbox.push_back((at, event_core_index(&ev), ev));
            }
        }
        debug_assert!(
            streams.iter_mut().all(|s| s.peek().is_none()),
            "submission recorded past its quantum"
        );
        self.phase_times.mc_drain_ns += replay.elapsed().as_nanos() as u64;
        self.phase_times.quanta += 1;
        self.phase_times.quantum_cycles += stop - start;
        self.now = stop;
    }

    /// The parallel engine's outer loop: fast-forward probing first (an
    /// idle machine should jump, not tick idle quanta), then a quantum if
    /// the coherence-visibility bound leaves room, else one sequential
    /// step. Workers live for the whole call inside a thread scope;
    /// dropping the task channels shuts them down before the scope joins.
    fn run_parallel(&mut self, limit: Cycle) {
        let ncores = self.cores.len();
        let nworkers = self.engine_threads.min(ncores).max(1);
        let gate = QuantumGate::new(ncores);
        let latencies = self.caches.level_latencies();
        std::thread::scope(|s| {
            let (res_tx, res_rx) = std::sync::mpsc::channel();
            let mut task_txs = Vec::with_capacity(nworkers);
            for _ in 0..nworkers {
                let (task_tx, task_rx) = std::sync::mpsc::channel();
                task_txs.push(task_tx);
                let res_tx = res_tx.clone();
                let gate = &gate;
                s.spawn(move || parallel::worker_loop(task_rx, res_tx, gate, latencies));
            }
            while !self.is_done() && self.now < limit {
                if self.fast_forward {
                    if self.probe_delay > 0 {
                        self.probe_delay -= 1;
                    } else {
                        let wake = self.next_wake().unwrap_or(limit).min(limit);
                        if wake > self.now + 1 {
                            self.skip_to(wake);
                            self.probe_backoff = 1;
                            continue;
                        }
                        self.probe_delay = self.probe_backoff;
                        self.probe_backoff = (self.probe_backoff * 2).min(MAX_PROBE_BACKOFF);
                    }
                }
                let end = self.quantum_end(limit);
                if end.saturating_sub(self.now) >= MIN_QUANTUM {
                    self.run_quantum(end, &gate, &task_txs, &res_rx);
                } else {
                    self.step();
                }
            }
        });
    }

    /// Runs until every core finishes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the runaway guard trips.
    pub fn run(&mut self) -> Result<RunSummary, SimError> {
        if self.parallel_active() {
            self.run_parallel(self.max_cycles);
            if !self.is_done() {
                return Err(SimError::InvalidConfig(format!(
                    "simulation exceeded {} cycles without finishing",
                    self.max_cycles
                )));
            }
            return Ok(self.summary());
        }
        while !self.is_done() {
            if self.now >= self.max_cycles {
                return Err(SimError::InvalidConfig(format!(
                    "simulation exceeded {} cycles without finishing",
                    self.max_cycles
                )));
            }
            self.advance(self.max_cycles);
        }
        Ok(self.summary())
    }

    /// Runs until `cycle` or completion, whichever comes first. Returns
    /// whether the machine finished.
    pub fn run_until(&mut self, cycle: Cycle) -> bool {
        if self.parallel_active() {
            self.run_parallel(cycle);
            return self.is_done();
        }
        while !self.is_done() && self.now < cycle {
            self.advance(cycle);
        }
        self.is_done()
    }

    /// The threads this machine is running, in core order.
    pub fn threads(&self) -> &[ThreadId] {
        &self.threads
    }

    /// How many persist events (durable-state transitions in the memory
    /// controller) have occurred so far. See
    /// [`proteus_mem::PersistEventKind`].
    pub fn persist_seq(&self) -> u64 {
        self.mc.persist_seq()
    }

    /// Turns recording of the persist-event timeline on or off. Turning
    /// it off discards any recorded events; the sequence counter itself
    /// always runs.
    pub fn set_record_persist_events(&mut self, on: bool) {
        self.mc.set_record_persist_events(on);
    }

    /// The recorded persist-event timeline (empty unless recording was
    /// enabled via [`System::set_record_persist_events`]).
    pub fn persist_timeline(&self) -> &[PersistEvent] {
        self.mc.persist_timeline()
    }

    /// Steps until at least `seq` persist events have occurred, the trace
    /// drains, or the runaway guard trips. Returns `true` if the target
    /// was reached.
    ///
    /// Crash points are named by persist-event index, so "crash at event
    /// k" means "stop stepping as soon as the counter reaches k and take
    /// the crash image". The machine stops on the cycle boundary after
    /// the event; if several events land in the same cycle the image is
    /// the same for all of them.
    pub fn run_until_persist_event(&mut self, seq: u64) -> bool {
        while self.persist_seq() < seq && !self.is_done() && self.now < self.max_cycles {
            self.advance(self.max_cycles);
        }
        self.persist_seq() >= seq
    }

    /// The durable state if power were lost right now (NVMM plus the
    /// ADR-protected controller queues).
    pub fn crash_image(&self) -> WordImage {
        self.mc.crash_image()
    }

    /// The durable state under a faulty crash: `faults` selects how the
    /// dying machine deviates from the clean ADR drain (torn in-service
    /// line writes, partial queue drain). See [`proteus_mem::CrashFaults`].
    pub fn crash_image_with(&self, faults: &CrashFaults) -> WordImage {
        self.mc.crash_image_with(faults)
    }

    /// Crashes the machine now and runs recovery over the durable image,
    /// returning the recovered image and what recovery did.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::CorruptLog`] from recovery.
    pub fn crash_and_recover(&self) -> Result<(WordImage, RecoveryReport), SimError> {
        self.crash_and_recover_with(&CrashFaults::clean())
    }

    /// Like [`System::crash_and_recover`] but with an injected fault
    /// model applied while building the durable image.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::CorruptLog`] from recovery.
    pub fn crash_and_recover_with(
        &self,
        faults: &CrashFaults,
    ) -> Result<(WordImage, RecoveryReport), SimError> {
        let mut image = self.crash_image_with(faults);
        let report = recover(&mut image, &self.layout, self.scheme, &self.threads)?;
        Ok((image, report))
    }

    /// Total trace-ring capacity across all components (0 when the
    /// machine was built without tracing — the "no buffers" guard).
    pub fn trace_capacity(&self) -> usize {
        self.cores.iter().map(Core::trace_capacity).sum::<usize>()
            + self.mc.trace_capacity()
            + self.cache_tracer.capacity()
    }

    /// Detaches everything the tracers captured. Returns `None` when the
    /// machine was built without tracing. Call after [`System::run`];
    /// tracing stops once the dumps are taken.
    pub fn take_trace_report(&mut self) -> Option<TraceReport> {
        let mut tracks = Vec::new();
        for core in &mut self.cores {
            tracks.extend(core.take_trace());
        }
        tracks.extend(self.mc.take_trace());
        tracks.extend(self.cache_tracer.take_dump());
        if tracks.is_empty() {
            None
        } else {
            Some(TraceReport { tracks, sample_interval: self.trace_sample_interval })
        }
    }

    /// Per-core state snapshots for debugging stuck machines. Test-only.
    #[doc(hidden)]
    pub fn debug_dump_cores(&self) -> Vec<String> {
        self.cores.iter().map(Core::debug_dump).collect()
    }

    /// Statistics snapshot.
    pub fn summary(&self) -> RunSummary {
        let (l1d, l2, l3) = self.caches.stats();
        let mut coherence = self.caches.coherence_stats().clone();
        coherence.lock_acquires = self.cores.iter().map(Core::lock_acquires).sum();
        RunSummary {
            total_cycles: self
                .cores
                .iter()
                .map(|c| c.stats().cycles)
                .max()
                .unwrap_or(self.now)
                .max(if self.is_done() { 0 } else { self.now }),
            core: self.cores.iter().map(|c| c.stats().clone()).collect(),
            mem: self.mc.stats().clone(),
            l1d,
            l2,
            l3,
            coherence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_workloads::{generate, Benchmark, WorkloadParams};

    fn workload() -> GeneratedWorkload {
        generate(
            Benchmark::Queue,
            &WorkloadParams { threads: 1, init_ops: 20, sim_ops: 5, seed: 4 },
        )
    }

    #[test]
    fn run_until_stops_at_cycle_and_resumes() {
        let cfg = SystemConfig::skylake_like().with_num_cores(1);
        let mut sys = System::new(&cfg, LoggingSchemeKind::Proteus, &workload()).unwrap();
        assert!(!sys.run_until(50), "five transactions take more than 50 cycles");
        assert_eq!(sys.now(), 50);
        assert!(sys.run_until(u64::MAX / 2), "must finish eventually");
        let done_at = sys.now();
        // Further stepping is a no-op for completed cores.
        sys.step();
        assert!(sys.is_done());
        assert!(sys.summary().total_cycles <= done_at);
    }

    #[test]
    fn max_cycles_guard_trips() {
        let cfg = SystemConfig::skylake_like().with_num_cores(1);
        let mut sys = System::new(&cfg, LoggingSchemeKind::SwPmem, &workload()).unwrap();
        sys.set_max_cycles(10);
        assert!(matches!(sys.run(), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn invalid_config_rejected_up_front() {
        let mut cfg = SystemConfig::skylake_like();
        cfg.num_cores = 0;
        assert!(matches!(
            System::new(&cfg, LoggingSchemeKind::NoLog, &workload()),
            Err(SimError::InvalidConfig(_))
        ));
    }

    #[test]
    fn run_until_persist_event_stops_at_the_requested_index() {
        let cfg = SystemConfig::skylake_like().with_num_cores(1);
        let mut sys = System::new(&cfg, LoggingSchemeKind::Proteus, &workload()).unwrap();
        sys.set_record_persist_events(true);
        assert!(sys.run_until_persist_event(3), "a queue workload persists plenty");
        assert!(sys.persist_seq() >= 3);
        assert_eq!(sys.persist_timeline().len() as u64, sys.persist_seq());
        let at_three = sys.persist_seq();
        // Running to completion keeps counting past the stop point.
        assert!(sys.run_until(u64::MAX / 2));
        assert!(sys.persist_seq() > at_three);
        // An index beyond the final count is unreachable once done.
        let total = sys.persist_seq();
        assert!(!sys.run_until_persist_event(total + 1));
    }

    #[test]
    fn contended_workloads_complete_with_correct_final_image() {
        use proteus_workloads::{generate_contended, ContendedKind, ContendedSpec};
        let cfg = SystemConfig::skylake_like().with_num_cores(2);
        for kind in
            [ContendedKind::MpmcQueue, ContendedKind::ContendedHashMap, ContendedKind::LockedBTree]
        {
            let w = generate_contended(
                &ContendedSpec { kind, early_release: false },
                &WorkloadParams { threads: 2, init_ops: 24, sim_ops: 12, seed: 7 },
            );
            let sharing = w.sharing.as_ref().expect("contended workloads carry a plan");
            // Data acquires: one per group; the B-tree's hand-over-hand
            // descent adds one aux (root) acquire per group.
            let per_group = if kind == ContendedKind::LockedBTree { 2 } else { 1 };
            let expected_acquires = (sharing.groups.len() * per_group) as u64;
            // Last committed write per address, in global schedule order,
            // is the expected final durable value (structures are
            // address-disjoint, so the cross-structure fold is sound).
            let mut expect = std::collections::HashMap::new();
            for g in &sharing.groups {
                for (a, v) in &g.writes {
                    expect.insert(*a, *v);
                }
            }
            for (si, scheme) in
                [LoggingSchemeKind::Proteus, LoggingSchemeKind::NoLog].into_iter().enumerate()
            {
                let mut sys = System::new(&cfg, scheme, &w).unwrap();
                if kind == ContendedKind::MpmcQueue && si == 0 {
                    // One cell (MQ under the first scheme) proves every
                    // skipped window was genuinely quiescent under
                    // inter-core lock waits.
                    sys.set_validate_skips(true);
                }
                let summary = sys
                    .run()
                    .unwrap_or_else(|e| panic!("{kind:?} under {scheme:?} must finish: {e:?}"));
                assert_eq!(
                    summary.coherence.lock_acquires, expected_acquires,
                    "{kind:?}/{scheme:?}: every ticket must be acquired exactly once"
                );
                assert!(
                    summary.coherence.remote_transfers > 0,
                    "{kind:?}/{scheme:?}: cross-thread sharing must move dirty lines"
                );
                let image = sys.crash_image();
                for (a, v) in &expect {
                    assert_eq!(
                        image.read_word(*a),
                        *v,
                        "{kind:?}/{scheme:?}: durable word {a} diverged from the schedule"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_engine_is_byte_identical_to_sequential() {
        use proteus_workloads::{generate_contended, ContendedKind, ContendedSpec};
        let cfg = SystemConfig::skylake_like().with_num_cores(2);
        // A single-owner workload (each thread on private data) exercises
        // the quantum path; the contended one never leaves the sequential
        // path (spinning cores pin `domain_quiet_horizon` at `now`) but
        // must still come out identical.
        let private = generate(
            Benchmark::Queue,
            &WorkloadParams { threads: 2, init_ops: 20, sim_ops: 8, seed: 4 },
        );
        let contended = generate_contended(
            &ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: false },
            &WorkloadParams { threads: 2, init_ops: 24, sim_ops: 12, seed: 7 },
        );
        for (w, want_quanta) in [(&private, true), (&contended, false)] {
            let run = |threads: usize| {
                let mut sys = System::new(&cfg, LoggingSchemeKind::Proteus, w).unwrap();
                sys.set_engine(&EngineConfig::fast().with_threads(threads));
                sys.set_record_persist_events(true);
                let summary = sys.run().unwrap();
                if threads > 1 && want_quanta {
                    assert!(
                        sys.phase_times().quanta > 0,
                        "threads={threads} never entered the quantum path"
                    );
                }
                (format!("{summary:?}"), format!("{:?}", sys.persist_timeline()), sys.crash_image())
            };
            let sequential = run(1);
            for threads in [2, 4] {
                let parallel = run(threads);
                assert_eq!(sequential.0, parallel.0, "summary diverged at threads={threads}");
                assert_eq!(sequential.1, parallel.1, "timeline diverged at threads={threads}");
                assert_eq!(sequential.2, parallel.2, "image diverged at threads={threads}");
            }
        }
    }

    #[test]
    fn crash_image_before_first_step_is_initial_memory() {
        let cfg = SystemConfig::skylake_like().with_num_cores(1);
        let w = workload();
        let sys = System::new(&cfg, LoggingSchemeKind::Proteus, &w).unwrap();
        assert_eq!(sys.crash_image(), w.initial_image);
        let (recovered, report) = sys.crash_and_recover().unwrap();
        assert_eq!(recovered, w.initial_image);
        assert!(report
            .outcomes
            .iter()
            .all(|(_, o)| matches!(o, proteus_core::recovery::ThreadOutcome::Clean)));
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn system_is_send() {
        // Experiment sweeps run systems on worker threads (C-SEND-SYNC).
        fn assert_send<T: Send>() {}
        assert_send::<System>();
        assert_send::<proteus_mem::MemoryController>();
        assert_send::<proteus_cache::CacheSystem>();
        assert_send::<proteus_cpu::Core>();
    }
}
