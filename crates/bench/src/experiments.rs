//! One entry point per paper figure/table.
//!
//! All speedups are relative to the software-logging PMEM baseline, all
//! write counts relative to the no-logging ideal, exactly as in the
//! paper. Workload sizes are Table 2 scaled by
//! [`ExperimentScale::scale`]; the result *shapes* (orderings,
//! crossovers, approximate ratios) are stable across scales.
//!
//! Every experiment runs its scheme sweeps through `proteus-harness`
//! via the [`SweepOptions`] carried in [`ExperimentCtx`]: worker count,
//! resume ledger, and telemetry event stream all apply uniformly, and a
//! panic in one simulator run is isolated to that job instead of
//! tearing down the whole figure.

use proteus_core::scheme::registry;
use proteus_harness::SweepOptions;
use proteus_service::MetricsRegistry;
use proteus_sim::report::{f2, pct1, Table};
use proteus_sim::runner::{sweep_schemes_with, SchemeSweep};
use proteus_types::config::{EngineConfig, LoggingSchemeKind, MemTech, SystemConfig};
use proteus_types::stats::geometric_mean;
use proteus_types::SimError;
use proteus_workgen::{roster, WorkloadSel};
use proteus_workloads::{Benchmark, WorkloadParams};

/// Scale/threads knobs shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Fraction of the paper's Table 2 op counts (1.0 = full size).
    pub scale: f64,
    /// Threads = cores.
    pub threads: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale { scale: 0.1, threads: 4 }
    }
}

impl ExperimentScale {
    /// Table 2 op counts scaled by [`ExperimentScale::scale`], with the
    /// seed derived from the workload's structural identity, so every
    /// figure regenerates byte-identical traces for the same
    /// (bench, threads, ops) shape — resume ledgers stay valid across
    /// invocations.
    pub fn params(&self, bench: Benchmark) -> WorkloadParams {
        WorkloadParams::table2(bench, self.threads, self.scale).with_derived_seed(bench)
    }

    /// Table 1 configuration with the L2/L3 scaled down by the workload
    /// scale factor (power-of-two divisor), keeping the working-set /
    /// cache ratio — and thus the paper's DRAM-bound behaviour — intact.
    pub fn config(&self) -> SystemConfig {
        let divisor = if self.scale >= 1.0 {
            1
        } else {
            ((1.0 / self.scale) as u64).next_power_of_two().min(64)
        };
        SystemConfig::skylake_like().with_num_cores(self.threads).with_cache_divisor(divisor)
    }
}

/// Everything an experiment needs beyond its own definition: workload
/// scale plus the harness orchestration knobs (`--jobs`, `--resume`,
/// `--events` in the `reproduce` binary).
#[derive(Debug, Clone, Default)]
pub struct ExperimentCtx {
    /// Workload scale/threads knobs.
    pub scale: ExperimentScale,
    /// Harness options threaded into every scheme sweep.
    pub opts: SweepOptions,
    /// Artifact path for `crashsweep`/`crashrepro`/`gen`/`replay`
    /// (`--file`).
    pub file: Option<std::path::PathBuf>,
    /// Workload CLI name for `gen` (`--workload`), resolved through the
    /// workgen roster.
    pub workload: Option<String>,
    /// Cycle-engine settings (`--engine-threads`): threaded into every
    /// spec the experiments build. Results are byte-identical for every
    /// value; only wall clocks move.
    pub engine: EngineConfig,
    /// `--verbose`: append engine phase wall-time counters to reports
    /// that run the machine directly (`bench`, `bench-parallel`).
    pub verbose: bool,
}

impl ExperimentCtx {
    /// Context with default orchestration (auto workers, no ledger or
    /// event stream).
    pub fn from_scale(scale: ExperimentScale) -> Self {
        ExperimentCtx {
            scale,
            opts: SweepOptions::default(),
            file: None,
            workload: None,
            engine: EngineConfig::default(),
            verbose: false,
        }
    }
}

impl From<ExperimentScale> for ExperimentCtx {
    fn from(scale: ExperimentScale) -> Self {
        ExperimentCtx::from_scale(scale)
    }
}

/// The figure-6/9/10 scheme set, in presentation order: every
/// registered scheme except the speedup baseline.
fn fig6_schemes() -> Vec<LoggingSchemeKind> {
    registry::figure_columns()
}

fn sweep_all_benchmarks(ctx: &ExperimentCtx, tech: MemTech) -> Result<Vec<SchemeSweep>, SimError> {
    Benchmark::TABLE2
        .iter()
        .map(|bench| {
            sweep_schemes_with(
                &ctx.scale.config().with_mem_tech(tech),
                *bench,
                &ctx.scale.params(*bench),
                &LoggingSchemeKind::ALL,
                &ctx.opts,
                &ctx.engine,
            )
        })
        .collect()
}

fn speedup_table(sweeps: &[SchemeSweep], title: &str) -> String {
    let schemes = fig6_schemes();
    let mut headers = vec!["bench".to_string()];
    headers.extend(schemes.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for sweep in sweeps {
        let mut row = vec![sweep.bench.clone()];
        for (i, scheme) in schemes.iter().enumerate() {
            let v = sweep.speedup(*scheme);
            columns[i].push(v);
            row.push(f2(v));
        }
        table.row(row);
    }
    let mut gm_row = vec!["geomean".to_string()];
    gm_row.extend(columns.iter().map(|c| f2(geometric_mean(c))));
    table.row(gm_row);
    format!("{title}\n{}", table.render())
}

/// Deviation factor between reproduction and paper when both are
/// positive: `max(m/p, p/m)` (1.0 = exact). Non-positive measurements
/// map to infinity so they can never pass the guard silently.
fn deviation_factor(measured: f64, paper: f64) -> f64 {
    if measured > 0.0 && paper > 0.0 {
        (measured / paper).max(paper / measured)
    } else {
        f64::INFINITY
    }
}

/// Hard-fail threshold for the fig6 fidelity guard. The reproduction
/// is a timing model, not gem5, so known deviations at the default
/// scale run 2-3.5x (see EXPERIMENTS.md); 4x flags genuine regressions
/// without tripping on model error.
const FIG6_DEVIATION_LIMIT: f64 = 4.0;

/// Workload scale below which the guard only reports: tiny CI scales
/// distort speedups too much for the comparison to be meaningful.
const FIG6_GUARD_MIN_SCALE: f64 = 0.05;

/// The fidelity section `fig6` appends: reproduced vs paper geomean
/// per scheme, with the deviation factor. Hard-fails (consistency
/// violation) when a scheme deviates beyond [`FIG6_DEVIATION_LIMIT`]
/// at a meaningful scale.
fn fig6_fidelity(sweeps: &[SchemeSweep], scale: &ExperimentScale) -> Result<String, SimError> {
    let enforced = scale.scale >= FIG6_GUARD_MIN_SCALE;
    let mut table = Table::new(["scheme", "paper geomean", "reproduced", "deviation"]);
    let mut worst: Option<(LoggingSchemeKind, f64)> = None;
    for scheme in fig6_schemes() {
        // The paper's geomean (MICRO-50, rightmost bar group) lives on
        // the scheme's registry descriptor; schemes the paper does not
        // plot (the baseline itself, post-paper additions) carry None.
        let Some(paper) = registry::descriptor(scheme).fig6_paper_geomean else { continue };
        let speeds: Vec<f64> = sweeps.iter().map(|s| s.speedup(scheme)).collect();
        let measured = geometric_mean(&speeds);
        let dev = deviation_factor(measured, paper);
        table.row([scheme.label().to_string(), f2(paper), f2(measured), format!("{dev:.2}x")]);
        if worst.is_none_or(|(_, w)| dev > w) {
            worst = Some((scheme, dev));
        }
    }
    if enforced {
        if let Some((scheme, dev)) = worst {
            if dev > FIG6_DEVIATION_LIMIT {
                return Err(SimError::ConsistencyViolation(format!(
                    "fig6 fidelity guard: {} geomean deviates {dev:.2}x from the paper \
                     (limit {FIG6_DEVIATION_LIMIT:.1}x at scale {:.2})",
                    scheme.label(),
                    scale.scale
                )));
            }
        }
    }
    Ok(format!(
        "Fidelity vs paper (geomean speedup per scheme; guard {} at scale {:.2})\n{}",
        if enforced {
            format!("enforced, limit {FIG6_DEVIATION_LIMIT:.1}x")
        } else {
            "report-only".to_string()
        },
        scale.scale,
        table.render()
    ))
}

/// Figure 6: speedup on NVMM over the PMEM software-logging baseline,
/// followed by the per-scheme fidelity check against the paper's
/// geomeans.
///
/// # Errors
///
/// Propagates simulation errors; at scale >= 0.05 a geomean deviating
/// more than 4x from the paper fails the figure.
pub fn fig6(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sweeps = sweep_all_benchmarks(ctx, MemTech::NvmFast)?;
    let main =
        speedup_table(&sweeps, "Figure 6: speedup on NVMM (baseline: PMEM software logging)");
    let fidelity = fig6_fidelity(&sweeps, &ctx.scale)?;
    Ok(format!("{main}\n{fidelity}"))
}

/// Figure 7: front-end stall cycles normalised to PMEM+nolog.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig7(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sweeps = sweep_all_benchmarks(ctx, MemTech::NvmFast)?;
    let schemes = [LoggingSchemeKind::Atom, LoggingSchemeKind::Proteus, LoggingSchemeKind::NoLog];
    let mut headers = vec!["bench".to_string()];
    headers.extend(schemes.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for sweep in &sweeps {
        let mut row = vec![sweep.bench.clone()];
        for (i, scheme) in schemes.iter().enumerate() {
            let v = sweep.stalls_normalized(*scheme);
            columns[i].push(v);
            row.push(f2(v));
        }
        table.row(row);
    }
    let mut gm = vec!["geomean".to_string()];
    gm.extend(columns.iter().map(|c| f2(geometric_mean(c))));
    table.row(gm);
    Ok(format!("Figure 7: front-end stall cycles, normalised to PMEM+nolog\n{}", table.render()))
}

/// Figure 8: NVMM writes normalised to PMEM+nolog.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig8(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sweeps = sweep_all_benchmarks(ctx, MemTech::NvmFast)?;
    let schemes = [
        LoggingSchemeKind::SwPmem,
        LoggingSchemeKind::Atom,
        LoggingSchemeKind::ProteusNoLwr,
        LoggingSchemeKind::Proteus,
    ];
    let mut headers = vec!["bench".to_string()];
    headers.extend(schemes.iter().map(|s| s.label().to_string()));
    let mut table = Table::new(headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for sweep in &sweeps {
        let mut row = vec![sweep.bench.clone()];
        for (i, scheme) in schemes.iter().enumerate() {
            let v = sweep.nvmm_writes_normalized(*scheme);
            columns[i].push(v);
            row.push(f2(v));
        }
        table.row(row);
    }
    let mut mean = vec!["mean".to_string()];
    mean.extend(columns.iter().map(|c| f2(c.iter().sum::<f64>() / c.len() as f64)));
    table.row(mean);
    Ok(format!("Figure 8: NVMM writes, normalised to PMEM+nolog\n{}", table.render()))
}

/// Figure 9: speedup on slow NVM (300 ns writes).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig9(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sweeps = sweep_all_benchmarks(ctx, MemTech::NvmSlow)?;
    Ok(speedup_table(&sweeps, "Figure 9: speedup on slow NVMM, 300 ns writes (baseline: PMEM)"))
}

/// Figure 10: speedup on DRAM (battery-backed NVDIMM study).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig10(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sweeps = sweep_all_benchmarks(ctx, MemTech::Dram)?;
    Ok(speedup_table(&sweeps, "Figure 10: speedup on DRAM (baseline: PMEM)"))
}

/// Figure 11: Proteus speedup with varying LogQ sizes.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig11(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sizes = [1usize, 2, 4, 8, 16, 32, 64];
    let mut headers = vec!["bench".to_string()];
    headers.extend(sizes.iter().map(|s| format!("LogQ={s}")));
    let mut table = Table::new(headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for bench in Benchmark::TABLE2 {
        let params = ctx.scale.params(bench);
        let mut row = vec![bench.abbrev().to_string()];
        for (i, size) in sizes.iter().enumerate() {
            let sweep = sweep_schemes_with(
                &ctx.scale.config().with_logq_entries(*size),
                bench,
                &params,
                &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus],
                &ctx.opts,
                &ctx.engine,
            )?;
            let v = sweep.speedup(LoggingSchemeKind::Proteus);
            columns[i].push(v);
            row.push(f2(v));
        }
        table.row(row);
    }
    let mut gm = vec!["geomean".to_string()];
    gm.extend(columns.iter().map(|c| f2(geometric_mean(c))));
    table.row(gm);
    Ok(format!("Figure 11: Proteus speedup vs LogQ size (baseline: PMEM)\n{}", table.render()))
}

/// Figure 12: Proteus speedup with varying LPQ sizes (LogQ = 16).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn fig12(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sizes = [16usize, 32, 64, 128, 256, 512];
    let mut headers = vec!["bench".to_string()];
    headers.extend(sizes.iter().map(|s| format!("LPQ={s}")));
    let mut table = Table::new(headers);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    for bench in Benchmark::TABLE2 {
        let params = ctx.scale.params(bench);
        let mut row = vec![bench.abbrev().to_string()];
        for (i, size) in sizes.iter().enumerate() {
            let sweep = sweep_schemes_with(
                &ctx.scale.config().with_logq_entries(16).with_lpq_entries(*size),
                bench,
                &params,
                &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus],
                &ctx.opts,
                &ctx.engine,
            )?;
            let v = sweep.speedup(LoggingSchemeKind::Proteus);
            columns[i].push(v);
            row.push(f2(v));
        }
        table.row(row);
    }
    let mut gm = vec!["geomean".to_string()];
    gm.extend(columns.iter().map(|c| f2(geometric_mean(c))));
    table.row(gm);
    Ok(format!(
        "Figure 12: Proteus speedup vs LPQ size, LogQ=16 (baseline: PMEM)\n{}",
        table.render()
    ))
}

/// Table 3: large transactions (linked-list microbenchmark).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table3(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sizes = [1024u64, 2048, 4096, 8192];
    let mut headers = vec!["scheme".to_string()];
    headers.extend(sizes.iter().map(|s| s.to_string()));
    let mut table = Table::new(headers);
    let mut proteus_row = vec!["Proteus".to_string()];
    let mut ideal_row = vec!["PMEM+nolog(ideal)".to_string()];
    for elements in sizes {
        let bench = Benchmark::LargeTx { elements };
        let params = WorkloadParams {
            threads: ctx.scale.threads,
            init_ops: 0,
            sim_ops: ((200.0 * ctx.scale.scale * 5.0) as usize).max(8),
            seed: 0,
        }
        .with_derived_seed(bench);
        let sweep = sweep_schemes_with(
            &ctx.scale.config(),
            bench,
            &params,
            &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus, LoggingSchemeKind::NoLog],
            &ctx.opts,
            &ctx.engine,
        )?;
        proteus_row.push(f2(sweep.speedup(LoggingSchemeKind::Proteus)));
        ideal_row.push(f2(sweep.speedup(LoggingSchemeKind::NoLog)));
    }
    table.row(proteus_row);
    table.row(ideal_row);
    Ok(format!("Table 3: speedups for large transactions (elements per node)\n{}", table.render()))
}

/// Table 4: LLT miss rates per benchmark under Proteus.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn table4(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let mut table = Table::new(["bench", "LLT miss rate (%)"]);
    for bench in Benchmark::TABLE2 {
        let sweep = sweep_schemes_with(
            &ctx.scale.config(),
            bench,
            &ctx.scale.params(bench),
            &[LoggingSchemeKind::Proteus],
            &ctx.opts,
            &ctx.engine,
        )?;
        let merged = sweep.summary_of(LoggingSchemeKind::Proteus).cores_merged();
        let rate = merged.llt_miss_rate_pct().unwrap_or(0.0);
        table.row([bench.abbrev().to_string(), pct1(rate)]);
    }
    Ok(format!("Table 4: LLT miss rate (64 entries, 8-way)\n{}", table.render()))
}

/// Table 1: the baseline system configuration actually instantiated for
/// these runs (after cache downscaling).
///
/// # Errors
///
/// Never fails; the `Result` keeps the command table uniform.
pub fn table1(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let cfg = ctx.scale.config();
    let mut t = Table::new(["parameter", "value"]);
    t.row([
        "cores".to_string(),
        format!("{} @ {} MHz, {}-wide OOO", cfg.num_cores, cfg.cores.freq_mhz, cfg.cores.width),
    ]);
    t.row([
        "ROB / fetchQ / issueQ".to_string(),
        format!(
            "{} / {} / {}",
            cfg.cores.rob_entries, cfg.cores.fetchq_entries, cfg.cores.issueq_entries
        ),
    ]);
    t.row([
        "loadQ / storeQ".to_string(),
        format!("{} / {}", cfg.cores.loadq_entries, cfg.cores.storeq_entries),
    ]);
    t.row([
        "L1D".to_string(),
        format!(
            "{} KiB, {}-way, {} cycles",
            cfg.caches.l1d.size_bytes / 1024,
            cfg.caches.l1d.ways,
            cfg.caches.l1d.latency
        ),
    ]);
    t.row([
        "L2".to_string(),
        format!(
            "{} KiB, {}-way, {} cycles",
            cfg.caches.l2.size_bytes / 1024,
            cfg.caches.l2.ways,
            cfg.caches.l2.latency
        ),
    ]);
    t.row([
        "L3 (shared)".to_string(),
        format!(
            "{} KiB, {}-way, {} cycles",
            cfg.caches.l3.size_bytes / 1024,
            cfg.caches.l3.ways,
            cfg.caches.l3.latency
        ),
    ]);
    t.row([
        "memory".to_string(),
        format!(
            "{}: {} banks, {} B rows",
            cfg.mem.tech.label(),
            cfg.mem.banks,
            cfg.mem.row_buffer_bytes
        ),
    ]);
    t.row([
        "WPQ / LPQ / readQ".to_string(),
        format!(
            "{} / {} / {}",
            cfg.mem.wpq_entries, cfg.mem.lpq_entries, cfg.mem.read_queue_entries
        ),
    ]);
    t.row([
        "Proteus LR / LogQ / LLT".to_string(),
        format!(
            "{} / {} / {} ({}-way)",
            cfg.proteus.log_registers,
            cfg.proteus.logq_entries,
            cfg.proteus.llt_entries,
            cfg.proteus.llt_ways
        ),
    ]);
    Ok(format!("Table 1: system configuration (scale {:.2})\n{}", ctx.scale.scale, t.render()))
}

/// Table 2: the benchmark suite with the op counts these runs use.
///
/// # Errors
///
/// Never fails; the `Result` keeps the command table uniform.
pub fn table2(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let mut t = Table::new(["bench", "description", "#InitOps", "#SimOps"]);
    for d in roster::table2() {
        let p = d.params(ctx.scale.threads, ctx.scale.scale);
        t.row([d.label(), d.blurb.to_string(), p.init_ops.to_string(), p.sim_ops.to_string()]);
    }
    Ok(format!(
        "Table 2: benchmarks, per-thread op counts at scale {:.2}\n{}",
        ctx.scale.scale,
        t.render()
    ))
}

/// Ablation beyond the paper: thread/core scaling for the headline
/// schemes.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn ablation_threads(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let threads = [1usize, 2, 4];
    let bench = Benchmark::HashMap;
    let mut table = Table::new(["threads", "ATOM", "Proteus", "PMEM+nolog"]);
    for n in threads {
        let sub = ExperimentScale { threads: n, ..ctx.scale };
        let sweep = sweep_schemes_with(
            &sub.config(),
            bench,
            &sub.params(bench),
            &[
                LoggingSchemeKind::SwPmem,
                LoggingSchemeKind::Atom,
                LoggingSchemeKind::Proteus,
                LoggingSchemeKind::NoLog,
            ],
            &ctx.opts,
            &ctx.engine,
        )?;
        table.row([
            n.to_string(),
            f2(sweep.speedup(LoggingSchemeKind::Atom)),
            f2(sweep.speedup(LoggingSchemeKind::Proteus)),
            f2(sweep.speedup(LoggingSchemeKind::NoLog)),
        ]);
    }
    Ok(format!(
        "Ablation: HM speedups vs thread count (baseline: PMEM at equal threads)\n{}",
        table.render()
    ))
}

/// Ablation beyond the paper: WPQ size effect on the software baseline
/// and Proteus (a larger WPQ absorbs persist bursts; the paper's §4.3
/// motivates the LPQ by the cost of growing the WPQ instead).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn ablation_wpq(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sizes = [16usize, 32, 64, 128];
    let bench = Benchmark::AvlTree;
    let params = ctx.scale.params(bench);
    let mut table = Table::new(["WPQ", "Proteus speedup", "SW cycles (M)"]);
    for size in sizes {
        let mut config = ctx.scale.config();
        config.mem.wpq_entries = size;
        let sweep = sweep_schemes_with(
            &config,
            bench,
            &params,
            &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus],
            &ctx.opts,
            &ctx.engine,
        )?;
        table.row([
            size.to_string(),
            f2(sweep.speedup(LoggingSchemeKind::Proteus)),
            format!("{:.2}", sweep.summary_of(LoggingSchemeKind::SwPmem).total_cycles as f64 / 1e6),
        ]);
    }
    Ok(format!("Ablation: AT vs WPQ size\n{}", table.render()))
}

/// Ablation beyond the paper: LLT size sweep for Proteus.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn ablation_llt(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let sizes = [8usize, 16, 32, 64, 128];
    let mut headers = vec!["bench".to_string()];
    headers.extend(sizes.iter().map(|s| format!("LLT={s}")));
    let mut table = Table::new(headers);
    for bench in [Benchmark::HashMap, Benchmark::RbTree, Benchmark::StringSwap] {
        let params = ctx.scale.params(bench);
        let mut row = vec![bench.abbrev().to_string()];
        for size in sizes {
            let sweep = sweep_schemes_with(
                &ctx.scale.config().with_llt_entries(size, 8.min(size)),
                bench,
                &params,
                &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus],
                &ctx.opts,
                &ctx.engine,
            )?;
            row.push(f2(sweep.speedup(LoggingSchemeKind::Proteus)));
        }
        table.row(row);
    }
    Ok(format!("Ablation: Proteus speedup vs LLT size\n{}", table.render()))
}

/// Observability deep-dive behind Fig. 7: a traced Proteus-vs-ATOM run
/// on the Queue benchmark, reporting the per-transaction persist
/// critical path and the queue-occupancy distributions the end-of-run
/// aggregates can only hint at. Every trace is cross-checked (±0)
/// against the authoritative `RunSummary` before it is printed.
///
/// # Errors
///
/// Propagates simulation errors; a trace that disagrees with the run
/// summary surfaces as [`SimError::ConsistencyViolation`].
pub fn trace(ctx: &ExperimentCtx) -> Result<String, SimError> {
    use proteus_sim::runner::{run_workload_traced, ExperimentSpec};
    use proteus_types::TraceConfig;

    let bench = Benchmark::Queue;
    let params = ctx.scale.params(bench);
    let workload = proteus_workloads::generate(bench, &params);
    let mut out = String::from("Trace: persist critical path and queue occupancy (QE)\n");
    for scheme in [LoggingSchemeKind::Atom, LoggingSchemeKind::Proteus] {
        let spec = ExperimentSpec {
            config: ctx.scale.config(),
            scheme,
            bench: bench.into(),
            params: params.clone(),
            engine: EngineConfig::default(),
        };
        let (result, report) = run_workload_traced(&spec, &workload, &TraceConfig::enabled())?;
        let report = report.expect("tracing was enabled");
        report.check_against(&result.summary).map_err(SimError::ConsistencyViolation)?;
        out.push_str(&format!(
            "\n== {} ({} cycles, {} events, {} dropped) ==\n",
            result.name,
            result.summary.total_cycles,
            report.total_events(),
            report.total_dropped()
        ));
        out.push_str(&report.critical_path_table(10));
        out.push_str(&report.occupancy_table());
    }
    Ok(out)
}

/// The failure-safe scheme set `crashsweep` must hold to zero
/// violations — the registry's `crash_sweep` roster (NoLog is
/// failure-*unsafe* by design; SwPmemPcommit is SwPmem plus a fence and
/// adds nothing to crash coverage).
fn crash_schemes() -> Vec<LoggingSchemeKind> {
    registry::crash_sweep_roster()
}

/// Where `crashsweep` leaves its shrunk repro artifact and where
/// `crashrepro` looks for it when `--file` is not given.
fn default_repro_path() -> std::path::PathBuf {
    std::env::temp_dir().join("proteus_crash_repro.json")
}

fn crash_params(ctx: &ExperimentCtx, sel: &WorkloadSel) -> WorkloadParams {
    // Sized so every (workload, scheme) cell clears 200 persist events
    // at the default scale 0.1 — exploration then touches >= 200 crash
    // points per cell. Two threads keep the oracle's cross-thread
    // boundary matching in play without slowing the sweep down. For
    // `Bench` selectors this is bit-identical to the historical
    // `with_derived_seed` params, so ledger keys survive.
    let ops = |full: f64| ((full * ctx.scale.scale).round() as usize).max(4);
    sel.derived_params(WorkloadParams {
        threads: 2,
        init_ops: ops(800.0),
        sim_ops: ops(480.0),
        seed: 29,
    })
}

/// Crash-point sweep: systematic crash/recover/check across the
/// failure-safe schemes, then the seeded `disable_persist_ordering`
/// self-test proving the checker has teeth.
///
/// # Errors
///
/// Fails on simulation errors, on any consistency violation in the
/// failure-safe matrix, and if the deliberately broken core is *not*
/// caught.
pub fn crashsweep(ctx: &ExperimentCtx) -> Result<String, SimError> {
    use proteus_crash::{explore, shrink, ExploreSpec};

    let schemes = crash_schemes();
    let specs: Vec<ExploreSpec> = roster::crash_roster()
        .flat_map(|d| {
            let sel = d.sel();
            let params = crash_params(ctx, &sel);
            schemes
                .iter()
                .map(|&scheme| ExploreSpec::new(sel.clone(), params.clone(), scheme, 512))
                .collect::<Vec<_>>()
        })
        .collect();
    let report = proteus_crash::sweep(&specs, &ctx.opts)?;

    let mut table = Table::new(["bench", "scheme", "events", "points", "violations"]);
    let mut violated = Vec::new();
    for (spec, result) in specs.iter().zip(&report.results) {
        let outcome = result.payload.as_ref().ok_or_else(|| {
            SimError::HarnessIo(format!("exploration '{}' did not complete", result.name))
        })?;
        table.row([
            spec.bench.abbrev().to_string(),
            spec.scheme.label().to_string(),
            outcome.total_events.to_string(),
            outcome.points_explored.to_string(),
            outcome.violations.len().to_string(),
        ]);
        if let Some(v) = outcome.violations.first() {
            violated.push(format!("{} at event {}: {}", spec.name(), v.event, v.detail));
        }
    }
    if let Some(first) = violated.first() {
        return Err(SimError::ConsistencyViolation(first.clone()));
    }

    // Self-validation: the broken core must be caught, shrunk, and the
    // artifact must replay the violation from scratch.
    let broken = ExploreSpec {
        broken_ordering: true,
        ..ExploreSpec::new(
            Benchmark::Queue,
            WorkloadParams { threads: 1, init_ops: 40, sim_ops: 8, seed: 7 },
            LoggingSchemeKind::Proteus,
            512,
        )
    };
    let outcome = explore(&broken)?;
    if outcome.violations.is_empty() {
        return Err(SimError::ConsistencyViolation(format!(
            "self-test FAILED: disable_persist_ordering escaped {} crash points",
            outcome.points_explored
        )));
    }
    let repro = shrink(&broken)?.ok_or_else(|| {
        SimError::ConsistencyViolation("self-test FAILED: violation did not shrink".into())
    })?;
    let path = ctx.file.clone().unwrap_or_else(default_repro_path);
    repro.save(&path)?;
    let replay = repro.replay()?;
    if !replay.violated {
        return Err(SimError::ConsistencyViolation(
            "self-test FAILED: shrunk repro did not replay".into(),
        ));
    }

    Ok(format!(
        "Crash sweep: consistency checked at every sampled persist event\n{}\n\
         self-test: disable_persist_ordering caught at {} of {} crash points,\n\
         shrunk to {} (event {}), replayed from {}",
        table.render(),
        outcome.violations.len(),
        outcome.points_explored,
        repro.spec.name(),
        repro.event,
        path.display(),
    ))
}

/// Contended crash sweep: the roster's contended shared-structure
/// workloads (MPMC queue, contended hash maps, lock-coupled B-trees)
/// explored under every failure-safe scheme with the cross-thread
/// oracle — a recovered image must equal a commit prefix of each
/// structure's lock-handoff order, closed under per-thread program
/// order. Then the contended counterpart of the `crashsweep` self-test:
/// the `early_release` fault knob (lock handoff reordered before the
/// commit persist barrier) must be caught, shrunk, and replayed.
///
/// # Errors
///
/// Fails on simulation errors, on any cross-thread violation in the
/// failure-safe matrix, on a cell under 200 crash points at full
/// default scale, and if the early-release fault is *not* caught.
pub fn contention(ctx: &ExperimentCtx) -> Result<String, SimError> {
    use proteus_crash::{explore, shrink, ExploreSpec};
    use proteus_workloads::{ContendedKind, ContendedSpec};

    let schemes = registry::contention_roster();
    let specs: Vec<ExploreSpec> = roster::contended()
        .flat_map(|d| {
            let params = d.params(ctx.scale.threads, ctx.scale.scale);
            schemes
                .iter()
                .map(|&scheme| ExploreSpec::new(d.sel(), params.clone(), scheme, 512))
                .collect::<Vec<_>>()
        })
        .collect();
    let report = proteus_crash::sweep(&specs, &ctx.opts)?;

    let mut table = Table::new(["workload", "scheme", "events", "points", "violations"]);
    let mut violated = Vec::new();
    for (spec, result) in specs.iter().zip(&report.results) {
        let outcome = result.payload.as_ref().ok_or_else(|| {
            SimError::HarnessIo(format!("exploration '{}' did not complete", result.name))
        })?;
        // The acceptance bar: >= 200 stratified crash points per cell.
        // Scaled-down smokes explore every event they have; only the
        // default scale (and up) is held to the absolute floor.
        if ctx.scale.scale >= 0.1 && outcome.points_explored < 200 {
            return Err(SimError::HarnessIo(format!(
                "{}: only {} crash points (floor is 200 at scale >= 0.1)",
                result.name, outcome.points_explored
            )));
        }
        table.row([
            spec.bench.abbrev().to_string(),
            spec.scheme.label().to_string(),
            outcome.total_events.to_string(),
            outcome.points_explored.to_string(),
            outcome.violations.len().to_string(),
        ]);
        if let Some(v) = outcome.violations.first() {
            violated.push(format!("{} at event {}: {}", spec.name(), v.event, v.detail));
        }
    }
    if let Some(first) = violated.first() {
        return Err(SimError::ConsistencyViolation(first.clone()));
    }

    // Self-validation: hand a lock over before the group's commit
    // persists and the cross-thread oracle must see a recovered image
    // matching no commit prefix. Mirrors `crashsweep`'s
    // disable_persist_ordering self-test on the new axis.
    let broken = ExploreSpec::new(
        ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: true },
        WorkloadParams { threads: 3, init_ops: 64, sim_ops: 16, seed: 9 },
        LoggingSchemeKind::Proteus,
        512,
    );
    let outcome = explore(&broken)?;
    if outcome.violations.is_empty() {
        return Err(SimError::ConsistencyViolation(format!(
            "self-test FAILED: early_release escaped {} crash points",
            outcome.points_explored
        )));
    }
    let repro = shrink(&broken)?.ok_or_else(|| {
        SimError::ConsistencyViolation("self-test FAILED: violation did not shrink".into())
    })?;
    let path = ctx.file.clone().unwrap_or_else(default_repro_path);
    repro.save(&path)?;
    let replay = repro.replay()?;
    if !replay.violated {
        return Err(SimError::ConsistencyViolation(
            "self-test FAILED: shrunk early-release repro did not replay".into(),
        ));
    }

    Ok(format!(
        "Contention sweep: cross-thread consistency checked at every sampled persist event\n{}\n\
         self-test: early_release caught at {} of {} crash points,\n\
         shrunk to {} (event {}), replayed from {}",
        table.render(),
        outcome.violations.len(),
        outcome.points_explored,
        repro.spec.name(),
        repro.event,
        path.display(),
    ))
}

/// Peak resident set size of this process in KiB (Linux `VmHWM`; 0 when
/// unavailable).
fn peak_rss_kib() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// Cycle-engine benchmark: times the roster's bench basket with the
/// event-driven fast-forward engine on and off, reporting wall time,
/// simulated cycles per wall-second, the speedup, and peak RSS. Every
/// pair of runs is cross-checked — any divergence in the `RunSummary`
/// or the final cycle is an error, so the benchmark doubles as a
/// determinism gate. Writes a JSON report to `--file` (default
/// `BENCH_cycle_engine.json` in the working directory).
///
/// # Errors
///
/// Fails on simulation errors and on any engine-mode divergence.
pub fn bench(ctx: &ExperimentCtx) -> Result<String, SimError> {
    use proteus_sim::System;
    use std::fmt::Write as _;

    let schemes = registry::bench_basket();
    let metrics = MetricsRegistry::new();

    let mut table = Table::new([
        "bench", "scheme", "Mcycles", "coh miss", "inval", "ff (s)", "step (s)", "speedup",
    ]);
    let mut json_entries = Vec::new();
    let (mut ff_total, mut ss_total) = (0.0f64, 0.0f64);
    let mut total_cycles = 0u64;
    for d in roster::bench_basket() {
        let sel = d.sel();
        let params = d.params(ctx.scale.threads, ctx.scale.scale);
        let workload = sel.generate(&params);
        for &scheme in &schemes {
            let run = |fast: bool| -> Result<_, SimError> {
                let mut system = System::new(&ctx.scale.config(), scheme, &workload)?;
                let mut engine = ctx.engine;
                engine.fast_forward = fast;
                system.set_engine(&engine);
                let start = std::time::Instant::now();
                let summary = system.run()?;
                let phases = system.phase_times().clone();
                Ok((start.elapsed().as_secs_f64(), summary, system.now(), phases))
            };
            let (ff_wall, ff_sum, ff_now, ff_phases) = run(true)?;
            let (ss_wall, ss_sum, ss_now, _) = run(false)?;
            metrics.record_engine_phases(&ff_phases);
            if ff_sum != ss_sum || ff_now != ss_now {
                return Err(SimError::ConsistencyViolation(format!(
                    "{}/{}: fast-forward diverged from single-stepping",
                    sel.abbrev(),
                    scheme.label()
                )));
            }
            let cycles = ff_sum.total_cycles;
            ff_total += ff_wall;
            ss_total += ss_wall;
            total_cycles += cycles;
            table.row([
                sel.abbrev().to_string(),
                scheme.label().to_string(),
                format!("{:.2}", cycles as f64 / 1e6),
                ff_sum.coherence.coherence_misses.to_string(),
                ff_sum.coherence.invalidations.to_string(),
                format!("{ff_wall:.3}"),
                format!("{ss_wall:.3}"),
                f2(ss_wall / ff_wall.max(1e-9)),
            ]);
            json_entries.push(format!(
                "    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"cycles\": {}, \
                 \"coherence_misses\": {}, \"invalidations\": {}, \
                 \"ff_wall_s\": {:.6}, \"step_wall_s\": {:.6}, \
                 \"ff_mcycles_per_s\": {:.3}, \"step_mcycles_per_s\": {:.3}, \
                 \"speedup\": {:.3}}}",
                sel.abbrev(),
                scheme.label(),
                cycles,
                ff_sum.coherence.coherence_misses,
                ff_sum.coherence.invalidations,
                ff_wall,
                ss_wall,
                cycles as f64 / 1e6 / ff_wall.max(1e-9),
                cycles as f64 / 1e6 / ss_wall.max(1e-9),
                ss_wall / ff_wall.max(1e-9),
            ));
        }
    }
    let speedup = ss_total / ff_total.max(1e-9);
    let rss = peak_rss_kib();

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {:.4},", ctx.scale.scale);
    let _ = writeln!(json, "  \"threads\": {},", ctx.scale.threads);
    let _ = writeln!(json, "  \"engine_threads\": {},", ctx.engine.threads.max(1));
    let _ = writeln!(json, "  \"entries\": [\n{}\n  ],", json_entries.join(",\n"));
    let _ = writeln!(json, "  \"total_cycles\": {total_cycles},");
    let _ = writeln!(json, "  \"ff_wall_s\": {ff_total:.6},");
    let _ = writeln!(json, "  \"step_wall_s\": {ss_total:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "  \"peak_rss_kib\": {rss}");
    json.push('}');
    let path =
        ctx.file.clone().unwrap_or_else(|| std::path::PathBuf::from("BENCH_cycle_engine.json"));
    std::fs::write(&path, &json).map_err(|e| SimError::HarnessIo(e.to_string()))?;

    let mut report = format!(
        "Cycle-engine benchmark (scale {:.2}, {} threads, engine threads {})\n{}\n\
         total: {:.2} Mcycles; fast-forward {:.3} s vs single-step {:.3} s \
         ({:.2}x); peak RSS {} KiB; report: {}",
        ctx.scale.scale,
        ctx.scale.threads,
        ctx.engine.threads.max(1),
        table.render(),
        total_cycles as f64 / 1e6,
        ff_total,
        ss_total,
        speedup,
        rss,
        path.display(),
    );
    if ctx.verbose {
        report.push_str("\n\nengine phase counters (fast-forward runs, all cells):\n");
        report.push_str(&metrics.render());
    }
    Ok(report)
}

/// `bench-parallel`: the parallel quantum engine (DESIGN.md §11)
/// against its own sequential reference.
///
/// For every bench-basket workload — plus the contended
/// shared-structure rows, which degenerate to sequential stepping but
/// must stay byte-identical — and every basket scheme, this runs the
/// machine at 1, 2, and 4 engine threads and asserts during recording
/// that each multi-threaded run reproduces the sequential
/// [`RunSummary`] and final cycle exactly. Wall times, quantum
/// telemetry, and the identity verdict land in `BENCH_parallel.json`
/// (`--file` to override).
///
/// # Errors
///
/// [`SimError::ConsistencyViolation`] if any thread count diverges from
/// the sequential reference; otherwise propagates configuration,
/// expansion, and I/O errors.
pub fn bench_parallel(ctx: &ExperimentCtx) -> Result<String, SimError> {
    use proteus_sim::System;
    use std::fmt::Write as _;

    const THREAD_AXIS: [usize; 3] = [1, 2, 4];
    let schemes = registry::bench_basket();
    let metrics = MetricsRegistry::new();
    // The basket already carries the contended MQ/CH/LB rows.
    let rows: Vec<_> = roster::bench_basket().collect();

    let mut table = Table::new([
        "bench",
        "scheme",
        "Mcycles",
        "t=1 (s)",
        "t=2 (s)",
        "t=4 (s)",
        "quanta@4",
        "identical",
    ]);
    let mut json_entries = Vec::new();
    let mut cells = 0u64;
    for d in rows {
        let sel = d.sel();
        let params = d.params(ctx.scale.threads, ctx.scale.scale);
        // Contended rows force at least two threads; the machine must
        // have a core per thread.
        let config = ctx.scale.config().with_num_cores(params.threads);
        let workload = sel.generate(&params);
        for &scheme in &schemes {
            let run = |threads: usize| -> Result<_, SimError> {
                let mut system = System::new(&config, scheme, &workload)?;
                let mut engine = ctx.engine;
                engine.threads = threads;
                system.set_engine(&engine);
                let start = std::time::Instant::now();
                let summary = system.run()?;
                let phases = system.phase_times().clone();
                Ok((start.elapsed().as_secs_f64(), summary, system.now(), phases))
            };
            let mut walls = Vec::new();
            let mut quanta_at_4 = 0u64;
            let (ref_wall, ref_sum, ref_now, _) = run(THREAD_AXIS[0])?;
            walls.push(ref_wall);
            for &threads in &THREAD_AXIS[1..] {
                let (wall, sum, now, phases) = run(threads)?;
                // The recording itself is the identity oracle: a
                // divergent summary or final cycle fails the whole
                // experiment rather than landing in the JSON.
                if sum != ref_sum || now != ref_now {
                    return Err(SimError::ConsistencyViolation(format!(
                        "{}/{}: {threads}-thread engine diverged from the sequential reference",
                        sel.abbrev(),
                        scheme.label()
                    )));
                }
                metrics.record_engine_phases(&phases);
                if threads == 4 {
                    quanta_at_4 = phases.quanta;
                }
                walls.push(wall);
            }
            cells += 1;
            let cycles = ref_sum.total_cycles;
            table.row([
                sel.abbrev().to_string(),
                scheme.label().to_string(),
                format!("{:.2}", cycles as f64 / 1e6),
                format!("{:.3}", walls[0]),
                format!("{:.3}", walls[1]),
                format!("{:.3}", walls[2]),
                quanta_at_4.to_string(),
                "yes".to_string(),
            ]);
            let per_thread: Vec<String> = THREAD_AXIS
                .iter()
                .zip(&walls)
                .map(|(t, w)| {
                    format!(
                        "{{\"threads\": {t}, \"wall_s\": {w:.6}, \"mcycles_per_s\": {:.3}}}",
                        cycles as f64 / 1e6 / w.max(1e-9)
                    )
                })
                .collect();
            json_entries.push(format!(
                "    {{\"bench\": \"{}\", \"scheme\": \"{}\", \"cycles\": {}, \
                 \"contended\": {}, \"identical\": true, \"quanta_at_4_threads\": {}, \
                 \"runs\": [{}]}}",
                sel.abbrev(),
                scheme.label(),
                cycles,
                d.contended,
                quanta_at_4,
                per_thread.join(", "),
            ));
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"scale\": {:.4},", ctx.scale.scale);
    let _ = writeln!(json, "  \"threads\": {},", ctx.scale.threads);
    let _ = writeln!(json, "  \"thread_axis\": [1, 2, 4],");
    let _ = writeln!(json, "  \"entries\": [\n{}\n  ],", json_entries.join(",\n"));
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"all_identical\": true");
    json.push('}');
    let path = ctx.file.clone().unwrap_or_else(|| std::path::PathBuf::from("BENCH_parallel.json"));
    std::fs::write(&path, &json).map_err(|e| SimError::HarnessIo(e.to_string()))?;

    let mut report = format!(
        "Parallel-engine benchmark (scale {:.2}, {} threads)\n{}\n\
         {} cells, every thread count byte-identical to sequential; report: {}",
        ctx.scale.scale,
        ctx.scale.threads,
        table.render(),
        cells,
        path.display(),
    );
    if ctx.verbose {
        report.push_str("\n\nengine phase counters (parallel runs, all cells):\n");
        report.push_str(&metrics.render());
    }
    Ok(report)
}

/// Replays a shrunk crash-repro artifact written by `crashsweep` (or by
/// hand) and reports whether the violation still reproduces.
///
/// # Errors
///
/// Fails if the artifact cannot be read or the replay itself errors.
pub fn crashrepro(ctx: &ExperimentCtx) -> Result<String, SimError> {
    use proteus_crash::CrashRepro;

    let path = ctx.file.clone().unwrap_or_else(default_repro_path);
    let repro = CrashRepro::load(&path)?;
    let replay = repro.replay()?;
    Ok(format!(
        "Crash repro {}: {} crashing at persist event {}\n  expected: {}\n  replayed: {}",
        path.display(),
        repro.spec.name(),
        repro.event,
        repro.detail,
        if replay.violated {
            format!("VIOLATED — {}", replay.detail)
        } else {
            "consistent (did NOT reproduce)".to_string()
        },
    ))
}

/// The workload roster: every registered workload (Table 2 rows and
/// generated presets) with its roster memberships and the op counts it
/// runs at this scale. `gen` accepts any `name` column via
/// `--workload`.
///
/// # Errors
///
/// Never fails; the `Result` keeps the command table uniform.
pub fn workloads(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let mut t = Table::new(["name", "kind", "rosters", "#InitOps", "#SimOps", "description"]);
    for d in roster::all() {
        let p = d.params(ctx.scale.threads, ctx.scale.scale);
        let mut memberships = vec!["figures"];
        if d.crash_roster {
            memberships.push("crash");
        }
        if d.bench_basket {
            memberships.push("bench");
        }
        if !d.table2 {
            memberships.remove(0);
        }
        t.row([
            d.cli_name.to_string(),
            if d.table2 { "table2" } else { "preset" }.to_string(),
            if memberships.is_empty() { "-".to_string() } else { memberships.join("+") },
            p.init_ops.to_string(),
            p.sim_ops.to_string(),
            d.blurb.to_string(),
        ]);
    }
    Ok(format!(
        "Workload roster (scale {:.2}, {} threads) — run one with: reproduce gen --workload NAME\n{}",
        ctx.scale.scale,
        ctx.scale.threads,
        t.render()
    ))
}

/// Resolves `--workload` through the roster, defaulting to `ycsb-a`.
fn resolve_workload(ctx: &ExperimentCtx) -> Result<&'static roster::WorkloadDescriptor, SimError> {
    let name = ctx.workload.as_deref().unwrap_or("ycsb-a");
    roster::by_cli_name(name).ok_or_else(|| {
        let names: Vec<&str> = roster::all().iter().map(|d| d.cli_name).collect();
        SimError::InvalidConfig(format!(
            "unknown workload '{name}'; registered workloads: {}",
            names.join(", ")
        ))
    })
}

/// Generates a roster workload (`--workload`, default `ycsb-a`) while
/// recording its op trace, then sweeps every scheme over it. With
/// `--file`, writes the trace (versioned JSONL) for `replay`.
///
/// # Errors
///
/// Fails on an unknown workload name, an invalid spec, simulation
/// errors, or an unwritable trace path.
pub fn gen(ctx: &ExperimentCtx) -> Result<String, SimError> {
    let d = resolve_workload(ctx)?;
    let sel = d.sel();
    sel.validate()?;
    let params = d.params(ctx.scale.threads, ctx.scale.scale);
    let (_workload, trace) = proteus_workgen::record(&sel, &params)?;
    let sweep = sweep_schemes_with(
        &ctx.scale.config().with_mem_tech(MemTech::NvmFast),
        sel.clone(),
        &params,
        &LoggingSchemeKind::ALL,
        &ctx.opts,
        &ctx.engine,
    )?;
    let mut out = speedup_table(
        std::slice::from_ref(&sweep),
        &format!(
            "Generated workload '{}' ({}) on NVMM (baseline: PMEM software logging)",
            d.cli_name, d.blurb
        ),
    );
    out.push_str(&format!(
        "\ntrace: {} ops in {} durable groups across {} threads, content hash {:016x}",
        trace.total_ops(),
        trace.total_groups(),
        trace.params.threads,
        trace.content_hash()
    ));
    if let Some(path) = &ctx.file {
        let path_str = path
            .to_str()
            .ok_or_else(|| SimError::HarnessIo(format!("non-UTF8 path {}", path.display())))?;
        proteus_workgen::codec::write_trace(&trace, path_str)?;
        out.push_str(&format!(
            "\ntrace written to {} — replay with: reproduce replay --file {}",
            path.display(),
            path.display()
        ));
    }
    Ok(out)
}

/// Replays an op trace: verifies the stored header and content hash,
/// rebuilds the workload through the shared emission path, checks it
/// is byte-identical to regenerating from the header spec, and runs
/// every scheme on both — the `RunSummary` pairs must match exactly.
/// With no `--file`, records the `--workload` selection (default
/// `ycsb-a`) to a temp trace first, so the target is self-contained
/// under `reproduce all`.
///
/// # Errors
///
/// Fails on an unreadable/corrupt trace, simulation errors, or any
/// replay-vs-regeneration divergence (programs, images, or summaries).
pub fn replay(ctx: &ExperimentCtx) -> Result<String, SimError> {
    use proteus_sim::System;

    let (path, provenance) = match &ctx.file {
        Some(p) => (p.clone(), String::new()),
        None => {
            let d = resolve_workload(ctx)?;
            let params = d.params(ctx.scale.threads, ctx.scale.scale);
            let (_, trace) = proteus_workgen::record(&d.sel(), &params)?;
            let mut p = std::env::temp_dir();
            p.push(format!("proteus_optrace_{}_{}.jsonl", d.cli_name, std::process::id()));
            let s = p
                .to_str()
                .ok_or_else(|| SimError::HarnessIo(format!("non-UTF8 path {}", p.display())))?;
            proteus_workgen::codec::write_trace(&trace, s)?;
            (p.clone(), format!("(no --file: recorded '{}' to {})\n", d.cli_name, p.display()))
        }
    };
    let path_str = path
        .to_str()
        .ok_or_else(|| SimError::HarnessIo(format!("non-UTF8 path {}", path.display())))?;
    let trace = proteus_workgen::codec::read_trace(path_str)?;
    let replayed = proteus_workgen::replay(&trace)?;
    let regenerated = trace.sel.generate(&trace.params);
    if replayed.programs != regenerated.programs
        || replayed.initial_image != regenerated.initial_image
    {
        return Err(SimError::ConsistencyViolation(format!(
            "trace {} replays to different programs/image than regenerating '{}' from its header",
            path.display(),
            trace.sel.abbrev()
        )));
    }
    let scale = ExperimentScale { threads: trace.params.threads, ..ctx.scale };
    let config = scale.config().with_mem_tech(MemTech::NvmFast);
    let mut table = Table::new(["scheme", "Mcycles", "replay == regen"]);
    for &scheme in LoggingSchemeKind::ALL.iter() {
        let run = |w: &proteus_workloads::GeneratedWorkload| -> Result<_, SimError> {
            System::new(&config, scheme, w)?.run()
        };
        let a = run(&replayed)?;
        let b = run(&regenerated)?;
        if a != b {
            return Err(SimError::ConsistencyViolation(format!(
                "{}: replayed RunSummary diverges from regenerated run",
                scheme.label()
            )));
        }
        table.row([
            scheme.label().to_string(),
            format!("{:.2}", a.total_cycles as f64 / 1e6),
            "yes".to_string(),
        ]);
    }
    Ok(format!(
        "Replay of {} — '{}', {} ops, {} groups, content hash {:016x}\n{}{}",
        path.display(),
        trace.sel.abbrev(),
        trace.total_ops(),
        trace.total_groups(),
        trace.content_hash(),
        provenance,
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_harness::json::{self, Json};

    fn tiny() -> ExperimentCtx {
        ExperimentCtx::from_scale(ExperimentScale { scale: 0.001, threads: 2 })
    }

    #[test]
    fn fig6_produces_full_table() {
        let out = fig6(&tiny()).unwrap();
        assert!(out.contains("geomean"));
        for abbrev in ["QE", "HM", "SS", "AT", "BT", "RT"] {
            assert!(out.contains(abbrev), "missing {abbrev} in:\n{out}");
        }
        assert!(out.contains("Proteus"));
    }

    #[test]
    fn table4_reports_all_benchmarks() {
        let out = table4(&tiny()).unwrap();
        assert_eq!(out.lines().count(), 2 + 1 + 6, "header+rule+6 rows:\n{out}");
    }

    /// Acceptance path for `reproduce fig6 --events <path>`: the figure
    /// runs through the harness and narrates every job in the JSONL
    /// event stream.
    #[test]
    fn fig6_streams_events_through_the_harness() {
        let mut path = std::env::temp_dir();
        path.push(format!("proteus-bench-fig6-events-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut ctx = tiny();
        ctx.opts.workers = 2;
        ctx.opts.events = Some(path.clone());
        let out = fig6(&ctx).unwrap();
        assert!(out.contains("geomean"));

        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<Json> =
            text.lines().map(|l| json::parse(l).expect("event line parses")).collect();
        let count = |k: &str| {
            parsed.iter().filter(|v| v.get("event").and_then(Json::as_str) == Some(k)).count()
        };
        // One sweep per Table 2 benchmark, one job per scheme in each.
        assert_eq!(count("sweep-start"), Benchmark::TABLE2.len());
        assert_eq!(count("sweep-end"), Benchmark::TABLE2.len());
        assert_eq!(count("job-end"), Benchmark::TABLE2.len() * LoggingSchemeKind::ALL.len());
        assert!(parsed
            .iter()
            .filter(|v| v.get("event").and_then(Json::as_str) == Some("job-end"))
            .all(|v| v.get("outcome").and_then(Json::as_str) == Some("completed")));
        std::fs::remove_file(&path).unwrap();
    }

    /// Identical contexts regenerate identical reports: the derived
    /// workload seeds make whole figures reproducible end to end.
    #[test]
    fn fig6_is_deterministic_across_invocations() {
        assert_eq!(fig6(&tiny()).unwrap(), fig6(&tiny()).unwrap());
    }
}
