#![warn(missing_docs)]
//! Experiment definitions regenerating every table and figure of the
//! paper's evaluation (§6-§7).
//!
//! Each `figN`/`tableN` function in [`experiments`] runs the
//! corresponding experiment and returns a formatted report; the
//! `reproduce` binary prints them. The Criterion benches in `benches/`
//! wrap the same entry points for performance tracking.

pub mod experiments;
pub mod golden;

pub use experiments::*;
