//! Cycle-level trace dump for one benchmark run.
//!
//! ```text
//! tracedump <qe|hm|ss|at|bt|rt> [--scale S] [--threads N] [--scheme NAME]
//!           [--ring N] [--interval N] [--out PATH] [--jsonl PATH]
//! ```
//!
//! Runs the benchmark once under the chosen scheme (default: Proteus)
//! with tracing enabled, prints the per-transaction persist
//! critical-path table and the queue-occupancy histograms, and writes a
//! Chrome trace-event JSON file loadable in Perfetto or
//! `chrome://tracing` (default: `proteus-trace.json`), plus an optional
//! JSONL summary.
//!
//! Before exiting, the dump is validated end to end: the trace must
//! agree (±0) with the run's `RunSummary`, the emitted JSON must parse,
//! and every core track and every MC queue track must carry at least
//! one event. Any failure exits non-zero.

use proteus_harness::json::{self, Json};
use proteus_sim::runner::{run_workload_traced, ExperimentSpec};
use proteus_trace::export::{PID_CORES, PID_MC};
use proteus_trace::QueueId;
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig, TraceConfig};
use proteus_workloads::{generate, Benchmark, WorkloadParams};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tracedump <qe|hm|ss|at|bt|rt> [--scale S] [--threads N] [--scheme NAME] \
         [--ring N] [--interval N] [--out PATH] [--jsonl PATH]"
    );
    ExitCode::FAILURE
}

fn scheme_by_name(name: &str) -> Option<LoggingSchemeKind> {
    LoggingSchemeKind::ALL.into_iter().find(|s| {
        s.label().eq_ignore_ascii_case(name) || format!("{s:?}").eq_ignore_ascii_case(name)
    })
}

/// Counts Chrome events per `(pid, tid)` pair, skipping `"M"` metadata.
fn events_per_track(trace: &Json) -> Vec<(u64, u64, usize)> {
    let mut counts: Vec<(u64, u64, usize)> = Vec::new();
    let Some(events) = trace.get("traceEvents").and_then(Json::as_arr) else {
        return counts;
    };
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) == Some("M") {
            continue;
        }
        let (Some(pid), Some(tid)) =
            (ev.get("pid").and_then(Json::as_u64), ev.get("tid").and_then(Json::as_u64))
        else {
            continue;
        };
        match counts.iter_mut().find(|(p, t, _)| *p == pid && *t == tid) {
            Some((_, _, n)) => *n += 1,
            None => counts.push((pid, tid, 1)),
        }
    }
    counts
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(bench) = args.first().and_then(|a| match a.as_str() {
        "qe" => Some(Benchmark::Queue),
        "hm" => Some(Benchmark::HashMap),
        "ss" => Some(Benchmark::StringSwap),
        "at" => Some(Benchmark::AvlTree),
        "bt" => Some(Benchmark::BTree),
        "rt" => Some(Benchmark::RbTree),
        _ => None,
    }) else {
        return usage();
    };

    let mut scale = 0.1f64;
    let mut threads = 4usize;
    let mut scheme = LoggingSchemeKind::Proteus;
    let mut trace_cfg = TraceConfig::enabled();
    let mut out_path = PathBuf::from("proteus-trace.json");
    let mut jsonl_path: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale = args[i + 1].parse().unwrap_or(scale);
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                threads = args[i + 1].parse().unwrap_or(threads);
                i += 2;
            }
            "--scheme" if i + 1 < args.len() => {
                let Some(s) = scheme_by_name(&args[i + 1]) else {
                    eprintln!("unknown scheme: {}", args[i + 1]);
                    return usage();
                };
                scheme = s;
                i += 2;
            }
            "--ring" if i + 1 < args.len() => {
                trace_cfg.ring_capacity = args[i + 1].parse().unwrap_or(trace_cfg.ring_capacity);
                i += 2;
            }
            "--interval" if i + 1 < args.len() => {
                trace_cfg.sample_interval =
                    args[i + 1].parse().unwrap_or(trace_cfg.sample_interval);
                i += 2;
            }
            "--out" if i + 1 < args.len() => {
                out_path = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--jsonl" if i + 1 < args.len() => {
                jsonl_path = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    let params = WorkloadParams::table2(bench, threads, scale).with_derived_seed(bench);
    let divisor = if scale >= 1.0 { 1 } else { ((1.0 / scale) as u64).next_power_of_two().min(64) };
    let spec = ExperimentSpec {
        config: SystemConfig::skylake_like().with_num_cores(threads).with_cache_divisor(divisor),
        scheme,
        bench: bench.into(),
        params,
        engine: EngineConfig::default(),
    };
    let workload = generate(bench, &spec.params);
    let (result, report) = match run_workload_traced(&spec, &workload, &trace_cfg) {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(report) = report else {
        eprintln!("internal error: tracing was enabled but no report came back");
        return ExitCode::FAILURE;
    };

    // The trace is observability, not ground truth: refuse to print one
    // that disagrees with the authoritative counters.
    if let Err(e) = report.check_against(&result.summary) {
        eprintln!("trace/summary mismatch: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "{}: {} cycles, {} trace events ({} dropped), {} tx records",
        result.name,
        result.summary.total_cycles,
        report.total_events(),
        report.total_dropped(),
        report.tx_records().len()
    );
    println!("\npersist critical path (cycles from last store to durable commit):");
    print!("{}", report.critical_path_table(20));
    println!("\nqueue occupancy / wait distributions (log2 buckets):");
    print!("{}", report.occupancy_table());

    let chrome = report.to_chrome_json();
    if let Err(e) = std::fs::write(&out_path, &chrome) {
        eprintln!("cannot write {}: {e}", out_path.display());
        return ExitCode::FAILURE;
    }
    if let Some(path) = &jsonl_path {
        if let Err(e) = std::fs::write(path, report.to_jsonl_summary()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    // Validate the artifact we just wrote: it must parse as JSON and
    // every core track and MC queue track must carry at least one event.
    let parsed = match json::parse(&chrome) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("emitted Chrome JSON does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    let counts = events_per_track(&parsed);
    let mut missing = Vec::new();
    for core in 0..workload.programs.len() as u64 {
        if !counts.iter().any(|&(p, t, n)| p == u64::from(PID_CORES) && t == core && n > 0) {
            missing.push(format!("core{core}"));
        }
    }
    for q in [QueueId::ReadQ, QueueId::Wpq, QueueId::Lpq] {
        let tid = q.slot() as u64;
        if !counts.iter().any(|&(p, t, n)| p == u64::from(PID_MC) && t == tid && n > 0) {
            missing.push(format!("mc.{}", q.label()));
        }
    }
    if !missing.is_empty() {
        eprintln!("trace JSON is missing events on tracks: {}", missing.join(", "));
        return ExitCode::FAILURE;
    }

    println!("\nwrote {} ({} bytes), all tracks populated", out_path.display(), chrome.len());
    if let Some(path) = &jsonl_path {
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
