//! Dumps per-(bench, scheme) spec hashes and RunSummary JSON for the
//! fig6 configuration — the byte-identity golden used to pin scheme
//! refactors (see `proteus_bench::golden`).
//!
//! ```text
//! schemegolden [--scale S] [--threads N] [--tiny-scale S] [--tiny-threads N] [--out PATH]
//! ```
//!
//! The first JSONL line records the capture environment's workload
//! fingerprint; each following line is one (Table 2 benchmark, scheme)
//! cell:
//!
//! ```json
//! {"bench":"QE","scheme":"PMEM","spec_hash":"...","summary":{...},
//!  "tiny_spec_hash":"...","tiny_summary":{...}}
//! ```
//!
//! `spec_hash`/`summary` are at the headline scale (default 0.05 / 4
//! threads — the acceptance configuration for behaviour-preserving
//! refactors); `tiny_*` at a small scale cheap enough for CI to
//! re-simulate on every run (`crates/bench/tests/golden_pin.rs`).
//! Regenerate the committed golden with:
//!
//! ```text
//! tools/offline-check.sh build   # or any working build
//! schemegolden --out crates/bench/tests/golden/fig6_seed_schemes.jsonl
//! ```

use proteus_bench::experiments::ExperimentScale;
use proteus_bench::golden::{fig6_cell_spec, workload_fingerprint};
use proteus_harness::Json;
use proteus_sim::persist::summary_to_json;
use proteus_sim::runner::sweep_schemes;
use proteus_types::config::{LoggingSchemeKind, MemTech};
use proteus_workloads::Benchmark;
use std::io::Write;
use std::process::ExitCode;

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = ExperimentScale {
        scale: flag(&args, "--scale", 0.05),
        threads: flag(&args, "--threads", 4),
    };
    let tiny = ExperimentScale {
        scale: flag(&args, "--tiny-scale", 0.02),
        threads: flag(&args, "--tiny-threads", 2),
    };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "schemegolden.jsonl".to_string());

    let schemes = LoggingSchemeKind::ALL;
    let mut lines: Vec<String> = vec![Json::obj([(
        "workload_fingerprint",
        Json::str(format!("{:016x}", workload_fingerprint())),
    )])
    .to_line()];
    for bench in Benchmark::TABLE2 {
        let mut sweeps = Vec::new();
        for scale in [&full, &tiny] {
            match sweep_schemes(
                &scale.config().with_mem_tech(MemTech::NvmFast),
                bench,
                &scale.params(bench),
                &schemes,
            ) {
                Ok(s) => sweeps.push(s),
                Err(e) => {
                    eprintln!("schemegolden: {}/{:?} failed: {e}", bench.abbrev(), scale);
                    return ExitCode::FAILURE;
                }
            }
        }
        for scheme in schemes {
            let line = Json::obj([
                ("bench", Json::str(bench.abbrev())),
                ("scheme", Json::str(scheme.label())),
                (
                    "spec_hash",
                    Json::str(format!("{:016x}", fig6_cell_spec(&full, bench, scheme).spec_hash())),
                ),
                ("summary", summary_to_json(sweeps[0].summary_of(scheme))),
                (
                    "tiny_spec_hash",
                    Json::str(format!("{:016x}", fig6_cell_spec(&tiny, bench, scheme).spec_hash())),
                ),
                ("tiny_summary", summary_to_json(sweeps[1].summary_of(scheme))),
            ])
            .to_line();
            lines.push(line);
        }
        eprintln!("[schemegolden] {} done", bench.abbrev());
    }

    let mut f = match std::fs::File::create(&out) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("schemegolden: cannot create {out}: {e}");
            return ExitCode::FAILURE;
        }
    };
    for line in &lines {
        if let Err(e) = writeln!(f, "{line}") {
            eprintln!("schemegolden: write failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("[schemegolden] wrote {} cells to {out}", lines.len() - 1);
    ExitCode::SUCCESS
}
