//! Ad-hoc cycle-breakdown probe used while calibrating the model.
//!
//! ```text
//! probe [scale] [qe|hm|ss|bt|rt|at]
//! ```
//!
//! Sweeps the headline schemes over one benchmark and prints the
//! aggregate cycle/stall/write breakdown per scheme, then re-runs the
//! Proteus configuration with cycle-level tracing for the deep dive:
//! the per-transaction persist critical path and the queue-occupancy
//! distributions behind the aggregates.

use proteus_sim::runner::{run_workload_traced, sweep_schemes, ExperimentSpec};
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig, TraceConfig};
use proteus_types::stats::StallCause;
use proteus_workloads::{generate, Benchmark, WorkloadParams};
use std::process::ExitCode;

fn main() -> ExitCode {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let bench = match std::env::args().nth(2).as_deref() {
        Some("qe") => Benchmark::Queue,
        Some("hm") => Benchmark::HashMap,
        Some("ss") => Benchmark::StringSwap,
        Some("bt") => Benchmark::BTree,
        Some("rt") => Benchmark::RbTree,
        _ => Benchmark::AvlTree,
    };
    let params = WorkloadParams::table2(bench, 4, scale);
    let divisor = ((1.0 / scale) as u64).max(1).next_power_of_two().min(64);
    let cfg = SystemConfig::skylake_like().with_cache_divisor(divisor);
    let sweep = match sweep_schemes(
        &cfg,
        bench,
        &params,
        &[
            LoggingSchemeKind::SwPmem,
            LoggingSchemeKind::Atom,
            LoggingSchemeKind::Proteus,
            LoggingSchemeKind::NoLog,
        ],
    ) {
        Ok(sweep) => sweep,
        Err(e) => {
            eprintln!("probe sweep failed ({} at scale {scale}): {e}", bench.abbrev());
            return ExitCode::FAILURE;
        }
    };
    for (label, s) in &sweep.results {
        let m = s.cores_merged();
        // A degenerate run can finish in 0 recorded cycles; keep the
        // probe printable instead of dividing by zero.
        let ipc =
            if s.total_cycles == 0 { 0.0 } else { m.uops_retired as f64 / s.total_cycles as f64 };
        println!(
            "{label:>12}: cycles={} uops={} ipc={ipc:.2} stalls={} nvmm_r={} nvmm_w={} l3hit%={:?}",
            s.total_cycles,
            m.uops_retired,
            m.total_stall_cycles(),
            s.mem.nvmm_reads,
            s.mem.total_nvmm_writes(),
            s.l3.hit_rate_pct().map(|p| p.round()),
        );
        let parts: Vec<String> =
            StallCause::ALL.iter().map(|c| format!("{c}={}", m.stall(*c))).collect();
        println!("              {}", parts.join(" "));
    }

    // Deep dive: where do Proteus commit cycles actually go?
    let spec = ExperimentSpec {
        config: cfg,
        scheme: LoggingSchemeKind::Proteus,
        bench: bench.into(),
        params: params.clone(),
        engine: EngineConfig::default(),
    };
    let workload = generate(bench, &params);
    match run_workload_traced(&spec, &workload, &TraceConfig::enabled()) {
        Ok((result, Some(report))) => {
            if let Err(e) = report.check_against(&result.summary) {
                eprintln!("trace/summary mismatch: {e}");
                return ExitCode::FAILURE;
            }
            println!("\nProteus persist critical path:");
            print!("{}", report.critical_path_table(10));
            println!("\nqueue occupancy (log2 buckets):");
            print!("{}", report.occupancy_table());
        }
        Ok((_, None)) => {
            eprintln!("internal error: tracing was enabled but no report came back");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("traced probe run failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
