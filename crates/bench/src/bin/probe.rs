//! Ad-hoc cycle-breakdown probe used while calibrating the model.

use proteus_sim::runner::sweep_schemes;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_workloads::{Benchmark, WorkloadParams};

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    let bench = match std::env::args().nth(2).as_deref() {
        Some("qe") => Benchmark::Queue,
        Some("hm") => Benchmark::HashMap,
        Some("ss") => Benchmark::StringSwap,
        Some("bt") => Benchmark::BTree,
        Some("rt") => Benchmark::RbTree,
        _ => Benchmark::AvlTree,
    };
    let params = WorkloadParams::table2(bench, 4, scale);
    let divisor = ((1.0 / scale) as u64).max(1).next_power_of_two().min(64);
    let cfg = SystemConfig::skylake_like().with_cache_divisor(divisor);
    let sweep = sweep_schemes(
        &cfg,
        bench,
        &params,
        &[
            LoggingSchemeKind::SwPmem,
            LoggingSchemeKind::Atom,
            LoggingSchemeKind::Proteus,
            LoggingSchemeKind::NoLog,
        ],
    )
    .unwrap();
    for (label, s) in &sweep.results {
        let m = s.cores_merged();
        println!(
            "{label:>12}: cycles={} uops={} ipc={:.2} stalls={} nvmm_r={} nvmm_w={} l3hit%={:?}",
            s.total_cycles,
            m.uops_retired,
            m.uops_retired as f64 / s.total_cycles as f64,
            m.total_stall_cycles(),
            s.mem.nvmm_reads,
            s.mem.total_nvmm_writes(),
            s.l3.hit_rate_pct().map(|p| p.round()),
        );
        use proteus_types::stats::StallCause;
        let parts: Vec<String> =
            StallCause::ALL.iter().map(|c| format!("{c}={}", m.stall(*c))).collect();
        println!("              {}", parts.join(" "));
    }
}
