//! Inspect a crashed machine's log areas: run a workload under a chosen
//! scheme, pull the plug at a chosen fraction of the run, and dump every
//! valid log entry plus the recovery decision per thread.
//!
//! ```text
//! logdump [scheme] [crash-percent]
//!   scheme: any registry CLI name         (default proteus)
//!   crash-percent: 1..99                  (default 50)
//! ```

use proteus_core::recovery::scan_log_area;
use proteus_core::scheme::registry;
use proteus_sim::System;
use proteus_types::config::SystemConfig;
use proteus_workloads::{generate, Benchmark, WorkloadParams};
use std::process::ExitCode;

fn main() -> ExitCode {
    let name = std::env::args().nth(1).unwrap_or_else(|| "proteus".to_string());
    let scheme = match registry::by_cli_name(&name) {
        Some(d) => d.kind,
        None => {
            let known: Vec<&str> = registry::all().iter().map(|d| d.cli_name).collect();
            eprintln!("unknown scheme {name} ({})", known.join("|"));
            return ExitCode::FAILURE;
        }
    };
    let pct: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .filter(|p| (1..100).contains(p))
        .unwrap_or(50);

    let params = WorkloadParams { threads: 2, init_ops: 200, sim_ops: 30, seed: 99 };
    let workload = generate(Benchmark::RbTree, &params);
    let config = SystemConfig::skylake_like().with_num_cores(2);

    let total = {
        let mut m = System::new(&config, scheme, &workload).expect("build");
        m.run().expect("run").total_cycles
    };
    let crash_at = total * pct / 100;
    let mut machine = System::new(&config, scheme, &workload).expect("build");
    machine.run_until(crash_at);
    println!("=== {} crashed at cycle {} of {} ({pct}%) ===", scheme.label(), machine.now(), total);

    let image = machine.crash_image();
    for program in &workload.programs {
        let thread = program.thread;
        let entries = scan_log_area(&image, machine.layout(), thread);
        println!("\n{thread}: {} valid log entries in NVMM/ADR domain", entries.len());
        let max_tx = entries.iter().map(|(_, e)| e.tx).max();
        for (slot, e) in entries.iter().take(40) {
            let live = Some(e.tx) == max_tx;
            println!(
                "  slot {slot}  {}  seq {:>6}  from {}  data[0]={:#x}{}{}",
                e.tx,
                e.seq,
                e.log_from,
                e.data[0],
                if e.commit_marker { "  [commit-marker]" } else { "" },
                if live { "  <- live" } else { "" },
            );
        }
        if entries.len() > 40 {
            println!("  ... {} more", entries.len() - 40);
        }
        let flag = image.read_word(machine.layout().log_flag(thread));
        println!("  logFlag = {flag}");
    }

    let (_, report) = machine.crash_and_recover().expect("recovery");
    println!("\n=== recovery decisions ===");
    for (thread, outcome) in &report.outcomes {
        println!("  {thread}: {outcome:?}");
    }
    ExitCode::SUCCESS
}
