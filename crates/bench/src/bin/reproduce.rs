//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce <fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1..4|ablations|bench|bench-parallel|crashsweep|contention|crashrepro|trace|all>
//!           [--scale S] [--threads N] [--engine-threads N] [--jobs J] [--resume LEDGER]
//!           [--events PATH] [--file PATH] [--verbose] [--list]
//! ```
//!
//! `--list` prints a one-line summary of each registry — the workload
//! roster and the scheme table, with each row's roles — and exits.
//!
//! `--scale` scales the Table 2 op counts (default 0.1); `--threads`
//! sets the core/thread count (default 4). Shapes are stable across
//! scales; absolute speedups move slightly.
//!
//! `--engine-threads N` runs the simulations on the parallel quantum
//! engine (DESIGN.md §11) with `N` worker threads; the default `1` is
//! the classic sequential loop. Results are byte-identical for every
//! value — only wall clocks move — so figures and resume ledgers are
//! unaffected. `--verbose` appends the engine's phase wall-time
//! counters (core tick / grant wait / MC drain / barrier) to the
//! `bench` and `bench-parallel` reports.
//!
//! The harness flags:
//!
//! * `--jobs J` — worker threads per scheme sweep (default: available
//!   parallelism, clamped to the sweep size);
//! * `--resume LEDGER` — JSONL checkpoint file. Experiments already
//!   completed in the ledger are restored instead of re-run, so an
//!   interrupted (or partially crashed) invocation picks up where it
//!   left off when re-run with the same ledger;
//! * `--events PATH` — append a structured JSONL telemetry stream
//!   (job start/end, outcomes, simulated cycles, sim-cycles/s, queue
//!   depth, worker occupancy) for offline analysis.
//!
//! `bench` times the cycle engine on a fixed workload basket with
//! event-driven fast-forwarding on and off, cross-checking that both
//! modes produce identical results, and writes a JSON report to
//! `--file` (default `BENCH_cycle_engine.json`).
//!
//! `bench-parallel` times the same basket (plus the contended rows) at
//! 1, 2, and 4 engine worker threads, asserts every multi-threaded run
//! is byte-identical to the sequential reference while recording, and
//! writes `BENCH_parallel.json`.
//!
//! `crashsweep` explores crash points across the roster's crash
//! workloads and every failure-safe scheme, self-validating against
//! the `disable_persist_ordering` fault knob and writing its shrunk
//! repro artifact to `--file` (default: a fixed path under the system
//! temp directory). `crashrepro` replays such an artifact.
//!
//! `contention` is the cross-thread counterpart: it explores crash
//! points over the roster's contended shared-structure workloads
//! (MPMC queue, contended hash maps, lock-coupled B-trees) under every
//! failure-safe scheme, judged by the cross-thread commit-prefix
//! oracle, and self-validates against the `early_release` lock-handoff
//! fault knob.
//!
//! The workgen targets: `workloads` lists the roster (Table 2 rows and
//! generated presets); `gen --workload NAME` records a roster workload
//! to an op trace (written to `--file` when given) and sweeps every
//! scheme over it; `replay --file PATH` verifies and replays a trace,
//! cross-checking byte-identity against regeneration.
//!
//! Three service subcommands sit outside the experiment table:
//!
//! ```text
//! reproduce serve   [--listen A] [--http A] [--ledger PATH]
//!                   [--lease-ms N] [--max-assignments N] [--no-steal]
//! reproduce worker  --connect ADDR [--name NAME] [--retries N] [--job-deadline-ms MS]
//! reproduce loadgen [--submissions N] [--clients C] [--workers W]
//!                   [--basket B] [--verify] [--file PATH]
//! ```
//!
//! `serve` runs a coordinator plus HTTP front-end until killed;
//! `worker` connects to a coordinator and executes jobs until told to
//! shut down; `loadgen` boots the whole stack in-process, fires
//! concurrent duplicate-heavy submissions at it, and writes
//! `BENCH_service.json` — exiting nonzero if any job is lost or
//! duplicated or the verify pass diverges.

use proteus_bench::experiments::{
    ablation_llt, ablation_threads, ablation_wpq, bench, bench_parallel, contention, crashrepro,
    crashsweep, fig10, fig11, fig12, fig6, fig7, fig8, fig9, gen, replay, table1, table2, table3,
    table4, trace, workloads, ExperimentCtx,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1..4|ablations|bench|bench-parallel|crashsweep|contention|crashrepro|trace|workloads|gen|replay|all> \
         [--scale S] [--threads N] [--engine-threads N] [--jobs J] [--resume LEDGER] \
         [--events PATH] [--file PATH] [--workload NAME] [--verbose] [--list]"
    );
    ExitCode::FAILURE
}

/// `--list`: one line per registry — every roster workload and every
/// scheme, with their roles, so new rows (e.g. the contended MQ/CH/LB
/// workloads) are discoverable without reading the source.
fn print_rosters() {
    let workloads: Vec<String> = proteus_workgen::roster::all()
        .iter()
        .map(|d| {
            let mut tags = Vec::new();
            if d.table2 {
                tags.push("table2");
            }
            if d.preset {
                tags.push("preset");
            }
            if d.crash_roster {
                tags.push("crash");
            }
            if d.bench_basket {
                tags.push("bench");
            }
            if d.contended {
                tags.push("contended");
            }
            format!("{}[{}]", d.cli_name, tags.join(","))
        })
        .collect();
    println!("workloads: {}", workloads.join(" "));
    let schemes: Vec<String> = proteus_core::scheme::registry::all()
        .iter()
        .map(|d| {
            let mut tags = Vec::new();
            if d.baseline {
                tags.push("baseline");
            }
            if d.failure_safe {
                tags.push("safe");
            }
            if d.crash_sweep {
                tags.push("crash");
            }
            if d.bench_basket {
                tags.push("bench");
            }
            format!("{}[{}]", d.cli_name, tags.join(","))
        })
        .collect();
    println!("schemes: {}", schemes.join(" "));
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(target) = args.first().cloned() else {
        return usage();
    };
    // Service subcommands have their own flag sets and lifecycles.
    match target.as_str() {
        "serve" => return serve(&args[1..]),
        "worker" => return worker(&args[1..]),
        "loadgen" => return loadgen(&args[1..]),
        _ => {}
    }
    if args.iter().any(|a| a == "--list") {
        print_rosters();
        return ExitCode::SUCCESS;
    }
    let mut ctx = ExperimentCtx::default();
    ctx.opts.progress = true;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                ctx.scale.scale = args[i + 1].parse().unwrap_or(ctx.scale.scale);
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                ctx.scale.threads = args[i + 1].parse().unwrap_or(ctx.scale.threads);
                i += 2;
            }
            "--engine-threads" if i + 1 < args.len() => {
                ctx.engine.threads = args[i + 1].parse::<usize>().unwrap_or(1).max(1);
                i += 2;
            }
            "--verbose" => {
                ctx.verbose = true;
                i += 1;
            }
            "--jobs" if i + 1 < args.len() => {
                ctx.opts.workers = args[i + 1].parse().unwrap_or(ctx.opts.workers);
                i += 2;
            }
            "--resume" if i + 1 < args.len() => {
                ctx.opts.ledger = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--events" if i + 1 < args.len() => {
                ctx.opts.events = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--file" if i + 1 < args.len() => {
                ctx.file = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--workload" if i + 1 < args.len() => {
                ctx.workload = Some(args[i + 1].clone());
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    type Experiment = fn(&ExperimentCtx) -> Result<String, proteus_types::SimError>;
    let experiments: Vec<(&str, Experiment)> = vec![
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("table4", table4),
        ("ablation-llt", ablation_llt),
        ("ablation-threads", ablation_threads),
        ("ablation-wpq", ablation_wpq),
        ("bench", bench),
        ("bench-parallel", bench_parallel),
        ("crashsweep", crashsweep),
        ("contention", contention),
        ("crashrepro", crashrepro),
        ("trace", trace),
        ("workloads", workloads),
        ("gen", gen),
        ("replay", replay),
    ];

    let selected: Vec<_> = if target == "all" {
        experiments
    } else {
        experiments.into_iter().filter(|(name, _)| *name == target).collect()
    };
    if selected.is_empty() {
        return usage();
    }
    for (name, run) in selected {
        let start = std::time::Instant::now();
        match run(&ctx) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{name} done in {:.1?}]", start.elapsed());
            }
            Err(e) => {
                eprintln!("{name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Pulls `--flag value` out of a raw arg slice.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn serve(args: &[String]) -> ExitCode {
    use proteus_service::{Coordinator, CoordinatorConfig, HttpServer};
    let listen = flag_value(args, "--listen").unwrap_or("127.0.0.1:7700");
    let http_addr = flag_value(args, "--http").unwrap_or("127.0.0.1:7780");
    let mut cfg = CoordinatorConfig {
        ledger: flag_value(args, "--ledger").map(PathBuf::from),
        steal: !args.iter().any(|a| a == "--no-steal"),
        ..CoordinatorConfig::default()
    };
    if let Some(v) = flag_value(args, "--lease-ms").and_then(|v| v.parse().ok()) {
        cfg.lease_ms = v;
    }
    if let Some(v) = flag_value(args, "--max-assignments").and_then(|v| v.parse().ok()) {
        cfg.max_assignments = v;
    }
    let coord = match Coordinator::start(listen, cfg) {
        Ok(c) => std::sync::Arc::new(c),
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let http = match HttpServer::start(http_addr, std::sync::Arc::clone(&coord)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "coordinator on {} — workers connect here\nhttp on {} — POST /api/sweeps, GET /metrics",
        coord.local_addr(),
        http.local_addr()
    );
    // Runs until killed; the ledger makes restarts resumable.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn worker(args: &[String]) -> ExitCode {
    use proteus_service::{run_worker, WorkerOptions};
    let Some(addr) = flag_value(args, "--connect") else {
        eprintln!("worker: --connect ADDR is required");
        return ExitCode::FAILURE;
    };
    let defaults = WorkerOptions::default();
    let opts = WorkerOptions {
        name: flag_value(args, "--name").unwrap_or("worker").to_string(),
        max_retries: flag_value(args, "--retries").and_then(|v| v.parse().ok()).unwrap_or(1),
        job_deadline_ms: flag_value(args, "--job-deadline-ms")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.job_deadline_ms),
    };
    match run_worker(addr, &opts) {
        Ok(report) => {
            eprintln!(
                "worker {}: {} completed, {} failed, {} crashed",
                opts.name, report.completed, report.failed, report.crashed
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("worker {}: {e}", opts.name);
            ExitCode::FAILURE
        }
    }
}

fn loadgen(args: &[String]) -> ExitCode {
    use proteus_service::{run_loadgen, LoadgenOptions};
    let mut opts = LoadgenOptions {
        out: Some(PathBuf::from(flag_value(args, "--file").unwrap_or("BENCH_service.json"))),
        verify: args.iter().any(|a| a == "--verify"),
        ..LoadgenOptions::default()
    };
    if let Some(v) = flag_value(args, "--submissions").and_then(|v| v.parse().ok()) {
        opts.submissions = v;
    }
    if let Some(v) = flag_value(args, "--clients").and_then(|v| v.parse().ok()) {
        opts.clients = v;
    }
    if let Some(v) = flag_value(args, "--workers").and_then(|v| v.parse().ok()) {
        opts.workers = v;
    }
    if let Some(v) = flag_value(args, "--basket").and_then(|v| v.parse().ok()) {
        opts.basket = v;
    }
    match run_loadgen(&opts) {
        Ok(bench) => {
            println!("{}", bench.to_line());
            ExitCode::SUCCESS
        }
        Err(e) => {
            // Lost/duplicated jobs, HTTP failures, and verify
            // divergence all land here: nonzero exit, no silent pass.
            eprintln!("loadgen failed: {e}");
            ExitCode::FAILURE
        }
    }
}
