//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce <fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1..4|ablations|bench|crashsweep|crashrepro|trace|all>
//!           [--scale S] [--threads N] [--jobs J] [--resume LEDGER] [--events PATH] [--file PATH]
//! ```
//!
//! `--scale` scales the Table 2 op counts (default 0.1); `--threads`
//! sets the core/thread count (default 4). Shapes are stable across
//! scales; absolute speedups move slightly.
//!
//! The harness flags:
//!
//! * `--jobs J` — worker threads per scheme sweep (default: available
//!   parallelism, clamped to the sweep size);
//! * `--resume LEDGER` — JSONL checkpoint file. Experiments already
//!   completed in the ledger are restored instead of re-run, so an
//!   interrupted (or partially crashed) invocation picks up where it
//!   left off when re-run with the same ledger;
//! * `--events PATH` — append a structured JSONL telemetry stream
//!   (job start/end, outcomes, simulated cycles, sim-cycles/s, queue
//!   depth, worker occupancy) for offline analysis.
//!
//! `bench` times the cycle engine on a fixed workload basket with
//! event-driven fast-forwarding on and off, cross-checking that both
//! modes produce identical results, and writes a JSON report to
//! `--file` (default `BENCH_cycle_engine.json`).
//!
//! `crashsweep` explores crash points across every failure-safe scheme
//! and self-validates against the `disable_persist_ordering` fault
//! knob, writing its shrunk repro artifact to `--file` (default: a
//! fixed path under the system temp directory). `crashrepro` replays
//! such an artifact.

use proteus_bench::experiments::{
    ablation_llt, ablation_threads, ablation_wpq, bench, crashrepro, crashsweep, fig10, fig11,
    fig12, fig6, fig7, fig8, fig9, table1, table2, table3, table4, trace, ExperimentCtx,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1..4|ablations|bench|crashsweep|crashrepro|trace|all> \
         [--scale S] [--threads N] [--jobs J] [--resume LEDGER] [--events PATH] [--file PATH]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(target) = args.first().cloned() else {
        return usage();
    };
    let mut ctx = ExperimentCtx::default();
    ctx.opts.progress = true;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                ctx.scale.scale = args[i + 1].parse().unwrap_or(ctx.scale.scale);
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                ctx.scale.threads = args[i + 1].parse().unwrap_or(ctx.scale.threads);
                i += 2;
            }
            "--jobs" if i + 1 < args.len() => {
                ctx.opts.workers = args[i + 1].parse().unwrap_or(ctx.opts.workers);
                i += 2;
            }
            "--resume" if i + 1 < args.len() => {
                ctx.opts.ledger = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--events" if i + 1 < args.len() => {
                ctx.opts.events = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            "--file" if i + 1 < args.len() => {
                ctx.file = Some(PathBuf::from(&args[i + 1]));
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    type Experiment = fn(&ExperimentCtx) -> Result<String, proteus_types::SimError>;
    let experiments: Vec<(&str, Experiment)> = vec![
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("table4", table4),
        ("ablation-llt", ablation_llt),
        ("ablation-threads", ablation_threads),
        ("ablation-wpq", ablation_wpq),
        ("bench", bench),
        ("crashsweep", crashsweep),
        ("crashrepro", crashrepro),
        ("trace", trace),
    ];

    let selected: Vec<_> = if target == "all" {
        experiments
    } else {
        experiments.into_iter().filter(|(name, _)| *name == target).collect()
    };
    if selected.is_empty() {
        return usage();
    }
    for (name, run) in selected {
        let start = std::time::Instant::now();
        match run(&ctx) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{name} done in {:.1?}]", start.elapsed());
            }
            Err(e) => {
                eprintln!("{name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
