//! Regenerates the paper's tables and figures.
//!
//! ```text
//! reproduce <fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1..4|ablations|all>
//!           [--scale S] [--threads N]
//! ```
//!
//! `--scale` scales the Table 2 op counts (default 0.1); `--threads`
//! sets the core/thread count (default 4). Shapes are stable across
//! scales; absolute speedups move slightly.

use proteus_bench::experiments::{
    ablation_llt, ablation_threads, ablation_wpq, fig10, fig11, fig12, fig6, fig7, fig8, fig9,
    table1, table2, table3, table4, ExperimentScale,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: reproduce <fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1..4|ablations|all> \
         [--scale S] [--threads N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(target) = args.first().cloned() else {
        return usage();
    };
    let mut scale = ExperimentScale::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" if i + 1 < args.len() => {
                scale.scale = args[i + 1].parse().unwrap_or(scale.scale);
                i += 2;
            }
            "--threads" if i + 1 < args.len() => {
                scale.threads = args[i + 1].parse().unwrap_or(scale.threads);
                i += 2;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return usage();
            }
        }
    }

    let experiments: Vec<(&str, fn(&ExperimentScale) -> Result<String, proteus_types::SimError>)> = vec![
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("table1", table1),
        ("table2", table2),
        ("table3", table3),
        ("table4", table4),
        ("ablation-llt", ablation_llt),
        ("ablation-threads", ablation_threads),
        ("ablation-wpq", ablation_wpq),
    ];

    let selected: Vec<_> = if target == "all" {
        experiments
    } else {
        experiments.into_iter().filter(|(name, _)| *name == target).collect()
    };
    if selected.is_empty() {
        return usage();
    }
    for (name, run) in selected {
        let start = std::time::Instant::now();
        match run(&scale) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{name} done in {:.1?}]", start.elapsed());
            }
            Err(e) => {
                eprintln!("{name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
