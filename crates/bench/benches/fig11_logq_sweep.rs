//! Criterion wrapper around the Figure 11 LogQ sweep: simulator runtime
//! per LogQ size (the simulated speedups are produced by `reproduce
//! fig11`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proteus_sim::runner::{run_workload, ExperimentSpec};
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, Benchmark, WorkloadParams};

fn bench_logq_sizes(c: &mut Criterion) {
    let bench = Benchmark::StringSwap;
    let params = WorkloadParams { threads: 2, init_ops: 100, sim_ops: 30, seed: 3 };
    let workload = generate(bench, &params);
    let mut group = c.benchmark_group("fig11_ss_tiny");
    group.sample_size(10);
    for logq in [1usize, 8, 64] {
        let config = SystemConfig::skylake_like()
            .with_num_cores(2)
            .with_cache_divisor(64)
            .with_logq_entries(logq);
        group.bench_with_input(BenchmarkId::from_parameter(logq), &config, |b, config| {
            b.iter(|| {
                let spec = ExperimentSpec {
                    config: config.clone(),
                    scheme: LoggingSchemeKind::Proteus,
                    bench: bench.into(),
                    params: params.clone(),
                    engine: EngineConfig::default(),
                };
                run_workload(&spec, &workload).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_logq_sizes);
criterion_main!(benches);
