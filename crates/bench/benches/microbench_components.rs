//! Component microbenchmarks: host-side throughput of the simulator's
//! hot structures (LLT, log areas, the word image, recovery scanning).

use criterion::{criterion_group, criterion_main, Criterion};
use proteus_core::entry::LogEntry;
use proteus_core::layout::AddressLayout;
use proteus_core::logarea::LogArea;
use proteus_core::pmem::WordImage;
use proteus_core::recovery::scan_log_area;
use proteus_types::{Addr, ThreadId, TxId};

fn bench_word_image(c: &mut Criterion) {
    c.bench_function("word_image_write_read", |b| {
        let mut img = WordImage::new();
        let mut i = 0u64;
        b.iter(|| {
            let addr = Addr::new((i % 65_536) * 8);
            img.write_word(addr, i);
            i += 1;
            img.read_word(addr)
        })
    });
    c.bench_function("word_image_line_roundtrip", |b| {
        let mut img = WordImage::new();
        let mut i = 0u64;
        b.iter(|| {
            let line = Addr::new((i % 4096) * 64).line();
            img.write_line(line, &[i; 8]);
            i += 1;
            img.read_line(line)
        })
    });
}

fn bench_log_entry_codec(c: &mut Criterion) {
    let entry = LogEntry::new([1, 2, 3, 4], Addr::new(0x1000_0020), TxId::new(7), 99);
    c.bench_function("log_entry_encode_decode", |b| {
        b.iter(|| {
            let words = entry.encode_words();
            LogEntry::decode_words(&words)
        })
    });
}

fn bench_log_area_alloc(c: &mut Criterion) {
    let layout = AddressLayout::default();
    c.bench_function("log_area_alloc_cycle", |b| {
        let mut area = LogArea::new(ThreadId::new(0), &layout);
        let mut tx = TxId::new(1);
        b.iter(|| {
            area.begin_tx(tx).unwrap();
            for _ in 0..8 {
                area.alloc().unwrap();
            }
            area.end_tx().unwrap();
            tx = tx.next();
        })
    });
}

fn bench_recovery_scan(c: &mut Criterion) {
    let layout = AddressLayout::default();
    let mut img = WordImage::new();
    for slot in 0..512 {
        LogEntry::new(
            [slot as u64; 4],
            Addr::new(0x1000_0000 + slot as u64 * 32),
            TxId::new(3),
            slot as u64,
        )
        .write_to(&mut img, layout.log_slot(ThreadId::new(0), slot));
    }
    c.bench_function("recovery_scan_512_entries", |b| {
        b.iter(|| scan_log_area(&img, &layout, ThreadId::new(0)).len())
    });
}

criterion_group!(
    benches,
    bench_word_image,
    bench_log_entry_codec,
    bench_log_area_alloc,
    bench_recovery_scan
);
criterion_main!(benches);
