//! Criterion wrapper around the Figure 6 experiment (speedup on NVMM):
//! measures simulator throughput per scheme on a reduced workload so
//! regressions in the model's host performance are caught.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use proteus_sim::runner::{run_workload, ExperimentSpec};
use proteus_types::config::{EngineConfig, LoggingSchemeKind, SystemConfig};
use proteus_workloads::{generate, Benchmark, WorkloadParams};

fn bench_schemes(c: &mut Criterion) {
    let bench = Benchmark::HashMap;
    let params = WorkloadParams { threads: 2, init_ops: 200, sim_ops: 40, seed: 1 };
    let workload = generate(bench, &params);
    let config = SystemConfig::skylake_like().with_num_cores(2).with_cache_divisor(64);
    let mut group = c.benchmark_group("fig6_hm_tiny");
    group.sample_size(10);
    for scheme in [
        LoggingSchemeKind::SwPmem,
        LoggingSchemeKind::Atom,
        LoggingSchemeKind::Proteus,
        LoggingSchemeKind::NoLog,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let spec = ExperimentSpec {
                        config: config.clone(),
                        scheme,
                        bench: bench.into(),
                        params: params.clone(),
                        engine: EngineConfig::default(),
                    };
                    run_workload(&spec, &workload).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
