//! Registry completeness: every scheme in [`registry::DESCRIPTORS`]
//! must be a *complete* citizen of the toolchain, not just an enum
//! variant — resolvable by label and CLI name, round-trippable through
//! the report codec, executable on every Table 2 workload, and (when
//! it claims failure safety) recoverable and crash-consistent.
//!
//! This is the test a new scheme (like InCLL) has to pass by merely
//! registering a descriptor: nothing here names a scheme explicitly,
//! so a registry entry that lies about its capabilities fails loudly.

use proteus_bench::experiments::ExperimentScale;
use proteus_core::scheme::registry;
use proteus_crash::{explore, ExploreSpec};
use proteus_sim::persist::{scheme_from_label, scheme_to_json};
use proteus_sim::System;
use proteus_types::config::LoggingSchemeKind;
use proteus_workloads::{generate, Benchmark, WorkloadParams};

/// Tiny-but-real workload: multiple transactions per thread, enough
/// persist traffic for stratified sampling to have strata to sample.
fn smoke_params() -> WorkloadParams {
    WorkloadParams { threads: 2, init_ops: 200, sim_ops: 30, seed: 99 }
}

#[test]
fn registry_enumerates_the_enum_exactly() {
    let kinds: Vec<LoggingSchemeKind> = registry::all().iter().map(|d| d.kind).collect();
    assert_eq!(kinds, LoggingSchemeKind::ALL.to_vec(), "registry order must mirror ALL");
}

#[test]
fn every_scheme_round_trips_label_and_cli_name() {
    for d in registry::all() {
        assert_eq!(scheme_from_label(scheme_to_json(d.kind).as_str().unwrap()), Some(d.kind));
        assert_eq!(registry::by_label(d.label).map(|r| r.kind), Some(d.kind));
        assert_eq!(registry::by_cli_name(d.cli_name).map(|r| r.kind), Some(d.kind));
    }
    assert_eq!(scheme_from_label("NotAScheme"), None);
    assert!(registry::by_cli_name("not-a-scheme").is_none());
}

/// Every scheme must expand and execute every Table 2 workload at the
/// smoke scale — a descriptor whose expander rejects a workload shape
/// the others accept is not a drop-in column.
#[test]
fn every_scheme_executes_every_table2_workload() {
    let scale = ExperimentScale { scale: 0.02, threads: 2 };
    let cfg = scale.config();
    for bench in Benchmark::TABLE2 {
        let workload = generate(bench, &scale.params(bench));
        for d in registry::all() {
            let mut sys = System::new(&cfg, d.kind, &workload)
                .unwrap_or_else(|e| panic!("{}/{}: build failed: {e}", bench.abbrev(), d.label));
            let summary = sys
                .run()
                .unwrap_or_else(|e| panic!("{}/{}: run failed: {e}", bench.abbrev(), d.label));
            assert!(summary.total_cycles > 0, "{}/{}: empty run", bench.abbrev(), d.label);
        }
    }
}

/// Every failure-safe scheme must survive a mid-run crash and produce
/// a recovery report; non-failure-safe schemes are exempt (NoLog has
/// nothing to recover from).
#[test]
fn every_failure_safe_scheme_recovers_from_a_midpoint_crash() {
    let params = smoke_params();
    let workload = generate(Benchmark::Queue, &params);
    let cfg = proteus_types::config::SystemConfig::skylake_like().with_num_cores(2);
    for d in registry::all().iter().filter(|d| d.failure_safe) {
        let total = {
            let mut m = System::new(&cfg, d.kind, &workload).expect("build");
            m.run().expect("run").total_cycles
        };
        let mut m = System::new(&cfg, d.kind, &workload).expect("build");
        m.run_until(total / 2);
        let (_, report) =
            m.crash_and_recover().unwrap_or_else(|e| panic!("{}: recovery failed: {e}", d.label));
        assert_eq!(report.outcomes.len(), params.threads, "{}: missing threads", d.label);
    }
}

/// Full InCLL acceptance sweep: every Table 2 workload, >= 200 crash
/// points per cell, zero oracle violations. Too heavy for every CI
/// run, so it is `#[ignore]`d; run it explicitly when touching the
/// InCLL expander or recovery:
///
/// ```text
/// cargo test -p proteus-bench --release --test registry_completeness -- --ignored
/// ```
#[test]
#[ignore = "acceptance-scale sweep; run with -- --ignored"]
fn incll_sweeps_every_table2_workload_at_acceptance_scale() {
    let incll = registry::by_cli_name("incll").expect("InCLL registered").kind;
    for bench in Benchmark::TABLE2 {
        let params = WorkloadParams { threads: 2, init_ops: 80, sim_ops: 48, seed: 0 }
            .with_derived_seed(bench);
        let spec = ExploreSpec::new(bench, params, incll, 512);
        let outcome =
            explore(&spec).unwrap_or_else(|e| panic!("{}: explore failed: {e}", bench.abbrev()));
        assert!(
            outcome.points_explored >= 200,
            "{}: only {} crash points (total events {})",
            bench.abbrev(),
            outcome.points_explored,
            outcome.total_events
        );
        assert!(
            outcome.is_consistent(),
            "{}: {} violations, first: {:?}",
            bench.abbrev(),
            outcome.violations.len(),
            outcome.violations.first()
        );
        eprintln!(
            "[incll-acceptance] {}: {} events, {} points, 0 violations",
            bench.abbrev(),
            outcome.total_events,
            outcome.points_explored
        );
    }
}

/// Stratified crashsweep smoke over the registry's own crash roster:
/// every scheme that advertises `crash_sweep` must recover to a
/// transaction boundary at every sampled crash point.
#[test]
fn crash_sweep_roster_is_consistent_under_stratified_smoke() {
    for kind in registry::crash_sweep_roster() {
        let spec = ExploreSpec::new(Benchmark::Queue, smoke_params(), kind, 24);
        let outcome =
            explore(&spec).unwrap_or_else(|e| panic!("{}: explore failed: {e}", kind.label()));
        assert!(outcome.points_explored > 0, "{}: no crash points", kind.label());
        assert!(
            outcome.is_consistent(),
            "{}: {} violations, first: {:?}",
            kind.label(),
            outcome.violations.len(),
            outcome.violations.first()
        );
    }
}
