//! Byte-identity pin for the six seed schemes against the committed
//! golden (`tests/golden/fig6_seed_schemes.jsonl`, captured by the
//! `schemegolden` bin before the scheme registry refactor landed).
//!
//! Two layers of pinning:
//!
//! - **Spec hashes** (both the headline 0.05/4 scale and the tiny CI
//!   scale) are recomputed unconditionally. They cover the entire
//!   simulation input — workload parameters, system config, scheme —
//!   and are independent of the RNG stream, so they must match in
//!   every build environment.
//! - **RunSummary bytes** are replayed at the tiny scale only, and
//!   only when the current environment's workload fingerprint matches
//!   the capture environment's (the offline stub `rand` produces a
//!   different stream than the real crate, which changes the workload
//!   itself, not the engine). On a fingerprint match every tiny
//!   summary must serialize to exactly the golden bytes.
//!
//! Adding a new scheme (e.g. InCLL) must not disturb either layer:
//! the golden enumerates the seed schemes explicitly, and spec hashes
//! derive from each scheme's stable label, not the enum shape.

use proteus_bench::experiments::ExperimentScale;
use proteus_bench::golden::{fig6_cell_spec, workload_fingerprint};
use proteus_core::scheme::registry;
use proteus_harness::json;
use proteus_sim::persist::summary_to_json;
use proteus_sim::runner::sweep_schemes;
use proteus_types::config::{LoggingSchemeKind, MemTech};
use proteus_workloads::Benchmark;
use std::collections::BTreeSet;

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig6_seed_schemes.jsonl");

/// The roster the golden was captured with: every scheme that existed
/// before the registry refactor. InCLL (and any future scheme) is
/// deliberately absent — the pin proves the seed schemes kept their
/// exact behaviour, not that new schemes match anything.
const SEED_LABELS: [&str; 6] =
    ["PMEM", "PMEM+pcommit", "ATOM", "Proteus+NoLWR", "Proteus", "PMEM+nolog"];

struct Cell {
    bench: Benchmark,
    scheme: LoggingSchemeKind,
    spec_hash: String,
    tiny_spec_hash: String,
    tiny_summary: String,
}

fn load_golden() -> (String, Vec<Cell>) {
    let text = std::fs::read_to_string(GOLDEN).expect("read committed golden");
    let mut lines = text.lines();
    let header = json::parse(lines.next().expect("golden header line")).expect("parse header");
    let fingerprint = header
        .get("workload_fingerprint")
        .and_then(|j| j.as_str())
        .expect("fingerprint")
        .to_string();
    let cells = lines
        .map(|line| {
            let j = json::parse(line).expect("parse golden cell");
            let abbrev = j.get("bench").and_then(|b| b.as_str()).expect("bench");
            let bench = *Benchmark::TABLE2
                .iter()
                .find(|b| b.abbrev() == abbrev)
                .unwrap_or_else(|| panic!("golden bench {abbrev} not in Table 2"));
            let label = j.get("scheme").and_then(|s| s.as_str()).expect("scheme");
            let scheme = registry::by_label(label)
                .unwrap_or_else(|| panic!("golden scheme {label} not in registry"))
                .kind;
            let field =
                |k: &str| j.get(k).and_then(|v| v.as_str()).expect("hash field").to_string();
            Cell {
                bench,
                scheme,
                spec_hash: field("spec_hash"),
                tiny_spec_hash: field("tiny_spec_hash"),
                tiny_summary: j.get("tiny_summary").expect("tiny_summary").to_line(),
            }
        })
        .collect();
    (fingerprint, cells)
}

fn full_scale() -> ExperimentScale {
    ExperimentScale { scale: 0.05, threads: 4 }
}

fn tiny_scale() -> ExperimentScale {
    ExperimentScale { scale: 0.02, threads: 2 }
}

/// The golden must cover exactly (Table 2 benchmarks) x (seed
/// schemes): a cell vanishing or a seed scheme disappearing from the
/// registry is as much a regression as a changed number.
#[test]
fn golden_covers_every_seed_cell() {
    let (_, cells) = load_golden();
    assert_eq!(cells.len(), Benchmark::TABLE2.len() * SEED_LABELS.len());
    let seen: BTreeSet<(String, String)> = cells
        .iter()
        .map(|c| (c.bench.abbrev().to_string(), c.scheme.label().to_string()))
        .collect();
    assert_eq!(seen.len(), cells.len(), "duplicate golden cells");
    for bench in Benchmark::TABLE2 {
        for label in SEED_LABELS {
            assert!(
                seen.contains(&(bench.abbrev().to_string(), label.to_string())),
                "golden is missing cell {}/{label}",
                bench.abbrev()
            );
        }
    }
}

/// Spec hashes are RNG-independent, so they pin in every environment.
#[test]
fn seed_scheme_spec_hashes_are_byte_identical() {
    let (_, cells) = load_golden();
    let (full, tiny) = (full_scale(), tiny_scale());
    for cell in &cells {
        let got = format!("{:016x}", fig6_cell_spec(&full, cell.bench, cell.scheme).spec_hash());
        assert_eq!(
            got,
            cell.spec_hash,
            "{}/{}: full-scale spec hash drifted",
            cell.bench.abbrev(),
            cell.scheme.label()
        );
        let got = format!("{:016x}", fig6_cell_spec(&tiny, cell.bench, cell.scheme).spec_hash());
        assert_eq!(
            got,
            cell.tiny_spec_hash,
            "{}/{}: tiny spec hash drifted",
            cell.bench.abbrev(),
            cell.scheme.label()
        );
    }
}

/// The coherence layer must be zero-effect when no line is shared:
/// every single-owner workload runs with all coherence counters at
/// zero, so its `RunSummary` serializes without a `coherence` key and
/// the pre-coherence golden bytes above stay reachable. (The golden
/// replay itself proves byte-identity; this pins *why* it holds.)
#[test]
fn single_owner_runs_report_zero_coherence_activity() {
    let tiny = tiny_scale();
    for bench in Benchmark::TABLE2 {
        let sweep = sweep_schemes(
            &tiny.config().with_mem_tech(MemTech::NvmFast),
            bench,
            &tiny.params(bench),
            &[LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus],
        )
        .expect("tiny sweep");
        for scheme in [LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus] {
            let summary = sweep.summary_of(scheme);
            assert!(
                summary.coherence.is_zero(),
                "{}/{}: single-owner run reported coherence activity: {:?}",
                bench.abbrev(),
                scheme.label(),
                summary.coherence
            );
            let line = summary_to_json(summary).to_line();
            assert!(
                !line.contains("\"coherence\""),
                "{}/{}: zero coherence stats must not serialize",
                bench.abbrev(),
                scheme.label()
            );
        }
    }
}

/// Full numeric replay at the tiny scale, gated on the workload
/// fingerprint (stub `rand` generates a different workload, which is
/// an input change, not an engine change — skip, don't fail).
#[test]
fn seed_scheme_tiny_summaries_are_byte_identical() {
    let (fingerprint, cells) = load_golden();
    let here = format!("{:016x}", workload_fingerprint());
    if here != fingerprint {
        eprintln!(
            "golden_pin: workload fingerprint {here} != capture {fingerprint} \
             (stub rand?); skipping numeric replay, spec hashes still pin"
        );
        return;
    }
    let tiny = tiny_scale();
    let schemes: Vec<LoggingSchemeKind> =
        SEED_LABELS.iter().map(|l| registry::by_label(l).expect("seed label").kind).collect();
    for bench in Benchmark::TABLE2 {
        let sweep = sweep_schemes(
            &tiny.config().with_mem_tech(MemTech::NvmFast),
            bench,
            &tiny.params(bench),
            &schemes,
        )
        .expect("tiny sweep");
        for cell in cells.iter().filter(|c| c.bench == bench) {
            let got = summary_to_json(sweep.summary_of(cell.scheme)).to_line();
            assert_eq!(
                got,
                cell.tiny_summary,
                "{}/{}: tiny RunSummary bytes drifted",
                bench.abbrev(),
                cell.scheme.label()
            );
        }
    }
}
