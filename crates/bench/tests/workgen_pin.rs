//! Pins and end-to-end acceptance for the workgen roster.
//!
//! * Every generated preset's *spec identity* (the `StableHash` of its
//!   selector, which keys resume ledgers and trace headers) is pinned
//!   to a literal — editing a preset is a deliberate, reviewed act.
//! * Preset trace *content* hashes are pinned where the op stream is
//!   environment-independent (uniform skew); zipfian presets go
//!   through `f64::powf`, so their content pins are gated on
//!   [`skew_fingerprint`] the same way `golden_pin` gates numeric
//!   goldens on the rand stream.
//! * Every preset runs end-to-end on every registered scheme, and
//!   record -> serialise -> parse -> replay yields a byte-identical
//!   `RunSummary` with fast-forwarding on and off.

use proteus_bench::experiments::ExperimentScale;
use proteus_crash::{explore, ExploreSpec};
use proteus_sim::System;
use proteus_types::config::LoggingSchemeKind;
use proteus_types::stable_hash_value;
use proteus_workgen::codec::{trace_from_str, trace_to_string};
use proteus_workgen::{record, replay, roster, skew_fingerprint, WorkloadSel};
use proteus_workloads::{Benchmark, WorkloadParams};

/// The zipfian table `skew_fingerprint()` of the environment the
/// content pins were captured in (x86-64 IEEE-754 `powf`).
const PINNED_SKEW_FINGERPRINT: u64 = 0x40f2_fda0_efe0_9802;

/// `stable_hash_value` of every preset selector, in roster order.
const PRESET_SEL_HASHES: &[(&str, u64)] = &[
    ("ycsb-a", 0xec30_96cb_4990_1885),
    ("ycsb-b", 0xf2b1_e7c8_b8b9_8f82),
    ("ycsb-c", 0x6ce8_9d17_8ae6_b570),
    ("scan-heavy", 0x06d8_a918_21bc_c0da),
    ("indexer", 0x05a2_8ba9_bd55_f521),
    ("million-key", 0x71ad_f6d0_608f_1131),
];

/// `OpTrace::content_hash()` of every preset recorded at
/// `params(2, 0.002)`, in roster order, with whether the stream is
/// skew-free (pinned unconditionally) or zipfian (fingerprint-gated).
const PRESET_CONTENT_HASHES: &[(&str, bool, u64)] = &[
    ("ycsb-a", false, 0x2438_8536_8c2a_3607),
    ("ycsb-b", false, 0x48e9_c971_9e6f_e44d),
    ("ycsb-c", false, 0xa9c0_5eb8_bbb8_bb89),
    ("scan-heavy", true, 0xecf9_3bf4_5312_fe5b),
    ("indexer", true, 0xbf71_8532_841c_a8fc),
    ("million-key", false, 0x8c3a_5da3_d4f4_c839),
];

const PIN_SCALE: f64 = 0.002;
const PIN_THREADS: usize = 2;

fn tiny_scale() -> ExperimentScale {
    ExperimentScale { scale: PIN_SCALE, threads: PIN_THREADS }
}

#[test]
fn preset_selector_hashes_are_pinned() {
    let presets: Vec<_> = roster::presets().collect();
    assert_eq!(presets.len(), PRESET_SEL_HASHES.len());
    for (d, (name, hash)) in presets.iter().zip(PRESET_SEL_HASHES) {
        assert_eq!(d.cli_name, *name, "preset roster order changed");
        assert_eq!(
            stable_hash_value(&d.sel()),
            *hash,
            "{}: preset spec identity drifted (hash {:#018x}) — editing a preset \
             invalidates its ledger keys and recorded traces; update the pin deliberately",
            d.cli_name,
            stable_hash_value(&d.sel())
        );
    }
}

#[test]
fn preset_trace_content_hashes_are_pinned() {
    let skew_matches = skew_fingerprint() == PINNED_SKEW_FINGERPRINT;
    let presets: Vec<_> = roster::presets().collect();
    assert_eq!(presets.len(), PRESET_CONTENT_HASHES.len());
    for (d, (name, skew_free, hash)) in presets.iter().zip(PRESET_CONTENT_HASHES) {
        assert_eq!(d.cli_name, *name);
        if !skew_free && !skew_matches {
            eprintln!("skipping zipfian content pin for {} (foreign powf)", d.cli_name);
            continue;
        }
        let params = d.params(PIN_THREADS, PIN_SCALE);
        let (_, trace) = record(&d.sel(), &params).unwrap();
        assert_eq!(
            trace.content_hash(),
            *hash,
            "{}: recorded op stream drifted (content hash {:#018x})",
            d.cli_name,
            trace.content_hash()
        );
    }
}

#[test]
fn every_preset_runs_on_every_scheme() {
    let config = tiny_scale().config();
    for d in roster::presets() {
        let sel = d.sel();
        sel.validate().unwrap_or_else(|e| panic!("{}: {e}", d.cli_name));
        let params = d.params(PIN_THREADS, PIN_SCALE);
        let workload = sel.generate(&params);
        for scheme in LoggingSchemeKind::ALL {
            let summary = System::new(&config, scheme, &workload)
                .and_then(|mut s| s.run())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", d.cli_name, scheme.label()));
            assert!(summary.total_cycles > 0, "{} on {}", d.cli_name, scheme.label());
        }
    }
}

/// Acceptance: recording a workload and replaying its trace (through
/// the full serialise/parse path) yields a byte-identical `RunSummary`
/// on every scheme, with the fast-forward engine both on and off.
#[test]
fn record_replay_summaries_are_byte_identical_under_both_engines() {
    let config = tiny_scale().config();
    let cases: Vec<(String, WorkloadSel, WorkloadParams)> = [
        // A paper Table 2 workload (the acceptance case) and the two
        // structurally richest presets.
        ("qe", WorkloadSel::from(Benchmark::Queue)),
        ("ycsb-a", roster::by_cli_name("ycsb-a").unwrap().sel()),
        ("indexer", roster::by_cli_name("indexer").unwrap().sel()),
    ]
    .into_iter()
    .map(|(name, sel)| {
        let params = match &sel {
            WorkloadSel::Bench(b) => tiny_scale().params(*b),
            WorkloadSel::Gen(_) | WorkloadSel::Contended(_) => {
                roster::by_cli_name(name).unwrap().params(PIN_THREADS, PIN_SCALE)
            }
        };
        (name.to_string(), sel, params)
    })
    .collect();
    for (name, sel, params) in cases {
        let (recorded, trace) = record(&sel, &params).unwrap();
        let parsed = trace_from_str(&trace_to_string(&trace)).expect("trace round trip");
        assert_eq!(parsed, trace, "{name}");
        let replayed = replay(&parsed).expect("replay");
        assert_eq!(recorded.programs, replayed.programs, "{name}");
        assert_eq!(recorded.initial_image, replayed.initial_image, "{name}");
        for scheme in [LoggingSchemeKind::SwPmem, LoggingSchemeKind::Proteus] {
            for fast in [true, false] {
                let run = |w: &proteus_workloads::GeneratedWorkload| {
                    let mut sys = System::new(&config, scheme, w).unwrap();
                    sys.set_fast_forward(fast);
                    sys.run().unwrap()
                };
                assert_eq!(
                    run(&recorded),
                    run(&replayed),
                    "{name}/{} (ff={fast}): replayed RunSummary diverged",
                    scheme.label()
                );
            }
        }
    }
}

/// Crashsweep smoke over a generated preset: a tiny exploration of
/// ycsb-a under Proteus must hold zero oracle violations.
#[test]
fn generated_preset_crashsweep_smoke_is_clean() {
    let sel = roster::by_cli_name("ycsb-a").unwrap().sel();
    let params =
        sel.derived_params(WorkloadParams { threads: 2, init_ops: 40, sim_ops: 12, seed: 0 });
    let spec = ExploreSpec::new(sel, params, LoggingSchemeKind::Proteus, 64);
    let outcome = explore(&spec).expect("exploration");
    assert!(outcome.points_explored > 0);
    assert!(
        outcome.violations.is_empty(),
        "ycsb-a/Proteus: {} violations, first: {:?}",
        outcome.violations.len(),
        outcome.violations.first()
    );
}
