//! Workload specification and trace generation.
//!
//! [`generate`] builds, for a chosen [`Benchmark`] and parameters, the
//! initial memory image (the fast-forwarded `#InitOps`) and one
//! scheme-independent [`Program`] per thread (the `#SimOps`), mirroring
//! the paper's methodology: per-thread data structures behind locks, a
//! random operation stream from a seeded generator, and conservative
//! per-transaction undo hints computed by a dry run of each operation.

use crate::avl::AvlTree;
use crate::btree::BTree;
use crate::hashmap::HashMapStruct;
use crate::largetx::BigNodeList;
use crate::mem::{CollectMem, DirectMem, EmitMem, Mem, NodeAlloc};
use crate::queue::Queue;
use crate::rbtree::RbTree;
use crate::stringswap::StringArray;
use proteus_core::pmem::WordImage;
use proteus_core::program::Program;
use proteus_types::{Addr, FieldHasher, StableHash, StableHasher, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-thread arena size (64 MiB keeps 16 threads below the log region).
const ARENA_BYTES: u64 = 0x0400_0000;
const DATA_BASE: u64 = 0x1000_0000;

/// Serial application work surrounding every operation, in cycles:
/// reading the operation from the input stream, dispatching on it, and
/// acquiring/releasing the structure's lock. The paper's benchmarks run
/// as full programs ("each benchmark receives an operation type and a
/// key for each operation from an input file", operations take locks),
/// so this uniform cost exists in every scheme and is what keeps logging
/// overhead a *fraction* of execution time rather than a multiple.
pub(crate) const APP_OVERHEAD_CYCLES: u32 = 600;

/// The data arena `[start, end)` owned by thread `t`. Threads touch only
/// their own arena (the paper's share-nothing locking discipline), so
/// per-thread crash-consistency can be checked independently.
pub fn thread_arena(t: ThreadId) -> (Addr, Addr) {
    let start = DATA_BASE + t.index() as u64 * ARENA_BYTES;
    (Addr::new(start), Addr::new(start + ARENA_BYTES))
}

/// The benchmarks of Table 2 plus the §7.3 microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// QE: enqueue/dequeue in 8 queues.
    Queue,
    /// HM: insert/delete in 16 hash maps.
    HashMap,
    /// SS: swap strings in a 262144-item string array.
    StringSwap,
    /// AT: insert/delete in 16 AVL trees.
    AvlTree,
    /// BT: insert/delete in 16 B-trees.
    BTree,
    /// RT: insert/delete in 16 red-black trees.
    RbTree,
    /// §7.3 microbenchmark: large transactions updating `elements`
    /// elements per node.
    LargeTx {
        /// Elements updated per transaction (1024-8192 in Table 3).
        elements: u64,
    },
}

impl Benchmark {
    /// The six Table 2 benchmarks, in the paper's figure order.
    pub const TABLE2: [Benchmark; 6] = [
        Benchmark::Queue,
        Benchmark::HashMap,
        Benchmark::StringSwap,
        Benchmark::AvlTree,
        Benchmark::BTree,
        Benchmark::RbTree,
    ];

    /// The paper's abbreviation.
    pub fn abbrev(&self) -> &'static str {
        match self {
            Benchmark::Queue => "QE",
            Benchmark::HashMap => "HM",
            Benchmark::StringSwap => "SS",
            Benchmark::AvlTree => "AT",
            Benchmark::BTree => "BT",
            Benchmark::RbTree => "RT",
            Benchmark::LargeTx { .. } => "LT",
        }
    }

    /// Table 2 `(#InitOps, #SimOps)` per thread.
    pub fn table2_ops(&self) -> (usize, usize) {
        match self {
            Benchmark::Queue => (20_000, 50_000),
            Benchmark::HashMap => (100_000, 20_000),
            Benchmark::StringSwap => (20_000, 50_000),
            Benchmark::AvlTree | Benchmark::BTree | Benchmark::RbTree => (100_000, 10_000),
            Benchmark::LargeTx { .. } => (0, 200),
        }
    }

    /// Structures per system (Table 2), partitioned across threads.
    fn structure_count(&self) -> usize {
        match self {
            Benchmark::Queue => 8,
            Benchmark::HashMap => 16,
            Benchmark::StringSwap => 1,
            Benchmark::AvlTree | Benchmark::BTree | Benchmark::RbTree => 16,
            Benchmark::LargeTx { .. } => 4,
        }
    }
}

impl StableHash for Benchmark {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("Benchmark");
        f.field("kind", self.abbrev());
        if let Benchmark::LargeTx { elements } = self {
            f.field("elements", elements);
        }
        h.write_u64(f.finish());
    }
}

/// Generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Number of threads (= cores in the headline experiments).
    pub threads: usize,
    /// Initialisation operations per thread (fast-forwarded).
    pub init_ops: usize,
    /// Simulated operations (durable transactions) per thread.
    pub sim_ops: usize,
    /// RNG seed for the operation stream.
    pub seed: u64,
}

impl StableHash for WorkloadParams {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("WorkloadParams");
        f.field("threads", &self.threads)
            .field("init_ops", &self.init_ops)
            .field("sim_ops", &self.sim_ops)
            .field("seed", &self.seed);
        h.write_u64(f.finish());
    }
}

impl WorkloadParams {
    /// Table 2 parameters scaled by `scale` (e.g. 0.02 for quick runs).
    pub fn table2(bench: Benchmark, threads: usize, scale: f64) -> Self {
        let (init, sim) = bench.table2_ops();
        WorkloadParams {
            threads,
            init_ops: ((init as f64 * scale) as usize).max(1),
            sim_ops: ((sim as f64 * scale) as usize).max(1),
            seed: 0x5EED_0001,
        }
    }

    /// Replaces the seed with one derived structurally from the
    /// benchmark and the remaining (seed-independent) parameters.
    ///
    /// Every distinct experiment shape gets its own deterministic
    /// stream — scaling a sweep up does not replay a prefix of another
    /// configuration's operations — while the same shape always
    /// regenerates bit-identical workloads, on any platform, which is
    /// what makes resume ledgers and cross-run comparisons sound.
    pub fn with_derived_seed(mut self, bench: Benchmark) -> Self {
        let mut f = FieldHasher::new("WorkloadSeed");
        f.field("bench", &bench)
            .field("threads", &self.threads)
            .field("init_ops", &self.init_ops)
            .field("sim_ops", &self.sim_ops);
        self.seed = f.finish();
        self
    }
}

/// A generated workload: the initial image plus per-thread programs.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// Benchmark abbreviation plus parameters.
    pub name: String,
    /// One program per thread.
    pub programs: Vec<Program>,
    /// Memory contents after initialisation (fast-forward).
    pub initial_image: WordImage,
    /// The global lock schedule, for contended workloads only
    /// (`None` for every single-owner workload — the discriminant the
    /// crash harness uses to pick its oracle).
    pub sharing: Option<crate::contended::SharingPlan>,
}

impl GeneratedWorkload {
    /// Total durable transactions across threads.
    pub fn total_transactions(&self) -> u64 {
        self.programs.iter().map(Program::transaction_count).sum()
    }
}

/// The per-thread data structures an operation stream runs against.
///
/// Public so the trace replayer (`proteus-workgen`) can rebuild a
/// thread's structures from a trace header and feed recorded
/// [`OpSpec`]s back through [`run_op`] / [`emit_op_group`].
#[derive(Debug, Clone)]
pub enum Structures {
    /// Linked-list queues (QE).
    Queues(Vec<Queue>),
    /// Chained hash maps (HM and generated key-value mixes).
    Maps(Vec<HashMapStruct>),
    /// A string array (SS).
    Strings(StringArray),
    /// AVL trees (AT).
    Avls(Vec<AvlTree>),
    /// B-trees (BT and generated scan mixes).
    BTrees(Vec<BTree>),
    /// Red-black trees (RT).
    RbTrees(Vec<RbTree>),
    /// The §7.3 large-transaction node list (LT).
    BigList(BigNodeList),
}

/// One structure operation, the unit recorded in op traces.
///
/// The structure index `s` selects among the thread's own structures;
/// keys and values are plain integers so specs serialize compactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // fields are explained in each variant's doc line
pub enum OpSpec {
    /// Enqueue `value` on queue `s`.
    Enqueue { s: usize, value: u64 },
    /// Dequeue from queue `s`.
    Dequeue { s: usize },
    /// Insert/update `key -> value` in map `s`.
    MapInsert { s: usize, key: u64, value: u64 },
    /// Delete `key` from map `s`.
    MapDelete { s: usize, key: u64 },
    /// Swap strings `i` and `j`.
    Swap { i: u64, j: u64 },
    /// Insert `key` (with `value` where the tree stores one) in tree `s`.
    TreeInsert { s: usize, key: u64, value: u64 },
    /// Delete `key` from tree `s`.
    TreeDelete { s: usize, key: u64 },
    /// Rewrite every element of big node `node` from `base`.
    BigUpdate { node: u64, base: u64 },
    /// Point lookup of `key` in map `s` (read-only).
    MapLookup { s: usize, key: u64 },
    /// Point lookup of `key` in tree `s` (read-only).
    TreeLookup { s: usize, key: u64 },
    /// Scan `len` consecutive keys from `key` in tree `s` (read-only).
    ///
    /// Approximates a range scan with `len` successive point lookups —
    /// the trees store dense integer keys, so consecutive lookups walk
    /// the same leaf neighbourhood a range iterator would.
    TreeScan { s: usize, key: u64, len: u32 },
    /// Dequeue up to `n` nodes from queue `s` (stops when empty).
    QueueDrain { s: usize, n: u32 },
}

impl OpSpec {
    /// True when the operation never writes persistent data. Read-only
    /// groups are emitted without a durable transaction (writes outside
    /// a tx are what need undo hints, reads need none).
    pub fn is_readonly(&self) -> bool {
        matches!(
            self,
            OpSpec::MapLookup { .. } | OpSpec::TreeLookup { .. } | OpSpec::TreeScan { .. }
        )
    }
}

/// Applies `op` to `structures` through any [`Mem`] implementation.
pub fn run_op<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc, structures: &Structures, op: OpSpec) {
    match (structures, op) {
        (Structures::Queues(qs), OpSpec::Enqueue { s, value }) => qs[s].enqueue(mem, alloc, value),
        (Structures::Queues(qs), OpSpec::Dequeue { s }) => {
            qs[s].dequeue(mem);
        }
        (Structures::Maps(ms), OpSpec::MapInsert { s, key, value }) => {
            ms[s].insert(mem, alloc, key, value);
        }
        (Structures::Maps(ms), OpSpec::MapDelete { s, key }) => {
            ms[s].delete(mem, key);
        }
        (Structures::Strings(arr), OpSpec::Swap { i, j }) => arr.swap(mem, i, j),
        (Structures::Avls(ts), OpSpec::TreeInsert { s, key, value }) => {
            ts[s].insert(mem, alloc, key, value)
        }
        (Structures::Avls(ts), OpSpec::TreeDelete { s, key }) => {
            ts[s].delete(mem, key);
        }
        (Structures::BTrees(ts), OpSpec::TreeInsert { s, key, .. }) => {
            ts[s].insert(mem, alloc, key);
        }
        (Structures::BTrees(ts), OpSpec::TreeDelete { s, key }) => {
            ts[s].delete(mem, key);
        }
        (Structures::RbTrees(ts), OpSpec::TreeInsert { s, key, value }) => {
            ts[s].insert(mem, alloc, key, value)
        }
        (Structures::RbTrees(ts), OpSpec::TreeDelete { s, key }) => {
            ts[s].delete(mem, key);
        }
        (Structures::BigList(list), OpSpec::BigUpdate { node, base }) => {
            list.update_node(mem, node, base)
        }
        (Structures::Maps(ms), OpSpec::MapLookup { s, key }) => {
            ms[s].get(mem, key);
        }
        (Structures::Avls(ts), OpSpec::TreeLookup { s, key }) => {
            ts[s].get(mem, key);
        }
        (Structures::BTrees(ts), OpSpec::TreeLookup { s, key }) => {
            ts[s].contains(mem, key);
        }
        (Structures::RbTrees(ts), OpSpec::TreeLookup { s, key }) => {
            ts[s].get(mem, key);
        }
        (Structures::Avls(ts), OpSpec::TreeScan { s, key, len }) => {
            for i in 0..len as u64 {
                ts[s].get(mem, key.wrapping_add(i));
            }
        }
        (Structures::BTrees(ts), OpSpec::TreeScan { s, key, len }) => {
            for i in 0..len as u64 {
                ts[s].contains(mem, key.wrapping_add(i));
            }
        }
        (Structures::RbTrees(ts), OpSpec::TreeScan { s, key, len }) => {
            for i in 0..len as u64 {
                ts[s].get(mem, key.wrapping_add(i));
            }
        }
        (Structures::Queues(qs), OpSpec::QueueDrain { s, n }) => {
            for _ in 0..n {
                if qs[s].dequeue(mem).is_none() {
                    break;
                }
            }
        }
        _ => unreachable!("op does not match structure kind"),
    }
}

/// The index of the structure `op` targets (used for lock assignment).
pub fn op_struct_index(op: OpSpec) -> usize {
    match op {
        OpSpec::Enqueue { s, .. }
        | OpSpec::Dequeue { s }
        | OpSpec::MapInsert { s, .. }
        | OpSpec::MapDelete { s, .. }
        | OpSpec::TreeInsert { s, .. }
        | OpSpec::TreeDelete { s, .. }
        | OpSpec::MapLookup { s, .. }
        | OpSpec::TreeLookup { s, .. }
        | OpSpec::TreeScan { s, .. }
        | OpSpec::QueueDrain { s, .. } => s,
        OpSpec::Swap { .. } | OpSpec::BigUpdate { .. } => 0,
    }
}

fn pick_op(
    bench: Benchmark,
    per_thread: usize,
    key_range: u64,
    items: u64,
    big_nodes: u64,
    rng: &mut StdRng,
) -> OpSpec {
    match bench {
        Benchmark::Queue => {
            let s = rng.random_range(0..per_thread);
            if rng.random_bool(0.5) {
                OpSpec::Enqueue { s, value: rng.random::<u32>() as u64 + 1 }
            } else {
                OpSpec::Dequeue { s }
            }
        }
        Benchmark::HashMap => {
            let s = rng.random_range(0..per_thread);
            let key = rng.random_range(0..key_range);
            if rng.random_bool(0.5) {
                OpSpec::MapInsert { s, key, value: rng.random::<u32>() as u64 }
            } else {
                OpSpec::MapDelete { s, key }
            }
        }
        Benchmark::StringSwap => {
            let i = rng.random_range(0..items);
            let mut j = rng.random_range(0..items);
            if j == i {
                j = (j + 1) % items;
            }
            OpSpec::Swap { i, j }
        }
        Benchmark::AvlTree | Benchmark::BTree | Benchmark::RbTree => {
            let s = rng.random_range(0..per_thread);
            let key = rng.random_range(0..key_range);
            if rng.random_bool(0.5) {
                OpSpec::TreeInsert { s, key, value: rng.random::<u32>() as u64 }
            } else {
                OpSpec::TreeDelete { s, key }
            }
        }
        Benchmark::LargeTx { .. } => OpSpec::BigUpdate {
            node: rng.random_range(0..big_nodes),
            base: rng.random::<u32>() as u64,
        },
    }
}

/// A fresh node allocator covering thread `t`'s 64 MiB arena.
pub fn thread_alloc(t: usize) -> NodeAlloc {
    NodeAlloc::new(Addr::new(DATA_BASE + t as u64 * ARENA_BYTES), ARENA_BYTES)
}

/// The base of thread `t`'s lock-word line.
///
/// Per-thread lock words (one per owned structure, 8 slots) are
/// volatile runtime state: they live outside the persistent data arena
/// and take no undo logging — after a crash, lock state is meaningless
/// (the paper's locking is for mutual exclusion only).
pub fn lock_base_for(t: usize) -> Addr {
    Addr::new(0x0E00_0000 + t as u64 * 64)
}

/// One thread's freshly created structures plus the derived generation
/// bounds the op stream draws from.
#[derive(Debug)]
pub struct ThreadStructures {
    /// The structures themselves.
    pub structures: Structures,
    /// Structures owned by this thread.
    pub per_thread: usize,
    /// Key universe for map/tree operations.
    pub key_range: u64,
    /// String-array item count (SS only, 0 otherwise).
    pub items: u64,
    /// Big-node count (LT only, 0 otherwise).
    pub big_nodes: u64,
}

/// Creates one thread's structures in `image` via `alloc`, exactly as
/// [`generate`] does — the replayer uses this to rebuild a trace's
/// initial state byte-identically.
pub fn build_thread_structures(
    bench: Benchmark,
    params: &WorkloadParams,
    image: &mut WordImage,
    alloc: &mut NodeAlloc,
) -> ThreadStructures {
    let per_thread = (bench.structure_count() / params.threads).max(1);
    let key_range = (params.init_ops as u64).max(16) * 2;
    let mut m = DirectMem::new(image);
    let (structures, items, big_nodes) = match bench {
        Benchmark::Queue => (
            Structures::Queues((0..per_thread).map(|_| Queue::create(&mut m, alloc)).collect()),
            0,
            0,
        ),
        Benchmark::HashMap => (
            Structures::Maps(
                (0..per_thread).map(|_| HashMapStruct::create(&mut m, alloc, 256)).collect(),
            ),
            0,
            0,
        ),
        Benchmark::StringSwap => {
            // 262144 items across threads, scaled with init_ops
            // (the array is the structure; init swaps shuffle it).
            let items =
                ((262_144 / params.threads) as u64).min((params.init_ops as u64 + 1) * 4).max(16);
            (Structures::Strings(StringArray::create(&mut m, alloc, items)), items, 0)
        }
        Benchmark::AvlTree => (
            Structures::Avls((0..per_thread).map(|_| AvlTree::create(&mut m, alloc)).collect()),
            0,
            0,
        ),
        Benchmark::BTree => (
            Structures::BTrees((0..per_thread).map(|_| BTree::create(&mut m, alloc)).collect()),
            0,
            0,
        ),
        Benchmark::RbTree => (
            Structures::RbTrees((0..per_thread).map(|_| RbTree::create(&mut m, alloc)).collect()),
            0,
            0,
        ),
        Benchmark::LargeTx { elements } => {
            let nodes = 16;
            (Structures::BigList(BigNodeList::create(&mut m, alloc, nodes, elements)), 0, nodes)
        }
    };
    ThreadStructures { structures, per_thread, key_range, items, big_nodes }
}

/// Observes the op stream as [`generate_with`] draws it — the hook the
/// trace recorder uses to capture workloads without perturbing them.
pub trait OpRecorder {
    /// A fast-forwarded initialisation op applied to thread `t`.
    fn record_init(&mut self, t: usize, op: OpSpec);
    /// One emitted operation group for thread `t` (Table 2 groups hold
    /// a single op; generated workloads may batch several per tx).
    fn record_group(&mut self, t: usize, ops: &[OpSpec]);
}

/// The no-op recorder plain [`generate`] uses.
impl OpRecorder for () {
    fn record_init(&mut self, _t: usize, _op: OpSpec) {}
    fn record_group(&mut self, _t: usize, _ops: &[OpSpec]) {}
}

/// Emits one operation group into `program`, mutating `image`.
///
/// A group is the unit of durability: a combined conservative undo
/// hint is collected by dry-running every op, then all ops execute
/// inside a single `TxBegin`/`TxEnd` bracket behind the structures'
/// locks. Groups whose ops are all read-only skip the dry run and the
/// transaction entirely (reads need no undo coverage) but still pay
/// the application preamble and locking. A single mutating op emits
/// byte-identically to the historical per-op path.
pub fn emit_op_group(
    image: &mut WordImage,
    program: &mut Program,
    alloc: &mut NodeAlloc,
    structures: &Structures,
    ops: &[OpSpec],
    lock_base: Addr,
) {
    if ops.is_empty() {
        return;
    }
    let durable = ops.iter().any(|op| !op.is_readonly());
    let hint_nodes = if durable {
        let mut c = CollectMem::new(image);
        let mut scratch_alloc = alloc.clone();
        for &op in ops {
            run_op(&mut c, &mut scratch_alloc, structures, op);
        }
        c.hint()
    } else {
        Vec::new()
    };

    // Application preamble: parse each operation from the input stream.
    for _ in ops {
        let mut remaining = APP_OVERHEAD_CYCLES;
        while remaining > 0 {
            let chunk = remaining.min(200) as u8;
            program.compute(chunk);
            remaining -= chunk as u32;
        }
    }

    // Take each touched structure's lock once, in first-use order.
    let mut locks: Vec<Addr> = Vec::new();
    for &op in ops {
        let lock = lock_base.offset((op_struct_index(op) % 8) as u64 * 8);
        if !locks.contains(&lock) {
            locks.push(lock);
        }
    }
    for &lock in &locks {
        program.read(lock);
        program.write(lock, 1);
    }

    if durable {
        // Cover both 32-byte grains of each 64-byte node.
        let hint: Vec<Addr> = hint_nodes.iter().flat_map(|n| [*n, n.offset(32)]).collect();
        program.tx_begin(hint);
    }
    {
        let mut e = EmitMem::new(image, program);
        for &op in ops {
            run_op(&mut e, alloc, structures, op);
        }
    }
    if durable {
        program.tx_end();
    }
    for &lock in locks.iter().rev() {
        program.write(lock, 0);
    }
}

/// Generates the workload.
///
/// # Panics
///
/// Panics if a thread's 64 MiB node arena is exhausted (reduce the op
/// counts) or if generation produces an invalid program (a bug).
pub fn generate(bench: Benchmark, params: &WorkloadParams) -> GeneratedWorkload {
    generate_with(bench, params, &mut ())
}

/// [`generate`] with an [`OpRecorder`] observing every drawn op — the
/// entry point trace recording uses. `generate_with(b, p, &mut ())` is
/// exactly `generate(b, p)`.
pub fn generate_with(
    bench: Benchmark,
    params: &WorkloadParams,
    rec: &mut impl OpRecorder,
) -> GeneratedWorkload {
    assert!(params.threads > 0, "need at least one thread");
    let mut image = WordImage::new();
    let mut programs = Vec::with_capacity(params.threads);

    for t in 0..params.threads {
        let mut alloc = thread_alloc(t);
        let mut rng = StdRng::seed_from_u64(params.seed ^ (t as u64).wrapping_mul(0x9E37));

        let ts = build_thread_structures(bench, params, &mut image, &mut alloc);

        // Fast-forwarded initialisation.
        for _ in 0..params.init_ops {
            let op = pick_op(bench, ts.per_thread, ts.key_range, ts.items, ts.big_nodes, &mut rng);
            rec.record_init(t, op);
            let mut m = DirectMem::new(&mut image);
            run_op(&mut m, &mut alloc, &ts.structures, op);
        }

        let lock_base = lock_base_for(t);

        // Simulated operations: dry-run for the hint, then emit.
        let mut program = Program::new(ThreadId::new(t as u32));
        for _ in 0..params.sim_ops {
            let op = pick_op(bench, ts.per_thread, ts.key_range, ts.items, ts.big_nodes, &mut rng);
            rec.record_group(t, &[op]);
            emit_op_group(&mut image, &mut program, &mut alloc, &ts.structures, &[op], lock_base);
        }
        program.validate().expect("generated program must validate");
        programs.push(program);
    }

    GeneratedWorkload {
        name: format!("{}x{}", bench.abbrev(), params.threads),
        programs,
        initial_image: image,
        sharing: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_core::program::Op;

    fn small(bench: Benchmark) -> GeneratedWorkload {
        let params = WorkloadParams { threads: 2, init_ops: 200, sim_ops: 50, seed: 42 };
        generate(bench, &params)
    }

    #[test]
    fn every_benchmark_generates_valid_programs() {
        for bench in Benchmark::TABLE2 {
            let w = small(bench);
            assert_eq!(w.programs.len(), 2, "{bench:?}");
            assert_eq!(w.total_transactions(), 100, "{bench:?}");
            for p in &w.programs {
                p.validate().unwrap();
                assert!(!p.ops.is_empty());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(Benchmark::RbTree);
        let b = small(Benchmark::RbTree);
        assert_eq!(a.programs, b.programs);
        assert_eq!(a.initial_image, b.initial_image);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small(Benchmark::HashMap);
        let params = WorkloadParams { threads: 2, init_ops: 200, sim_ops: 50, seed: 43 };
        let b = generate(Benchmark::HashMap, &params);
        assert_ne!(a.programs, b.programs);
    }

    #[test]
    fn programs_replay_functionally() {
        // Applying each program on the initial image must not panic and
        // must end in a state consistent with validation (writes covered
        // by hints implies recovery soundness tested elsewhere).
        for bench in [Benchmark::Queue, Benchmark::AvlTree, Benchmark::BTree] {
            let w = small(bench);
            let mut img = w.initial_image.clone();
            for p in &w.programs {
                p.apply_functionally(&mut img);
            }
        }
    }

    #[test]
    fn threads_touch_disjoint_arenas() {
        let w = small(Benchmark::HashMap);
        let ranges: Vec<(u64, u64)> = (0..2u64)
            .map(|t| (DATA_BASE + t * ARENA_BYTES, DATA_BASE + (t + 1) * ARENA_BYTES))
            .collect();
        for (t, p) in w.programs.iter().enumerate() {
            for op in &p.ops {
                if let Op::Write(addr, _) = op {
                    // Volatile lock words live below the persistent heap,
                    // one line per thread.
                    if addr.raw() < DATA_BASE {
                        assert_eq!(addr.raw() & !63, 0x0E00_0000 + t as u64 * 64);
                        continue;
                    }
                    let (lo, hi) = ranges[t];
                    assert!(
                        addr.raw() >= lo && addr.raw() < hi,
                        "thread {t} wrote outside its arena: {addr}"
                    );
                }
            }
        }
    }

    #[test]
    fn largetx_scales_write_set() {
        let params = WorkloadParams { threads: 1, init_ops: 0, sim_ops: 3, seed: 7 };
        let small = generate(Benchmark::LargeTx { elements: 256 }, &params);
        let large = generate(Benchmark::LargeTx { elements: 1024 }, &params);
        let writes = |w: &GeneratedWorkload| {
            w.programs[0].ops.iter().filter(|o| matches!(o, Op::Write(..))).count()
        };
        assert!(writes(&large) >= writes(&small) * 3);
    }

    #[test]
    fn derived_seeds_are_stable_and_shape_sensitive() {
        let base = WorkloadParams { threads: 2, init_ops: 200, sim_ops: 50, seed: 0 };
        let a = base.clone().with_derived_seed(Benchmark::HashMap);
        let b = base.clone().with_derived_seed(Benchmark::HashMap);
        // Deterministic: shape alone decides the seed.
        assert_eq!(a.seed, b.seed);
        // The starting seed value does not leak into the derivation.
        let c = WorkloadParams { seed: 999, ..base.clone() }.with_derived_seed(Benchmark::HashMap);
        assert_eq!(a.seed, c.seed);
        // Every shape dimension separates streams.
        assert_ne!(a.seed, base.clone().with_derived_seed(Benchmark::Queue).seed);
        assert_ne!(
            a.seed,
            WorkloadParams { threads: 4, ..base.clone() }
                .with_derived_seed(Benchmark::HashMap)
                .seed
        );
        assert_ne!(
            a.seed,
            WorkloadParams { sim_ops: 51, ..base.clone() }
                .with_derived_seed(Benchmark::HashMap)
                .seed
        );
        // LargeTx sizes are distinct shapes.
        assert_ne!(
            base.clone().with_derived_seed(Benchmark::LargeTx { elements: 1024 }).seed,
            base.clone().with_derived_seed(Benchmark::LargeTx { elements: 2048 }).seed
        );
    }

    #[test]
    fn derived_seed_generates_identical_workloads() {
        let params = WorkloadParams { threads: 2, init_ops: 100, sim_ops: 20, seed: 0 }
            .with_derived_seed(Benchmark::RbTree);
        let a = generate(Benchmark::RbTree, &params);
        let b = generate(Benchmark::RbTree, &params);
        assert_eq!(a.programs, b.programs);
        assert_eq!(a.initial_image, b.initial_image);
    }

    #[test]
    fn benchmark_stable_hashes_distinct() {
        use proteus_types::stable_hash_value;
        let all = [
            Benchmark::Queue,
            Benchmark::HashMap,
            Benchmark::StringSwap,
            Benchmark::AvlTree,
            Benchmark::BTree,
            Benchmark::RbTree,
            Benchmark::LargeTx { elements: 1024 },
            Benchmark::LargeTx { elements: 8192 },
        ];
        let hashes: std::collections::HashSet<u64> = all.iter().map(stable_hash_value).collect();
        assert_eq!(hashes.len(), all.len());
    }

    #[test]
    fn table2_params_scale() {
        let p = WorkloadParams::table2(Benchmark::AvlTree, 4, 0.01);
        assert_eq!(p.init_ops, 1000);
        assert_eq!(p.sim_ops, 100);
        let p = WorkloadParams::table2(Benchmark::Queue, 4, 1.0);
        assert_eq!(p.init_ops, 20_000);
        assert_eq!(p.sim_ops, 50_000);
    }
}
