//! BT: insert/delete on B-trees (Table 2).
//!
//! A B-tree of minimum degree 2 (a 2-3-4 tree) whose nodes fill exactly
//! one 64-byte cache line: `[meta, k0, k1, k2, c0, c1, c2, c3]` where
//! `meta` packs the key count and a leaf flag. Splits on the way down
//! during inserts; borrows/merges on the way down during deletes (CLRS
//! single-pass algorithms), so a single operation can rewrite several
//! nodes — the conservative-logging stress case the paper highlights.

use crate::mem::{Mem, NodeAlloc};
use proteus_types::Addr;

/// Minimum degree `t`: nodes hold 1..=3 keys, 2..=4 children.
const T: u64 = 2;
const MAX_KEYS: u64 = 2 * T - 1;

const META: u64 = 0;
const LEAF_BIT: u64 = 1 << 8;

fn key_off(i: u64) -> u64 {
    8 + i * 8
}

fn child_off(i: u64) -> u64 {
    8 + MAX_KEYS * 8 + i * 8
}

/// Handle to one B-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    meta: Addr,
}

struct NodeRef(Addr);

impl NodeRef {
    fn count<M: Mem>(&self, mem: &mut M) -> u64 {
        mem.read_dep(self.0.offset(META)) & 0xFF
    }

    fn is_leaf<M: Mem>(&self, mem: &mut M) -> bool {
        mem.read_dep(self.0.offset(META)) & LEAF_BIT != 0
    }

    fn set_meta<M: Mem>(&self, mem: &mut M, count: u64, leaf: bool) {
        debug_assert!(count <= MAX_KEYS);
        mem.write(self.0.offset(META), count | if leaf { LEAF_BIT } else { 0 });
    }

    fn key<M: Mem>(&self, mem: &mut M, i: u64) -> u64 {
        mem.read_dep(self.0.offset(key_off(i)))
    }

    fn set_key<M: Mem>(&self, mem: &mut M, i: u64, k: u64) {
        mem.write(self.0.offset(key_off(i)), k);
    }

    fn child<M: Mem>(&self, mem: &mut M, i: u64) -> Addr {
        Addr::new(mem.read_dep(self.0.offset(child_off(i))))
    }

    fn set_child<M: Mem>(&self, mem: &mut M, i: u64, c: Addr) {
        mem.write(self.0.offset(child_off(i)), c.raw());
    }
}

impl BTree {
    /// Creates an empty tree.
    pub fn create<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc) -> Self {
        let meta = alloc.alloc_node();
        let root = alloc.alloc_node();
        NodeRef(root).set_meta(mem, 0, true);
        mem.write(meta, root.raw());
        BTree { meta }
    }

    fn root<M: Mem>(&self, mem: &mut M) -> Addr {
        mem.hint_node(self.meta);
        Addr::new(mem.read(self.meta))
    }

    /// Looks up `key`.
    pub fn contains<M: Mem>(&self, mem: &mut M, key: u64) -> bool {
        let mut node = self.root(mem);
        loop {
            let n = NodeRef(node);
            mem.hint_node(node);
            let count = n.count(mem);
            let mut i = 0;
            while i < count && key > n.key(mem, i) {
                mem.compute(1);
                i += 1;
            }
            if i < count && key == n.key(mem, i) {
                return true;
            }
            if n.is_leaf(mem) {
                return false;
            }
            node = n.child(mem, i);
        }
    }

    /// Splits the full `i`-th child of `parent` (which must be non-full).
    fn split_child<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc, parent: Addr, i: u64) {
        let p = NodeRef(parent);
        let full = p.child(mem, i);
        let f = NodeRef(full);
        mem.hint_node(full);
        let right = alloc.alloc_node();
        mem.hint_node(right);
        let r = NodeRef(right);
        let leaf = f.is_leaf(mem);
        // Right node takes the top t-1 keys (key index 2 for t=2).
        r.set_meta(mem, T - 1, leaf);
        for j in 0..(T - 1) {
            let k = f.key(mem, T + j);
            r.set_key(mem, j, k);
        }
        if !leaf {
            for j in 0..T {
                let c = f.child(mem, T + j);
                r.set_child(mem, j, c);
            }
        }
        let median = f.key(mem, T - 1);
        f.set_meta(mem, T - 1, leaf);
        // Shift parent's keys/children right to make room at i.
        let pcount = p.count(mem);
        let mut j = pcount;
        while j > i {
            let k = p.key(mem, j - 1);
            p.set_key(mem, j, k);
            let c = p.child(mem, j);
            p.set_child(mem, j + 1, c);
            j -= 1;
        }
        p.set_key(mem, i, median);
        p.set_child(mem, i + 1, right);
        let leaf_p = p.is_leaf(mem);
        p.set_meta(mem, pcount + 1, leaf_p);
    }

    fn insert_nonfull<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc, node: Addr, key: u64) {
        let n = NodeRef(node);
        mem.hint_node(node);
        let count = n.count(mem);
        if n.is_leaf(mem) {
            // Shift larger keys right and insert.
            let mut i = count;
            while i > 0 && n.key(mem, i - 1) > key {
                mem.compute(1);
                let k = n.key(mem, i - 1);
                n.set_key(mem, i, k);
                i -= 1;
            }
            // Duplicates never reach here: `insert` pre-checks `contains`.
            debug_assert!(i == 0 || n.key(mem, i - 1) != key, "duplicate key {key}");
            n.set_key(mem, i, key);
            n.set_meta(mem, count + 1, true);
            return;
        }
        let mut i = 0;
        while i < count && key > n.key(mem, i) {
            mem.compute(1);
            i += 1;
        }
        if i < count && key == n.key(mem, i) {
            return; // set semantics: already present
        }
        let child = n.child(mem, i);
        if NodeRef(child).count(mem) == MAX_KEYS {
            Self::split_child(mem, alloc, node, i);
            let median = n.key(mem, i);
            if key == median {
                return;
            }
            if key > median {
                i += 1;
            }
        }
        let child = n.child(mem, i);
        Self::insert_nonfull(mem, alloc, child, key);
    }

    /// Inserts `key` (set semantics). Returns `true` if newly inserted.
    pub fn insert<M: Mem>(&self, mem: &mut M, alloc: &mut NodeAlloc, key: u64) -> bool {
        if self.contains(mem, key) {
            return false;
        }
        let root = self.root(mem);
        if NodeRef(root).count(mem) == MAX_KEYS {
            let new_root = alloc.alloc_node();
            mem.hint_node(new_root);
            let nr = NodeRef(new_root);
            nr.set_meta(mem, 0, false);
            nr.set_child(mem, 0, root);
            Self::split_child(mem, alloc, new_root, 0);
            mem.write(self.meta, new_root.raw());
            Self::insert_nonfull(mem, alloc, new_root, key);
        } else {
            Self::insert_nonfull(mem, alloc, root, key);
        }
        true
    }

    fn max_key<M: Mem>(mem: &mut M, mut node: Addr) -> u64 {
        loop {
            let n = NodeRef(node);
            mem.hint_node(node);
            let count = n.count(mem);
            if n.is_leaf(mem) {
                return n.key(mem, count - 1);
            }
            node = n.child(mem, count);
        }
    }

    fn min_key<M: Mem>(mem: &mut M, mut node: Addr) -> u64 {
        loop {
            let n = NodeRef(node);
            mem.hint_node(node);
            if n.is_leaf(mem) {
                return n.key(mem, 0);
            }
            node = n.child(mem, 0);
        }
    }

    /// Merges child `i`, parent key `i`, and child `i+1` into child `i`.
    fn merge_children<M: Mem>(mem: &mut M, parent: Addr, i: u64) {
        let p = NodeRef(parent);
        let left = p.child(mem, i);
        let right = p.child(mem, i + 1);
        mem.hint_node(left);
        mem.hint_node(right);
        let l = NodeRef(left);
        let r = NodeRef(right);
        let lc = l.count(mem);
        let rc = r.count(mem);
        let leaf = l.is_leaf(mem);
        debug_assert_eq!(lc + rc + 1, MAX_KEYS, "merge must fit");
        let sep = p.key(mem, i);
        l.set_key(mem, lc, sep);
        for j in 0..rc {
            let k = r.key(mem, j);
            l.set_key(mem, lc + 1 + j, k);
        }
        if !leaf {
            for j in 0..=rc {
                let c = r.child(mem, j);
                l.set_child(mem, lc + 1 + j, c);
            }
        }
        l.set_meta(mem, lc + 1 + rc, leaf);
        // Remove key i and child i+1 from the parent.
        let pc = p.count(mem);
        for j in i..(pc - 1) {
            let k = p.key(mem, j + 1);
            p.set_key(mem, j, k);
            let c = p.child(mem, j + 2);
            p.set_child(mem, j + 1, c);
        }
        let pleaf = p.is_leaf(mem);
        p.set_meta(mem, pc - 1, pleaf);
    }

    /// Ensures child `i` of `parent` has at least `t` keys before the
    /// descent, borrowing from a sibling or merging.
    /// Returns the (possibly new) child index to descend into.
    fn fill_child<M: Mem>(mem: &mut M, parent: Addr, i: u64) -> u64 {
        let p = NodeRef(parent);
        let pc = p.count(mem);
        let child = p.child(mem, i);
        mem.hint_node(child);
        let c = NodeRef(child);
        if c.count(mem) >= T {
            return i;
        }
        // Borrow from the left sibling.
        if i > 0 {
            let left = p.child(mem, i - 1);
            mem.hint_node(left);
            let l = NodeRef(left);
            let lc = l.count(mem);
            if lc >= T {
                let cc = c.count(mem);
                let leaf = c.is_leaf(mem);
                // Shift child's keys/children right.
                let mut j = cc;
                while j > 0 {
                    let k = c.key(mem, j - 1);
                    c.set_key(mem, j, k);
                    j -= 1;
                }
                if !leaf {
                    let mut j = cc + 1;
                    while j > 0 {
                        let ch = c.child(mem, j - 1);
                        c.set_child(mem, j, ch);
                        j -= 1;
                    }
                    let moved = l.child(mem, lc);
                    c.set_child(mem, 0, moved);
                }
                let sep = p.key(mem, i - 1);
                c.set_key(mem, 0, sep);
                let lk = l.key(mem, lc - 1);
                p.set_key(mem, i - 1, lk);
                c.set_meta(mem, cc + 1, leaf);
                let lleaf = l.is_leaf(mem);
                l.set_meta(mem, lc - 1, lleaf);
                return i;
            }
        }
        // Borrow from the right sibling.
        if i < pc {
            let right = p.child(mem, i + 1);
            mem.hint_node(right);
            let r = NodeRef(right);
            let rc = r.count(mem);
            if rc >= T {
                let cc = c.count(mem);
                let leaf = c.is_leaf(mem);
                let sep = p.key(mem, i);
                c.set_key(mem, cc, sep);
                let rk = r.key(mem, 0);
                p.set_key(mem, i, rk);
                if !leaf {
                    let moved = r.child(mem, 0);
                    c.set_child(mem, cc + 1, moved);
                    for j in 0..rc {
                        let ch = r.child(mem, j + 1);
                        r.set_child(mem, j, ch);
                    }
                }
                for j in 0..(rc - 1) {
                    let k = r.key(mem, j + 1);
                    r.set_key(mem, j, k);
                }
                c.set_meta(mem, cc + 1, leaf);
                let rleaf = r.is_leaf(mem);
                r.set_meta(mem, rc - 1, rleaf);
                return i;
            }
        }
        // Merge with a sibling.
        if i < pc {
            Self::merge_children(mem, parent, i);
            i
        } else {
            Self::merge_children(mem, parent, i - 1);
            i - 1
        }
    }

    fn delete_rec<M: Mem>(mem: &mut M, node: Addr, key: u64) {
        let n = NodeRef(node);
        mem.hint_node(node);
        let count = n.count(mem);
        let mut i = 0;
        while i < count && key > n.key(mem, i) {
            mem.compute(1);
            i += 1;
        }
        if n.is_leaf(mem) {
            if i < count && key == n.key(mem, i) {
                for j in i..(count - 1) {
                    let k = n.key(mem, j + 1);
                    n.set_key(mem, j, k);
                }
                n.set_meta(mem, count - 1, true);
            }
            return;
        }
        if i < count && key == n.key(mem, i) {
            let left = n.child(mem, i);
            mem.hint_node(left);
            if NodeRef(left).count(mem) >= T {
                let pred = Self::max_key(mem, left);
                n.set_key(mem, i, pred);
                Self::delete_rec(mem, left, pred);
                return;
            }
            let right = n.child(mem, i + 1);
            mem.hint_node(right);
            if NodeRef(right).count(mem) >= T {
                let succ = Self::min_key(mem, right);
                n.set_key(mem, i, succ);
                Self::delete_rec(mem, right, succ);
                return;
            }
            Self::merge_children(mem, node, i);
            let merged = n.child(mem, i);
            Self::delete_rec(mem, merged, key);
            return;
        }
        let i = Self::fill_child(mem, node, i);
        let child = n.child(mem, i);
        Self::delete_rec(mem, child, key);
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete<M: Mem>(&self, mem: &mut M, key: u64) -> bool {
        if !self.contains(mem, key) {
            return false;
        }
        let root = self.root(mem);
        Self::delete_rec(mem, root, key);
        // Shrink the root if it emptied out.
        let r = NodeRef(root);
        if r.count(mem) == 0 && !r.is_leaf(mem) {
            let new_root = r.child(mem, 0);
            mem.write(self.meta, new_root.raw());
        }
        true
    }

    /// Validates B-tree invariants (test helper): returns tree height.
    ///
    /// # Panics
    ///
    /// Panics on ordering, occupancy, or depth violations.
    pub fn check_invariants<M: Mem>(&self, mem: &mut M) -> u64 {
        fn rec<M: Mem>(
            mem: &mut M,
            node: Addr,
            lo: Option<u64>,
            hi: Option<u64>,
            is_root: bool,
        ) -> u64 {
            let n = NodeRef(node);
            let count = n.count(mem);
            assert!(count <= MAX_KEYS, "node overflow");
            if !is_root {
                assert!(count >= T - 1, "node underflow: {count}");
            }
            let mut prev = lo;
            for i in 0..count {
                let k = n.key(mem, i);
                if let Some(p) = prev {
                    assert!(k > p, "key order violation: {k} <= {p}");
                }
                if let Some(h) = hi {
                    assert!(k < h, "key bound violation: {k} >= {h}");
                }
                prev = Some(k);
            }
            if n.is_leaf(mem) {
                return 1;
            }
            let mut depth = None;
            for i in 0..=count {
                let child_lo = if i == 0 { lo } else { Some(n.key(mem, i - 1)) };
                let child_hi = if i == count { hi } else { Some(n.key(mem, i)) };
                let c = n.child(mem, i);
                let d = rec(mem, c, child_lo, child_hi, false);
                if let Some(prev_d) = depth {
                    assert_eq!(prev_d, d, "uneven leaf depth");
                }
                depth = Some(d);
            }
            depth.unwrap() + 1
        }
        let root = Addr::new(mem.read(self.meta));
        rec(mem, root, None, None, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DirectMem;
    use proteus_core::pmem::WordImage;

    fn setup() -> (WordImage, NodeAlloc) {
        (WordImage::new(), NodeAlloc::new(Addr::new(0x1000_0000), 1 << 24))
    }

    #[test]
    fn sequential_inserts_split_correctly() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = BTree::create(&mut m, &mut alloc);
        for k in 0..300u64 {
            assert!(t.insert(&mut m, &mut alloc, k));
        }
        t.check_invariants(&mut m);
        for k in 0..300u64 {
            assert!(t.contains(&mut m, k), "missing key {k}");
        }
        assert!(!t.contains(&mut m, 300));
        assert!(!t.insert(&mut m, &mut alloc, 5), "duplicate insert");
    }

    #[test]
    fn deletes_rebalance() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = BTree::create(&mut m, &mut alloc);
        for k in 0..200u64 {
            t.insert(&mut m, &mut alloc, (k * 7) % 200);
        }
        for k in 0..200u64 {
            if k % 2 == 0 {
                assert!(t.delete(&mut m, k), "key {k}");
                t.check_invariants(&mut m);
            }
        }
        for k in 0..200u64 {
            assert_eq!(t.contains(&mut m, k), k % 2 == 1, "key {k}");
        }
        assert!(!t.delete(&mut m, 0), "already gone");
    }

    #[test]
    fn mixed_random_ops_match_std_btreeset() {
        use std::collections::BTreeSet;
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = BTree::create(&mut m, &mut alloc);
        let mut reference = BTreeSet::new();
        let mut x: u64 = 99;
        for i in 0..4000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 500;
            if x % 2 == 0 {
                assert_eq!(
                    t.insert(&mut m, &mut alloc, key),
                    reference.insert(key),
                    "step {i} insert {key}"
                );
            } else {
                assert_eq!(t.delete(&mut m, key), reference.remove(&key), "step {i} delete {key}");
            }
            if i % 500 == 0 {
                t.check_invariants(&mut m);
            }
        }
        t.check_invariants(&mut m);
        for k in 0..500 {
            assert_eq!(t.contains(&mut m, k), reference.contains(&k), "key {k}");
        }
    }

    #[test]
    fn delete_shrinks_root() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = BTree::create(&mut m, &mut alloc);
        for k in 0..10u64 {
            t.insert(&mut m, &mut alloc, k);
        }
        for k in 0..10u64 {
            assert!(t.delete(&mut m, k));
            t.check_invariants(&mut m);
        }
        for k in 0..10u64 {
            assert!(!t.contains(&mut m, k));
        }
        // Tree is reusable after emptying.
        t.insert(&mut m, &mut alloc, 42);
        assert!(t.contains(&mut m, 42));
    }
}
