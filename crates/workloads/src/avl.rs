//! AT: insert/delete on AVL trees (Table 2).
//!
//! Nodes are 64 bytes: `[key, value, left, right, height]`. Rebalancing
//! rotations write nodes along (and beside) the search path, which is why
//! the paper's software undo logging must conservatively log the whole
//! path — mirrored here through `hint_node` on every visited node.

use crate::mem::{Mem, NodeAlloc};
use proteus_types::Addr;

const KEY: u64 = 0;
const VALUE: u64 = 8;
const LEFT: u64 = 16;
const RIGHT: u64 = 24;
const HEIGHT: u64 = 32;

/// Handle to one AVL tree (meta node holds the root pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AvlTree {
    meta: Addr,
}

impl AvlTree {
    /// Creates an empty tree.
    pub fn create<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc) -> Self {
        let meta = alloc.alloc_node();
        mem.write(meta, 0);
        AvlTree { meta }
    }

    fn root<M: Mem>(&self, mem: &mut M) -> u64 {
        mem.hint_node(self.meta);
        mem.read(self.meta)
    }

    fn set_root<M: Mem>(&self, mem: &mut M, root: u64) {
        mem.write(self.meta, root);
    }

    fn height<M: Mem>(mem: &mut M, node: u64) -> u64 {
        if node == 0 {
            0
        } else {
            mem.read_dep(Addr::new(node).offset(HEIGHT))
        }
    }

    fn update_height<M: Mem>(mem: &mut M, node: u64) {
        let left = mem.read_dep(Addr::new(node).offset(LEFT));
        let l = Self::height(mem, left);
        let right = mem.read_dep(Addr::new(node).offset(RIGHT));
        let r = Self::height(mem, right);
        let h = 1 + l.max(r);
        if mem.read_dep(Addr::new(node).offset(HEIGHT)) != h {
            mem.write(Addr::new(node).offset(HEIGHT), h);
        }
    }

    fn balance<M: Mem>(mem: &mut M, node: u64) -> i64 {
        let left = mem.read_dep(Addr::new(node).offset(LEFT));
        let l = Self::height(mem, left);
        let right = mem.read_dep(Addr::new(node).offset(RIGHT));
        let r = Self::height(mem, right);
        l as i64 - r as i64
    }

    fn rotate_right<M: Mem>(mem: &mut M, y: u64) -> u64 {
        let x = mem.read_dep(Addr::new(y).offset(LEFT));
        mem.hint_node(Addr::new(x));
        let t2 = mem.read_dep(Addr::new(x).offset(RIGHT));
        mem.write(Addr::new(x).offset(RIGHT), y);
        mem.write(Addr::new(y).offset(LEFT), t2);
        Self::update_height(mem, y);
        Self::update_height(mem, x);
        x
    }

    fn rotate_left<M: Mem>(mem: &mut M, x: u64) -> u64 {
        let y = mem.read_dep(Addr::new(x).offset(RIGHT));
        mem.hint_node(Addr::new(y));
        let t2 = mem.read_dep(Addr::new(y).offset(LEFT));
        mem.write(Addr::new(y).offset(LEFT), x);
        mem.write(Addr::new(x).offset(RIGHT), t2);
        Self::update_height(mem, x);
        Self::update_height(mem, y);
        y
    }

    fn rebalance<M: Mem>(mem: &mut M, node: u64) -> u64 {
        Self::update_height(mem, node);
        let bf = Self::balance(mem, node);
        if bf > 1 {
            let left = mem.read_dep(Addr::new(node).offset(LEFT));
            mem.hint_node(Addr::new(left));
            if Self::balance(mem, left) < 0 {
                let new_left = Self::rotate_left(mem, left);
                mem.write(Addr::new(node).offset(LEFT), new_left);
            }
            Self::rotate_right(mem, node)
        } else if bf < -1 {
            let right = mem.read_dep(Addr::new(node).offset(RIGHT));
            mem.hint_node(Addr::new(right));
            if Self::balance(mem, right) > 0 {
                let new_right = Self::rotate_right(mem, right);
                mem.write(Addr::new(node).offset(RIGHT), new_right);
            }
            Self::rotate_left(mem, node)
        } else {
            node
        }
    }

    fn insert_rec<M: Mem>(
        mem: &mut M,
        alloc: &mut NodeAlloc,
        node: u64,
        key: u64,
        value: u64,
    ) -> u64 {
        if node == 0 {
            let n = alloc.alloc_node();
            mem.hint_node(n);
            mem.write(n.offset(KEY), key);
            mem.write(n.offset(VALUE), value);
            mem.write(n.offset(LEFT), 0);
            mem.write(n.offset(RIGHT), 0);
            mem.write(n.offset(HEIGHT), 1);
            return n.raw();
        }
        let a = Addr::new(node);
        mem.hint_node(a);
        mem.compute(1);
        let k = mem.read_dep(a.offset(KEY));
        if key < k {
            let child = mem.read_dep(a.offset(LEFT));
            let new_child = Self::insert_rec(mem, alloc, child, key, value);
            if new_child != child {
                mem.write(a.offset(LEFT), new_child);
            }
        } else if key > k {
            let child = mem.read_dep(a.offset(RIGHT));
            let new_child = Self::insert_rec(mem, alloc, child, key, value);
            if new_child != child {
                mem.write(a.offset(RIGHT), new_child);
            }
        } else {
            mem.write(a.offset(VALUE), value);
            return node;
        }
        Self::rebalance(mem, node)
    }

    /// Inserts or updates `key -> value`.
    pub fn insert<M: Mem>(&self, mem: &mut M, alloc: &mut NodeAlloc, key: u64, value: u64) {
        let root = self.root(mem);
        let new_root = Self::insert_rec(mem, alloc, root, key, value);
        if new_root != root {
            self.set_root(mem, new_root);
        }
    }

    fn min_key<M: Mem>(mem: &mut M, mut node: u64) -> (u64, u64) {
        loop {
            let a = Addr::new(node);
            mem.hint_node(a);
            let left = mem.read_dep(a.offset(LEFT));
            if left == 0 {
                return (mem.read_dep(a.offset(KEY)), mem.read_dep(a.offset(VALUE)));
            }
            node = left;
        }
    }

    fn delete_rec<M: Mem>(mem: &mut M, node: u64, key: u64, found: &mut bool) -> u64 {
        if node == 0 {
            return 0;
        }
        let a = Addr::new(node);
        mem.hint_node(a);
        mem.compute(1);
        let k = mem.read_dep(a.offset(KEY));
        if key < k {
            let child = mem.read_dep(a.offset(LEFT));
            let new_child = Self::delete_rec(mem, child, key, found);
            if new_child != child {
                mem.write(a.offset(LEFT), new_child);
            }
        } else if key > k {
            let child = mem.read_dep(a.offset(RIGHT));
            let new_child = Self::delete_rec(mem, child, key, found);
            if new_child != child {
                mem.write(a.offset(RIGHT), new_child);
            }
        } else {
            *found = true;
            let left = mem.read_dep(a.offset(LEFT));
            let right = mem.read_dep(a.offset(RIGHT));
            if left == 0 || right == 0 {
                // Node dropped (the allocator never reclaims; the paper
                // assumes failure-safe allocation out of scope).
                return if left == 0 { right } else { left };
            }
            // Two children: replace with the in-order successor.
            let (succ_key, succ_value) = Self::min_key(mem, right);
            mem.write(a.offset(KEY), succ_key);
            mem.write(a.offset(VALUE), succ_value);
            let mut f = false;
            let new_right = Self::delete_rec(mem, right, succ_key, &mut f);
            debug_assert!(f, "successor must exist");
            if new_right != right {
                mem.write(a.offset(RIGHT), new_right);
            }
        }
        Self::rebalance(mem, node)
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete<M: Mem>(&self, mem: &mut M, key: u64) -> bool {
        let root = self.root(mem);
        let mut found = false;
        let new_root = Self::delete_rec(mem, root, key, &mut found);
        if new_root != root {
            self.set_root(mem, new_root);
        }
        found
    }

    /// Looks up `key`.
    pub fn get<M: Mem>(&self, mem: &mut M, key: u64) -> Option<u64> {
        let mut node = self.root(mem);
        while node != 0 {
            let a = Addr::new(node);
            let k = mem.read_dep(a.offset(KEY));
            node = if key < k {
                mem.read_dep(a.offset(LEFT))
            } else if key > k {
                mem.read_dep(a.offset(RIGHT))
            } else {
                return Some(mem.read_dep(a.offset(VALUE)));
            };
        }
        None
    }

    /// Validates AVL invariants (test helper): returns the tree height.
    ///
    /// # Panics
    ///
    /// Panics on a BST-order or balance violation.
    pub fn check_invariants<M: Mem>(&self, mem: &mut M) -> u64 {
        fn rec<M: Mem>(mem: &mut M, node: u64, lo: Option<u64>, hi: Option<u64>) -> u64 {
            if node == 0 {
                return 0;
            }
            let a = Addr::new(node);
            let k = mem.read_dep(a.offset(KEY));
            if let Some(lo) = lo {
                assert!(k > lo, "BST violation: {k} <= {lo}");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "BST violation: {k} >= {hi}");
            }
            let left = mem.read_dep(a.offset(LEFT));
            let lh = rec(mem, left, lo, Some(k));
            let right = mem.read_dep(a.offset(RIGHT));
            let rh = rec(mem, right, Some(k), hi);
            assert!((lh as i64 - rh as i64).abs() <= 1, "AVL balance violation at key {k}");
            let h = 1 + lh.max(rh);
            assert_eq!(mem.read_dep(a.offset(HEIGHT)), h, "stale height at key {k}");
            h
        }
        let root = mem.read(self.meta);
        rec(mem, root, None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DirectMem;
    use proteus_core::pmem::WordImage;

    fn setup() -> (WordImage, NodeAlloc) {
        (WordImage::new(), NodeAlloc::new(Addr::new(0x1000_0000), 1 << 24))
    }

    #[test]
    fn sequential_inserts_stay_balanced() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = AvlTree::create(&mut m, &mut alloc);
        for k in 0..256u64 {
            t.insert(&mut m, &mut alloc, k, k * 2);
        }
        let h = t.check_invariants(&mut m);
        assert!(h <= 10, "256 sequential keys must stay shallow, height {h}");
        for k in 0..256u64 {
            assert_eq!(t.get(&mut m, k), Some(k * 2));
        }
    }

    #[test]
    fn deletes_preserve_invariants() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = AvlTree::create(&mut m, &mut alloc);
        for k in 0..128u64 {
            t.insert(&mut m, &mut alloc, k.wrapping_mul(37) % 128, k);
        }
        for k in (0..128u64).step_by(2) {
            assert!(t.delete(&mut m, k), "key {k} should exist");
            t.check_invariants(&mut m);
        }
        for k in 0..128u64 {
            assert_eq!(t.get(&mut m, k).is_some(), k % 2 == 1, "key {k}");
        }
        assert!(!t.delete(&mut m, 0), "double delete");
    }

    #[test]
    fn mixed_random_ops_match_std_btreemap() {
        use std::collections::BTreeMap;
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = AvlTree::create(&mut m, &mut alloc);
        let mut reference = BTreeMap::new();
        let mut x: u64 = 0x12345;
        for i in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 300;
            if x % 3 == 0 {
                let was = t.delete(&mut m, key);
                assert_eq!(was, reference.remove(&key).is_some(), "step {i} key {key}");
            } else {
                t.insert(&mut m, &mut alloc, key, i);
                reference.insert(key, i);
            }
        }
        t.check_invariants(&mut m);
        for (k, v) in &reference {
            assert_eq!(t.get(&mut m, *k), Some(*v));
        }
    }
}
