//! HM: insert/delete on chained hash maps (Table 2).
//!
//! Each map owns a bucket array (one pointer per 8-byte word) and chains
//! of `[key, value, next]` nodes. Insert prepends (or updates in place);
//! delete unlinks. The transaction hint covers the bucket line and every
//! chain node visited.

use crate::mem::{Mem, NodeAlloc};
use proteus_types::Addr;

const NODE_KEY: u64 = 0;
const NODE_VALUE: u64 = 8;
const NODE_NEXT: u64 = 16;

/// Handle to one hash map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashMapStruct {
    buckets: Addr,
    bucket_count: u64,
}

fn hash(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(23)
}

impl HashMapStruct {
    /// Creates a map with `bucket_count` buckets (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is not a power of two.
    pub fn create<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc, bucket_count: u64) -> Self {
        assert!(bucket_count.is_power_of_two(), "bucket count must be a power of two");
        let buckets = alloc.alloc_bytes(bucket_count * 8);
        for b in 0..bucket_count {
            mem.write(buckets.offset(b * 8), 0);
        }
        HashMapStruct { buckets, bucket_count }
    }

    fn bucket_addr(&self, key: u64) -> Addr {
        let b = hash(key) & (self.bucket_count - 1);
        self.buckets.offset(b * 8)
    }

    /// Inserts or updates `key -> value`. Returns `true` if a new node
    /// was created.
    pub fn insert<M: Mem>(&self, mem: &mut M, alloc: &mut NodeAlloc, key: u64, value: u64) -> bool {
        mem.compute(2); // hash
        let bucket = self.bucket_addr(key);
        mem.hint_node(bucket);
        let mut cur = mem.read(bucket);
        while cur != 0 {
            let node = Addr::new(cur);
            mem.hint_node(node);
            mem.compute(1);
            if mem.read_dep(node.offset(NODE_KEY)) == key {
                mem.write(node.offset(NODE_VALUE), value);
                return false;
            }
            cur = mem.read_dep(node.offset(NODE_NEXT));
        }
        let node = alloc.alloc_node();
        mem.hint_node(node);
        let head = mem.read(bucket);
        mem.write(node.offset(NODE_KEY), key);
        mem.write(node.offset(NODE_VALUE), value);
        mem.write(node.offset(NODE_NEXT), head);
        mem.write(bucket, node.raw());
        true
    }

    /// Removes `key`, returning its value if present.
    pub fn delete<M: Mem>(&self, mem: &mut M, key: u64) -> Option<u64> {
        mem.compute(2);
        let bucket = self.bucket_addr(key);
        mem.hint_node(bucket);
        let mut prev: Option<Addr> = None;
        let mut cur = mem.read(bucket);
        while cur != 0 {
            let node = Addr::new(cur);
            mem.hint_node(node);
            mem.compute(1);
            let next = mem.read_dep(node.offset(NODE_NEXT));
            if mem.read_dep(node.offset(NODE_KEY)) == key {
                let value = mem.read_dep(node.offset(NODE_VALUE));
                match prev {
                    Some(p) => mem.write(p.offset(NODE_NEXT), next),
                    None => mem.write(bucket, next),
                }
                return Some(value);
            }
            prev = Some(node);
            cur = next;
        }
        None
    }

    /// Looks up `key`.
    pub fn get<M: Mem>(&self, mem: &mut M, key: u64) -> Option<u64> {
        let mut cur = mem.read(self.bucket_addr(key));
        while cur != 0 {
            let node = Addr::new(cur);
            if mem.read_dep(node.offset(NODE_KEY)) == key {
                return Some(mem.read(node.offset(NODE_VALUE)));
            }
            cur = mem.read_dep(node.offset(NODE_NEXT));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DirectMem;
    use proteus_core::pmem::WordImage;

    fn setup() -> (WordImage, NodeAlloc) {
        (WordImage::new(), NodeAlloc::new(Addr::new(0x1000_0000), 1 << 22))
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let map = HashMapStruct::create(&mut m, &mut alloc, 16);
        for k in 0..100u64 {
            assert!(map.insert(&mut m, &mut alloc, k, k * 10));
        }
        for k in 0..100u64 {
            assert_eq!(map.get(&mut m, k), Some(k * 10));
        }
        assert_eq!(map.delete(&mut m, 42), Some(420));
        assert_eq!(map.get(&mut m, 42), None);
        assert_eq!(map.delete(&mut m, 42), None);
        assert_eq!(map.get(&mut m, 43), Some(430));
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let map = HashMapStruct::create(&mut m, &mut alloc, 16);
        assert!(map.insert(&mut m, &mut alloc, 7, 1));
        assert!(!map.insert(&mut m, &mut alloc, 7, 2));
        assert_eq!(map.get(&mut m, 7), Some(2));
    }

    #[test]
    fn chains_survive_middle_deletion() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        // One bucket forces a single chain.
        let map = HashMapStruct::create(&mut m, &mut alloc, 1);
        for k in 0..5u64 {
            map.insert(&mut m, &mut alloc, k, k);
        }
        map.delete(&mut m, 2);
        for k in [0, 1, 3, 4] {
            assert_eq!(map.get(&mut m, k), Some(k), "key {k} lost");
        }
    }
}
