//! RT: insert/delete on red-black trees (Table 2).
//!
//! Implemented as a left-leaning red-black tree (Sedgewick's LLRB), whose
//! recursive insert and delete write rotations and colour flips along the
//! search path. Nodes are 64 bytes: `[key, value, left, right, color]`.

use crate::mem::{Mem, NodeAlloc};
use proteus_types::Addr;

const KEY: u64 = 0;
const VALUE: u64 = 8;
const LEFT: u64 = 16;
const RIGHT: u64 = 24;
const COLOR: u64 = 32;

const RED: u64 = 1;
const BLACK: u64 = 0;

/// Handle to one red-black tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbTree {
    meta: Addr,
}

impl RbTree {
    /// Creates an empty tree.
    pub fn create<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc) -> Self {
        let meta = alloc.alloc_node();
        mem.write(meta, 0);
        RbTree { meta }
    }

    fn is_red<M: Mem>(mem: &mut M, node: u64) -> bool {
        node != 0 && mem.read_dep(Addr::new(node).offset(COLOR)) == RED
    }

    fn set_color<M: Mem>(mem: &mut M, node: u64, color: u64) {
        if mem.read_dep(Addr::new(node).offset(COLOR)) != color {
            mem.write(Addr::new(node).offset(COLOR), color);
        }
    }

    fn left<M: Mem>(mem: &mut M, node: u64) -> u64 {
        mem.read_dep(Addr::new(node).offset(LEFT))
    }

    fn right<M: Mem>(mem: &mut M, node: u64) -> u64 {
        mem.read_dep(Addr::new(node).offset(RIGHT))
    }

    fn rotate_left<M: Mem>(mem: &mut M, h: u64) -> u64 {
        let x = Self::right(mem, h);
        mem.hint_node(Addr::new(x));
        let __w = Self::left(mem, x);

        mem.write(Addr::new(h).offset(RIGHT), __w);
        mem.write(Addr::new(x).offset(LEFT), h);
        let h_color = mem.read_dep(Addr::new(h).offset(COLOR));
        Self::set_color(mem, x, h_color);
        Self::set_color(mem, h, RED);
        x
    }

    fn rotate_right<M: Mem>(mem: &mut M, h: u64) -> u64 {
        let x = Self::left(mem, h);
        mem.hint_node(Addr::new(x));
        let __w = Self::right(mem, x);

        mem.write(Addr::new(h).offset(LEFT), __w);
        mem.write(Addr::new(x).offset(RIGHT), h);
        let h_color = mem.read_dep(Addr::new(h).offset(COLOR));
        Self::set_color(mem, x, h_color);
        Self::set_color(mem, h, RED);
        x
    }

    fn color_flip<M: Mem>(mem: &mut M, h: u64) {
        let flip = |mem: &mut M, n: u64| {
            if n != 0 {
                mem.hint_node(Addr::new(n));
                let c = mem.read_dep(Addr::new(n).offset(COLOR));
                mem.write(Addr::new(n).offset(COLOR), c ^ 1);
            }
        };
        flip(mem, h);
        let l = Self::left(mem, h);
        let r = Self::right(mem, h);
        flip(mem, l);
        flip(mem, r);
    }

    fn fix_up<M: Mem>(mem: &mut M, mut h: u64) -> u64 {
        let r = Self::right(mem, h);
        let l = Self::left(mem, h);
        if Self::is_red(mem, r) && !Self::is_red(mem, l) {
            h = Self::rotate_left(mem, h);
        }
        let l = Self::left(mem, h);
        if Self::is_red(mem, l) {
            let ll = Self::left(mem, l);
            if Self::is_red(mem, ll) {
                h = Self::rotate_right(mem, h);
            }
        }
        let l = Self::left(mem, h);
        let r = Self::right(mem, h);
        if Self::is_red(mem, l) && Self::is_red(mem, r) {
            Self::color_flip(mem, h);
        }
        h
    }

    fn insert_rec<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc, h: u64, key: u64, value: u64) -> u64 {
        if h == 0 {
            let n = alloc.alloc_node();
            mem.hint_node(n);
            mem.write(n.offset(KEY), key);
            mem.write(n.offset(VALUE), value);
            mem.write(n.offset(LEFT), 0);
            mem.write(n.offset(RIGHT), 0);
            mem.write(n.offset(COLOR), RED);
            return n.raw();
        }
        let a = Addr::new(h);
        mem.hint_node(a);
        mem.compute(1);
        let k = mem.read_dep(a.offset(KEY));
        if key < k {
            let child = Self::left(mem, h);
            let new_child = Self::insert_rec(mem, alloc, child, key, value);
            if new_child != child {
                mem.write(a.offset(LEFT), new_child);
            }
        } else if key > k {
            let child = Self::right(mem, h);
            let new_child = Self::insert_rec(mem, alloc, child, key, value);
            if new_child != child {
                mem.write(a.offset(RIGHT), new_child);
            }
        } else {
            mem.write(a.offset(VALUE), value);
        }
        Self::fix_up(mem, h)
    }

    /// Inserts or updates `key -> value`.
    pub fn insert<M: Mem>(&self, mem: &mut M, alloc: &mut NodeAlloc, key: u64, value: u64) {
        mem.hint_node(self.meta);
        let root = mem.read(self.meta);
        let new_root = Self::insert_rec(mem, alloc, root, key, value);
        if new_root != root {
            mem.write(self.meta, new_root);
        }
        Self::set_color(mem, new_root, BLACK);
    }

    fn move_red_left<M: Mem>(mem: &mut M, mut h: u64) -> u64 {
        Self::color_flip(mem, h);
        let r = Self::right(mem, h);
        let rl = if r != 0 { Self::left(mem, r) } else { 0 };
        if r != 0 && Self::is_red(mem, rl) {
            let new_r = Self::rotate_right(mem, r);
            mem.write(Addr::new(h).offset(RIGHT), new_r);
            h = Self::rotate_left(mem, h);
            Self::color_flip(mem, h);
        }
        h
    }

    fn move_red_right<M: Mem>(mem: &mut M, mut h: u64) -> u64 {
        Self::color_flip(mem, h);
        let l = Self::left(mem, h);
        let ll = if l != 0 { Self::left(mem, l) } else { 0 };
        if l != 0 && Self::is_red(mem, ll) {
            h = Self::rotate_right(mem, h);
            Self::color_flip(mem, h);
        }
        h
    }

    fn min_entry<M: Mem>(mem: &mut M, mut h: u64) -> (u64, u64) {
        loop {
            mem.hint_node(Addr::new(h));
            let l = mem.read_dep(Addr::new(h).offset(LEFT));
            if l == 0 {
                return (
                    mem.read_dep(Addr::new(h).offset(KEY)),
                    mem.read_dep(Addr::new(h).offset(VALUE)),
                );
            }
            h = l;
        }
    }

    fn delete_min_rec<M: Mem>(mem: &mut M, mut h: u64) -> u64 {
        if Self::left(mem, h) == 0 {
            return 0;
        }
        let l = Self::left(mem, h);
        let ll = Self::left(mem, l);
        if !Self::is_red(mem, l) && !Self::is_red(mem, ll) {
            h = Self::move_red_left(mem, h);
        }
        let child = Self::left(mem, h);
        let new_child = Self::delete_min_rec(mem, child);
        if new_child != child {
            mem.write(Addr::new(h).offset(LEFT), new_child);
        }
        Self::fix_up(mem, h)
    }

    fn delete_rec<M: Mem>(mem: &mut M, mut h: u64, key: u64) -> u64 {
        let a = Addr::new(h);
        mem.hint_node(a);
        mem.compute(1);
        if key < mem.read_dep(a.offset(KEY)) {
            let l = Self::left(mem, h);
            let ll = if l != 0 { Self::left(mem, l) } else { 0 };
            if !Self::is_red(mem, l) && !Self::is_red(mem, ll) {
                h = Self::move_red_left(mem, h);
            }
            let child = Self::left(mem, h);
            let new_child = Self::delete_rec(mem, child, key);
            if new_child != child {
                mem.write(Addr::new(h).offset(LEFT), new_child);
            }
        } else {
            let hl = Self::left(mem, h);
            if Self::is_red(mem, hl) {
                h = Self::rotate_right(mem, h);
            }
            if key == mem.read_dep(Addr::new(h).offset(KEY)) && Self::right(mem, h) == 0 {
                return 0;
            }
            let r = Self::right(mem, h);
            let rl = if r != 0 { Self::left(mem, r) } else { 0 };
            if r != 0 && !Self::is_red(mem, r) && !Self::is_red(mem, rl) {
                h = Self::move_red_right(mem, h);
            }
            if key == mem.read_dep(Addr::new(h).offset(KEY)) {
                let r = Self::right(mem, h);
                let (mk, mv) = Self::min_entry(mem, r);
                mem.write(Addr::new(h).offset(KEY), mk);
                mem.write(Addr::new(h).offset(VALUE), mv);
                let new_r = Self::delete_min_rec(mem, r);
                if new_r != r {
                    mem.write(Addr::new(h).offset(RIGHT), new_r);
                }
            } else {
                let child = Self::right(mem, h);
                let new_child = Self::delete_rec(mem, child, key);
                if new_child != child {
                    mem.write(Addr::new(h).offset(RIGHT), new_child);
                }
            }
        }
        Self::fix_up(mem, h)
    }

    /// Deletes `key`, returning whether it was present.
    pub fn delete<M: Mem>(&self, mem: &mut M, key: u64) -> bool {
        if self.get(mem, key).is_none() {
            return false;
        }
        mem.hint_node(self.meta);
        let root = mem.read(self.meta);
        let new_root = Self::delete_rec(mem, root, key);
        if new_root != root {
            mem.write(self.meta, new_root);
        }
        if new_root != 0 {
            Self::set_color(mem, new_root, BLACK);
        }
        true
    }

    /// Looks up `key` (also hints the search path, since `delete` uses it
    /// as its presence pre-check inside the transaction).
    pub fn get<M: Mem>(&self, mem: &mut M, key: u64) -> Option<u64> {
        mem.hint_node(self.meta);
        let mut node = mem.read(self.meta);
        while node != 0 {
            let a = Addr::new(node);
            mem.hint_node(a);
            mem.compute(1);
            let k = mem.read_dep(a.offset(KEY));
            node = if key < k {
                Self::left(mem, node)
            } else if key > k {
                Self::right(mem, node)
            } else {
                return Some(mem.read_dep(a.offset(VALUE)));
            };
        }
        None
    }

    /// Validates red-black invariants (test helper): returns black height.
    ///
    /// # Panics
    ///
    /// Panics on a BST, red-red, or black-height violation.
    pub fn check_invariants<M: Mem>(&self, mem: &mut M) -> u64 {
        fn rec<M: Mem>(mem: &mut M, node: u64, lo: Option<u64>, hi: Option<u64>) -> u64 {
            if node == 0 {
                return 1;
            }
            let a = Addr::new(node);
            let k = mem.read_dep(a.offset(KEY));
            if let Some(lo) = lo {
                assert!(k > lo, "BST violation at {k}");
            }
            if let Some(hi) = hi {
                assert!(k < hi, "BST violation at {k}");
            }
            let l = mem.read_dep(a.offset(LEFT));
            let r = mem.read_dep(a.offset(RIGHT));
            if RbTree::is_red(mem, node) {
                assert!(!RbTree::is_red(mem, l), "red-red violation at {k}");
                assert!(!RbTree::is_red(mem, r), "red-red violation at {k}");
            }
            let lb = rec(mem, l, lo, Some(k));
            let rb = rec(mem, r, Some(k), hi);
            assert_eq!(lb, rb, "black-height violation at {k}");
            lb + if RbTree::is_red(mem, node) { 0 } else { 1 }
        }
        let root = mem.read(self.meta);
        if root != 0 {
            assert!(!Self::is_red(mem, root), "root must be black");
        }
        rec(mem, root, None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DirectMem;
    use proteus_core::pmem::WordImage;

    fn setup() -> (WordImage, NodeAlloc) {
        (WordImage::new(), NodeAlloc::new(Addr::new(0x1000_0000), 1 << 24))
    }

    #[test]
    fn inserts_keep_rb_invariants() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = RbTree::create(&mut m, &mut alloc);
        for k in 0..512u64 {
            t.insert(&mut m, &mut alloc, k, k + 1);
            if k % 64 == 0 {
                t.check_invariants(&mut m);
            }
        }
        t.check_invariants(&mut m);
        for k in 0..512u64 {
            assert_eq!(t.get(&mut m, k), Some(k + 1));
        }
    }

    #[test]
    fn deletes_keep_rb_invariants() {
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = RbTree::create(&mut m, &mut alloc);
        for k in 0..256u64 {
            t.insert(&mut m, &mut alloc, (k * 89) % 256, k);
        }
        for k in 0..256u64 {
            if k % 3 != 0 {
                assert!(t.delete(&mut m, k), "key {k}");
                t.check_invariants(&mut m);
            }
        }
        for k in 0..256u64 {
            assert_eq!(t.get(&mut m, k).is_some(), k % 3 == 0, "key {k}");
        }
        assert!(!t.delete(&mut m, 1), "already deleted");
    }

    #[test]
    fn mixed_random_ops_match_std_btreemap() {
        use std::collections::BTreeMap;
        let (mut img, mut alloc) = setup();
        let mut m = DirectMem::new(&mut img);
        let t = RbTree::create(&mut m, &mut alloc);
        let mut reference = BTreeMap::new();
        let mut x: u64 = 0xDEAD;
        for i in 0..3000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = (x >> 33) % 400;
            if x % 2 == 0 {
                t.insert(&mut m, &mut alloc, key, i);
                reference.insert(key, i);
            } else {
                assert_eq!(
                    t.delete(&mut m, key),
                    reference.remove(&key).is_some(),
                    "step {i} key {key}"
                );
            }
            if i % 250 == 0 {
                t.check_invariants(&mut m);
            }
        }
        t.check_invariants(&mut m);
        for (k, v) in &reference {
            assert_eq!(t.get(&mut m, *k), Some(*v));
        }
    }
}
