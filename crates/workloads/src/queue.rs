//! QE: enqueue/dequeue on linked-list queues (Table 2).
//!
//! Each queue is a singly linked list with a 64-byte meta node holding
//! `[head, tail, len]`. Nodes hold `[value, next]`. One operation —
//! enqueue or dequeue — forms one durable transaction touching the meta
//! node, one list node, and (for enqueue) the freshly allocated node.

use crate::mem::{Mem, NodeAlloc};
use proteus_types::Addr;

const META_HEAD: u64 = 0;
const META_TAIL: u64 = 8;
const META_LEN: u64 = 16;
const NODE_VALUE: u64 = 0;
const NODE_NEXT: u64 = 8;

/// Handle to one queue (its meta node address).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Queue {
    meta: Addr,
}

impl Queue {
    /// Creates an empty queue.
    pub fn create<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc) -> Self {
        let meta = alloc.alloc_node();
        mem.write(meta.offset(META_HEAD), 0);
        mem.write(meta.offset(META_TAIL), 0);
        mem.write(meta.offset(META_LEN), 0);
        Queue { meta }
    }

    /// Appends `value`.
    pub fn enqueue<M: Mem>(&self, mem: &mut M, alloc: &mut NodeAlloc, value: u64) {
        mem.hint_node(self.meta);
        let node = alloc.alloc_node();
        mem.hint_node(node);
        mem.write(node.offset(NODE_VALUE), value);
        mem.write(node.offset(NODE_NEXT), 0);
        let tail = mem.read(self.meta.offset(META_TAIL));
        if tail == 0 {
            mem.write(self.meta.offset(META_HEAD), node.raw());
        } else {
            mem.hint_node(Addr::new(tail));
            mem.write(Addr::new(tail).offset(NODE_NEXT), node.raw());
        }
        mem.write(self.meta.offset(META_TAIL), node.raw());
        let len = mem.read(self.meta.offset(META_LEN));
        mem.write(self.meta.offset(META_LEN), len + 1);
    }

    /// Removes and returns the head value, if any.
    pub fn dequeue<M: Mem>(&self, mem: &mut M) -> Option<u64> {
        mem.hint_node(self.meta);
        let head = mem.read(self.meta.offset(META_HEAD));
        if head == 0 {
            return None;
        }
        let head = Addr::new(head);
        mem.hint_node(head);
        let value = mem.read_dep(head.offset(NODE_VALUE));
        let next = mem.read_dep(head.offset(NODE_NEXT));
        mem.write(self.meta.offset(META_HEAD), next);
        if next == 0 {
            mem.write(self.meta.offset(META_TAIL), 0);
        }
        let len = mem.read(self.meta.offset(META_LEN));
        mem.write(self.meta.offset(META_LEN), len - 1);
        Some(value)
    }

    /// Current length (reads memory).
    pub fn len<M: Mem>(&self, mem: &mut M) -> u64 {
        mem.read(self.meta.offset(META_LEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DirectMem;
    use proteus_core::pmem::WordImage;

    #[test]
    fn fifo_order() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 20);
        let mut m = DirectMem::new(&mut img);
        let q = Queue::create(&mut m, &mut alloc);
        for v in 1..=5 {
            q.enqueue(&mut m, &mut alloc, v);
        }
        assert_eq!(q.len(&mut m), 5);
        for v in 1..=5 {
            assert_eq!(q.dequeue(&mut m), Some(v));
        }
        assert_eq!(q.dequeue(&mut m), None);
        assert_eq!(q.len(&mut m), 0);
    }

    #[test]
    fn refill_after_empty() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 20);
        let mut m = DirectMem::new(&mut img);
        let q = Queue::create(&mut m, &mut alloc);
        q.enqueue(&mut m, &mut alloc, 1);
        assert_eq!(q.dequeue(&mut m), Some(1));
        q.enqueue(&mut m, &mut alloc, 2);
        q.enqueue(&mut m, &mut alloc, 3);
        assert_eq!(q.dequeue(&mut m), Some(2));
        assert_eq!(q.dequeue(&mut m), Some(3));
    }
}
