#![warn(missing_docs)]
//! Benchmark workloads from Table 2 of the paper, plus the §7.3
//! large-transaction microbenchmark.
//!
//! Each benchmark implements a real persistent data structure over a
//! simulated heap and generates, per thread, a scheme-independent
//! [`proteus_core::Program`] — the operation stream the paper feeds each
//! benchmark from its randomly generated input file:
//!
//! | abbrev | structure | operation |
//! |--------|-----------|-----------|
//! | QE | 8 linked-list queues | enqueue/dequeue |
//! | HM | 16 chained hash maps | insert/delete |
//! | SS | string array (256 B items) | swap two strings |
//! | AT | 16 AVL trees | insert/delete with rotations |
//! | BT | 16 B-trees | insert/delete with splits/merges |
//! | RT | 16 red-black trees | insert/delete with recolouring |
//!
//! Transactions carry a conservative *undo hint* — the node set the
//! operation might modify (for the trees, the whole search path) — which
//! is exactly what makes the software-logging baseline expensive on BT/RT
//! in the paper's Fig. 6.
//!
//! Initialization operations (`#InitOps`) are applied functionally to the
//! initial memory image, mirroring the paper's simulator fast-forward;
//! only `#SimOps` generate instruction traces.

pub mod avl;
pub mod btree;
pub mod contended;
pub mod hashmap;
pub mod largetx;
pub mod mem;
pub mod queue;
pub mod rbtree;
pub mod spec;
pub mod stringswap;

pub use contended::{generate_contended, ContendedKind, ContendedSpec, LockGroup, SharingPlan};
pub use mem::{durable_transaction, CollectMem, DirectMem, EmitMem, Mem, NodeAlloc};
pub use spec::{
    build_thread_structures, emit_op_group, generate, generate_with, lock_base_for,
    op_struct_index, run_op, thread_alloc, thread_arena, Benchmark, GeneratedWorkload, OpRecorder,
    OpSpec, Structures, ThreadStructures, WorkloadParams,
};
