//! SS: swap strings in a string array (Table 2).
//!
//! The array holds 256-byte strings (4 cache lines each). A swap reads
//! both strings and rewrites both — 64 words of reads and 64 of writes
//! per transaction, the largest write set among the Table 2 benchmarks.

use crate::mem::{Mem, NodeAlloc};
use proteus_types::Addr;

/// Bytes per string item (Table 2: 256).
pub const STRING_BYTES: u64 = 256;
/// Words per string.
pub const WORDS_PER_STRING: u64 = STRING_BYTES / 8;

/// Handle to a string array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StringArray {
    base: Addr,
    items: u64,
}

impl StringArray {
    /// Allocates an array of `items` strings, initialising the first word
    /// of each to its index (so swaps are observable).
    pub fn create<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc, items: u64) -> Self {
        let base = alloc.alloc_bytes(items * STRING_BYTES);
        for i in 0..items {
            mem.write(base.offset(i * STRING_BYTES), i + 1);
        }
        StringArray { base, items }
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Address of string `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn string_addr(&self, i: u64) -> Addr {
        assert!(i < self.items, "string index {i} out of range");
        self.base.offset(i * STRING_BYTES)
    }

    /// Swaps strings `i` and `j` word by word.
    pub fn swap<M: Mem>(&self, mem: &mut M, i: u64, j: u64) {
        let a = self.string_addr(i);
        let b = self.string_addr(j);
        for line in 0..(STRING_BYTES / 64) {
            mem.hint_node(a.offset(line * 64));
            mem.hint_node(b.offset(line * 64));
        }
        for w in 0..WORDS_PER_STRING {
            let wa = a.offset(w * 8);
            let wb = b.offset(w * 8);
            let va = mem.read(wa);
            let vb = mem.read(wb);
            mem.write(wa, vb);
            mem.write(wb, va);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DirectMem;
    use proteus_core::pmem::WordImage;

    #[test]
    fn swap_exchanges_contents() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 22);
        let mut m = DirectMem::new(&mut img);
        let arr = StringArray::create(&mut m, &mut alloc, 8);
        m.write(arr.string_addr(2).offset(8), 0xAA);
        arr.swap(&mut m, 2, 5);
        assert_eq!(m.read(arr.string_addr(5)), 3, "index word moved");
        assert_eq!(m.read(arr.string_addr(5).offset(8)), 0xAA);
        assert_eq!(m.read(arr.string_addr(2)), 6);
        // Swap back restores.
        arr.swap(&mut m, 2, 5);
        assert_eq!(m.read(arr.string_addr(2)), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bounds_checked() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 20);
        let mut m = DirectMem::new(&mut img);
        let arr = StringArray::create(&mut m, &mut alloc, 4);
        let _ = arr.string_addr(4);
    }
}

#[cfg(test)]
mod differential_tests {
    use super::*;
    use crate::mem::DirectMem;
    use proteus_core::pmem::WordImage;

    /// Random swap sequences against a reference Vec: the array's index
    /// words must track the permutation exactly.
    #[test]
    fn random_swaps_match_reference_permutation() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 24);
        let items = 64u64;
        let arr = {
            let mut m = DirectMem::new(&mut img);
            StringArray::create(&mut m, &mut alloc, items)
        };
        let mut reference: Vec<u64> = (1..=items).collect();
        let mut x: u64 = 0xABCDE;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let i = (x >> 20) % items;
            let j = (x >> 40) % items;
            let mut m = DirectMem::new(&mut img);
            arr.swap(&mut m, i, j);
            reference.swap(i as usize, j as usize);
        }
        let mut m = DirectMem::new(&mut img);
        for idx in 0..items {
            assert_eq!(
                m.read(arr.string_addr(idx)),
                reference[idx as usize],
                "string {idx} out of place"
            );
        }
    }

    /// Every word of both strings moves, not just the first.
    #[test]
    fn swap_moves_all_words() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 22);
        let mut m = DirectMem::new(&mut img);
        let arr = StringArray::create(&mut m, &mut alloc, 4);
        for w in 0..WORDS_PER_STRING {
            m.write(arr.string_addr(0).offset(w * 8), 100 + w);
            m.write(arr.string_addr(3).offset(w * 8), 200 + w);
        }
        arr.swap(&mut m, 0, 3);
        for w in 0..WORDS_PER_STRING {
            assert_eq!(m.read(arr.string_addr(0).offset(w * 8)), 200 + w);
            assert_eq!(m.read(arr.string_addr(3).offset(w * 8)), 100 + w);
        }
    }
}
