//! Memory access abstraction for workload generation.
//!
//! Data-structure operations are written once against the [`Mem`] trait
//! and executed in three modes:
//!
//! * [`DirectMem`] — initialization fast-forward: reads and writes apply
//!   straight to the image, emitting nothing;
//! * [`CollectMem`] — dry run: reads see the base image overlaid with the
//!   run's own writes; written and hinted node addresses are collected to
//!   form the transaction's conservative undo hint;
//! * [`EmitMem`] — the real run: every access appends an [`Op`] to the
//!   thread's program and applies to the image.
//!
//! An operation must behave identically in the collect and emit runs
//! (they start from the same image and allocator state), which is what
//! lets the generator compute the undo hint *before* emitting
//! `tx_begin` — mirroring how a programmer writes the conservative
//! logging code the paper describes.

use proteus_core::pmem::WordImage;
use proteus_core::program::{Op, Program};
use proteus_types::Addr;
use std::collections::{HashMap, HashSet};

/// Word-level memory interface used by data-structure operations.
pub trait Mem {
    /// Reads the word at `addr`.
    fn read(&mut self, addr: Addr) -> u64;
    /// Reads a word whose address was produced by an earlier read
    /// (pointer chasing). Emitting modes compile this to a dependent
    /// load so traversals serialise like real hardware; other modes
    /// treat it as [`Mem::read`].
    fn read_dep(&mut self, addr: Addr) -> u64 {
        self.read(addr)
    }
    /// Writes `value` at `addr`.
    fn write(&mut self, addr: Addr, value: u64);
    /// Declares that the 64-byte node at `base` is on the operation's
    /// path and may be modified (conservative undo hint). A no-op outside
    /// collect mode.
    fn hint_node(&mut self, base: Addr);
    /// Models `cycles` of non-memory work (key comparison, hashing).
    fn compute(&mut self, cycles: u8);
}

/// Direct application to the image (initialization fast-forward).
#[derive(Debug)]
pub struct DirectMem<'a> {
    image: &'a mut WordImage,
}

impl<'a> DirectMem<'a> {
    /// Wraps `image`.
    pub fn new(image: &'a mut WordImage) -> Self {
        DirectMem { image }
    }
}

impl Mem for DirectMem<'_> {
    fn read(&mut self, addr: Addr) -> u64 {
        self.image.read_word(addr)
    }

    fn write(&mut self, addr: Addr, value: u64) {
        self.image.write_word(addr, value);
    }

    fn hint_node(&mut self, _base: Addr) {}

    fn compute(&mut self, _cycles: u8) {}
}

/// Dry run collecting the write set and hinted nodes without touching the
/// base image.
#[derive(Debug)]
pub struct CollectMem<'a> {
    base: &'a WordImage,
    delta: HashMap<u64, u64>,
    written_nodes: HashSet<u64>,
    hinted_nodes: HashSet<u64>,
    order: Vec<Addr>,
}

impl<'a> CollectMem<'a> {
    /// Starts a dry run over `base`.
    pub fn new(base: &'a WordImage) -> Self {
        CollectMem {
            base,
            delta: HashMap::new(),
            written_nodes: HashSet::new(),
            hinted_nodes: HashSet::new(),
            order: Vec::new(),
        }
    }

    /// The undo hint: every hinted or written node, as 64-byte node base
    /// addresses in first-touch order.
    pub fn hint(&self) -> Vec<Addr> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for a in &self.order {
            if seen.insert(a.raw()) {
                out.push(*a);
            }
        }
        // Written nodes that were never explicitly hinted.
        let mut extra: Vec<u64> = self
            .written_nodes
            .union(&self.hinted_nodes)
            .copied()
            .filter(|n| !seen.contains(n))
            .collect();
        extra.sort_unstable();
        out.extend(extra.into_iter().map(Addr::new));
        out
    }
}

impl Mem for CollectMem<'_> {
    fn read(&mut self, addr: Addr) -> u64 {
        let w = addr.raw() / 8;
        self.delta.get(&w).copied().unwrap_or_else(|| self.base.read_word(addr))
    }

    fn write(&mut self, addr: Addr, value: u64) {
        self.delta.insert(addr.raw() / 8, value);
        let node = addr.raw() & !63;
        if self.written_nodes.insert(node) && !self.hinted_nodes.contains(&node) {
            self.order.push(Addr::new(node));
        }
    }

    fn hint_node(&mut self, base: Addr) {
        let node = base.raw() & !63;
        if self.hinted_nodes.insert(node) && !self.written_nodes.contains(&node) {
            self.order.push(Addr::new(node));
        }
    }

    fn compute(&mut self, _cycles: u8) {}
}

/// Emits program operations and applies them to the image.
#[derive(Debug)]
pub struct EmitMem<'a> {
    image: &'a mut WordImage,
    program: &'a mut Program,
}

impl<'a> EmitMem<'a> {
    /// Emits into `program`, applying to `image`.
    pub fn new(image: &'a mut WordImage, program: &'a mut Program) -> Self {
        EmitMem { image, program }
    }
}

impl Mem for EmitMem<'_> {
    fn read(&mut self, addr: Addr) -> u64 {
        self.program.ops.push(Op::Read(addr));
        self.image.read_word(addr)
    }

    fn read_dep(&mut self, addr: Addr) -> u64 {
        self.program.ops.push(Op::ReadDep(addr));
        self.image.read_word(addr)
    }

    fn write(&mut self, addr: Addr, value: u64) {
        self.program.ops.push(Op::Write(addr, value));
        self.image.write_word(addr, value);
    }

    fn hint_node(&mut self, _base: Addr) {}

    fn compute(&mut self, cycles: u8) {
        self.program.ops.push(Op::Compute(cycles));
    }
}

impl<'m> Mem for &mut (dyn Mem + 'm) {
    fn read(&mut self, addr: Addr) -> u64 {
        (**self).read(addr)
    }

    fn read_dep(&mut self, addr: Addr) -> u64 {
        (**self).read_dep(addr)
    }

    fn write(&mut self, addr: Addr, value: u64) {
        (**self).write(addr, value)
    }

    fn hint_node(&mut self, base: Addr) {
        (**self).hint_node(base)
    }

    fn compute(&mut self, cycles: u8) {
        (**self).compute(cycles)
    }
}

/// Runs `op` as one durable transaction appended to `program`:
/// a dry run over the current image computes the conservative undo hint,
/// then the operation is emitted between `tx_begin`/`tx_end`.
///
/// The operation must be deterministic with respect to memory and
/// allocator state (both runs start from identical state); all the data
/// structures in this crate qualify.
///
/// ```
/// use proteus_core::pmem::WordImage;
/// use proteus_core::program::Program;
/// use proteus_types::{Addr, ThreadId};
/// use proteus_workloads::hashmap::HashMapStruct;
/// use proteus_workloads::mem::{durable_transaction, DirectMem, NodeAlloc};
///
/// let mut image = WordImage::new();
/// let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 20);
/// let map = {
///     let mut m = DirectMem::new(&mut image);
///     HashMapStruct::create(&mut m, &mut alloc, 16)
/// };
/// let mut program = Program::new(ThreadId::new(0));
/// durable_transaction(&mut image, &mut program, &mut alloc, |mut mem, alloc| {
///     map.insert(&mut mem, alloc, 7, 700);
/// });
/// assert_eq!(program.transaction_count(), 1);
/// program.validate().unwrap();
/// ```
pub fn durable_transaction(
    image: &mut WordImage,
    program: &mut Program,
    alloc: &mut NodeAlloc,
    op: impl Fn(&mut (dyn Mem + '_), &mut NodeAlloc),
) {
    let hint_nodes = {
        let mut collect = CollectMem::new(image);
        let mut scratch = alloc.clone();
        op(&mut collect, &mut scratch);
        collect.hint()
    };
    let hint: Vec<Addr> = hint_nodes.iter().flat_map(|n| [*n, n.offset(32)]).collect();
    program.tx_begin(hint);
    {
        let mut emit = EmitMem::new(image, program);
        op(&mut emit, alloc);
    }
    program.tx_end();
}

/// Deterministic bump allocator for 64-byte nodes. Cloned for the dry
/// run so both passes see identical addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAlloc {
    next: u64,
    limit: u64,
}

impl NodeAlloc {
    /// Allocates nodes from `[start, start + capacity_bytes)`.
    pub fn new(start: Addr, capacity_bytes: u64) -> Self {
        assert!(start.is_line_aligned(), "allocator base must be line aligned");
        NodeAlloc { next: start.raw(), limit: start.raw() + capacity_bytes }
    }

    /// Allocates one 64-byte node.
    ///
    /// # Panics
    ///
    /// Panics if the arena is exhausted — enlarge the workload's arena.
    pub fn alloc_node(&mut self) -> Addr {
        assert!(self.next + 64 <= self.limit, "node arena exhausted");
        let a = self.next;
        self.next += 64;
        Addr::new(a)
    }

    /// Allocates `bytes` rounded up to a line multiple.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Addr {
        let rounded = bytes.div_ceil(64) * 64;
        assert!(self.next + rounded <= self.limit, "arena exhausted");
        let a = self.next;
        self.next += rounded;
        Addr::new(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mem_applies() {
        let mut img = WordImage::new();
        let mut m = DirectMem::new(&mut img);
        m.write(Addr::new(0x100), 5);
        assert_eq!(m.read(Addr::new(0x100)), 5);
        assert_eq!(img.read_word(Addr::new(0x100)), 5);
    }

    #[test]
    fn collect_mem_overlays_without_mutating_base() {
        let mut base = WordImage::new();
        base.write_word(Addr::new(0x100), 1);
        let mut c = CollectMem::new(&base);
        assert_eq!(c.read(Addr::new(0x100)), 1);
        c.write(Addr::new(0x100), 2);
        assert_eq!(c.read(Addr::new(0x100)), 2, "read-your-writes");
        assert_eq!(base.read_word(Addr::new(0x100)), 1, "base untouched");
    }

    #[test]
    fn collect_hint_includes_writes_and_hints_in_order() {
        let base = WordImage::new();
        let mut c = CollectMem::new(&base);
        c.hint_node(Addr::new(0x200));
        c.write(Addr::new(0x148), 1); // node 0x140
        c.write(Addr::new(0x208), 2); // node 0x200 already hinted
        let hint = c.hint();
        assert_eq!(hint, vec![Addr::new(0x200), Addr::new(0x140)]);
    }

    #[test]
    fn emit_mem_appends_ops() {
        let mut img = WordImage::new();
        img.write_word(Addr::new(0x100), 7);
        let mut p = Program::new(proteus_types::ThreadId::new(0));
        let mut m = EmitMem::new(&mut img, &mut p);
        assert_eq!(m.read(Addr::new(0x100)), 7);
        m.write(Addr::new(0x108), 9);
        m.compute(3);
        assert_eq!(p.ops.len(), 3);
        assert!(matches!(p.ops[0], Op::Read(_)));
        assert!(matches!(p.ops[1], Op::Write(_, 9)));
        assert!(matches!(p.ops[2], Op::Compute(3)));
        assert_eq!(img.read_word(Addr::new(0x108)), 9);
    }

    #[test]
    fn alloc_is_deterministic_under_clone() {
        let mut a = NodeAlloc::new(Addr::new(0x1000), 4096);
        let mut b = a.clone();
        assert_eq!(a.alloc_node(), b.alloc_node());
        assert_eq!(a.alloc_node(), b.alloc_node());
        let s = a.alloc_bytes(100);
        assert!(s.is_line_aligned());
        assert_eq!(a.alloc_node().raw() - s.raw(), 128, "100 B rounds to 2 lines");
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn alloc_exhaustion_panics() {
        let mut a = NodeAlloc::new(Addr::new(0x1000), 64);
        a.alloc_node();
        a.alloc_node();
    }
}
