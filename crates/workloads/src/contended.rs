//! Contended shared-structure workloads: several threads operating on
//! the *same* persistent structures behind ticket locks.
//!
//! The single-owner Table 2 benchmarks partition structures across
//! threads, so no cache line is ever shared and crash consistency is a
//! per-thread property. This module opens the contended axis: all
//! threads hammer one multi-producer/multi-consumer queue, a pair of
//! hot hash maps, or lock-coupled B-trees, with mutual exclusion
//! expressed in the existing ISA as ticket locks (`Op::LockWait` /
//! `Uop::WaitValue` acquires, plain release stores).
//!
//! # How pre-generated traces share data
//!
//! Store values are precomputed at generation time, so sharing requires
//! a *generation-time global schedule*: groups are interleaved across
//! threads into one global sequence, each group's values are computed
//! against the globally-evolving image, and the runtime re-enforces the
//! per-structure order with ticket locks — a thread's `wait-value`
//! stalls its pipeline until the lock word holds its ticket, which only
//! the scheduled predecessor's release store can produce. Cross-thread
//! visibility for the *expansion* images (software undo logging needs
//! pre-transaction values) travels in each acquire's `external` write
//! list: everything other threads committed since this thread's last
//! acquire.
//!
//! Structure disjointness makes the interleaving sound: nodes belong to
//! exactly one structure ([`NodeAlloc`] never recycles), so a group's
//! reads can only be affected by same-structure predecessors, and those
//! are exactly the groups its ticket orders behind.
//!
//! The emitted program shape makes lock handoff durable for every
//! failure-safe scheme for free: the release store sits *after*
//! `tx_end`, so it retires after the scheme's commit-point persist
//! protocol (`LockHandoffPolicy::DurableCommit` in the scheme
//! registry). The [`ContendedSpec::early_release`] knob deliberately
//! breaks this — the release moves *before* `tx_begin` — handing the
//! lock to the successor while the group is still volatile. A crash in
//! that window recovers the successor's group without its predecessor,
//! which is exactly the cross-thread prefix violation the crash
//! oracle's self-test must catch.

use crate::btree::BTree;
use crate::hashmap::HashMapStruct;
use crate::mem::{CollectMem, DirectMem, EmitMem, NodeAlloc};
use crate::queue::Queue;
use crate::spec::{
    op_struct_index, run_op, GeneratedWorkload, OpSpec, Structures, WorkloadParams,
    APP_OVERHEAD_CYCLES,
};
use proteus_core::pmem::WordImage;
use proteus_core::program::{Op, Program};
use proteus_types::sharing::{
    is_struct_lock, struct_lock_addr, SHARED_ARENA_BASE, SHARED_ARENA_SIZE,
};
use proteus_types::{Addr, FieldHasher, StableHash, StableHasher, ThreadId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The contended structure kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContendedKind {
    /// MQ: one queue, every thread both produces and consumes.
    MpmcQueue,
    /// CH: two chained hash maps with a hot key range.
    ContendedHashMap,
    /// LB: two B-trees behind hand-over-hand (root, then write) locks.
    LockedBTree,
}

impl ContendedKind {
    /// All contended kinds, roster order.
    pub const ALL: [ContendedKind; 3] =
        [ContendedKind::MpmcQueue, ContendedKind::ContendedHashMap, ContendedKind::LockedBTree];

    /// Two-letter abbreviation, mirroring the Table 2 convention.
    pub fn abbrev(&self) -> &'static str {
        match self {
            ContendedKind::MpmcQueue => "MQ",
            ContendedKind::ContendedHashMap => "CH",
            ContendedKind::LockedBTree => "LB",
        }
    }

    /// Shared structures of this kind (each with its own ticket lock).
    pub fn structure_count(&self) -> usize {
        match self {
            ContendedKind::MpmcQueue => 1,
            ContendedKind::ContendedHashMap | ContendedKind::LockedBTree => 2,
        }
    }
}

/// Selects a contended workload: the structure kind plus the
/// lock-handoff fault-injection knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContendedSpec {
    /// Shared structure kind.
    pub kind: ContendedKind,
    /// When set, the data-lock release store is emitted *before*
    /// `tx_begin` instead of after `tx_end`, handing the lock over while
    /// the group is still volatile. This plants a guaranteed
    /// cross-thread commit-order violation for the oracle self-test —
    /// the contended counterpart of `ExploreSpec::disable_persist_ordering`.
    pub early_release: bool,
}

impl ContendedSpec {
    /// Display label: the kind abbreviation, `!`-suffixed for the
    /// fault-injection variant.
    pub fn label(&self) -> String {
        if self.early_release {
            format!("{}!", self.kind.abbrev())
        } else {
            self.kind.abbrev().to_string()
        }
    }
}

impl StableHash for ContendedSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("ContendedSpec");
        f.field("kind", self.kind.abbrev()).field("early_release", &self.early_release);
        h.write_u64(f.finish());
    }
}

/// One lock-protected operation group in the global commit schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockGroup {
    /// Thread the group was emitted into.
    pub thread: ThreadId,
    /// Shared structure index (`0..kind.structure_count()`).
    pub structure: usize,
    /// The data-lock ticket the group acquires; release stores
    /// `ticket + 1`.
    pub ticket: u64,
    /// In-transaction data writes, in emission order (lock words
    /// excluded). Empty for groups that mutate nothing at run time,
    /// e.g. a dequeue from an empty queue.
    pub writes: Vec<(Addr, u64)>,
}

/// The generation-time global schedule a contended workload committed
/// to — the ground truth the cross-thread crash oracle checks recovered
/// images against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingPlan {
    /// Data-lock word per structure, index-aligned with
    /// [`LockGroup::structure`].
    pub locks: Vec<Addr>,
    /// Auxiliary lock words (the B-tree coupling/root locks); recorded
    /// so callers can preload every lock line, not consulted by the
    /// oracle.
    pub aux_locks: Vec<Addr>,
    /// Groups in global schedule order. Per structure, tickets ascend
    /// in this order; the runtime enforces exactly this per-structure
    /// commit sequence.
    pub groups: Vec<LockGroup>,
    /// Whether the workload was generated with the early-release fault.
    pub early_release: bool,
}

impl SharingPlan {
    /// Groups of structure `s`, in ticket order.
    pub fn groups_of(&self, s: usize) -> impl Iterator<Item = &LockGroup> {
        self.groups.iter().filter(move |g| g.structure == s)
    }

    /// Every lock word the workload touches.
    pub fn all_locks(&self) -> impl Iterator<Item = Addr> + '_ {
        self.locks.iter().chain(self.aux_locks.iter()).copied()
    }
}

fn pick_contended_op(kind: ContendedKind, key_range: u64, rng: &mut StdRng) -> OpSpec {
    let nstruct = kind.structure_count();
    match kind {
        ContendedKind::MpmcQueue => {
            let r = rng.random_range(0..100u32);
            if r < 50 {
                OpSpec::Enqueue { s: 0, value: rng.random::<u32>() as u64 + 1 }
            } else if r < 90 {
                OpSpec::Dequeue { s: 0 }
            } else {
                OpSpec::QueueDrain { s: 0, n: 4 }
            }
        }
        ContendedKind::ContendedHashMap => {
            let s = rng.random_range(0..nstruct);
            let key = rng.random_range(0..key_range);
            if rng.random_bool(0.5) {
                OpSpec::MapInsert { s, key, value: rng.random::<u32>() as u64 }
            } else {
                OpSpec::MapDelete { s, key }
            }
        }
        ContendedKind::LockedBTree => {
            let s = rng.random_range(0..nstruct);
            let key = rng.random_range(0..key_range);
            if rng.random_bool(0.5) {
                OpSpec::TreeInsert { s, key, value: rng.random::<u32>() as u64 }
            } else {
                OpSpec::TreeDelete { s, key }
            }
        }
    }
}

fn build_shared_structures(
    kind: ContendedKind,
    image: &mut WordImage,
    alloc: &mut NodeAlloc,
) -> Structures {
    let n = kind.structure_count();
    let mut m = DirectMem::new(image);
    match kind {
        ContendedKind::MpmcQueue => {
            Structures::Queues((0..n).map(|_| Queue::create(&mut m, alloc)).collect())
        }
        ContendedKind::ContendedHashMap => {
            // 64 buckets: long chains under a hot key range keep every
            // thread walking (and rewriting) the same lines.
            Structures::Maps((0..n).map(|_| HashMapStruct::create(&mut m, alloc, 64)).collect())
        }
        ContendedKind::LockedBTree => {
            Structures::BTrees((0..n).map(|_| BTree::create(&mut m, alloc)).collect())
        }
    }
}

/// Generates a contended workload: shared structures in the shared
/// arena, one global schedule of ticket-locked groups interleaved
/// across `params.threads` programs, and the [`SharingPlan`] recording
/// that schedule.
///
/// `params.sim_ops` is the per-thread group count, as for the
/// single-owner generator.
///
/// # Panics
///
/// Panics on fewer than two threads (nothing is contended), an
/// exhausted shared arena, or an invalid generated program (a bug).
pub fn generate_contended(spec: &ContendedSpec, params: &WorkloadParams) -> GeneratedWorkload {
    assert!(params.threads >= 2, "contended workloads need at least two threads");
    let kind = spec.kind;
    let nstruct = kind.structure_count();
    let key_range = (params.init_ops as u64).max(16) * 2;

    let mut image = WordImage::new();
    let mut alloc = NodeAlloc::new(Addr::new(SHARED_ARENA_BASE), SHARED_ARENA_SIZE);
    // One global stream: the schedule and every op draw from it, so the
    // whole workload is a pure function of (spec, params).
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xC047_E4DE);

    let structures = build_shared_structures(kind, &mut image, &mut alloc);

    // Fast-forwarded initialisation, applied globally.
    for _ in 0..params.init_ops {
        let op = pick_contended_op(kind, key_range, &mut rng);
        let mut m = DirectMem::new(&mut image);
        run_op(&mut m, &mut alloc, &structures, op);
    }

    // Global schedule: each thread appears `sim_ops` times, order
    // shuffled (Fisher-Yates over the slot multiset).
    let mut slots: Vec<usize> =
        (0..params.threads).flat_map(|t| std::iter::repeat_n(t, params.sim_ops)).collect();
    for i in (1..slots.len()).rev() {
        slots.swap(i, rng.random_range(0..i + 1));
    }

    let data_locks: Vec<Addr> = (0..nstruct).map(struct_lock_addr).collect();
    // The B-tree's hand-over-hand root locks sit above the data locks.
    let aux_locks: Vec<Addr> = if kind == ContendedKind::LockedBTree {
        (0..nstruct).map(|s| struct_lock_addr(nstruct + s)).collect()
    } else {
        Vec::new()
    };

    let mut programs: Vec<Program> =
        (0..params.threads).map(|t| Program::new(ThreadId::new(t as u32))).collect();
    let mut next_ticket = vec![0u64; nstruct]; // data locks
    let mut next_root_ticket = vec![0u64; nstruct]; // LB root locks
                                                    // Committed (addr, value) writes in schedule order, tagged with the
                                                    // emitting thread; `seen[t]` is thread t's fold cursor into it.
    let mut commit_log: Vec<(usize, Addr, u64)> = Vec::new();
    let mut seen = vec![0usize; params.threads];
    let mut groups: Vec<LockGroup> = Vec::with_capacity(slots.len());

    for t in slots {
        let op = pick_contended_op(kind, key_range, &mut rng);
        let s = op_struct_index(op);
        let program = &mut programs[t];

        // Everything other threads committed since this thread's last
        // acquire becomes visible at this one.
        let external: Vec<(Addr, u64)> = commit_log[seen[t]..]
            .iter()
            .filter(|(owner, _, _)| *owner != t)
            .map(|(_, a, v)| (*a, *v))
            .collect();
        seen[t] = commit_log.len();

        // Acquire. The B-tree couples: take the root lock, take the
        // write lock, then release the root before the transaction so
        // a successor can start its descent while we commit.
        if kind == ContendedKind::LockedBTree {
            let root_ticket = next_root_ticket[s];
            next_root_ticket[s] += 1;
            program.lock_wait(aux_locks[s], root_ticket, external);
            let ticket = next_ticket[s];
            next_ticket[s] += 1;
            program.lock_wait(data_locks[s], ticket, Vec::new());
            program.write(aux_locks[s], root_ticket + 1);
        } else {
            let ticket = next_ticket[s];
            next_ticket[s] += 1;
            program.lock_wait(data_locks[s], ticket, external);
        }
        let ticket = next_ticket[s] - 1;

        // Application preamble, as in the single-owner emitter.
        let mut remaining = APP_OVERHEAD_CYCLES;
        while remaining > 0 {
            let chunk = remaining.min(200) as u8;
            program.compute(chunk);
            remaining -= chunk as u32;
        }

        // Conservative undo hint from a dry run against the current
        // global image.
        let hint_nodes = {
            let mut c = CollectMem::new(&image);
            let mut scratch = alloc.clone();
            run_op(&mut c, &mut scratch, &structures, op);
            c.hint()
        };

        if spec.early_release {
            // Fault injection: hand the lock over before the group is
            // durable (see `ContendedSpec::early_release`), then dawdle
            // long enough that the successor commits its group while
            // ours is still volatile — the torn window the oracle
            // self-test must observe. Without the stall the predecessor
            // (whose preamble is already behind it) would still win the
            // commit race and the fault would never bite.
            program.write(data_locks[s], ticket + 1);
            let mut stall = 4 * APP_OVERHEAD_CYCLES;
            while stall > 0 {
                let chunk = stall.min(200) as u8;
                program.compute(chunk);
                stall -= chunk as u32;
            }
        }

        let body_start = program.ops.len();
        let hint: Vec<Addr> = hint_nodes.iter().flat_map(|n| [*n, n.offset(32)]).collect();
        program.tx_begin(hint);
        {
            let mut e = EmitMem::new(&mut image, program);
            run_op(&mut e, &mut alloc, &structures, op);
        }
        program.tx_end();

        // The group's committed writes, straight from the emitted ops.
        let writes: Vec<(Addr, u64)> = program.ops[body_start..]
            .iter()
            .filter_map(|op| match op {
                Op::Write(a, v) if !is_struct_lock(*a) => Some((*a, *v)),
                _ => None,
            })
            .collect();
        commit_log.extend(writes.iter().map(|(a, v)| (t, *a, *v)));

        if !spec.early_release {
            program.write(data_locks[s], ticket + 1);
        }

        groups.push(LockGroup { thread: ThreadId::new(t as u32), structure: s, ticket, writes });
    }

    for p in &programs {
        p.validate().expect("generated contended program must validate");
    }

    GeneratedWorkload {
        name: format!("{}x{}", spec.label(), params.threads),
        programs,
        initial_image: image,
        sharing: Some(SharingPlan {
            locks: data_locks,
            aux_locks,
            groups,
            early_release: spec.early_release,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::sharing::in_coherence_domain;

    fn params() -> WorkloadParams {
        WorkloadParams { threads: 3, init_ops: 64, sim_ops: 20, seed: 7 }
    }

    fn gen(kind: ContendedKind) -> GeneratedWorkload {
        generate_contended(&ContendedSpec { kind, early_release: false }, &params())
    }

    #[test]
    fn deterministic_and_valid_for_every_kind() {
        for kind in ContendedKind::ALL {
            let a = gen(kind);
            let b = gen(kind);
            assert_eq!(a.programs.len(), 3, "{kind:?}");
            for (pa, pb) in a.programs.iter().zip(&b.programs) {
                assert_eq!(pa.ops, pb.ops, "{kind:?}: generation must be deterministic");
            }
            assert_eq!(a.name, format!("{}x3", kind.abbrev()));
        }
    }

    #[test]
    fn every_address_stays_in_the_coherence_domain_or_private() {
        // Contended programs touch only shared-arena data and lock
        // words — nothing in the per-thread single-owner layout.
        for kind in ContendedKind::ALL {
            let w = gen(kind);
            for p in &w.programs {
                for op in &p.ops {
                    if let Op::Write(a, _) | Op::Read(a) | Op::ReadDep(a) = op {
                        assert!(
                            in_coherence_domain(*a),
                            "{kind:?}: {a} outside the coherence domain"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tickets_ascend_per_structure_and_handoff_is_durable() {
        for kind in ContendedKind::ALL {
            let w = gen(kind);
            let plan = w.sharing.as_ref().expect("contended workloads carry a sharing plan");
            assert!(!plan.early_release);
            assert_eq!(plan.locks.len(), kind.structure_count());
            for s in 0..kind.structure_count() {
                let tickets: Vec<u64> = plan.groups_of(s).map(|g| g.ticket).collect();
                let expect: Vec<u64> = (0..tickets.len() as u64).collect();
                assert_eq!(tickets, expect, "{kind:?} structure {s}");
            }
            // Total groups = threads * sim_ops; all transactions durable.
            assert_eq!(plan.groups.len(), 3 * 20);
            assert_eq!(w.total_transactions(), 60);
            // Release (a bare lock-word store) follows tx_end in every
            // program: scan each program for the pattern.
            for p in &w.programs {
                let mut after_tx_end = false;
                let mut releases = 0;
                for op in &p.ops {
                    match op {
                        Op::TxEnd => after_tx_end = true,
                        Op::Write(a, _)
                            if is_struct_lock(*a)
                                && !matches!(kind, ContendedKind::LockedBTree) =>
                        {
                            assert!(after_tx_end, "release before commit without early_release");
                            releases += 1;
                            after_tx_end = false;
                        }
                        _ => {}
                    }
                }
                if kind != ContendedKind::LockedBTree {
                    assert_eq!(releases, 20);
                }
            }
        }
    }

    #[test]
    fn group_writes_match_the_programs() {
        // Every in-tx data write in every program appears in its
        // group's write list, in order.
        let w = gen(ContendedKind::ContendedHashMap);
        let plan = w.sharing.as_ref().unwrap();
        let total_writes: usize = plan.groups.iter().map(|g| g.writes.len()).sum();
        let program_writes: usize = w
            .programs
            .iter()
            .map(|p| {
                let mut in_tx = false;
                p.ops
                    .iter()
                    .filter(|op| match op {
                        Op::TxBegin { .. } => {
                            in_tx = true;
                            false
                        }
                        Op::TxEnd => {
                            in_tx = false;
                            false
                        }
                        Op::Write(a, _) => in_tx && !is_struct_lock(*a),
                        _ => false,
                    })
                    .count()
            })
            .sum();
        assert_eq!(total_writes, program_writes);
        assert!(total_writes > 0, "a hot hash map must mutate something");
    }

    #[test]
    fn early_release_moves_the_handoff_before_commit() {
        let spec = ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: true };
        let w = generate_contended(&spec, &params());
        assert_eq!(w.name, "MQ!x3");
        let plan = w.sharing.as_ref().unwrap();
        assert!(plan.early_release);
        // In every program, each release store now precedes its
        // bracketing tx_begin.
        for p in &w.programs {
            let mut pending_release = false;
            for op in &p.ops {
                match op {
                    Op::Write(a, _) if is_struct_lock(*a) => pending_release = true,
                    Op::TxBegin { .. } => {
                        assert!(pending_release, "early_release must precede tx_begin");
                        pending_release = false;
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn btree_couples_root_then_data_lock() {
        let w = gen(ContendedKind::LockedBTree);
        let plan = w.sharing.as_ref().unwrap();
        assert_eq!(plan.aux_locks.len(), 2);
        assert_eq!(plan.all_locks().count(), 4);
        // Each group opens with root acquire, data acquire, root release.
        for p in &w.programs {
            let mut i = 0;
            while i < p.ops.len() {
                if let Op::LockWait { addr, .. } = p.ops[i] {
                    assert!(plan.aux_locks.contains(&addr), "first acquire is the root lock");
                    let Op::LockWait { addr: data, .. } = p.ops[i + 1] else {
                        panic!("data acquire must follow the root acquire");
                    };
                    assert!(plan.locks.contains(&data));
                    let Op::Write(rel, _) = p.ops[i + 2] else {
                        panic!("root release must follow the data acquire");
                    };
                    assert_eq!(rel, addr, "root released hand-over-hand");
                    i += 3;
                } else {
                    i += 1;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two threads")]
    fn single_thread_rejected() {
        let p = WorkloadParams { threads: 1, init_ops: 8, sim_ops: 4, seed: 1 };
        generate_contended(
            &ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: false },
            &p,
        );
    }
}
