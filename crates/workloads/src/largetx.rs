//! The §7.3 large-transaction microbenchmark.
//!
//! "We implemented a microbenchmark with variable-sized, large
//! transactions based on the linked list benchmark. The number of
//! elements updated per node is taken as a variable" — each list node
//! carries a large element array, and one transaction walks to a node and
//! updates every element, generating 20-156× more log entries per
//! transaction than the Table 2 benchmarks.

use crate::mem::{Mem, NodeAlloc};
use proteus_types::Addr;

const HDR_NEXT: u64 = 0;
const HDR_ID: u64 = 8;
const HDR_BYTES: u64 = 64;

/// A linked list of nodes each holding `elements` 8-byte elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BigNodeList {
    head: Addr,
    elements: u64,
    nodes: u64,
}

impl BigNodeList {
    /// Builds a list of `nodes` nodes with `elements` elements each.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn create<M: Mem>(mem: &mut M, alloc: &mut NodeAlloc, nodes: u64, elements: u64) -> Self {
        assert!(nodes > 0, "list needs at least one node");
        let mut head = 0u64;
        // Build back to front so head links forward.
        let mut addrs = Vec::new();
        for _ in 0..nodes {
            addrs.push(alloc.alloc_bytes(HDR_BYTES + elements * 8));
        }
        for (i, addr) in addrs.iter().enumerate().rev() {
            mem.write(addr.offset(HDR_NEXT), head);
            mem.write(addr.offset(HDR_ID), i as u64);
            head = addr.raw();
        }
        BigNodeList { head: Addr::new(head), elements, nodes }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Elements per node.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Walks to node `index` (emitting header reads) and returns its
    /// address.
    fn walk<M: Mem>(&self, mem: &mut M, index: u64) -> Addr {
        assert!(index < self.nodes, "node index out of range");
        let mut cur = self.head;
        for _ in 0..index {
            cur = Addr::new(mem.read_dep(cur.offset(HDR_NEXT)));
        }
        cur
    }

    /// One §7.3 transaction: update every element of node `index` to
    /// `value_base + element_index`. Hints every touched line so the
    /// software baseline logs the full write set.
    pub fn update_node<M: Mem>(&self, mem: &mut M, index: u64, value_base: u64) {
        let node = self.walk(mem, index);
        let data = node.offset(HDR_BYTES);
        let lines = (self.elements * 8).div_ceil(64);
        for l in 0..lines {
            mem.hint_node(data.offset(l * 64));
        }
        for e in 0..self.elements {
            mem.write(data.offset(e * 8), value_base + e);
        }
    }

    /// Reads element `e` of node `index` (test helper).
    pub fn element<M: Mem>(&self, mem: &mut M, index: u64, e: u64) -> u64 {
        let node = self.walk(mem, index);
        mem.read(node.offset(HDR_BYTES + e * 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{CollectMem, DirectMem};
    use proteus_core::pmem::WordImage;

    #[test]
    fn update_touches_every_element() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 24);
        let mut m = DirectMem::new(&mut img);
        let list = BigNodeList::create(&mut m, &mut alloc, 4, 128);
        list.update_node(&mut m, 2, 1000);
        for e in 0..128 {
            assert_eq!(list.element(&mut m, 2, e), 1000 + e);
        }
        assert_eq!(list.element(&mut m, 1, 0), 0, "other nodes untouched");
    }

    #[test]
    fn hint_covers_whole_write_set() {
        let mut img = WordImage::new();
        let mut alloc = NodeAlloc::new(Addr::new(0x1000_0000), 1 << 24);
        let list = {
            let mut m = DirectMem::new(&mut img);
            BigNodeList::create(&mut m, &mut alloc, 2, 1024)
        };
        let mut c = CollectMem::new(&img);
        list.update_node(&mut c, 1, 7);
        // 1024 elements * 8 B = 8 KiB = 128 lines hinted.
        assert_eq!(c.hint().len(), 128);
    }
}
