//! JSON codecs for selectors, gen specs, and the JSONL trace file.
//!
//! ## Trace file format (version 1)
//!
//! Line 1 is the header:
//!
//! ```json
//! {"magic":"proteus-optrace","version":1,"name":"QEx2",
//!  "sel":{...},"params":{...},"lines":N,"content_hash":"0123..ef"}
//! ```
//!
//! followed by exactly `lines` body lines, each either an init chunk
//! (`{"t":0,"init":[op,...]}`, at most [`INIT_CHUNK`] ops) or one
//! durable group (`{"t":0,"tx":[op,...]}`), in generation order. Ops
//! are compact arrays, tag first: `["MI",s,key,value]`.
//!
//! Loading verifies, in order: magic + version (wrong format), the
//! declared body line count (truncation), per-line shape (corruption),
//! and finally the recomputed [`OpTrace::content_hash`] against the
//! header (any silent body edit). Each failure is a distinct
//! `SimError::InvalidConfig` naming the offending line.

use crate::gen::{GenSpec, GenStructure, OpMix, Skew};
use crate::sel::WorkloadSel;
use crate::trace::{OpTrace, ThreadOps, TRACE_VERSION};
use proteus_harness::{json, Json};
use proteus_types::SimError;
use proteus_workloads::{Benchmark, ContendedKind, ContendedSpec, OpSpec, WorkloadParams};

/// Magic string identifying a trace file's first line.
pub const TRACE_MAGIC: &str = "proteus-optrace";

/// Init ops batched per body line (keeps big-init traces compact
/// without unbounded lines).
pub const INIT_CHUNK: usize = 1024;

/// Encodes a workload selector. `Bench` keeps the historical
/// `Benchmark` encoding byte-for-byte (`{"kind":"QE"}`, `LargeTx` with
/// its element count) so ledgers and goldens written before the
/// generalisation still decode; `Gen` nests the full spec.
pub fn sel_to_json(sel: &WorkloadSel) -> Json {
    match sel {
        WorkloadSel::Bench(Benchmark::LargeTx { elements }) => {
            Json::obj([("kind", Json::str("LT")), ("elements", Json::U64(*elements))])
        }
        WorkloadSel::Bench(other) => Json::obj([("kind", Json::str(other.abbrev()))]),
        WorkloadSel::Gen(g) => {
            Json::obj([("kind", Json::str("GEN")), ("spec", gen_spec_to_json(g))])
        }
        WorkloadSel::Contended(c) => Json::obj([
            ("kind", Json::str("CONTENDED")),
            ("struct", Json::str(c.kind.abbrev())),
            ("early_release", Json::Bool(c.early_release)),
        ]),
    }
}

/// Decodes a workload selector; `None` on unknown kinds.
pub fn sel_from_json(v: &Json) -> Option<WorkloadSel> {
    let bench = |b: Benchmark| Some(WorkloadSel::Bench(b));
    match v.get("kind")?.as_str()? {
        "QE" => bench(Benchmark::Queue),
        "HM" => bench(Benchmark::HashMap),
        "SS" => bench(Benchmark::StringSwap),
        "AT" => bench(Benchmark::AvlTree),
        "BT" => bench(Benchmark::BTree),
        "RT" => bench(Benchmark::RbTree),
        "LT" => bench(Benchmark::LargeTx { elements: v.get("elements")?.as_u64()? }),
        "GEN" => Some(WorkloadSel::Gen(gen_spec_from_json(v.get("spec")?)?)),
        "CONTENDED" => {
            let abbrev = v.get("struct")?.as_str()?;
            let kind = ContendedKind::ALL.into_iter().find(|k| k.abbrev() == abbrev)?;
            Some(WorkloadSel::Contended(ContendedSpec {
                kind,
                early_release: v.get("early_release")?.as_bool()?,
            }))
        }
        _ => None,
    }
}

/// Encodes a gen spec.
pub fn gen_spec_to_json(g: &GenSpec) -> Json {
    let structure = match g.structure {
        GenStructure::HashMap { buckets } => {
            Json::obj([("kind", Json::str("HM")), ("buckets", Json::U64(buckets))])
        }
        GenStructure::BTree => Json::obj([("kind", Json::str("BT"))]),
        GenStructure::Queue => Json::obj([("kind", Json::str("QE"))]),
    };
    let skew = match g.skew {
        Skew::Uniform => Json::obj([("kind", Json::str("uniform"))]),
        Skew::Zipfian { theta_milli } => Json::obj([
            ("kind", Json::str("zipfian")),
            ("theta_milli", Json::U64(theta_milli as u64)),
        ]),
    };
    Json::obj([
        ("name", Json::str(g.name.clone())),
        ("structure", structure),
        ("per_thread", Json::U64(g.per_thread as u64)),
        ("key_range", Json::U64(g.key_range)),
        (
            "mix",
            Json::obj([
                ("read", Json::U64(g.mix.read_pct as u64)),
                ("insert", Json::U64(g.mix.insert_pct as u64)),
                ("delete", Json::U64(g.mix.delete_pct as u64)),
                ("scan", Json::U64(g.mix.scan_pct as u64)),
                ("drain", Json::U64(g.mix.drain_pct as u64)),
            ]),
        ),
        ("skew", skew),
        ("scan_len", Json::U64(g.scan_len as u64)),
        ("tx_ops", Json::U64(g.tx_ops as u64)),
        ("drain_batch", Json::U64(g.drain_batch as u64)),
    ])
}

fn u8_field(v: &Json, key: &str) -> Option<u8> {
    u8::try_from(v.get(key)?.as_u64()?).ok()
}

fn u32_field(v: &Json, key: &str) -> Option<u32> {
    u32::try_from(v.get(key)?.as_u64()?).ok()
}

/// Decodes a gen spec; `None` on malformed input.
pub fn gen_spec_from_json(v: &Json) -> Option<GenSpec> {
    let s = v.get("structure")?;
    let structure = match s.get("kind")?.as_str()? {
        "HM" => GenStructure::HashMap { buckets: s.get("buckets")?.as_u64()? },
        "BT" => GenStructure::BTree,
        "QE" => GenStructure::Queue,
        _ => return None,
    };
    let k = v.get("skew")?;
    let skew = match k.get("kind")?.as_str()? {
        "uniform" => Skew::Uniform,
        "zipfian" => Skew::Zipfian { theta_milli: u32_field(k, "theta_milli")? },
        _ => return None,
    };
    let m = v.get("mix")?;
    Some(GenSpec {
        name: v.get("name")?.as_str()?.to_string(),
        structure,
        per_thread: v.get("per_thread")?.as_usize()?,
        key_range: v.get("key_range")?.as_u64()?,
        mix: OpMix {
            read_pct: u8_field(m, "read")?,
            insert_pct: u8_field(m, "insert")?,
            delete_pct: u8_field(m, "delete")?,
            scan_pct: u8_field(m, "scan")?,
            drain_pct: u8_field(m, "drain")?,
        },
        skew,
        scan_len: u32_field(v, "scan_len")?,
        tx_ops: u32_field(v, "tx_ops")?,
        drain_batch: u32_field(v, "drain_batch")?,
    })
}

/// Encodes workload parameters (same shape `sim::persist` has always
/// written; that module now delegates here).
pub fn params_to_json(p: &WorkloadParams) -> Json {
    Json::obj([
        ("threads", Json::U64(p.threads as u64)),
        ("init_ops", Json::U64(p.init_ops as u64)),
        ("sim_ops", Json::U64(p.sim_ops as u64)),
        ("seed", Json::U64(p.seed)),
    ])
}

/// Decodes workload parameters; `None` on missing/mistyped fields.
pub fn params_from_json(v: &Json) -> Option<WorkloadParams> {
    Some(WorkloadParams {
        threads: v.get("threads")?.as_usize()?,
        init_ops: v.get("init_ops")?.as_usize()?,
        sim_ops: v.get("sim_ops")?.as_usize()?,
        seed: v.get("seed")?.as_u64()?,
    })
}

/// Encodes one op as a compact tagged array.
pub fn op_to_json(op: &OpSpec) -> Json {
    let arr = |tag: &str, rest: &[u64]| {
        let mut a = vec![Json::str(tag)];
        a.extend(rest.iter().map(|&n| Json::U64(n)));
        Json::Arr(a)
    };
    match *op {
        OpSpec::Enqueue { s, value } => arr("ENQ", &[s as u64, value]),
        OpSpec::Dequeue { s } => arr("DEQ", &[s as u64]),
        OpSpec::MapInsert { s, key, value } => arr("MI", &[s as u64, key, value]),
        OpSpec::MapDelete { s, key } => arr("MD", &[s as u64, key]),
        OpSpec::Swap { i, j } => arr("SW", &[i, j]),
        OpSpec::TreeInsert { s, key, value } => arr("TI", &[s as u64, key, value]),
        OpSpec::TreeDelete { s, key } => arr("TD", &[s as u64, key]),
        OpSpec::BigUpdate { node, base } => arr("BU", &[node, base]),
        OpSpec::MapLookup { s, key } => arr("ML", &[s as u64, key]),
        OpSpec::TreeLookup { s, key } => arr("TL", &[s as u64, key]),
        OpSpec::TreeScan { s, key, len } => arr("TS", &[s as u64, key, len as u64]),
        OpSpec::QueueDrain { s, n } => arr("QD", &[s as u64, n as u64]),
    }
}

/// Decodes one op; `None` on unknown tags or wrong arity.
pub fn op_from_json(v: &Json) -> Option<OpSpec> {
    let a = v.as_arr()?;
    let tag = a.first()?.as_str()?;
    let n = |i: usize| a.get(i)?.as_u64();
    let s = |i: usize| -> Option<usize> { usize::try_from(n(i)?).ok() };
    let op = match (tag, a.len()) {
        ("ENQ", 3) => OpSpec::Enqueue { s: s(1)?, value: n(2)? },
        ("DEQ", 2) => OpSpec::Dequeue { s: s(1)? },
        ("MI", 4) => OpSpec::MapInsert { s: s(1)?, key: n(2)?, value: n(3)? },
        ("MD", 3) => OpSpec::MapDelete { s: s(1)?, key: n(2)? },
        ("SW", 3) => OpSpec::Swap { i: n(1)?, j: n(2)? },
        ("TI", 4) => OpSpec::TreeInsert { s: s(1)?, key: n(2)?, value: n(3)? },
        ("TD", 3) => OpSpec::TreeDelete { s: s(1)?, key: n(2)? },
        ("BU", 3) => OpSpec::BigUpdate { node: n(1)?, base: n(2)? },
        ("ML", 3) => OpSpec::MapLookup { s: s(1)?, key: n(2)? },
        ("TL", 3) => OpSpec::TreeLookup { s: s(1)?, key: n(2)? },
        ("TS", 4) => OpSpec::TreeScan { s: s(1)?, key: n(2)?, len: u32::try_from(n(3)?).ok()? },
        ("QD", 3) => OpSpec::QueueDrain { s: s(1)?, n: u32::try_from(n(2)?).ok()? },
        _ => return None,
    };
    Some(op)
}

fn body_line_count(trace: &OpTrace) -> u64 {
    trace
        .threads
        .iter()
        .map(|t| t.init.len().div_ceil(INIT_CHUNK) as u64 + t.groups.len() as u64)
        .sum()
}

/// Serialises a trace to its JSONL form.
pub fn trace_to_string(trace: &OpTrace) -> String {
    let header = Json::obj([
        ("magic", Json::str(TRACE_MAGIC)),
        ("version", Json::U64(TRACE_VERSION)),
        ("name", Json::str(trace.workload_name())),
        ("sel", sel_to_json(&trace.sel)),
        ("params", params_to_json(&trace.params)),
        ("lines", Json::U64(body_line_count(trace))),
        ("content_hash", Json::str(format!("{:016x}", trace.content_hash()))),
    ]);
    let mut out = header.to_line();
    out.push('\n');
    for (t, ops) in trace.threads.iter().enumerate() {
        for chunk in ops.init.chunks(INIT_CHUNK) {
            let line = Json::obj([
                ("t", Json::U64(t as u64)),
                ("init", Json::Arr(chunk.iter().map(op_to_json).collect())),
            ]);
            out.push_str(&line.to_line());
            out.push('\n');
        }
        for group in &ops.groups {
            let line = Json::obj([
                ("t", Json::U64(t as u64)),
                ("tx", Json::Arr(group.iter().map(op_to_json).collect())),
            ]);
            out.push_str(&line.to_line());
            out.push('\n');
        }
    }
    out
}

fn bad(msg: impl Into<String>) -> SimError {
    SimError::InvalidConfig(format!("op trace: {}", msg.into()))
}

/// Parses and verifies a JSONL trace (see module docs for the checks).
pub fn trace_from_str(text: &str) -> Result<OpTrace, SimError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or_else(|| bad("empty file"))?;
    let header = json::parse(header_line).map_err(|e| bad(format!("header unparsable: {e}")))?;
    match header.get("magic").and_then(Json::as_str) {
        Some(TRACE_MAGIC) => {}
        _ => return Err(bad("missing or wrong magic (not an op-trace file)")),
    }
    match header.get("version").and_then(Json::as_u64) {
        Some(TRACE_VERSION) => {}
        Some(v) => return Err(bad(format!("unsupported version {v} (expected {TRACE_VERSION})"))),
        None => return Err(bad("missing version")),
    }
    let sel = header
        .get("sel")
        .and_then(sel_from_json)
        .ok_or_else(|| bad("header selector malformed"))?;
    let params = header
        .get("params")
        .and_then(params_from_json)
        .ok_or_else(|| bad("header params malformed"))?;
    let declared_lines =
        header.get("lines").and_then(Json::as_u64).ok_or_else(|| bad("missing line count"))?;
    let declared_hash = header
        .get("content_hash")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing content hash"))?
        .to_string();

    let mut threads: Vec<ThreadOps> = Vec::new();
    threads.resize_with(params.threads, ThreadOps::default);
    let mut seen = 0u64;
    for (i, line) in lines.enumerate() {
        let lineno = i + 2; // 1-based, after the header
        let v = json::parse(line).map_err(|e| bad(format!("line {lineno} unparsable: {e}")))?;
        let t = v
            .get("t")
            .and_then(Json::as_usize)
            .ok_or_else(|| bad(format!("line {lineno} missing thread index")))?;
        if t >= threads.len() {
            return Err(bad(format!(
                "line {lineno} addresses thread {t} but header declares {}",
                params.threads
            )));
        }
        let decode = |arr: &Json, what: &str| -> Result<Vec<OpSpec>, SimError> {
            arr.as_arr()
                .ok_or_else(|| bad(format!("line {lineno} {what} is not an array")))?
                .iter()
                .map(|op| {
                    op_from_json(op)
                        .ok_or_else(|| bad(format!("line {lineno} has an unknown or malformed op")))
                })
                .collect()
        };
        if let Some(arr) = v.get("init") {
            threads[t].init.extend(decode(arr, "init chunk")?);
        } else if let Some(arr) = v.get("tx") {
            threads[t].groups.push(decode(arr, "tx group")?);
        } else {
            return Err(bad(format!("line {lineno} is neither an init chunk nor a tx group")));
        }
        seen += 1;
    }
    if seen != declared_lines {
        return Err(bad(format!(
            "truncated: header declares {declared_lines} body lines, found {seen}"
        )));
    }
    let trace = OpTrace { sel, params, threads };
    let got = format!("{:016x}", trace.content_hash());
    if got != declared_hash {
        return Err(bad(format!(
            "content hash mismatch (header {declared_hash}, recomputed {got}) — corrupt body"
        )));
    }
    Ok(trace)
}

/// Writes a trace to `path` (JSONL).
pub fn write_trace(trace: &OpTrace, path: &str) -> Result<(), SimError> {
    std::fs::write(path, trace_to_string(trace))
        .map_err(|e| SimError::HarnessIo(format!("writing trace {path}: {e}")))
}

/// Reads and verifies a trace from `path`.
pub fn read_trace(path: &str) -> Result<OpTrace, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::HarnessIo(format!("reading trace {path}: {e}")))?;
    trace_from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenSpec, GenStructure, OpMix, Skew};
    use crate::trace::record;

    fn sample_trace() -> OpTrace {
        let sel = WorkloadSel::from(Benchmark::Queue);
        let params = WorkloadParams { threads: 2, init_ops: 30, sim_ops: 10, seed: 5 };
        record(&sel, &params).unwrap().1
    }

    fn gen_trace() -> OpTrace {
        let sel = WorkloadSel::Gen(GenSpec {
            name: "kv".into(),
            structure: GenStructure::HashMap { buckets: 8 },
            per_thread: 2,
            key_range: 100,
            mix: OpMix { read_pct: 30, insert_pct: 50, delete_pct: 20, scan_pct: 0, drain_pct: 0 },
            skew: Skew::Zipfian { theta_milli: 990 },
            scan_len: 0,
            tx_ops: 2,
            drain_batch: 0,
        });
        let params = WorkloadParams { threads: 2, init_ops: 40, sim_ops: 12, seed: 9 };
        record(&sel, &params).unwrap().1
    }

    #[test]
    fn every_op_kind_round_trips() {
        let ops = [
            OpSpec::Enqueue { s: 1, value: 42 },
            OpSpec::Dequeue { s: 0 },
            OpSpec::MapInsert { s: 2, key: 7, value: 8 },
            OpSpec::MapDelete { s: 3, key: 9 },
            OpSpec::Swap { i: 4, j: 5 },
            OpSpec::TreeInsert { s: 0, key: 1, value: 2 },
            OpSpec::TreeDelete { s: 1, key: 3 },
            OpSpec::BigUpdate { node: 2, base: 100 },
            OpSpec::MapLookup { s: 0, key: 11 },
            OpSpec::TreeLookup { s: 1, key: 12 },
            OpSpec::TreeScan { s: 2, key: 13, len: 16 },
            OpSpec::QueueDrain { s: 3, n: 12 },
        ];
        for op in ops {
            assert_eq!(op_from_json(&op_to_json(&op)), Some(op), "{op:?}");
        }
    }

    #[test]
    fn trace_round_trips_bench_and_gen() {
        for trace in [sample_trace(), gen_trace()] {
            let text = trace_to_string(&trace);
            let back = trace_from_str(&text).expect("round trip");
            assert_eq!(back, trace);
        }
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let text = trace_to_string(&sample_trace());
        let mut lines: Vec<&str> = text.lines().collect();
        lines.pop();
        let truncated = lines.join("\n");
        let err = trace_from_str(&truncated).unwrap_err();
        assert!(format!("{err}").contains("truncated"), "{err}");
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let text = trace_to_string(&sample_trace());
        // Wrong magic.
        let bad_magic = text.replacen(TRACE_MAGIC, "not-a-trace", 1);
        assert!(trace_from_str(&bad_magic).is_err());
        // Unsupported version.
        let bad_version = text.replacen("\"version\":1", "\"version\":99", 1);
        let err = trace_from_str(&bad_version).unwrap_err();
        assert!(format!("{err}").contains("version"), "{err}");
        // Unparsable header line.
        let mut broken = text.clone();
        broken.replace_range(0..1, "X");
        assert!(trace_from_str(&broken).is_err());
    }

    #[test]
    fn corrupt_body_fails_content_hash() {
        let text = trace_to_string(&sample_trace());
        // Flip one op value in the body without touching line count.
        let tampered = text.replacen("[\"ENQ\",", "[\"DEQ\",", 1);
        // If the trace had no enqueue (unlikely), skip — nothing tampered.
        if tampered != text {
            let err = trace_from_str(&tampered).unwrap_err();
            let msg = format!("{err}");
            // Either arity check or the content hash catches it.
            assert!(msg.contains("hash") || msg.contains("malformed"), "{msg}");
        }
    }

    #[test]
    fn empty_and_garbage_inputs_are_rejected() {
        assert!(trace_from_str("").is_err());
        assert!(trace_from_str("\n\n").is_err());
        assert!(trace_from_str("{\"magic\":\"proteus-optrace\"}").is_err());
        assert!(trace_from_str("hello world").is_err());
    }

    #[test]
    fn init_chunking_splits_large_inits() {
        let sel = WorkloadSel::from(Benchmark::Queue);
        let params = WorkloadParams { threads: 1, init_ops: INIT_CHUNK + 10, sim_ops: 1, seed: 1 };
        let (_, trace) = record(&sel, &params).unwrap();
        let text = trace_to_string(&trace);
        // header + 2 init chunks + 1 tx line
        assert_eq!(text.lines().count(), 4);
        assert_eq!(trace_from_str(&text).expect("round trip"), trace);
    }

    #[test]
    fn sel_codec_round_trips_and_keeps_bench_bytes() {
        // Historical Benchmark encoding is pinned byte-for-byte.
        assert_eq!(
            sel_to_json(&WorkloadSel::from(Benchmark::LargeTx { elements: 64 })).to_line(),
            "{\"kind\":\"LT\",\"elements\":64}"
        );
        assert_eq!(
            sel_to_json(&WorkloadSel::from(Benchmark::Queue)).to_line(),
            "{\"kind\":\"QE\"}"
        );
        for trace in [sample_trace(), gen_trace()] {
            let j = sel_to_json(&trace.sel);
            assert_eq!(sel_from_json(&j), Some(trace.sel));
        }
    }

    #[test]
    fn contended_selector_round_trips() {
        for kind in ContendedKind::ALL {
            for early_release in [false, true] {
                let sel = WorkloadSel::Contended(ContendedSpec { kind, early_release });
                assert_eq!(sel_from_json(&sel_to_json(&sel)), Some(sel));
            }
        }
        assert_eq!(
            sel_to_json(&WorkloadSel::Contended(ContendedSpec {
                kind: ContendedKind::MpmcQueue,
                early_release: false,
            }))
            .to_line(),
            "{\"kind\":\"CONTENDED\",\"struct\":\"MQ\",\"early_release\":false}"
        );
        // Unknown structure abbreviations are rejected, not defaulted.
        let bad = Json::obj([
            ("kind", Json::str("CONTENDED")),
            ("struct", Json::str("??")),
            ("early_release", Json::Bool(false)),
        ]);
        assert_eq!(sel_from_json(&bad), None);
    }
}
