//! The composable workload generator: a [`GenSpec`] describes an op
//! mix, key skew, transaction size, and working set over one of the
//! registered structure kinds; [`generate_gen_with`] turns it into the
//! same scheme-independent `Program` + `WordImage` shape the Table 2
//! workloads produce, via the shared `workloads::spec` emission path.
//!
//! Specs are all-integer (skew is expressed in milli-theta) so their
//! `StableHash` identity and JSON encoding are trivially deterministic
//! across platforms and build environments.

use crate::rng::{SplitMix64, Zipfian};
use proteus_core::pmem::WordImage;
use proteus_core::program::Program;
use proteus_types::{FieldHasher, StableHash, StableHasher, ThreadId};
use proteus_workloads::btree::BTree;
use proteus_workloads::hashmap::HashMapStruct;
use proteus_workloads::queue::Queue;
use proteus_workloads::{
    emit_op_group, lock_base_for, run_op, thread_alloc, DirectMem, GeneratedWorkload, NodeAlloc,
    OpRecorder, OpSpec, Structures, WorkloadParams,
};

/// The structure kind a generated workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenStructure {
    /// Chained hash maps with a fixed bucket count.
    HashMap {
        /// Buckets per map (Table 2's HM uses 256).
        buckets: u64,
    },
    /// B-trees (the only structure supporting scans).
    BTree,
    /// Linked-list queues (append/drain streams).
    Queue,
}

impl GenStructure {
    fn kind_tag(&self) -> &'static str {
        match self {
            GenStructure::HashMap { .. } => "HM",
            GenStructure::BTree => "BT",
            GenStructure::Queue => "QE",
        }
    }
}

impl StableHash for GenStructure {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("GenStructure");
        f.field("kind", self.kind_tag());
        if let GenStructure::HashMap { buckets } = self {
            f.field("buckets", buckets);
        }
        h.write_u64(f.finish());
    }
}

/// Operation mix in percent; the five knobs must sum to 100.
///
/// Which knobs are meaningful depends on the structure: maps take
/// read/insert/delete, B-trees add scan, queues take insert (enqueue),
/// delete (dequeue), and drain. [`GenSpec::validate`] enforces this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Point lookups (read-only).
    pub read_pct: u8,
    /// Inserts/updates (enqueues for queues).
    pub insert_pct: u8,
    /// Deletes (dequeues for queues).
    pub delete_pct: u8,
    /// Range scans of [`GenSpec::scan_len`] keys (B-tree only).
    pub scan_pct: u8,
    /// Batch dequeues of [`GenSpec::drain_batch`] nodes (queue only).
    pub drain_pct: u8,
}

impl OpMix {
    fn total(&self) -> u32 {
        self.read_pct as u32
            + self.insert_pct as u32
            + self.delete_pct as u32
            + self.scan_pct as u32
            + self.drain_pct as u32
    }
}

impl StableHash for OpMix {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("OpMix");
        f.field("read", &(self.read_pct as u64))
            .field("insert", &(self.insert_pct as u64))
            .field("delete", &(self.delete_pct as u64))
            .field("scan", &(self.scan_pct as u64))
            .field("drain", &(self.drain_pct as u64));
        h.write_u64(f.finish());
    }
}

/// Key-popularity skew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Skew {
    /// Every key equally likely.
    Uniform,
    /// YCSB-style zipfian with `theta = theta_milli / 1000` (YCSB's
    /// default is 990). Expressed in milli-units so the spec stays
    /// all-integer.
    Zipfian {
        /// Skew parameter ×1000, in `1..=999`.
        theta_milli: u32,
    },
}

impl StableHash for Skew {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("Skew");
        match self {
            Skew::Uniform => {
                f.field("kind", "uniform");
            }
            Skew::Zipfian { theta_milli } => {
                f.field("kind", "zipfian").field("theta_milli", &(*theta_milli as u64));
            }
        }
        h.write_u64(f.finish());
    }
}

/// A reproducible generated-workload spec. Together with
/// [`WorkloadParams`] (threads, init/sim op counts, seed) it fully
/// determines the op streams, and its `StableHash` feeds both the
/// experiment spec hash and the derived workload seed.
#[derive(Debug, Clone, PartialEq)]
pub struct GenSpec {
    /// Short name used in CLI, workload labels, and trace headers.
    pub name: String,
    /// Structure kind.
    pub structure: GenStructure,
    /// Structures owned per thread.
    pub per_thread: usize,
    /// Key universe; 0 derives `max(init_ops, 16) * 2` like Table 2.
    pub key_range: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Key skew.
    pub skew: Skew,
    /// Keys touched per scan op.
    pub scan_len: u32,
    /// Ops batched into one durable transaction (Table 2 uses 1).
    pub tx_ops: u32,
    /// Nodes dequeued per drain op.
    pub drain_batch: u32,
}

impl StableHash for GenSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        let mut f = FieldHasher::new("GenSpec");
        f.field("name", self.name.as_str())
            .field("structure", &self.structure)
            .field("per_thread", &self.per_thread)
            .field("key_range", &self.key_range)
            .field("mix", &self.mix)
            .field("skew", &self.skew)
            .field("scan_len", &(self.scan_len as u64))
            .field("tx_ops", &(self.tx_ops as u64))
            .field("drain_batch", &(self.drain_batch as u64));
        h.write_u64(f.finish());
    }
}

impl GenSpec {
    /// Checks internal consistency; the error string names the knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() || self.name.contains(char::is_whitespace) {
            return Err("gen spec name must be non-empty without whitespace".into());
        }
        if self.per_thread == 0 {
            return Err("per_thread must be >= 1".into());
        }
        if self.tx_ops == 0 {
            return Err("tx_ops must be >= 1".into());
        }
        if self.mix.total() != 100 {
            return Err(format!("op mix must sum to 100, got {}", self.mix.total()));
        }
        if self.mix.scan_pct > 0 && self.scan_len == 0 {
            return Err("scan_pct > 0 requires scan_len >= 1".into());
        }
        if self.mix.drain_pct > 0 && self.drain_batch == 0 {
            return Err("drain_pct > 0 requires drain_batch >= 1".into());
        }
        match self.structure {
            GenStructure::HashMap { buckets } => {
                if buckets == 0 {
                    return Err("hashmap needs >= 1 bucket".into());
                }
                if self.mix.scan_pct > 0 || self.mix.drain_pct > 0 {
                    return Err("hashmap supports read/insert/delete only".into());
                }
            }
            GenStructure::BTree => {
                if self.mix.drain_pct > 0 {
                    return Err("btree supports read/insert/delete/scan only".into());
                }
            }
            GenStructure::Queue => {
                if self.mix.read_pct > 0 || self.mix.scan_pct > 0 {
                    return Err("queue supports insert/delete/drain only".into());
                }
            }
        }
        if let Skew::Zipfian { theta_milli } = self.skew {
            if theta_milli == 0 || theta_milli >= 1000 {
                return Err("zipfian theta_milli must be in 1..=999".into());
            }
        }
        Ok(())
    }

    /// The effective key universe for `params`.
    pub fn effective_key_range(&self, params: &WorkloadParams) -> u64 {
        if self.key_range > 0 {
            self.key_range
        } else {
            (params.init_ops as u64).max(16) * 2
        }
    }
}

/// Creates one thread's generated structures in `image` via `alloc`
/// (the replayer calls this too, so traces rebuild byte-identically).
pub(crate) fn build_gen_structures(
    spec: &GenSpec,
    image: &mut WordImage,
    alloc: &mut NodeAlloc,
) -> Structures {
    let mut m = DirectMem::new(image);
    match spec.structure {
        GenStructure::HashMap { buckets } => Structures::Maps(
            (0..spec.per_thread).map(|_| HashMapStruct::create(&mut m, alloc, buckets)).collect(),
        ),
        GenStructure::BTree => {
            Structures::BTrees((0..spec.per_thread).map(|_| BTree::create(&mut m, alloc)).collect())
        }
        GenStructure::Queue => {
            Structures::Queues((0..spec.per_thread).map(|_| Queue::create(&mut m, alloc)).collect())
        }
    }
}

/// Draws one key according to the spec's skew.
fn draw_key(zipf: Option<&Zipfian>, key_range: u64, rng: &mut SplitMix64) -> u64 {
    match zipf {
        Some(z) => z.draw(rng),
        None => rng.below(key_range),
    }
}

/// Draws one load-phase op (uniform keys, structure-appropriate
/// insert — YCSB's load phase).
fn draw_init_op(spec: &GenSpec, key_range: u64, rng: &mut SplitMix64) -> OpSpec {
    let s = rng.below(spec.per_thread as u64) as usize;
    match spec.structure {
        GenStructure::HashMap { .. } => {
            let key = rng.below(key_range);
            OpSpec::MapInsert { s, key, value: rng.next_u64() >> 32 }
        }
        GenStructure::BTree => {
            let key = rng.below(key_range);
            OpSpec::TreeInsert { s, key, value: rng.next_u64() >> 32 }
        }
        GenStructure::Queue => OpSpec::Enqueue { s, value: (rng.next_u64() >> 32) + 1 },
    }
}

/// Draws one run-phase op from the mix.
fn draw_sim_op(
    spec: &GenSpec,
    key_range: u64,
    zipf: Option<&Zipfian>,
    rng: &mut SplitMix64,
) -> OpSpec {
    let s = rng.below(spec.per_thread as u64) as usize;
    let roll = rng.below(100) as u32;
    let m = &spec.mix;
    // Cumulative thresholds in declaration order: read, insert,
    // delete, scan, drain.
    let (t_read, t_insert, t_delete, t_scan) = (
        m.read_pct as u32,
        m.read_pct as u32 + m.insert_pct as u32,
        m.read_pct as u32 + m.insert_pct as u32 + m.delete_pct as u32,
        m.read_pct as u32 + m.insert_pct as u32 + m.delete_pct as u32 + m.scan_pct as u32,
    );
    match spec.structure {
        GenStructure::HashMap { .. } => {
            let key = draw_key(zipf, key_range, rng);
            if roll < t_read {
                OpSpec::MapLookup { s, key }
            } else if roll < t_insert {
                OpSpec::MapInsert { s, key, value: rng.next_u64() >> 32 }
            } else {
                OpSpec::MapDelete { s, key }
            }
        }
        GenStructure::BTree => {
            let key = draw_key(zipf, key_range, rng);
            if roll < t_read {
                OpSpec::TreeLookup { s, key }
            } else if roll < t_insert {
                OpSpec::TreeInsert { s, key, value: rng.next_u64() >> 32 }
            } else if roll < t_delete {
                OpSpec::TreeDelete { s, key }
            } else {
                OpSpec::TreeScan { s, key, len: spec.scan_len }
            }
        }
        GenStructure::Queue => {
            if roll < t_insert {
                OpSpec::Enqueue { s, value: (rng.next_u64() >> 32) + 1 }
            } else if roll < t_scan {
                OpSpec::Dequeue { s }
            } else {
                OpSpec::QueueDrain { s, n: spec.drain_batch }
            }
        }
    }
}

/// Generates a workload from `spec`, reporting every drawn op to
/// `rec`. The emission path (`emit_op_group`) is shared with Table 2
/// generation, so the crash oracle's per-thread discipline holds.
///
/// # Panics
///
/// Panics if `spec` fails [`GenSpec::validate`] or a thread's arena is
/// exhausted — same contract as `workloads::generate`.
pub fn generate_gen_with(
    spec: &GenSpec,
    params: &WorkloadParams,
    rec: &mut impl OpRecorder,
) -> GeneratedWorkload {
    assert!(params.threads > 0, "need at least one thread");
    if let Err(e) = spec.validate() {
        panic!("invalid gen spec {}: {e}", spec.name);
    }
    let key_range = spec.effective_key_range(params);
    let zipf = match spec.skew {
        Skew::Uniform => None,
        Skew::Zipfian { theta_milli } => Some(Zipfian::new(key_range, theta_milli as f64 / 1000.0)),
    };

    let mut image = WordImage::new();
    let mut programs = Vec::with_capacity(params.threads);
    for t in 0..params.threads {
        let mut alloc = thread_alloc(t);
        let mut rng = SplitMix64::new(params.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

        let structures = build_gen_structures(spec, &mut image, &mut alloc);

        for _ in 0..params.init_ops {
            let op = draw_init_op(spec, key_range, &mut rng);
            rec.record_init(t, op);
            let mut m = DirectMem::new(&mut image);
            run_op(&mut m, &mut alloc, &structures, op);
        }

        let lock_base = lock_base_for(t);
        let mut program = Program::new(ThreadId::new(t as u32));
        let mut remaining = params.sim_ops;
        let mut group = Vec::with_capacity(spec.tx_ops as usize);
        while remaining > 0 {
            let k = remaining.min(spec.tx_ops as usize);
            group.clear();
            for _ in 0..k {
                group.push(draw_sim_op(spec, key_range, zipf.as_ref(), &mut rng));
            }
            rec.record_group(t, &group);
            emit_op_group(&mut image, &mut program, &mut alloc, &structures, &group, lock_base);
            remaining -= k;
        }
        program.validate().expect("generated program must validate");
        programs.push(program);
    }

    GeneratedWorkload {
        name: format!("{}x{}", spec.name, params.threads),
        programs,
        initial_image: image,
        sharing: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::stable_hash_value;

    pub(crate) fn tiny_spec() -> GenSpec {
        GenSpec {
            name: "tiny-kv".into(),
            structure: GenStructure::HashMap { buckets: 16 },
            per_thread: 2,
            key_range: 0,
            mix: OpMix { read_pct: 40, insert_pct: 40, delete_pct: 20, scan_pct: 0, drain_pct: 0 },
            skew: Skew::Uniform,
            scan_len: 0,
            tx_ops: 1,
            drain_batch: 0,
        }
    }

    fn params() -> WorkloadParams {
        WorkloadParams { threads: 2, init_ops: 100, sim_ops: 40, seed: 77 }
    }

    #[test]
    fn generation_is_deterministic() {
        let (s, p) = (tiny_spec(), params());
        let a = generate_gen_with(&s, &p, &mut ());
        let b = generate_gen_with(&s, &p, &mut ());
        assert_eq!(a.programs, b.programs);
        assert_eq!(a.initial_image, b.initial_image);
    }

    #[test]
    fn every_structure_kind_generates_valid_programs() {
        let specs = [
            tiny_spec(),
            GenSpec {
                name: "tiny-scan".into(),
                structure: GenStructure::BTree,
                mix: OpMix {
                    read_pct: 10,
                    insert_pct: 20,
                    delete_pct: 0,
                    scan_pct: 70,
                    drain_pct: 0,
                },
                scan_len: 4,
                ..tiny_spec()
            },
            GenSpec {
                name: "tiny-stream".into(),
                structure: GenStructure::Queue,
                mix: OpMix {
                    read_pct: 0,
                    insert_pct: 80,
                    delete_pct: 10,
                    scan_pct: 0,
                    drain_pct: 10,
                },
                drain_batch: 3,
                tx_ops: 2,
                ..tiny_spec()
            },
        ];
        for s in specs {
            let w = generate_gen_with(&s, &params(), &mut ());
            assert_eq!(w.programs.len(), 2, "{}", s.name);
            assert!(w.total_transactions() > 0, "{}", s.name);
            for p in &w.programs {
                p.validate().unwrap();
            }
        }
    }

    #[test]
    fn tx_ops_batches_transactions() {
        // Write-only mix: every group is durable, so tx counts are
        // exact (read-only groups would emit untransacted).
        let mut write_only = tiny_spec();
        write_only.mix =
            OpMix { read_pct: 0, insert_pct: 70, delete_pct: 30, scan_pct: 0, drain_pct: 0 };
        let mut batched = write_only.clone();
        batched.tx_ops = 4;
        let p = params();
        let single = generate_gen_with(&write_only, &p, &mut ());
        let grouped = generate_gen_with(&batched, &p, &mut ());
        // 40 sim ops: 40 txs single vs 10 txs batched (per thread).
        assert_eq!(single.total_transactions(), 80);
        assert_eq!(grouped.total_transactions(), 20);
    }

    #[test]
    fn readonly_mix_emits_no_transactions() {
        let mut ro = tiny_spec();
        ro.mix = OpMix { read_pct: 100, insert_pct: 0, delete_pct: 0, scan_pct: 0, drain_pct: 0 };
        let w = generate_gen_with(&ro, &params(), &mut ());
        assert_eq!(w.total_transactions(), 0);
        for p in &w.programs {
            assert!(!p.ops.is_empty());
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut s = tiny_spec();
        s.mix.read_pct = 41; // sums to 101
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.structure = GenStructure::Queue; // read_pct > 0 invalid on queue
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.skew = Skew::Zipfian { theta_milli: 1000 };
        assert!(s.validate().is_err());
        let mut s = tiny_spec();
        s.tx_ops = 0;
        assert!(s.validate().is_err());
        assert!(tiny_spec().validate().is_ok());
    }

    #[test]
    fn spec_hash_separates_every_knob() {
        let base = tiny_spec();
        let mut variants = vec![base.clone()];
        let mut v = base.clone();
        v.name = "other".into();
        variants.push(v);
        let mut v = base.clone();
        v.structure = GenStructure::HashMap { buckets: 17 };
        variants.push(v);
        let mut v = base.clone();
        v.per_thread = 3;
        variants.push(v);
        let mut v = base.clone();
        v.key_range = 1024;
        variants.push(v);
        let mut v = base.clone();
        v.mix.read_pct = 41;
        variants.push(v);
        let mut v = base.clone();
        v.skew = Skew::Zipfian { theta_milli: 990 };
        variants.push(v);
        let mut v = base.clone();
        v.scan_len = 9;
        variants.push(v);
        let mut v = base.clone();
        v.tx_ops = 2;
        variants.push(v);
        let mut v = base.clone();
        v.drain_batch = 5;
        variants.push(v);
        let hashes: std::collections::HashSet<u64> =
            variants.iter().map(stable_hash_value).collect();
        assert_eq!(hashes.len(), variants.len(), "knob not separated in GenSpec hash");
    }

    #[test]
    fn zipfian_skews_generated_keys() {
        let mut s = tiny_spec();
        s.key_range = 10_000;
        s.skew = Skew::Zipfian { theta_milli: 990 };
        let p = WorkloadParams { threads: 1, init_ops: 50, sim_ops: 400, seed: 5 };
        struct KeyCollector(Vec<u64>);
        impl OpRecorder for KeyCollector {
            fn record_init(&mut self, _t: usize, _op: OpSpec) {}
            fn record_group(&mut self, _t: usize, ops: &[OpSpec]) {
                for op in ops {
                    match *op {
                        OpSpec::MapLookup { key, .. }
                        | OpSpec::MapInsert { key, .. }
                        | OpSpec::MapDelete { key, .. } => self.0.push(key),
                        _ => {}
                    }
                }
            }
        }
        let mut keys = KeyCollector(Vec::new());
        generate_gen_with(&s, &p, &mut keys);
        assert_eq!(keys.0.len(), 400);
        let hot = keys.0.iter().filter(|&&k| k < 100).count();
        assert!(hot > 80, "zipfian head too cold: {hot}/400 in top 1%");
    }
}
