//! The workload roster: one [`WorkloadDescriptor`] row per runnable
//! workload — the six Table 2 benchmarks plus the generated presets —
//! mirroring the scheme registry pattern (`core::scheme::registry`).
//! CLI name resolution, figure/bench/crashsweep rosters, and docs
//! tables all derive from this table, so adding a workload is one
//! descriptor row (plus a `GenSpec`, for generated ones).

use crate::gen::{GenSpec, GenStructure, OpMix, Skew};
use crate::sel::WorkloadSel;
use proteus_workloads::{Benchmark, ContendedKind, ContendedSpec, WorkloadParams};

/// One roster row.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadDescriptor {
    /// CLI name (`reproduce gen --workload <cli_name>`, shootout args).
    pub cli_name: &'static str,
    /// One-line description for roster listings and docs tables.
    pub blurb: &'static str,
    /// Builds the selector (a `fn` so the table stays `'static`).
    pub make: fn() -> WorkloadSel,
    /// Full-scale per-thread `(init_ops, sim_ops)`; scaled by the
    /// experiment scale exactly like Table 2's op counts.
    pub base_ops: (usize, usize),
    /// Paper Table 2 row (participates in the paper figures).
    pub table2: bool,
    /// Generated preset (listed by `reproduce gen`).
    pub preset: bool,
    /// Member of the crashsweep roster.
    pub crash_roster: bool,
    /// Member of the `reproduce bench` / `tools/bench.sh` basket.
    pub bench_basket: bool,
    /// Contended shared-structure workload (inter-core sharing; member
    /// of the `reproduce contention` roster).
    pub contended: bool,
}

impl WorkloadDescriptor {
    /// The selector this row describes.
    pub fn sel(&self) -> WorkloadSel {
        (self.make)()
    }

    /// Display label: the benchmark abbreviation or preset name.
    pub fn label(&self) -> String {
        self.sel().abbrev().to_string()
    }

    /// Workload parameters at `scale`, with the structurally derived
    /// seed. For Table 2 rows this is exactly
    /// `WorkloadParams::table2(..).with_derived_seed(..)`; presets
    /// scale their own base op counts the same way.
    pub fn params(&self, threads: usize, scale: f64) -> WorkloadParams {
        let sel = self.sel();
        match &sel {
            WorkloadSel::Bench(b) => {
                WorkloadParams::table2(*b, threads, scale).with_derived_seed(*b)
            }
            WorkloadSel::Gen(_) | WorkloadSel::Contended(_) => {
                let (init, sim) = self.base_ops;
                sel.derived_params(WorkloadParams {
                    // Contended generation needs at least two threads —
                    // one core cannot contend with itself.
                    threads: if self.contended { threads.max(2) } else { threads },
                    init_ops: ((init as f64 * scale) as usize).max(1),
                    sim_ops: ((sim as f64 * scale) as usize).max(1),
                    seed: 0,
                })
            }
        }
    }
}

fn contended_mq() -> WorkloadSel {
    WorkloadSel::Contended(ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: false })
}

fn contended_ch() -> WorkloadSel {
    WorkloadSel::Contended(ContendedSpec {
        kind: ContendedKind::ContendedHashMap,
        early_release: false,
    })
}

fn contended_lb() -> WorkloadSel {
    WorkloadSel::Contended(ContendedSpec { kind: ContendedKind::LockedBTree, early_release: false })
}

fn ycsb_a() -> WorkloadSel {
    WorkloadSel::Gen(GenSpec {
        name: "ycsb-a".into(),
        structure: GenStructure::HashMap { buckets: 256 },
        per_thread: 4,
        key_range: 0,
        mix: OpMix { read_pct: 50, insert_pct: 50, delete_pct: 0, scan_pct: 0, drain_pct: 0 },
        skew: Skew::Zipfian { theta_milli: 990 },
        scan_len: 0,
        tx_ops: 1,
        drain_batch: 0,
    })
}

fn ycsb_b() -> WorkloadSel {
    WorkloadSel::Gen(GenSpec {
        name: "ycsb-b".into(),
        structure: GenStructure::BTree,
        per_thread: 4,
        key_range: 0,
        mix: OpMix { read_pct: 95, insert_pct: 5, delete_pct: 0, scan_pct: 0, drain_pct: 0 },
        skew: Skew::Zipfian { theta_milli: 990 },
        scan_len: 0,
        tx_ops: 1,
        drain_batch: 0,
    })
}

fn ycsb_c() -> WorkloadSel {
    WorkloadSel::Gen(GenSpec {
        name: "ycsb-c".into(),
        structure: GenStructure::HashMap { buckets: 256 },
        per_thread: 4,
        key_range: 0,
        mix: OpMix { read_pct: 100, insert_pct: 0, delete_pct: 0, scan_pct: 0, drain_pct: 0 },
        skew: Skew::Zipfian { theta_milli: 990 },
        scan_len: 0,
        tx_ops: 1,
        drain_batch: 0,
    })
}

fn scan_heavy() -> WorkloadSel {
    WorkloadSel::Gen(GenSpec {
        name: "scan-heavy".into(),
        structure: GenStructure::BTree,
        per_thread: 2,
        key_range: 0,
        mix: OpMix { read_pct: 5, insert_pct: 15, delete_pct: 0, scan_pct: 80, drain_pct: 0 },
        skew: Skew::Uniform,
        scan_len: 16,
        tx_ops: 1,
        drain_batch: 0,
    })
}

fn indexer() -> WorkloadSel {
    WorkloadSel::Gen(GenSpec {
        name: "indexer".into(),
        structure: GenStructure::Queue,
        per_thread: 2,
        key_range: 0,
        mix: OpMix { read_pct: 0, insert_pct: 92, delete_pct: 0, scan_pct: 0, drain_pct: 8 },
        skew: Skew::Uniform,
        scan_len: 0,
        tx_ops: 4,
        drain_batch: 12,
    })
}

fn million_key() -> WorkloadSel {
    WorkloadSel::Gen(GenSpec {
        name: "million-key".into(),
        structure: GenStructure::HashMap { buckets: 4096 },
        per_thread: 1,
        key_range: 1 << 20,
        mix: OpMix { read_pct: 40, insert_pct: 45, delete_pct: 15, scan_pct: 0, drain_pct: 0 },
        skew: Skew::Zipfian { theta_milli: 990 },
        scan_len: 0,
        tx_ops: 1,
        drain_batch: 0,
    })
}

/// The full roster. Table 2 rows keep their paper op counts in
/// `base_ops` for listing purposes (their `params()` goes through
/// `WorkloadParams::table2` as always). The crashsweep roster keeps
/// the historical QE/HM/RT trio and adds the two most write-heavy
/// presets; the bench basket keeps QE/HM/SS and adds ycsb-a plus the
/// three contended rows (MQ/CH/LB), which also form the `reproduce
/// contention` roster.
static ROSTER: [WorkloadDescriptor; 15] = [
    WorkloadDescriptor {
        cli_name: "qe",
        blurb: "enqueue/dequeue in 8 queues",
        make: || WorkloadSel::Bench(Benchmark::Queue),
        base_ops: (20_000, 50_000),
        table2: true,
        preset: false,
        crash_roster: true,
        bench_basket: true,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "hm",
        blurb: "insert/delete in 16 hash maps",
        make: || WorkloadSel::Bench(Benchmark::HashMap),
        base_ops: (100_000, 20_000),
        table2: true,
        preset: false,
        crash_roster: true,
        bench_basket: true,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "ss",
        blurb: "swap 256 B strings in an array",
        make: || WorkloadSel::Bench(Benchmark::StringSwap),
        base_ops: (20_000, 50_000),
        table2: true,
        preset: false,
        crash_roster: false,
        bench_basket: true,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "at",
        blurb: "insert/delete in 16 AVL trees",
        make: || WorkloadSel::Bench(Benchmark::AvlTree),
        base_ops: (100_000, 10_000),
        table2: true,
        preset: false,
        crash_roster: false,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "bt",
        blurb: "insert/delete in 16 B-trees",
        make: || WorkloadSel::Bench(Benchmark::BTree),
        base_ops: (100_000, 10_000),
        table2: true,
        preset: false,
        crash_roster: false,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "rt",
        blurb: "insert/delete in 16 RB trees",
        make: || WorkloadSel::Bench(Benchmark::RbTree),
        base_ops: (100_000, 10_000),
        table2: true,
        preset: false,
        crash_roster: true,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "ycsb-a",
        blurb: "YCSB-A: 50% read / 50% update, zipfian, hash maps",
        make: ycsb_a,
        base_ops: (50_000, 20_000),
        table2: false,
        preset: true,
        crash_roster: true,
        bench_basket: true,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "ycsb-b",
        blurb: "YCSB-B: 95% read / 5% update, zipfian, B-trees",
        make: ycsb_b,
        base_ops: (50_000, 10_000),
        table2: false,
        preset: true,
        crash_roster: false,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "ycsb-c",
        blurb: "YCSB-C: 100% read, zipfian, hash maps",
        make: ycsb_c,
        base_ops: (50_000, 20_000),
        table2: false,
        preset: true,
        crash_roster: false,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "scan-heavy",
        blurb: "analytics: 80% 16-key scans over B-trees",
        make: scan_heavy,
        base_ops: (50_000, 5_000),
        table2: false,
        preset: true,
        crash_roster: false,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "indexer",
        blurb: "append/checkpoint stream: 4-op append txs + batch drains",
        make: indexer,
        base_ops: (10_000, 30_000),
        table2: false,
        preset: true,
        crash_roster: true,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "million-key",
        blurb: "2^20-key zipfian heap stressing LLT/LPQ capacity",
        make: million_key,
        base_ops: (200_000, 5_000),
        table2: false,
        preset: true,
        crash_roster: false,
        bench_basket: false,
        contended: false,
    },
    WorkloadDescriptor {
        cli_name: "mq",
        blurb: "contended: one MPMC queue shared by every thread (ticket lock)",
        make: contended_mq,
        base_ops: (2_000, 1_000),
        table2: false,
        preset: false,
        crash_roster: false,
        bench_basket: true,
        contended: true,
    },
    WorkloadDescriptor {
        cli_name: "ch",
        blurb: "contended: two hot chained hash maps behind ticket locks",
        make: contended_ch,
        base_ops: (2_000, 1_000),
        table2: false,
        preset: false,
        crash_roster: false,
        bench_basket: true,
        contended: true,
    },
    WorkloadDescriptor {
        cli_name: "lb",
        blurb: "contended: two B-trees with hand-over-hand root/write locks",
        make: contended_lb,
        base_ops: (2_000, 1_000),
        table2: false,
        preset: false,
        crash_roster: false,
        bench_basket: true,
        contended: true,
    },
];

/// Every registered workload, Table 2 first, then presets.
pub fn all() -> &'static [WorkloadDescriptor] {
    &ROSTER
}

/// Resolves a CLI name (case-insensitive); also accepts the paper
/// abbreviation (`QE`) for Table 2 rows.
pub fn by_cli_name(name: &str) -> Option<&'static WorkloadDescriptor> {
    let lower = name.to_ascii_lowercase();
    ROSTER.iter().find(|d| d.cli_name == lower)
}

/// The Table 2 rows, in paper order.
pub fn table2() -> impl Iterator<Item = &'static WorkloadDescriptor> {
    ROSTER.iter().filter(|d| d.table2)
}

/// The generated presets.
pub fn presets() -> impl Iterator<Item = &'static WorkloadDescriptor> {
    ROSTER.iter().filter(|d| d.preset)
}

/// The crashsweep roster (write-heavy, structurally diverse rows).
pub fn crash_roster() -> impl Iterator<Item = &'static WorkloadDescriptor> {
    ROSTER.iter().filter(|d| d.crash_roster)
}

/// The perf-bench basket rows.
pub fn bench_basket() -> impl Iterator<Item = &'static WorkloadDescriptor> {
    ROSTER.iter().filter(|d| d.bench_basket)
}

/// The contended shared-structure rows (`reproduce contention` roster).
pub fn contended() -> impl Iterator<Item = &'static WorkloadDescriptor> {
    ROSTER.iter().filter(|d| d.contended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::stable_hash_value;
    use std::collections::HashSet;

    #[test]
    fn roster_covers_table2_in_paper_order() {
        let t2: Vec<String> = table2().map(|d| d.label()).collect();
        let expect: Vec<&str> = Benchmark::TABLE2.iter().map(|b| b.abbrev()).collect();
        assert_eq!(t2, expect);
        // base_ops on Table 2 rows must mirror the paper's counts.
        for (d, b) in table2().zip(Benchmark::TABLE2) {
            assert_eq!(d.base_ops, b.table2_ops(), "{}", d.cli_name);
        }
    }

    #[test]
    fn cli_names_unique_and_resolvable() {
        let names: HashSet<&str> = ROSTER.iter().map(|d| d.cli_name).collect();
        assert_eq!(names.len(), ROSTER.len());
        for d in all() {
            assert!(std::ptr::eq(by_cli_name(d.cli_name).unwrap(), d));
            assert!(std::ptr::eq(by_cli_name(&d.cli_name.to_uppercase()).unwrap(), d));
        }
        assert!(by_cli_name("nope").is_none());
    }

    #[test]
    fn every_preset_spec_validates() {
        for d in presets() {
            d.sel().validate().unwrap_or_else(|e| panic!("{}: {e}", d.cli_name));
        }
        assert_eq!(presets().count(), 6);
    }

    #[test]
    fn preset_names_match_cli_names() {
        for d in presets() {
            assert_eq!(d.label(), d.cli_name, "preset label must equal its CLI name");
        }
    }

    #[test]
    fn rosters_are_nonempty_and_subsets() {
        assert!(crash_roster().count() >= 5);
        assert!(bench_basket().count() >= 4);
        // At least two presets in the crash roster (acceptance: preset
        // crashsweep coverage).
        assert!(crash_roster().filter(|d| d.preset).count() >= 2);
        assert!(bench_basket().any(|d| d.preset));
    }

    #[test]
    fn selector_hashes_distinct_across_roster() {
        let hashes: HashSet<u64> = ROSTER.iter().map(|d| stable_hash_value(&d.sel())).collect();
        assert_eq!(hashes.len(), ROSTER.len());
    }

    #[test]
    fn contended_roster_covers_every_kind() {
        use proteus_workloads::ContendedKind;
        let labels: Vec<String> = contended().map(|d| d.label()).collect();
        let expect: Vec<&str> = ContendedKind::ALL.iter().map(|k| k.abbrev()).collect();
        assert_eq!(labels, expect);
        for d in contended() {
            // Never the fault-injection variant, and always >= 2 threads.
            let WorkloadSel::Contended(c) = d.sel() else {
                panic!("{}: contended row with a non-contended selector", d.cli_name)
            };
            assert!(!c.early_release, "{}", d.cli_name);
            assert!(d.bench_basket, "{}: contended rows ride the bench basket", d.cli_name);
            assert!(!d.preset && !d.table2 && !d.crash_roster, "{}", d.cli_name);
            let p = d.params(1, 0.1);
            assert_eq!(p.threads, 2, "{}: threads must be clamped to 2", d.cli_name);
            let w = d.sel().generate(&p);
            assert!(w.sharing.is_some(), "{}", d.cli_name);
        }
        // The contended axis must not disturb the preset listing.
        assert_eq!(presets().count(), 6);
    }

    #[test]
    fn params_scale_and_derive_seeds() {
        for d in all() {
            let p = d.params(2, 0.1);
            assert_eq!(p.threads, 2);
            assert!(p.init_ops >= 1 && p.sim_ops >= 1);
            assert_ne!(p.seed, 0, "{}: derived seed missing", d.cli_name);
            // Derivation is deterministic.
            assert_eq!(p, d.params(2, 0.1));
            // Scale changes the shape, and thereby the seed.
            assert_ne!(p.seed, d.params(2, 0.05).seed, "{}", d.cli_name);
        }
    }

    #[test]
    fn table2_params_match_experiment_scale_formula() {
        for d in table2() {
            let WorkloadSel::Bench(b) = d.sel() else { unreachable!() };
            let expect = WorkloadParams::table2(b, 4, 0.05).with_derived_seed(b);
            assert_eq!(d.params(4, 0.05), expect, "{}", d.cli_name);
        }
    }
}
