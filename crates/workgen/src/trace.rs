//! The versioned op-trace: a recorded per-thread operation stream plus
//! the header needed to replay it byte-identically.
//!
//! A trace captures *inputs* (structure setup + op streams), not the
//! emitted `Program` — replay rebuilds the structures from the header's
//! selector and re-emits every group through the same
//! `workloads::spec::emit_op_group` path generation used, so the
//! replayed `Program` + `WordImage` are equal by construction and every
//! downstream consumer (runner, crash engine, tracer, service) runs a
//! trace exactly as it runs a generated workload.

use crate::gen::build_gen_structures;
use crate::sel::WorkloadSel;
use proteus_core::pmem::WordImage;
use proteus_core::program::Program;
use proteus_types::{SimError, StableHasher, ThreadId};
use proteus_workloads::{
    build_thread_structures, emit_op_group, lock_base_for, run_op, thread_alloc, DirectMem,
    GeneratedWorkload, NodeAlloc, OpRecorder, OpSpec, Structures, WorkloadParams,
};

/// Current on-disk trace format version (see `codec`).
pub const TRACE_VERSION: u64 = 1;

/// One thread's recorded op streams.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ThreadOps {
    /// Fast-forwarded initialisation ops, in draw order.
    pub init: Vec<OpSpec>,
    /// Durable op groups (each one emitted transaction), in order.
    pub groups: Vec<Vec<OpSpec>>,
}

/// A recorded workload: selector + parameters + per-thread op streams.
#[derive(Debug, Clone, PartialEq)]
pub struct OpTrace {
    /// The selector that drew the streams (needed to rebuild the
    /// initial structures on replay).
    pub sel: WorkloadSel,
    /// Generation parameters the streams were drawn under.
    pub params: WorkloadParams,
    /// One entry per thread.
    pub threads: Vec<ThreadOps>,
}

fn hash_op(h: &mut StableHasher, op: &OpSpec) {
    match *op {
        OpSpec::Enqueue { s, value } => {
            h.write_u8(1);
            h.write_u64(s as u64);
            h.write_u64(value);
        }
        OpSpec::Dequeue { s } => {
            h.write_u8(2);
            h.write_u64(s as u64);
        }
        OpSpec::MapInsert { s, key, value } => {
            h.write_u8(3);
            h.write_u64(s as u64);
            h.write_u64(key);
            h.write_u64(value);
        }
        OpSpec::MapDelete { s, key } => {
            h.write_u8(4);
            h.write_u64(s as u64);
            h.write_u64(key);
        }
        OpSpec::Swap { i, j } => {
            h.write_u8(5);
            h.write_u64(i);
            h.write_u64(j);
        }
        OpSpec::TreeInsert { s, key, value } => {
            h.write_u8(6);
            h.write_u64(s as u64);
            h.write_u64(key);
            h.write_u64(value);
        }
        OpSpec::TreeDelete { s, key } => {
            h.write_u8(7);
            h.write_u64(s as u64);
            h.write_u64(key);
        }
        OpSpec::BigUpdate { node, base } => {
            h.write_u8(8);
            h.write_u64(node);
            h.write_u64(base);
        }
        OpSpec::MapLookup { s, key } => {
            h.write_u8(9);
            h.write_u64(s as u64);
            h.write_u64(key);
        }
        OpSpec::TreeLookup { s, key } => {
            h.write_u8(10);
            h.write_u64(s as u64);
            h.write_u64(key);
        }
        OpSpec::TreeScan { s, key, len } => {
            h.write_u8(11);
            h.write_u64(s as u64);
            h.write_u64(key);
            h.write_u64(len as u64);
        }
        OpSpec::QueueDrain { s, n } => {
            h.write_u8(12);
            h.write_u64(s as u64);
            h.write_u64(n as u64);
        }
    }
}

impl OpTrace {
    /// The workload name replaying this trace produces.
    pub fn workload_name(&self) -> String {
        format!("{}x{}", self.sel.abbrev(), self.params.threads)
    }

    /// Total recorded ops (init + every group member) across threads.
    pub fn total_ops(&self) -> u64 {
        self.threads
            .iter()
            .map(|t| t.init.len() as u64 + t.groups.iter().map(|g| g.len() as u64).sum::<u64>())
            .sum()
    }

    /// Total durable groups (= transactions on replay, except all-read
    /// groups which emit untransacted) across threads.
    pub fn total_groups(&self) -> u64 {
        self.threads.iter().map(|t| t.groups.len() as u64).sum()
    }

    /// Structural identity of the recorded streams (selector, params,
    /// and every op in order). The codec stores this in the header and
    /// re-verifies it on load, so silent corruption of a stored trace
    /// body cannot masquerade as a valid workload.
    pub fn content_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(proteus_types::stable_hash_value(&self.sel));
        h.write_u64(proteus_types::stable_hash_value(&self.params));
        for t in &self.threads {
            h.write_str("thread");
            h.write_u64(t.init.len() as u64);
            for op in &t.init {
                hash_op(&mut h, op);
            }
            h.write_u64(t.groups.len() as u64);
            for g in &t.groups {
                h.write_u64(g.len() as u64);
                for op in g {
                    hash_op(&mut h, op);
                }
            }
        }
        h.finish()
    }
}

/// Captures op streams as the generator draws them.
#[derive(Debug, Default)]
struct TraceRecorder {
    threads: Vec<ThreadOps>,
}

impl TraceRecorder {
    fn thread(&mut self, t: usize) -> &mut ThreadOps {
        if self.threads.len() <= t {
            self.threads.resize_with(t + 1, ThreadOps::default);
        }
        &mut self.threads[t]
    }
}

impl OpRecorder for TraceRecorder {
    fn record_init(&mut self, t: usize, op: OpSpec) {
        self.thread(t).init.push(op);
    }

    fn record_group(&mut self, t: usize, ops: &[OpSpec]) {
        self.thread(t).groups.push(ops.to_vec());
    }
}

/// Rejects selectors whose workloads cannot round-trip through the
/// per-thread op-trace format. Contended workloads are generated from a
/// *global* cross-thread schedule (ticket interleavings, external write
/// lists) that per-thread op streams cannot represent; recording one
/// would replay to a different workload, so both directions refuse up
/// front.
fn reject_unrecordable(sel: &WorkloadSel) -> Result<(), SimError> {
    if let WorkloadSel::Contended(c) = sel {
        return Err(SimError::InvalidConfig(format!(
            "contended workload '{}' cannot be op-trace recorded or replayed: its \
             cross-thread lock schedule is not a set of per-thread op streams; \
             regenerate it from the spec instead",
            c.label()
        )));
    }
    Ok(())
}

/// Generates the selected workload while recording its op streams.
/// The returned workload is exactly `sel.generate(params)`; the trace
/// replays to the same bytes (see [`replay`]).
///
/// # Errors
///
/// Rejects contended selectors — their global sharing schedule does not
/// fit the per-thread trace format (see [`reject_unrecordable`]).
pub fn record(
    sel: &WorkloadSel,
    params: &WorkloadParams,
) -> Result<(GeneratedWorkload, OpTrace), SimError> {
    reject_unrecordable(sel)?;
    let mut rec = TraceRecorder::default();
    let workload = sel.generate_recorded(params, &mut rec);
    // Threads that drew no ops still occupy a slot.
    rec.threads.resize_with(params.threads, ThreadOps::default);
    Ok((workload, OpTrace { sel: sel.clone(), params: params.clone(), threads: rec.threads }))
}

fn build_structures_for(
    sel: &WorkloadSel,
    params: &WorkloadParams,
    image: &mut WordImage,
    alloc: &mut NodeAlloc,
) -> Structures {
    match sel {
        WorkloadSel::Bench(b) => build_thread_structures(*b, params, image, alloc).structures,
        WorkloadSel::Gen(g) => build_gen_structures(g, image, alloc),
        WorkloadSel::Contended(_) => unreachable!("replay rejects contended selectors up front"),
    }
}

/// Materialises a trace into a runnable workload: rebuilds each
/// thread's structures from the header selector, applies the recorded
/// init ops functionally, and re-emits every recorded group through
/// the shared emission path. For a trace produced by [`record`], the
/// result is byte-identical to the recorded generation.
pub fn replay(trace: &OpTrace) -> Result<GeneratedWorkload, SimError> {
    reject_unrecordable(&trace.sel)?;
    trace.sel.validate()?;
    if trace.params.threads == 0 || trace.params.threads != trace.threads.len() {
        return Err(SimError::InvalidConfig(format!(
            "trace header declares {} threads but carries {} op streams",
            trace.params.threads,
            trace.threads.len()
        )));
    }
    let mut image = WordImage::new();
    let mut programs = Vec::with_capacity(trace.threads.len());
    for (t, ops) in trace.threads.iter().enumerate() {
        let mut alloc = thread_alloc(t);
        let structures = build_structures_for(&trace.sel, &trace.params, &mut image, &mut alloc);
        for &op in &ops.init {
            let mut m = DirectMem::new(&mut image);
            run_op(&mut m, &mut alloc, &structures, op);
        }
        let lock_base = lock_base_for(t);
        let mut program = Program::new(ThreadId::new(t as u32));
        for group in &ops.groups {
            emit_op_group(&mut image, &mut program, &mut alloc, &structures, group, lock_base);
        }
        program.validate().map_err(|e| {
            SimError::InvalidConfig(format!("replayed program for thread {t} invalid: {e}"))
        })?;
        programs.push(program);
    }
    Ok(GeneratedWorkload {
        name: trace.workload_name(),
        programs,
        initial_image: image,
        sharing: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenSpec, GenStructure, OpMix, Skew};
    use proteus_workloads::Benchmark;

    fn params() -> WorkloadParams {
        WorkloadParams { threads: 2, init_ops: 80, sim_ops: 25, seed: 11 }
    }

    #[test]
    fn record_matches_plain_generation() {
        for sel in [
            WorkloadSel::from(Benchmark::Queue),
            WorkloadSel::from(Benchmark::RbTree),
            WorkloadSel::from(Benchmark::LargeTx { elements: 64 }),
        ] {
            let p = params();
            let plain = sel.generate(&p);
            let (recorded, trace) = record(&sel, &p).expect("recordable");
            assert_eq!(plain.programs, recorded.programs, "{}", sel.abbrev());
            assert_eq!(plain.initial_image, recorded.initial_image, "{}", sel.abbrev());
            assert_eq!(trace.threads.len(), 2);
            assert_eq!(trace.total_ops(), (80 + 25) * 2, "{}", sel.abbrev());
        }
    }

    #[test]
    fn replay_is_byte_identical_for_every_table2_bench() {
        for bench in Benchmark::TABLE2 {
            let sel = WorkloadSel::from(bench);
            let p = params();
            let (recorded, trace) = record(&sel, &p).expect("recordable");
            let replayed = replay(&trace).expect("replay");
            assert_eq!(recorded.name, replayed.name, "{bench:?}");
            assert_eq!(recorded.programs, replayed.programs, "{bench:?}");
            assert_eq!(recorded.initial_image, replayed.initial_image, "{bench:?}");
        }
    }

    #[test]
    fn replay_is_byte_identical_for_generated_workloads() {
        let sel = WorkloadSel::Gen(GenSpec {
            name: "mix".into(),
            structure: GenStructure::BTree,
            per_thread: 2,
            key_range: 500,
            mix: OpMix { read_pct: 30, insert_pct: 40, delete_pct: 10, scan_pct: 20, drain_pct: 0 },
            skew: Skew::Zipfian { theta_milli: 900 },
            scan_len: 5,
            tx_ops: 3,
            drain_batch: 0,
        });
        let p = params();
        let (recorded, trace) = record(&sel, &p).expect("recordable");
        let replayed = replay(&trace).expect("replay");
        assert_eq!(recorded.programs, replayed.programs);
        assert_eq!(recorded.initial_image, replayed.initial_image);
    }

    #[test]
    fn contended_selectors_are_rejected_with_a_clean_error() {
        use proteus_workloads::{ContendedKind, ContendedSpec};
        let sel = WorkloadSel::Contended(ContendedSpec {
            kind: ContendedKind::MpmcQueue,
            early_release: false,
        });
        let err = record(&sel, &params()).unwrap_err();
        assert!(format!("{err}").contains("cannot be op-trace recorded"), "{err}");
        // A hand-forged trace header claiming a contended selector is
        // rejected by replay the same way.
        let forged = OpTrace {
            sel,
            params: params(),
            threads: vec![ThreadOps::default(), ThreadOps::default()],
        };
        let err = replay(&forged).unwrap_err();
        assert!(format!("{err}").contains("cannot be op-trace recorded"), "{err}");
    }

    #[test]
    fn replay_rejects_thread_mismatch() {
        let (_, mut trace) = record(&WorkloadSel::from(Benchmark::Queue), &params()).unwrap();
        trace.threads.pop();
        assert!(matches!(replay(&trace), Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn content_hash_sees_every_op() {
        let (_, trace) = record(&WorkloadSel::from(Benchmark::Queue), &params()).unwrap();
        let base = trace.content_hash();
        let mut t = trace.clone();
        t.threads[0].init[0] = OpSpec::Dequeue { s: 0 };
        assert_ne!(base, t.content_hash());
        let mut t = trace.clone();
        t.threads[1].groups[3][0] = OpSpec::Enqueue { s: 0, value: 1 };
        assert_ne!(base, t.content_hash());
        let mut t = trace.clone();
        t.params.seed ^= 1;
        assert_ne!(base, t.content_hash());
    }
}
