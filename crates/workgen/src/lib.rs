#![warn(missing_docs)]
//! Trace-driven and generated workloads for the Proteus simulator.
//!
//! Three pieces, layered on `proteus-workloads`' public op model:
//!
//! - **[`WorkloadSel`]** — the workload selector experiment/crash
//!   specs carry: a paper `Benchmark` (hash- and codec-transparent
//!   with the pre-existing bare enum) or a generated [`GenSpec`].
//! - **Op traces** ([`trace`], [`codec`]) — a versioned JSONL record
//!   of the per-thread op streams a generation drew, replayable into a
//!   byte-identical `Program` + `WordImage` via the shared
//!   `workloads::spec` emission path.
//! - **The generator** ([`gen`]) — composable op-mix / skew / tx-size /
//!   scan-length / working-set knobs with named presets registered in
//!   the [`roster`] (mirroring the scheme registry), so `reproduce`,
//!   the bench basket, the crashsweep, and service sweeps pick new
//!   workloads up automatically.

pub mod codec;
pub mod gen;
pub mod rng;
pub mod roster;
pub mod sel;
pub mod trace;

pub use gen::{generate_gen_with, GenSpec, GenStructure, OpMix, Skew};
pub use rng::{skew_fingerprint, SplitMix64, Zipfian};
pub use sel::WorkloadSel;
pub use trace::{record, replay, OpTrace, ThreadOps, TRACE_VERSION};
