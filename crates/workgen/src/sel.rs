//! [`WorkloadSel`]: the workload selector experiment and crash specs
//! carry — either a Table 2 [`Benchmark`] or a generated [`GenSpec`].
//!
//! The `Bench` variant hashes and (in `sim::persist`) encodes exactly
//! as the bare `Benchmark` always did, so every pre-existing spec hash,
//! resume-ledger key, and golden pin survives the generalisation
//! unchanged; `Gen` extends the same identity scheme to generated
//! workloads.

use crate::gen::{generate_gen_with, GenSpec};
use proteus_types::{FieldHasher, SimError, StableHash, StableHasher};
use proteus_workloads::{
    generate_contended, generate_with, Benchmark, ContendedKind, ContendedSpec, GeneratedWorkload,
    OpRecorder, WorkloadParams,
};

/// Selects the workload an experiment runs.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSel {
    /// A paper Table 2 / §7.3 benchmark.
    Bench(Benchmark),
    /// A generated workload spec.
    Gen(GenSpec),
    /// A contended shared-structure workload (inter-core sharing).
    Contended(ContendedSpec),
}

impl From<Benchmark> for WorkloadSel {
    fn from(b: Benchmark) -> Self {
        WorkloadSel::Bench(b)
    }
}

impl From<GenSpec> for WorkloadSel {
    fn from(g: GenSpec) -> Self {
        WorkloadSel::Gen(g)
    }
}

impl From<ContendedSpec> for WorkloadSel {
    fn from(c: ContendedSpec) -> Self {
        WorkloadSel::Contended(c)
    }
}

impl StableHash for WorkloadSel {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            // Transparent delegation: a Bench selector is
            // hash-identical to the bare Benchmark, preserving every
            // pre-generalisation spec hash and ledger key.
            WorkloadSel::Bench(b) => b.stable_hash(h),
            WorkloadSel::Gen(g) => g.stable_hash(h),
            WorkloadSel::Contended(c) => c.stable_hash(h),
        }
    }
}

impl WorkloadSel {
    /// Short display label: the paper abbreviation for benchmarks, the
    /// spec name for generated workloads.
    pub fn abbrev(&self) -> &str {
        match self {
            WorkloadSel::Bench(b) => b.abbrev(),
            WorkloadSel::Gen(g) => &g.name,
            WorkloadSel::Contended(c) if c.early_release => match c.kind {
                ContendedKind::MpmcQueue => "MQ!",
                ContendedKind::ContendedHashMap => "CH!",
                ContendedKind::LockedBTree => "LB!",
            },
            WorkloadSel::Contended(c) => c.kind.abbrev(),
        }
    }

    /// Checks the selector is runnable (benchmarks always are).
    pub fn validate(&self) -> Result<(), SimError> {
        match self {
            WorkloadSel::Bench(_) | WorkloadSel::Contended(_) => Ok(()),
            WorkloadSel::Gen(g) => g
                .validate()
                .map_err(|e| SimError::InvalidConfig(format!("gen spec {}: {e}", g.name))),
        }
    }

    /// Generates the workload (same contract as `workloads::generate`:
    /// panics on an invalid spec or arena exhaustion; the harness's
    /// per-job panic isolation turns that into a recorded failure).
    pub fn generate(&self, params: &WorkloadParams) -> GeneratedWorkload {
        self.generate_recorded(params, &mut ())
    }

    /// [`WorkloadSel::generate`] with an [`OpRecorder`] observing the
    /// drawn op stream (the trace recorder's entry point).
    pub fn generate_recorded(
        &self,
        params: &WorkloadParams,
        rec: &mut impl OpRecorder,
    ) -> GeneratedWorkload {
        match self {
            WorkloadSel::Bench(b) => generate_with(*b, params, rec),
            WorkloadSel::Gen(g) => generate_gen_with(g, params, rec),
            // Contended generation draws from a *global* schedule, not
            // per-thread op streams, so there is nothing a per-thread
            // recorder could capture; `trace::record` rejects these
            // selectors before getting here.
            WorkloadSel::Contended(c) => generate_contended(c, params),
        }
    }

    /// Replaces `params`' seed with one derived structurally from this
    /// selector and the remaining parameters — the generalisation of
    /// `WorkloadParams::with_derived_seed`, to which the `Bench` case
    /// delegates bit-for-bit.
    pub fn derived_params(&self, params: WorkloadParams) -> WorkloadParams {
        match self {
            WorkloadSel::Bench(b) => params.with_derived_seed(*b),
            WorkloadSel::Gen(_) | WorkloadSel::Contended(_) => {
                let mut p = params;
                let mut f = FieldHasher::new("WorkloadSeed");
                f.field("bench", self)
                    .field("threads", &p.threads)
                    .field("init_ops", &p.init_ops)
                    .field("sim_ops", &p.sim_ops);
                p.seed = f.finish();
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenStructure, OpMix, Skew};
    use proteus_types::stable_hash_value;

    fn gen_spec() -> GenSpec {
        GenSpec {
            name: "kv".into(),
            structure: GenStructure::HashMap { buckets: 8 },
            per_thread: 1,
            key_range: 64,
            mix: OpMix { read_pct: 50, insert_pct: 50, delete_pct: 0, scan_pct: 0, drain_pct: 0 },
            skew: Skew::Uniform,
            scan_len: 0,
            tx_ops: 1,
            drain_batch: 0,
        }
    }

    #[test]
    fn bench_selector_hash_is_transparent() {
        for b in Benchmark::TABLE2 {
            assert_eq!(
                stable_hash_value(&WorkloadSel::Bench(b)),
                stable_hash_value(&b),
                "{b:?}: WorkloadSel must hash exactly like the bare Benchmark"
            );
        }
        let lt = Benchmark::LargeTx { elements: 1024 };
        assert_eq!(stable_hash_value(&WorkloadSel::from(lt)), stable_hash_value(&lt));
    }

    #[test]
    fn bench_derived_seed_is_transparent() {
        let base = WorkloadParams { threads: 2, init_ops: 200, sim_ops: 50, seed: 0 };
        for b in Benchmark::TABLE2 {
            assert_eq!(
                WorkloadSel::from(b).derived_params(base.clone()).seed,
                base.clone().with_derived_seed(b).seed,
                "{b:?}"
            );
        }
    }

    #[test]
    fn gen_derived_seed_is_shape_sensitive() {
        let base = WorkloadParams { threads: 2, init_ops: 100, sim_ops: 20, seed: 0 };
        let a = WorkloadSel::from(gen_spec()).derived_params(base.clone());
        let b = WorkloadSel::from(gen_spec()).derived_params(base.clone());
        assert_eq!(a.seed, b.seed);
        let mut other = gen_spec();
        other.key_range = 128;
        assert_ne!(a.seed, WorkloadSel::from(other).derived_params(base.clone()).seed);
        assert_ne!(
            a.seed,
            WorkloadSel::from(gen_spec())
                .derived_params(WorkloadParams { sim_ops: 21, ..base })
                .seed
        );
    }

    #[test]
    fn gen_and_bench_selectors_hash_distinctly() {
        let g = stable_hash_value(&WorkloadSel::from(gen_spec()));
        for b in Benchmark::TABLE2 {
            assert_ne!(g, stable_hash_value(&WorkloadSel::from(b)));
        }
    }

    #[test]
    fn validate_routes_to_gen_spec() {
        assert!(WorkloadSel::from(Benchmark::Queue).validate().is_ok());
        assert!(WorkloadSel::from(gen_spec()).validate().is_ok());
        let mut bad = gen_spec();
        bad.mix.read_pct = 51;
        assert!(WorkloadSel::from(bad).validate().is_err());
    }

    #[test]
    fn generate_dispatches_both_arms() {
        let p = WorkloadParams { threads: 1, init_ops: 20, sim_ops: 5, seed: 3 };
        let w = WorkloadSel::from(Benchmark::Queue).generate(&p);
        assert_eq!(w.name, "QEx1");
        let w = WorkloadSel::from(gen_spec()).generate(&p);
        assert_eq!(w.name, "kvx1");
        assert_eq!(w.programs.len(), 1);
    }

    #[test]
    fn contended_selector_generates_with_a_sharing_plan() {
        let p = WorkloadParams { threads: 2, init_ops: 16, sim_ops: 4, seed: 3 };
        for kind in ContendedKind::ALL {
            let sel = WorkloadSel::from(ContendedSpec { kind, early_release: false });
            assert_eq!(sel.abbrev(), kind.abbrev());
            assert!(sel.validate().is_ok());
            let w = sel.generate(&p);
            assert_eq!(w.name, format!("{}x2", kind.abbrev()));
            assert!(w.sharing.is_some(), "{kind:?}");
        }
        let faulty = WorkloadSel::from(ContendedSpec {
            kind: ContendedKind::MpmcQueue,
            early_release: true,
        });
        assert_eq!(faulty.abbrev(), "MQ!");
    }

    #[test]
    fn contended_selector_hashes_distinctly() {
        let mq = ContendedSpec { kind: ContendedKind::MpmcQueue, early_release: false };
        let h = stable_hash_value(&WorkloadSel::from(mq));
        for b in Benchmark::TABLE2 {
            assert_ne!(h, stable_hash_value(&WorkloadSel::from(b)));
        }
        assert_ne!(h, stable_hash_value(&WorkloadSel::from(gen_spec())));
        // The fault knob is part of the identity.
        let faulty = ContendedSpec { early_release: true, ..mq };
        assert_ne!(h, stable_hash_value(&WorkloadSel::from(faulty)));
        let ch = ContendedSpec { kind: ContendedKind::ContendedHashMap, early_release: false };
        assert_ne!(h, stable_hash_value(&WorkloadSel::from(ch)));
    }

    #[test]
    fn contended_derived_seed_is_shape_sensitive() {
        let base = WorkloadParams { threads: 2, init_ops: 100, sim_ops: 20, seed: 0 };
        let mq = WorkloadSel::from(ContendedSpec {
            kind: ContendedKind::MpmcQueue,
            early_release: false,
        });
        let a = mq.derived_params(base.clone());
        assert_eq!(a.seed, mq.derived_params(base.clone()).seed);
        let lb = WorkloadSel::from(ContendedSpec {
            kind: ContendedKind::LockedBTree,
            early_release: false,
        });
        assert_ne!(a.seed, lb.derived_params(base.clone()).seed);
        assert_ne!(a.seed, mq.derived_params(WorkloadParams { sim_ops: 21, ..base }).seed);
    }
}
