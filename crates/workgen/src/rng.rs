//! Environment-independent randomness for workload generation.
//!
//! Table 2 workloads draw from `rand::StdRng`, which the offline build
//! replaces with a stub producing a different stream — numeric goldens
//! over those workloads are therefore gated on a fingerprint. Generated
//! workloads avoid the problem entirely: they draw from this crate's
//! own splitmix64 stream, which is a few integer operations and is
//! byte-identical in every build environment. Only the zipfian sampler
//! touches floating point (`powf` in the zeta precomputation); see
//! [`skew_fingerprint`] for how goldens over skewed streams are gated.

/// A splitmix64 generator (Steele et al., "Fast splittable pseudorandom
/// number generators"). Deterministic, platform-independent, and good
/// enough statistically for op-mix/skew draws.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)` (`n == 0` yields 0).
    ///
    /// Plain modulo: the bias for the `n` values used here (structure
    /// counts, key ranges far below 2^64) is negligible, and modulo is
    /// trivially reproducible.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u8) -> bool {
        self.below(100) < pct as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A zipfian sampler over `[0, n)` using the YCSB/Gray et al.
/// construction: draws are skewed toward low ranks with parameter
/// `theta` (YCSB uses 0.99).
///
/// The zeta constants are precomputed once per generation; sampling is
/// then two multiplies and two `powf` calls. Floating point makes the
/// stream *theoretically* platform-sensitive in the last ulp, so
/// numeric goldens over zipfian streams gate on [`skew_fingerprint`];
/// in practice IEEE-754 `powf` agrees across the platforms we build on.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// A sampler over `[0, n)` with skew `theta` in (0, 1).
    pub fn new(n: u64, theta: f64) -> Self {
        let n = n.max(1);
        let zeta_n = zeta(n, theta);
        let zeta_2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Zipfian { n, theta, alpha, zeta_n, eta }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn draw(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

/// Fingerprint of the floating-point skew pipeline in this build
/// environment: a short canonical zipfian draw sequence, hashed.
///
/// Mirrors `proteus_bench::golden::workload_fingerprint` — goldens that
/// pin zipfian-skewed trace contents compare this against the capture
/// environment's value and skip (never fail) on mismatch, because a
/// `powf` ulp difference changes the *workload input*, not the engine.
pub fn skew_fingerprint() -> u64 {
    let mut h = proteus_types::StableHasher::new();
    let zipf = Zipfian::new(1 << 20, 0.99);
    let mut rng = SplitMix64::new(0x5EED_F1D0);
    for _ in 0..64 {
        h.write_u64(zipf.draw(&mut rng));
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_pinned() {
        // First values of the reference splitmix64 stream for seed 0 —
        // pinned so the generator can never silently drift.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(!r.chance(0));
            assert!(r.chance(100));
        }
    }

    #[test]
    fn zipfian_skews_toward_low_ranks() {
        let zipf = Zipfian::new(10_000, 0.99);
        let mut rng = SplitMix64::new(42);
        let draws: Vec<u64> = (0..10_000).map(|_| zipf.draw(&mut rng)).collect();
        assert!(draws.iter().all(|&d| d < 10_000));
        // Hot head: far more than the uniform 1% of draws hit the top 1%.
        let hot = draws.iter().filter(|&&d| d < 100).count();
        assert!(hot > 2_000, "zipfian head too cold: {hot}/10000 in top 1%");
        // Tail still reachable.
        assert!(draws.iter().any(|&d| d >= 1_000));
    }

    #[test]
    fn zipfian_uniform_limit_sane() {
        // Tiny universe: every rank reachable, no panics.
        let zipf = Zipfian::new(2, 0.99);
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 2];
        for _ in 0..200 {
            seen[zipf.draw(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn skew_fingerprint_is_stable_within_build() {
        assert_eq!(skew_fingerprint(), skew_fingerprint());
    }
}
