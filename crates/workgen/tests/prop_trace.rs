//! Property-based tests of the op-trace codec, mirroring the service
//! frame-protocol suite: any recorded trace must survive a
//! serialise/parse round trip exactly and replay byte-identically,
//! while truncations and single-byte corruptions of the stored text
//! must either be rejected cleanly or parse back to the original
//! trace — never panic, never yield a silently different workload.
//!
//! Only runs online: the offline stub of proptest is resolution-only,
//! and `tools/offline-check.sh` skips this suite.

use proptest::prelude::*;
use proteus_workgen::codec::{trace_from_str, trace_to_string};
use proteus_workgen::{record, replay, GenSpec, GenStructure, OpMix, Skew, WorkloadSel};
use proteus_workloads::{Benchmark, WorkloadParams};

fn gen_sel_strategy() -> impl Strategy<Value = WorkloadSel> {
    (1usize..3, 0u64..200, 1u32..1000, any::<bool>(), 1u32..4).prop_map(
        |(per_thread, key_range, theta_milli, zipf, tx_ops)| {
            WorkloadSel::Gen(GenSpec {
                name: "prop".into(),
                structure: GenStructure::HashMap { buckets: 16 },
                per_thread,
                key_range,
                mix: OpMix {
                    read_pct: 30,
                    insert_pct: 50,
                    delete_pct: 20,
                    scan_pct: 0,
                    drain_pct: 0,
                },
                skew: if zipf { Skew::Zipfian { theta_milli } } else { Skew::Uniform },
                scan_len: 0,
                tx_ops,
                drain_batch: 0,
            })
        },
    )
}

fn sel_strategy() -> impl Strategy<Value = WorkloadSel> {
    prop_oneof![
        Just(WorkloadSel::from(Benchmark::Queue)),
        Just(WorkloadSel::from(Benchmark::HashMap)),
        Just(WorkloadSel::from(Benchmark::RbTree)),
        Just(WorkloadSel::from(Benchmark::LargeTx { elements: 32 })),
        gen_sel_strategy(),
    ]
}

fn params_strategy() -> impl Strategy<Value = WorkloadParams> {
    (1usize..3, 0usize..40, 1usize..16, any::<u64>()).prop_map(
        |(threads, init_ops, sim_ops, seed)| WorkloadParams { threads, init_ops, sim_ops, seed },
    )
}

proptest! {
    #[test]
    fn traces_round_trip_exactly(sel in sel_strategy(), params in params_strategy()) {
        let (_, trace) = record(&sel, &params).unwrap();
        let text = trace_to_string(&trace);
        let back = trace_from_str(&text).expect("own serialisation must parse");
        prop_assert_eq!(&back, &trace);
        // And the text itself is canonical: re-serialising is identical.
        prop_assert_eq!(trace_to_string(&back), text);
    }

    #[test]
    fn replays_match_the_recorded_generation(sel in sel_strategy(), params in params_strategy()) {
        let (workload, trace) = record(&sel, &params).unwrap();
        let replayed = replay(&trace).expect("recorded trace must replay");
        prop_assert_eq!(workload.name, replayed.name);
        prop_assert_eq!(workload.programs, replayed.programs);
        prop_assert_eq!(workload.initial_image, replayed.initial_image);
    }

    #[test]
    fn truncations_are_rejected_or_equal(
        sel in sel_strategy(),
        params in params_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let (_, trace) = record(&sel, &params).unwrap();
        let text = trace_to_string(&trace);
        let mut cut = ((text.len() as f64) * cut_frac) as usize;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        // A prefix either fails verification (missing lines, broken
        // JSON, hash mismatch) or — e.g. cut exactly at the final
        // newline — still parses to the identical trace. It must never
        // parse to a different one.
        match trace_from_str(&text[..cut]) {
            Ok(back) => prop_assert_eq!(back, trace),
            Err(e) => prop_assert!(e.to_string().contains("op trace"), "wrong error class: {e}"),
        }
    }

    #[test]
    fn single_byte_corruptions_never_yield_a_different_trace(
        sel in sel_strategy(),
        params in params_strategy(),
        pos_frac in 0.0f64..1.0,
        replacement in prop::sample::select(vec![b'0', b'9', b'a', b'"', b'[', b'}', b',', b' ']),
    ) {
        let (_, trace) = record(&sel, &params).unwrap();
        let text = trace_to_string(&trace);
        let mut bytes = text.clone().into_bytes();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        prop_assume!(bytes[pos] != replacement);
        bytes[pos] = replacement;
        let Ok(mutated) = String::from_utf8(bytes) else {
            return Ok(()); // ASCII replacement into ASCII text; unreachable
        };
        match trace_from_str(&mutated) {
            // Mutations in ignorable positions may survive, but only
            // as the *same* logical trace (the content hash pins every
            // op, the header pins sel/params).
            Ok(back) => {
                prop_assert_eq!(back.content_hash(), trace.content_hash());
                prop_assert_eq!(back.threads, trace.threads);
            }
            Err(_) => {}
        }
    }
}
