//! Physical address-space layout of the simulated machine.
//!
//! The simulator uses a flat physical address space carved into three
//! regions:
//!
//! * **data heap** — cacheable persistent data structures;
//! * **log headers** — one cache line per thread holding the software
//!   logging protocol's `logFlag` (Fig. 2 of the paper);
//! * **log areas** — one per-thread circular buffer of 64-byte log
//!   entries. Log areas are uncacheable (paper §4.2), so log traffic
//!   bypasses the caches and goes straight to the memory controller.

use proteus_types::addr::{Region, RegionKind, RegionMap, CACHE_LINE_SIZE};
use proteus_types::{Addr, ThreadId};
use serde::{Deserialize, Serialize};

/// Address-space layout parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressLayout {
    /// Base of the cacheable persistent data heap.
    pub data_base: Addr,
    /// Base of the per-thread log-header lines (logFlag protocol state).
    pub log_header_base: Addr,
    /// Base of the per-thread log areas.
    pub log_base: Addr,
    /// Capacity of each thread's log area, in 64-byte entries.
    pub log_area_entries: usize,
    /// Maximum number of threads the layout reserves space for.
    pub max_threads: usize,
}

impl Default for AddressLayout {
    fn default() -> Self {
        AddressLayout {
            data_base: Addr::new(0x1000_0000),
            log_header_base: Addr::new(0x0F00_0000),
            log_base: Addr::new(0x8000_0000),
            // 4096 entries = 256 KiB per thread: large enough for the
            // biggest transaction (§7.3's 8192-element updates need 2048
            // entries), small enough that a software log's circular reuse
            // stays cache-resident, as a programmer would size it.
            log_area_entries: 4 * 1024,
            max_threads: 16,
        }
    }
}

impl AddressLayout {
    /// Byte length of one thread's log area.
    pub fn log_area_bytes(&self) -> u64 {
        self.log_area_entries as u64 * CACHE_LINE_SIZE
    }

    /// The log area region `[start, end)` of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` exceeds [`AddressLayout::max_threads`].
    pub fn log_area(&self, thread: ThreadId) -> Region {
        assert!(
            thread.index() < self.max_threads,
            "{thread} exceeds layout capacity of {} threads",
            self.max_threads
        );
        let start = self.log_base.offset(thread.index() as u64 * self.log_area_bytes());
        Region::new(start, start.offset(self.log_area_bytes()), RegionKind::Log)
    }

    /// The address of the n-th log entry slot in `thread`'s area.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn log_slot(&self, thread: ThreadId, slot: usize) -> Addr {
        assert!(slot < self.log_area_entries, "slot {slot} out of range");
        self.log_area(thread).start.offset(slot as u64 * CACHE_LINE_SIZE)
    }

    /// The `logFlag` word address of `thread` (software logging protocol).
    pub fn log_flag(&self, thread: ThreadId) -> Addr {
        assert!(
            thread.index() < self.max_threads,
            "{thread} exceeds layout capacity of {} threads",
            self.max_threads
        );
        self.log_header_base.offset(thread.index() as u64 * CACHE_LINE_SIZE)
    }

    /// Which thread's log area contains `addr`, if any.
    pub fn log_area_owner(&self, addr: Addr) -> Option<ThreadId> {
        if addr < self.log_base {
            return None;
        }
        let idx = (addr.raw() - self.log_base.raw()) / self.log_area_bytes();
        if (idx as usize) < self.max_threads {
            Some(ThreadId::new(idx as u32))
        } else {
            None
        }
    }

    /// Builds the region map marking every thread's log area uncacheable.
    pub fn region_map(&self) -> RegionMap {
        let mut map = RegionMap::new();
        for t in 0..self.max_threads {
            map.add(self.log_area(ThreadId::new(t as u32)));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn areas_are_disjoint_and_sized() {
        let layout = AddressLayout::default();
        let a0 = layout.log_area(ThreadId::new(0));
        let a1 = layout.log_area(ThreadId::new(1));
        assert_eq!(a0.len(), layout.log_area_bytes());
        assert_eq!(a0.end, a1.start);
        assert!(!a0.contains(a1.start));
    }

    #[test]
    fn slots_are_line_aligned() {
        let layout = AddressLayout::default();
        let s0 = layout.log_slot(ThreadId::new(2), 0);
        let s1 = layout.log_slot(ThreadId::new(2), 1);
        assert!(s0.is_line_aligned());
        assert_eq!(s1.raw() - s0.raw(), CACHE_LINE_SIZE);
        assert!(layout.log_area(ThreadId::new(2)).contains(s0));
    }

    #[test]
    fn log_area_owner_roundtrip() {
        let layout = AddressLayout::default();
        for t in 0..4 {
            let thread = ThreadId::new(t);
            let slot = layout.log_slot(thread, 100);
            assert_eq!(layout.log_area_owner(slot), Some(thread));
        }
        assert_eq!(layout.log_area_owner(layout.data_base), None);
    }

    #[test]
    fn region_map_marks_logs_uncacheable() {
        let layout = AddressLayout::default();
        let map = layout.region_map();
        assert!(!map.is_cacheable(layout.log_slot(ThreadId::new(0), 5)));
        assert!(map.is_cacheable(layout.data_base));
        assert!(map.is_cacheable(layout.log_flag(ThreadId::new(0))));
    }

    #[test]
    fn log_flags_are_per_thread_lines() {
        let layout = AddressLayout::default();
        let f0 = layout.log_flag(ThreadId::new(0));
        let f1 = layout.log_flag(ThreadId::new(1));
        assert_eq!(f1.raw() - f0.raw(), CACHE_LINE_SIZE);
        assert_ne!(f0.line(), f1.line());
    }

    #[test]
    #[should_panic(expected = "exceeds layout capacity")]
    fn thread_bounds_enforced() {
        let layout = AddressLayout::default();
        let _ = layout.log_area(ThreadId::new(99));
    }
}
