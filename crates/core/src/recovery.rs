//! Crash recovery for both logging protocols.
//!
//! A crash leaves a [`CrashImage`]: the durable contents of the machine —
//! the NVMM plus, under ADR, whatever the battery drained out of the WPQ
//! and LPQ (the simulator builds the image; this module consumes it).
//!
//! Two recovery protocols exist:
//!
//! * **Software (logFlag)** — Fig. 2 of the paper. If a thread's
//!   `logFlag` is non-zero, the transaction it names was in flight; its
//!   undo entries are applied and the flag is cleared.
//! * **Hardware (txID + commit marker)** — §4.3 of the paper. Because
//!   each thread has one log area and one active transaction, only log
//!   entries carrying the *most recent* transaction ID are live. If that
//!   transaction's commit marker made it to durability the transaction
//!   committed and nothing is undone; otherwise its entries are applied.
//!
//! In both protocols, when a grain was logged more than once (out-of-order
//! flushes, LLT evictions, context switches), only the **earliest** entry
//! in program order holds pre-transaction data (§4.2), so recovery applies
//! the lowest-sequence entry per grain.
//!
//! Recovery is idempotent: the software path clears `logFlag`, and the
//! hardware path stamps a commit marker onto the undone transaction's last
//! entry so a second crash during recovery re-runs harmlessly.

use crate::entry::LogEntry;
use crate::layout::AddressLayout;
use crate::pmem::WordImage;
use proteus_types::config::LoggingSchemeKind;
use proteus_types::{Addr, SimError, ThreadId, TxId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The durable state captured at a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashImage {
    /// Durable memory contents: NVMM plus ADR-drained queues.
    pub nvmm: WordImage,
}

impl CrashImage {
    /// Wraps an image.
    pub fn new(nvmm: WordImage) -> Self {
        CrashImage { nvmm }
    }
}

/// What recovery did, per thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadOutcome {
    /// No live log was found; nothing to do.
    Clean,
    /// The named transaction was in flight and has been rolled back,
    /// applying the given number of undo entries.
    RolledBack {
        /// The undone transaction.
        tx: TxId,
        /// Undo entries applied (one per distinct grain).
        entries_applied: usize,
    },
    /// The most recent transaction had a durable commit marker, so its
    /// (stale) log entries were ignored.
    Committed {
        /// The committed transaction.
        tx: TxId,
    },
}

/// Summary of a recovery pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Outcome per scanned thread.
    pub outcomes: Vec<(ThreadId, ThreadOutcome)>,
}

impl RecoveryReport {
    /// Total undo entries applied across threads.
    pub fn entries_applied(&self) -> usize {
        self.outcomes
            .iter()
            .map(|(_, o)| match o {
                ThreadOutcome::RolledBack { entries_applied, .. } => *entries_applied,
                _ => 0,
            })
            .sum()
    }

    /// Threads whose transactions were rolled back.
    pub fn rolled_back(&self) -> impl Iterator<Item = (ThreadId, TxId)> + '_ {
        self.outcomes.iter().filter_map(|(t, o)| match o {
            ThreadOutcome::RolledBack { tx, .. } => Some((*t, *tx)),
            _ => None,
        })
    }
}

/// Runs crash recovery over `image` for every thread in `threads`.
///
/// The scheme kind selects the protocol through the descriptor registry
/// (`crate::scheme::registry`): the software schemes use the logFlag
/// protocol, the hardware schemes the txID/commit-marker protocol, InCLL
/// its directory-driven embedded/external hybrid, and
/// [`LoggingSchemeKind::NoLog`] performs no recovery (it is not
/// failure-safe — this is exactly the paper's "ideal but unsafe" point).
///
/// # Errors
///
/// Returns [`SimError::CorruptLog`] if a log image violates protocol
/// invariants (e.g. a logFlag naming a transaction with no entries when
/// entries were required).
pub fn recover(
    image: &mut WordImage,
    layout: &AddressLayout,
    kind: LoggingSchemeKind,
    threads: &[ThreadId],
) -> Result<RecoveryReport, SimError> {
    recover_with_budget(image, layout, kind, threads, usize::MAX).map(|b| b.report)
}

/// Result of a budgeted (possibly truncated) recovery pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetedRecovery {
    /// What recovery did up to the point the budget ran out. Outcomes for
    /// work past the cut-off reflect the *attempt*, not durable state.
    pub report: RecoveryReport,
    /// Durable writes actually performed.
    pub writes: usize,
    /// Whether the budget ran out before recovery finished.
    pub exhausted: bool,
}

/// Like [`recover`], but performs at most `budget` durable writes and then
/// silently drops the rest — modelling a second crash *during* recovery.
///
/// Every durable write recovery makes (one undo-grain apply, one logFlag
/// clear, one commit-marker stamp) costs one unit and happens in the same
/// order as in an unbudgeted run, so "crash after k recovery writes" is
/// exactly `budget == k`. Enumerating `k` from zero to the write count of
/// a full pass visits every crash point inside recovery; re-running
/// recovery on the truncated image must then converge to the same state
/// (the idempotence the logFlag and commit-marker protocols promise).
///
/// # Errors
///
/// Returns [`SimError::CorruptLog`] as [`recover`] does; the check reads
/// the log before any write, so it is unaffected by the budget.
pub fn recover_with_budget(
    image: &mut WordImage,
    layout: &AddressLayout,
    kind: LoggingSchemeKind,
    threads: &[ThreadId],
    budget: usize,
) -> Result<BudgetedRecovery, SimError> {
    let mut budget = WriteBudget { limit: budget, used: 0, denied: false };
    let recover_thread = crate::scheme::registry::descriptor(kind).recover_thread;
    let mut report = RecoveryReport::default();
    for &thread in threads {
        let outcome = recover_thread(image, layout, thread, &mut budget)?;
        report.outcomes.push((thread, outcome));
    }
    Ok(BudgetedRecovery { report, writes: budget.used, exhausted: budget.denied })
}

/// Durable-write allowance for a budgeted recovery pass. Once a write is
/// denied, every later one is too — the machine is dead from that point.
/// (Public because the registry's per-scheme recovery hooks thread it
/// through; construction and accounting stay in this module.)
#[derive(Debug)]
pub struct WriteBudget {
    limit: usize,
    used: usize,
    denied: bool,
}

impl WriteBudget {
    pub(crate) fn allow(&mut self) -> bool {
        if self.denied || self.used >= self.limit {
            self.denied = true;
            return false;
        }
        self.used += 1;
        true
    }
}

/// Scans a thread's log area, returning `(slot_address, entry)` pairs for
/// every valid slot.
pub fn scan_log_area(
    image: &WordImage,
    layout: &AddressLayout,
    thread: ThreadId,
) -> Vec<(Addr, LogEntry)> {
    (0..layout.log_area_entries)
        .filter_map(|slot| {
            let addr = layout.log_slot(thread, slot);
            LogEntry::read_from(image, addr).map(|e| (addr, e))
        })
        .collect()
}

/// Selects, per grain, the earliest-sequence entry among `entries`.
pub(crate) fn earliest_per_grain(entries: &[(Addr, LogEntry)], tx: TxId) -> Vec<LogEntry> {
    let mut best: HashMap<u64, LogEntry> = HashMap::new();
    for (_, e) in entries {
        if e.tx != tx {
            continue;
        }
        let grain = e.log_from.log_grain().index();
        match best.get(&grain) {
            Some(prev) if prev.seq <= e.seq => {}
            _ => {
                best.insert(grain, *e);
            }
        }
    }
    let mut list: Vec<LogEntry> = best.into_values().collect();
    list.sort_by_key(|e| e.seq);
    list
}

pub(crate) fn apply_undo(image: &mut WordImage, entries: &[LogEntry], budget: &mut WriteBudget) {
    for e in entries {
        if !budget.allow() {
            return;
        }
        image.write_grain(e.log_from, &e.data);
    }
}

pub(crate) fn recover_sw_thread(
    image: &mut WordImage,
    layout: &AddressLayout,
    thread: ThreadId,
    budget: &mut WriteBudget,
) -> Result<ThreadOutcome, SimError> {
    let flag_addr = layout.log_flag(thread);
    let flag = image.read_word(flag_addr);
    if flag == 0 {
        return Ok(ThreadOutcome::Clean);
    }
    let tx = TxId::new(flag);
    let entries = scan_log_area(image, layout, thread);
    let undo = earliest_per_grain(&entries, tx);
    apply_undo(image, &undo, budget);
    if budget.allow() {
        image.write_word(flag_addr, 0);
    }
    Ok(ThreadOutcome::RolledBack { tx, entries_applied: undo.len() })
}

pub(crate) fn recover_hw_thread(
    image: &mut WordImage,
    layout: &AddressLayout,
    thread: ThreadId,
    budget: &mut WriteBudget,
) -> Result<ThreadOutcome, SimError> {
    let entries = scan_log_area(image, layout, thread);
    let Some(max_tx) = entries.iter().map(|(_, e)| e.tx).max() else {
        return Ok(ThreadOutcome::Clean);
    };
    let committed = entries.iter().any(|(_, e)| e.tx == max_tx && e.commit_marker);
    if committed {
        return Ok(ThreadOutcome::Committed { tx: max_tx });
    }
    let undo = earliest_per_grain(&entries, max_tx);
    if undo.is_empty() {
        return Err(SimError::CorruptLog(format!(
            "{thread}: live transaction {max_tx} has no undo entries"
        )));
    }
    apply_undo(image, &undo, budget);
    // Stamp a commit marker on the transaction's latest entry so a repeat
    // recovery (crash during recovery) treats it as resolved.
    let (slot, latest) = entries
        .iter()
        .filter(|(_, e)| e.tx == max_tx)
        .max_by_key(|(_, e)| e.seq)
        .copied()
        .expect("entries nonempty for max_tx");
    if budget.allow() {
        latest.with_commit_marker().write_to(image, slot);
    }
    Ok(ThreadOutcome::RolledBack { tx: max_tx, entries_applied: undo.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> AddressLayout {
        AddressLayout { log_area_entries: 8, ..AddressLayout::default() }
    }

    fn thread() -> ThreadId {
        ThreadId::new(0)
    }

    fn put_entry(image: &mut WordImage, layout: &AddressLayout, slot: usize, entry: LogEntry) {
        entry.write_to(image, layout.log_slot(thread(), slot));
    }

    #[test]
    fn sw_clean_when_flag_clear() {
        let layout = layout();
        let mut img = WordImage::new();
        let r = recover(&mut img, &layout, LoggingSchemeKind::SwPmem, &[thread()]).unwrap();
        assert_eq!(r.outcomes[0].1, ThreadOutcome::Clean);
    }

    #[test]
    fn sw_rolls_back_in_flight_tx() {
        let layout = layout();
        let mut img = WordImage::new();
        let data_addr = Addr::new(0x1000_0000);
        // Pre-tx value 7 in the log; crashed mid-update with 99 in place.
        img.write_word(data_addr, 99);
        put_entry(&mut img, &layout, 0, LogEntry::new([7, 0, 0, 0], data_addr, TxId::new(3), 0));
        img.write_word(layout.log_flag(thread()), 3);
        let r = recover(&mut img, &layout, LoggingSchemeKind::SwPmem, &[thread()]).unwrap();
        assert_eq!(img.read_word(data_addr), 7);
        assert_eq!(img.read_word(layout.log_flag(thread())), 0);
        assert_eq!(r.entries_applied(), 1);
        // Idempotent: running again finds a clear flag.
        let r2 = recover(&mut img, &layout, LoggingSchemeKind::SwPmem, &[thread()]).unwrap();
        assert_eq!(r2.outcomes[0].1, ThreadOutcome::Clean);
    }

    #[test]
    fn sw_ignores_stale_entries_of_other_txs() {
        let layout = layout();
        let mut img = WordImage::new();
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0100);
        img.write_word(a, 50);
        img.write_word(b, 60);
        put_entry(&mut img, &layout, 0, LogEntry::new([1, 0, 0, 0], a, TxId::new(2), 0));
        put_entry(&mut img, &layout, 1, LogEntry::new([2, 0, 0, 0], b, TxId::new(3), 1));
        img.write_word(layout.log_flag(thread()), 3);
        recover(&mut img, &layout, LoggingSchemeKind::SwPmem, &[thread()]).unwrap();
        assert_eq!(img.read_word(a), 50, "tx2's entry must not be applied");
        assert_eq!(img.read_word(b), 2, "tx3's entry must be applied");
    }

    #[test]
    fn hw_clean_on_empty_log() {
        let layout = layout();
        let mut img = WordImage::new();
        let r = recover(&mut img, &layout, LoggingSchemeKind::Proteus, &[thread()]).unwrap();
        assert_eq!(r.outcomes[0].1, ThreadOutcome::Clean);
    }

    #[test]
    fn hw_committed_tx_not_undone() {
        let layout = layout();
        let mut img = WordImage::new();
        let a = Addr::new(0x1000_0000);
        img.write_word(a, 99); // committed new value
        put_entry(
            &mut img,
            &layout,
            0,
            LogEntry::new([7, 0, 0, 0], a, TxId::new(5), 0).with_commit_marker(),
        );
        let r = recover(&mut img, &layout, LoggingSchemeKind::Proteus, &[thread()]).unwrap();
        assert_eq!(img.read_word(a), 99);
        assert_eq!(r.outcomes[0].1, ThreadOutcome::Committed { tx: TxId::new(5) });
    }

    #[test]
    fn hw_rolls_back_latest_tx_only() {
        let layout = layout();
        let mut img = WordImage::new();
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0100);
        img.write_word(a, 11); // committed by tx4 long ago
        img.write_word(b, 99); // in-flight update by tx5
                               // Stale escaped entry of committed tx4 (its marker was dropped
                               // when tx5's first entry arrived — the §4.3 protocol).
        put_entry(&mut img, &layout, 0, LogEntry::new([1, 0, 0, 0], a, TxId::new(4), 0));
        // Live entry of crashed tx5.
        put_entry(&mut img, &layout, 1, LogEntry::new([60, 0, 0, 0], b, TxId::new(5), 1));
        let r = recover(&mut img, &layout, LoggingSchemeKind::Proteus, &[thread()]).unwrap();
        assert_eq!(img.read_word(a), 11, "older tx must be ignored");
        assert_eq!(img.read_word(b), 60, "latest tx must be rolled back");
        assert_eq!(r.entries_applied(), 1);
        // Idempotent: a second recovery sees the stamped marker.
        let r2 = recover(&mut img, &layout, LoggingSchemeKind::Proteus, &[thread()]).unwrap();
        assert_eq!(r2.outcomes[0].1, ThreadOutcome::Committed { tx: TxId::new(5) });
        assert_eq!(img.read_word(b), 60);
    }

    #[test]
    fn hw_earliest_entry_per_grain_wins() {
        // §4.2: two entries for the same grain in one tx — only the first
        // in program order holds pre-tx data.
        let layout = layout();
        let mut img = WordImage::new();
        let a = Addr::new(0x1000_0000);
        img.write_word(a, 99);
        put_entry(&mut img, &layout, 2, LogEntry::new([7, 0, 0, 0], a, TxId::new(9), 10));
        put_entry(&mut img, &layout, 5, LogEntry::new([55, 0, 0, 0], a, TxId::new(9), 14));
        recover(&mut img, &layout, LoggingSchemeKind::Proteus, &[thread()]).unwrap();
        assert_eq!(img.read_word(a), 7, "earliest entry must win");
    }

    #[test]
    fn hw_undoes_multiple_grains_of_one_tx() {
        let layout = layout();
        let mut img = WordImage::new();
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0020);
        img.write_word(a, 100);
        img.write_word(b, 200);
        put_entry(&mut img, &layout, 0, LogEntry::new([1, 2, 3, 4], a, TxId::new(2), 0));
        put_entry(&mut img, &layout, 1, LogEntry::new([5, 6, 7, 8], b, TxId::new(2), 1));
        let r = recover(&mut img, &layout, LoggingSchemeKind::Atom, &[thread()]).unwrap();
        assert_eq!(r.entries_applied(), 2);
        assert_eq!(img.read_grain(a), [1, 2, 3, 4]);
        assert_eq!(img.read_grain(b), [5, 6, 7, 8]);
    }

    #[test]
    fn budgeted_recovery_truncates_then_second_pass_converges() {
        let layout = layout();
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0020);
        let mut pristine = WordImage::new();
        pristine.write_word(a, 100);
        pristine.write_word(b, 200);
        put_entry(&mut pristine, &layout, 0, LogEntry::new([1, 2, 3, 4], a, TxId::new(2), 0));
        put_entry(&mut pristine, &layout, 1, LogEntry::new([5, 6, 7, 8], b, TxId::new(2), 1));

        // A full pass needs 3 writes: two undo applies plus the marker stamp.
        let mut full = pristine.clone();
        let done =
            recover_with_budget(&mut full, &layout, LoggingSchemeKind::Proteus, &[thread()], 999)
                .unwrap();
        assert_eq!(done.writes, 3);
        assert!(!done.exhausted);

        for k in 0..done.writes {
            let mut img = pristine.clone();
            let partial =
                recover_with_budget(&mut img, &layout, LoggingSchemeKind::Proteus, &[thread()], k)
                    .unwrap();
            assert_eq!(partial.writes, k);
            assert!(partial.exhausted, "budget {k} of 3 must run out");
            // The second (unbudgeted) recovery converges to the full result.
            recover(&mut img, &layout, LoggingSchemeKind::Proteus, &[thread()]).unwrap();
            assert_eq!(img, full, "double-crash at write {k} must still converge");
        }
    }

    #[test]
    fn nolog_never_recovers() {
        let layout = layout();
        let mut img = WordImage::new();
        let a = Addr::new(0x1000_0000);
        img.write_word(a, 99);
        put_entry(&mut img, &layout, 0, LogEntry::new([7, 0, 0, 0], a, TxId::new(1), 0));
        let r = recover(&mut img, &layout, LoggingSchemeKind::NoLog, &[thread()]).unwrap();
        assert_eq!(r.outcomes[0].1, ThreadOutcome::Clean);
        assert_eq!(img.read_word(a), 99);
    }
}
