//! Software undo-logging expansion (the paper's PMEM baseline, Fig. 2).
//!
//! Each durable transaction compiles into the four-step fail-safe
//! protocol:
//!
//! 1. for every grain in the undo hint: load the original 32 B, store the
//!    64 B log entry into the thread's circular log area, `clwb` the log
//!    line; then one `sfence`;
//! 2. store `logFlag = txID`, `clwb`, `sfence`;
//! 3. the transaction body (data stores in place), then `clwb` of every
//!    dirtied line and `sfence`;
//! 4. store `logFlag = 0`, `clwb`, `sfence`.
//!
//! With `pcommit` enabled (the PMEM+pcommit baseline), every persist point
//! additionally drains the WPQ to NVMM.
//!
//! The expansion pre-executes the program against a working copy of the
//! initial memory image so the log-entry stores carry the exact
//! pre-transaction values; recovery correctness is then testable
//! end-to-end.

use super::DirtyLines;
use crate::entry::LogEntry;
use crate::isa::{Trace, Uop};
use crate::layout::AddressLayout;
use crate::logarea::LogArea;
use crate::program::{Op, Program};
use crate::scheme::ExpandOptions;
use proteus_types::{SimError, TxId};

pub(super) fn expand(
    program: &Program,
    layout: &AddressLayout,
    opts: &ExpandOptions,
    pcommit: bool,
) -> Result<Trace, SimError> {
    let mut trace = Trace::new(program.thread);
    let mut image = (*opts.initial_image).clone();
    let mut area = LogArea::new(program.thread, layout);
    let mut dirty = DirtyLines::new();
    let log_flag = layout.log_flag(program.thread);
    let mut next_tx = TxId::new(1);

    let persist_point = |trace: &mut Trace| {
        trace.uops.push(Uop::Sfence);
        if pcommit {
            trace.uops.push(Uop::Pcommit);
            trace.uops.push(Uop::Sfence);
        }
    };

    for op in &program.ops {
        match op {
            Op::Read(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: false }),
            Op::ReadDep(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: true }),
            Op::Compute(lat) => trace.uops.push(Uop::Compute { latency: *lat }),
            Op::Write(addr, value) => {
                trace.uops.push(Uop::Store { addr: *addr, value: *value });
                image.write_word(*addr, *value);
                if area.current_tx().is_some() {
                    dirty.record(*addr);
                }
            }
            Op::TxBegin { undo_hint } => {
                let tx = next_tx;
                next_tx = next_tx.next();
                area.begin_tx(tx)?;

                // Step 1: create and persist the undo log for every grain
                // in the (conservative) hint, one grain at a time.
                let mut seen_grains = std::collections::HashSet::new();
                for hint_addr in undo_hint {
                    let grain = hint_addr.log_grain();
                    if !seen_grains.insert(grain) {
                        continue;
                    }
                    let grain_base = grain.base();
                    // Software reads the original data...
                    for w in 0..4u64 {
                        trace
                            .uops
                            .push(Uop::Load { addr: grain_base.offset(w * 8), dependent: false });
                    }
                    let (slot, seq) = area.alloc()?;
                    let entry = LogEntry::new(image.read_grain(grain_base), grain_base, tx, seq);
                    // ...then stores the 64 B entry word by word...
                    for (i, word) in entry.encode_words().iter().enumerate() {
                        trace
                            .uops
                            .push(Uop::Store { addr: slot.offset(i as u64 * 8), value: *word });
                    }
                    image.write_line(slot.line(), &entry.encode_words());
                    // ...and flushes the log line.
                    trace.uops.push(Uop::Clwb { addr: slot });
                }
                persist_point(&mut trace);

                // Step 2: set and persist logFlag = txID.
                trace.uops.push(Uop::Store { addr: log_flag, value: tx.raw() });
                image.write_word(log_flag, tx.raw());
                trace.uops.push(Uop::Clwb { addr: log_flag });
                persist_point(&mut trace);
            }
            Op::LockWait { addr, ticket, external } => {
                // Other threads' committed writes become visible at the
                // acquire point; fold them into the pre-execution image so
                // undo-log entries logged after this acquire carry the
                // values this thread actually observes at run time.
                for (a, v) in external {
                    image.write_word(*a, *v);
                }
                trace.uops.push(Uop::WaitValue { addr: *addr, expected: *ticket });
            }
            Op::TxEnd => {
                area.end_tx()?;
                // Step 3: persist the data updates.
                for line in dirty.drain() {
                    trace.uops.push(Uop::Clwb { addr: line.base() });
                }
                persist_point(&mut trace);

                // Step 4: clear and persist logFlag.
                trace.uops.push(Uop::Store { addr: log_flag, value: 0 });
                image.write_word(log_flag, 0);
                trace.uops.push(Uop::Clwb { addr: log_flag });
                persist_point(&mut trace);
                trace.transactions += 1;
            }
        }
    }
    Ok(trace)
}

/// Expands with access to the working image for tests that need the final
/// functional state.
#[cfg(test)]
pub(crate) fn expand_with_final_image(
    program: &Program,
    layout: &AddressLayout,
    opts: &ExpandOptions,
) -> (Trace, crate::pmem::WordImage) {
    let trace = expand(program, layout, opts, false).unwrap();
    let mut image = (*opts.initial_image).clone();
    for u in &trace.uops {
        if let Uop::Store { addr, value } = u {
            image.write_word(*addr, *value);
        }
    }
    (trace, image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmem::WordImage;
    use proteus_types::{Addr, ThreadId};

    fn one_tx_program(node: Addr) -> Program {
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![node]);
        p.write(node, 0xAB);
        p.tx_end();
        p
    }

    #[test]
    fn four_sfences_per_transaction() {
        let layout = AddressLayout::default();
        let p = one_tx_program(Addr::new(0x1000_0000));
        let t = expand(&p, &layout, &ExpandOptions::default(), false).unwrap();
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Sfence)), 4);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Pcommit)), 0);
    }

    #[test]
    fn pcommit_variant_adds_drains() {
        let layout = AddressLayout::default();
        let p = one_tx_program(Addr::new(0x1000_0000));
        let t = expand(&p, &layout, &ExpandOptions::default(), true).unwrap();
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Pcommit)), 4);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Sfence)), 8);
    }

    #[test]
    fn log_entry_carries_pre_transaction_value() {
        let layout = AddressLayout::default();
        let node = Addr::new(0x1000_0000);
        let mut initial = WordImage::new();
        initial.write_word(node, 0x11);
        let opts = ExpandOptions { initial_image: initial.into(), ..Default::default() };
        let p = one_tx_program(node);
        let (_, final_image) = expand_with_final_image(&p, &layout, &opts);
        // The log entry at slot 0 must hold the OLD value 0x11, while the
        // data location holds the new value 0xAB.
        let slot = layout.log_slot(ThreadId::new(0), 0);
        let entry = LogEntry::read_from(&final_image, slot).unwrap();
        assert_eq!(entry.data[0], 0x11);
        assert_eq!(entry.log_from, node);
        assert_eq!(final_image.read_word(node), 0xAB);
    }

    #[test]
    fn external_writes_feed_undo_values_after_acquire() {
        // Another thread committed 0x77 to the shared word before our
        // acquire; the undo entry logged after the acquire must capture
        // 0x77, not the stale initial 0x11.
        let layout = AddressLayout::default();
        let shared = Addr::new(0x6000_0000);
        let lock = Addr::new(0x0E10_0000);
        let mut initial = WordImage::new();
        initial.write_word(shared, 0x11);
        let opts = ExpandOptions { initial_image: initial.into(), ..Default::default() };
        let mut p = Program::new(ThreadId::new(1));
        p.lock_wait(lock, 1, vec![(shared, 0x77)]);
        p.tx_begin(vec![shared]);
        p.write(shared, 0x88);
        p.tx_end();
        p.write(lock, 2);
        let t = expand(&p, &layout, &opts, false).unwrap();
        assert_eq!(
            t.count_matching(|u| matches!(u, Uop::WaitValue { expected: 1, .. })),
            1,
            "acquire compiles to one wait-value"
        );
        let mut image = WordImage::new();
        for u in &t.uops {
            if let Uop::Store { addr, value } = u {
                image.write_word(*addr, *value);
            }
        }
        let slot = layout.log_slot(ThreadId::new(1), 0);
        let entry = LogEntry::read_from(&image, slot).unwrap();
        assert_eq!(entry.data[0], 0x77);
    }

    #[test]
    fn conservative_hint_logs_unwritten_grains() {
        // Tree rebalancing logs nodes that end up unmodified; the trace
        // must still log every hinted grain.
        let layout = AddressLayout::default();
        let mut p = Program::new(ThreadId::new(0));
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0100);
        let c = Addr::new(0x1000_0200);
        p.tx_begin(vec![a, b, c]);
        p.write(a, 1);
        p.tx_end();
        let t = expand(&p, &layout, &ExpandOptions::default(), false).unwrap();
        // 3 grains logged, 8 stores each, plus 1 data store, 1 logFlag set,
        // 1 logFlag clear.
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Store { .. })), 3 * 8 + 3);
    }

    #[test]
    fn duplicate_hint_grains_logged_once() {
        let layout = AddressLayout::default();
        let mut p = Program::new(ThreadId::new(0));
        let a = Addr::new(0x1000_0000);
        p.tx_begin(vec![a, a.offset(8)]); // same grain twice
        p.write(a, 1);
        p.tx_end();
        let t = expand(&p, &layout, &ExpandOptions::default(), false).unwrap();
        // 1 grain logged: 8 log stores + 1 data + 2 logFlag.
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Store { .. })), 8 + 3);
    }

    #[test]
    fn log_flag_protocol_sets_then_clears() {
        let layout = AddressLayout::default();
        let flag = layout.log_flag(ThreadId::new(0));
        let p = one_tx_program(Addr::new(0x1000_0000));
        let t = expand(&p, &layout, &ExpandOptions::default(), false).unwrap();
        let flag_writes: Vec<u64> = t
            .uops
            .iter()
            .filter_map(|u| match u {
                Uop::Store { addr, value } if *addr == flag => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(flag_writes, vec![1, 0]); // txID=1 then cleared
    }
}
