//! The scheme registry: one descriptor per logging scheme, and the
//! **only** module allowed to `match` on [`LoggingSchemeKind`]
//! (`tools/lint-scheme-dispatch.sh` enforces this from CI).
//!
//! Everything the workspace previously dispatched ad hoc — trace
//! expansion, the recovery protocol, core-side retirement/ordering
//! policy, the memory-controller drain policy, and sweep-roster
//! membership — lives here as data. Adding a scheme is one enum
//! variant + label in `proteus_types::config` (the identity layer that
//! bottom-of-stack crates like the JSON codecs need) plus one
//! [`SchemeDescriptor`] registration in this module; the registry
//! completeness test fails CI on a half-wired scheme, and every sweep
//! (fig6, crashsweep, the cycle-engine bench, distributed service
//! baskets) picks the new scheme up from the rosters automatically.

use super::{hw, incll, nolog, sw, ExpandOptions};
use crate::isa::Trace;
use crate::layout::AddressLayout;
use crate::pmem::WordImage;
use crate::program::Program;
use crate::recovery::{self, ThreadOutcome, WriteBudget};
use proteus_types::config::LoggingSchemeKind;
use proteus_types::{SimError, ThreadId};

/// Expands one thread's program into the scheme's micro-op trace.
pub type ExpandFn = fn(&Program, &AddressLayout, &ExpandOptions) -> Result<Trace, SimError>;

/// Runs one thread's crash recovery against a durable image, spending
/// durable writes from the budget (see
/// [`recover_with_budget`](crate::recovery::recover_with_budget)).
pub type RecoverFn = fn(
    &mut WordImage,
    &AddressLayout,
    ThreadId,
    &mut WriteBudget,
) -> Result<ThreadOutcome, SimError>;

/// Core-side pipeline policy: which retirement/ordering gates the
/// scheme engages (previously scattered `match`es in `proteus-cpu`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorePolicy {
    /// The Proteus core-side hardware is engaged: log registers, LogQ,
    /// LLT, per-thread log-area cursor driven by trace `tx-begin`/
    /// `tx-end` markers, and the write-ahead gate that holds a store's
    /// cache release until its log flush is acknowledged (§4.2).
    pub proteus_hw: bool,
    /// ATOM posted-log retirement: a transactional store cannot retire
    /// until the MC acknowledges its hardware-created log entry.
    pub atom_retirement: bool,
}

impl CorePolicy {
    /// No core-side logging hardware: stores retire and release like
    /// ordinary PMEM stores (software and no-log schemes).
    pub const NONE: CorePolicy = CorePolicy { proteus_hw: false, atom_retirement: false };
}

/// How a scheme's commit protocol orders a ticket-lock release against
/// its persist barriers — the contended-workload analogue of
/// `failure_safe`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockHandoffPolicy {
    /// The release store is emitted after the transaction's commit point
    /// is durable (`tx-end` retires only once persists drain / the commit
    /// record is fenced), so the next lock owner inherits durably
    /// committed state. Required for a scheme to join the contention
    /// sweep: it is what makes every structure's committed groups a
    /// ticket-order prefix at any crash point.
    DurableCommit,
    /// The release may publish uncommitted state to the next owner.
    /// Acceptable only for schemes with no crash-consistency claim.
    SpeculativeOk,
}

/// Memory-controller LPQ policy for the scheme's log writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPolicy {
    /// Log entries drain to NVMM like ordinary writes.
    DrainAlways,
    /// Log entries are held in the LPQ and flash-cleared once their
    /// transaction commits — the paper's log write removal.
    KeepUntilCommit,
}

/// Everything the workspace needs to know about one logging scheme.
#[derive(Debug, Clone, Copy)]
pub struct SchemeDescriptor {
    /// The enum identity (spec hashes and codecs key on its label).
    pub kind: LoggingSchemeKind,
    /// Report label — must equal `kind.label()` (tested).
    pub label: &'static str,
    /// Short lowercase name for CLI selectors (`logdump --scheme`).
    pub cli_name: &'static str,
    /// One-line description for docs and scheme tables.
    pub blurb: &'static str,
    /// Trace expansion (the scheme "compiler").
    pub expand: ExpandFn,
    /// Per-thread crash-recovery protocol.
    pub recover_thread: RecoverFn,
    /// Core-side retirement/ordering policy.
    pub core: CorePolicy,
    /// Memory-controller log drain policy.
    pub drain: DrainPolicy,
    /// Lock-release-vs-persist ordering under contended workloads.
    pub lock_handoff: LockHandoffPolicy,
    /// Whether the scheme guarantees crash consistency at transaction
    /// boundaries (NoLog deliberately does not).
    pub failure_safe: bool,
    /// Member of the `crashsweep` zero-violation matrix. A subset of
    /// the failure-safe schemes: variants that add no crash-protocol
    /// coverage over a sibling (SwPmemPcommit is SwPmem plus a drain)
    /// stay out to keep the sweep budget on distinct protocols.
    pub crash_sweep: bool,
    /// The speedup baseline (PMEM software logging). Excluded from
    /// figure columns, which are all speedups *over* it.
    pub baseline: bool,
    /// Member of the cycle-engine benchmark basket
    /// (`reproduce bench`, BENCH_cycle_engine.json).
    pub bench_basket: bool,
    /// The paper's Figure 6 geomean speedup over the PMEM baseline,
    /// for the `reproduce fig6` fidelity guard. `None` for the
    /// baseline itself (1.0 by construction) and for schemes the
    /// paper did not evaluate (InCLL).
    pub fig6_paper_geomean: Option<f64>,
}

fn expand_sw(p: &Program, layout: &AddressLayout, opts: &ExpandOptions) -> Result<Trace, SimError> {
    sw::expand(p, layout, opts, false)
}

fn expand_sw_pcommit(
    p: &Program,
    layout: &AddressLayout,
    opts: &ExpandOptions,
) -> Result<Trace, SimError> {
    sw::expand(p, layout, opts, true)
}

fn expand_nolog(p: &Program, _: &AddressLayout, _: &ExpandOptions) -> Result<Trace, SimError> {
    nolog::expand(p)
}

fn expand_atom(p: &Program, _: &AddressLayout, _: &ExpandOptions) -> Result<Trace, SimError> {
    hw::expand_atom(p)
}

fn expand_proteus(p: &Program, _: &AddressLayout, opts: &ExpandOptions) -> Result<Trace, SimError> {
    hw::expand_proteus(p, opts)
}

fn recover_none(
    _: &mut WordImage,
    _: &AddressLayout,
    _: ThreadId,
    _: &mut WriteBudget,
) -> Result<ThreadOutcome, SimError> {
    Ok(ThreadOutcome::Clean)
}

/// Every registered scheme, in the order the paper's figures present
/// them (the same order as [`LoggingSchemeKind::ALL`]; tested).
pub static DESCRIPTORS: [SchemeDescriptor; 7] = [
    SchemeDescriptor {
        kind: LoggingSchemeKind::SwPmem,
        label: "PMEM",
        cli_name: "sw",
        blurb: "software undo logging with clwb/sfence (Fig. 2); the speedup baseline",
        expand: expand_sw,
        recover_thread: recovery::recover_sw_thread,
        core: CorePolicy::NONE,
        drain: DrainPolicy::DrainAlways,
        lock_handoff: LockHandoffPolicy::DurableCommit,
        failure_safe: true,
        crash_sweep: true,
        baseline: true,
        bench_basket: false,
        fig6_paper_geomean: None,
    },
    SchemeDescriptor {
        kind: LoggingSchemeKind::SwPmemPcommit,
        label: "PMEM+pcommit",
        cli_name: "pcommit",
        blurb: "software undo logging draining the WPQ at every persist point",
        expand: expand_sw_pcommit,
        recover_thread: recovery::recover_sw_thread,
        core: CorePolicy::NONE,
        drain: DrainPolicy::DrainAlways,
        lock_handoff: LockHandoffPolicy::DurableCommit,
        failure_safe: true,
        crash_sweep: false,
        baseline: false,
        bench_basket: true,
        fig6_paper_geomean: Some(0.79),
    },
    SchemeDescriptor {
        kind: LoggingSchemeKind::Atom,
        label: "ATOM",
        cli_name: "atom",
        blurb: "hardware undo logging at store retirement with posted/source-log optimisations",
        expand: expand_atom,
        recover_thread: recovery::recover_hw_thread,
        core: CorePolicy { proteus_hw: false, atom_retirement: true },
        drain: DrainPolicy::DrainAlways,
        lock_handoff: LockHandoffPolicy::DurableCommit,
        failure_safe: true,
        crash_sweep: true,
        baseline: false,
        bench_basket: true,
        fig6_paper_geomean: Some(1.33),
    },
    SchemeDescriptor {
        kind: LoggingSchemeKind::ProteusNoLwr,
        label: "Proteus+NoLWR",
        cli_name: "nolwr",
        blurb: "Proteus with log write removal disabled: log flushes drain to NVMM",
        expand: expand_proteus,
        recover_thread: recovery::recover_hw_thread,
        core: CorePolicy { proteus_hw: true, atom_retirement: false },
        drain: DrainPolicy::DrainAlways,
        lock_handoff: LockHandoffPolicy::DurableCommit,
        failure_safe: true,
        crash_sweep: true,
        baseline: false,
        bench_basket: false,
        fig6_paper_geomean: Some(1.44),
    },
    SchemeDescriptor {
        kind: LoggingSchemeKind::Proteus,
        label: "Proteus",
        cli_name: "proteus",
        blurb: "software-supported hardware logging with log write removal (LogQ+LLT+LPQ)",
        expand: expand_proteus,
        recover_thread: recovery::recover_hw_thread,
        core: CorePolicy { proteus_hw: true, atom_retirement: false },
        drain: DrainPolicy::KeepUntilCommit,
        lock_handoff: LockHandoffPolicy::DurableCommit,
        failure_safe: true,
        crash_sweep: true,
        baseline: false,
        bench_basket: true,
        fig6_paper_geomean: Some(1.46),
    },
    SchemeDescriptor {
        kind: LoggingSchemeKind::Incll,
        label: "InCLL",
        cli_name: "incll",
        blurb: "in-cache-line logging: the undo entry lives in the mutated line itself",
        expand: incll::expand,
        recover_thread: incll::recover_thread,
        core: CorePolicy::NONE,
        drain: DrainPolicy::DrainAlways,
        lock_handoff: LockHandoffPolicy::DurableCommit,
        failure_safe: true,
        crash_sweep: true,
        baseline: false,
        bench_basket: true,
        fig6_paper_geomean: None,
    },
    SchemeDescriptor {
        kind: LoggingSchemeKind::NoLog,
        label: "PMEM+nolog",
        cli_name: "nolog",
        blurb: "logging removed entirely: the ideal upper bound, not failure-safe",
        expand: expand_nolog,
        recover_thread: recover_none,
        core: CorePolicy::NONE,
        drain: DrainPolicy::DrainAlways,
        lock_handoff: LockHandoffPolicy::SpeculativeOk,
        failure_safe: false,
        crash_sweep: false,
        baseline: false,
        bench_basket: false,
        fig6_paper_geomean: Some(1.51),
    },
];

/// Resolves the descriptor for `kind`.
pub fn descriptor(kind: LoggingSchemeKind) -> &'static SchemeDescriptor {
    // The one sanctioned `match` on the scheme enum: indices into
    // `DESCRIPTORS`, pinned by `registry_order_matches_all`.
    let idx = match kind {
        LoggingSchemeKind::SwPmem => 0,
        LoggingSchemeKind::SwPmemPcommit => 1,
        LoggingSchemeKind::Atom => 2,
        LoggingSchemeKind::ProteusNoLwr => 3,
        LoggingSchemeKind::Proteus => 4,
        LoggingSchemeKind::Incll => 5,
        LoggingSchemeKind::NoLog => 6,
    };
    &DESCRIPTORS[idx]
}

/// All descriptors in presentation order.
pub fn all() -> &'static [SchemeDescriptor] {
    &DESCRIPTORS
}

/// Looks a scheme up by its report label.
pub fn by_label(label: &str) -> Option<&'static SchemeDescriptor> {
    DESCRIPTORS.iter().find(|d| d.label == label)
}

/// Looks a scheme up by its CLI short name.
pub fn by_cli_name(name: &str) -> Option<&'static SchemeDescriptor> {
    DESCRIPTORS.iter().find(|d| d.cli_name == name)
}

/// The kinds whose descriptors satisfy `pred`, in presentation order —
/// the single source every sweep roster derives from.
pub fn kinds_where(pred: impl Fn(&SchemeDescriptor) -> bool) -> Vec<LoggingSchemeKind> {
    DESCRIPTORS.iter().filter(|d| pred(d)).map(|d| d.kind).collect()
}

/// Figure presentation columns: every scheme except the baseline.
pub fn figure_columns() -> Vec<LoggingSchemeKind> {
    kinds_where(|d| !d.baseline)
}

/// The `crashsweep` zero-violation matrix.
pub fn crash_sweep_roster() -> Vec<LoggingSchemeKind> {
    kinds_where(|d| d.crash_sweep)
}

/// The cycle-engine benchmark basket.
pub fn bench_basket() -> Vec<LoggingSchemeKind> {
    kinds_where(|d| d.bench_basket)
}

/// The contention-sweep roster: every failure-safe scheme whose commit
/// protocol hands locks off durably (all of them — a failure-safe scheme
/// with speculative handoff would be a contradiction, tested below).
pub fn contention_roster() -> Vec<LoggingSchemeKind> {
    kinds_where(|d| d.failure_safe && d.lock_handoff == LockHandoffPolicy::DurableCommit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_order_matches_all() {
        let kinds: Vec<_> = DESCRIPTORS.iter().map(|d| d.kind).collect();
        assert_eq!(kinds, LoggingSchemeKind::ALL.to_vec());
        for d in all() {
            assert_eq!(d.label, d.kind.label(), "{:?}", d.kind);
            assert!(std::ptr::eq(descriptor(d.kind), d), "{:?} resolves elsewhere", d.kind);
        }
    }

    #[test]
    fn labels_and_cli_names_are_unique() {
        for (i, a) in DESCRIPTORS.iter().enumerate() {
            for b in &DESCRIPTORS[i + 1..] {
                assert_ne!(a.label, b.label);
                assert_ne!(a.cli_name, b.cli_name);
            }
        }
    }

    #[test]
    fn crash_sweep_implies_failure_safe() {
        for d in all() {
            if d.crash_sweep {
                assert!(d.failure_safe, "{} swept but not failure-safe", d.label);
            }
        }
    }

    #[test]
    fn failure_safe_schemes_hand_off_durably() {
        for d in all() {
            assert_eq!(
                d.failure_safe,
                d.lock_handoff == LockHandoffPolicy::DurableCommit,
                "{}: failure-safety and durable lock handoff must agree",
                d.label
            );
        }
        let roster = contention_roster();
        assert_eq!(roster.len(), 6);
        assert!(!roster.contains(&LoggingSchemeKind::NoLog));
    }

    #[test]
    fn rosters_pick_expected_schemes() {
        assert!(!figure_columns().contains(&LoggingSchemeKind::SwPmem));
        assert!(figure_columns().contains(&LoggingSchemeKind::NoLog));
        assert!(!crash_sweep_roster().contains(&LoggingSchemeKind::NoLog));
        assert!(crash_sweep_roster().contains(&LoggingSchemeKind::Incll));
        assert!(bench_basket().contains(&LoggingSchemeKind::Proteus));
    }
}
