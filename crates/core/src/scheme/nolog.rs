//! PMEM+nolog expansion: data persistence without any logging.
//!
//! This is the paper's ideal case — not failure-safe, but free of every
//! logging overhead. Transactional stores execute directly; at commit each
//! dirtied line is flushed with one `clwb` and a single `sfence` orders
//! the flushes before post-transaction code.

use super::DirtyLines;
use crate::isa::{Trace, Uop};
use crate::program::{Op, Program};
use proteus_types::SimError;

pub(super) fn expand(program: &Program) -> Result<Trace, SimError> {
    let mut trace = Trace::new(program.thread);
    let mut dirty = DirtyLines::new();
    let mut in_tx = false;
    for op in &program.ops {
        match op {
            Op::Read(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: false }),
            Op::ReadDep(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: true }),
            Op::Compute(lat) => trace.uops.push(Uop::Compute { latency: *lat }),
            Op::Write(addr, value) => {
                trace.uops.push(Uop::Store { addr: *addr, value: *value });
                if in_tx {
                    dirty.record(*addr);
                }
            }
            Op::TxBegin { .. } => {
                in_tx = true;
            }
            Op::TxEnd => {
                for line in dirty.drain() {
                    trace.uops.push(Uop::Clwb { addr: line.base() });
                }
                trace.uops.push(Uop::Sfence);
                trace.transactions += 1;
                in_tx = false;
            }
            Op::LockWait { addr, ticket, .. } => {
                trace.uops.push(Uop::WaitValue { addr: *addr, expected: *ticket });
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::{Addr, ThreadId};

    #[test]
    fn one_clwb_per_node_line() {
        let mut p = Program::new(ThreadId::new(0));
        let node = Addr::new(0x1000_0000);
        p.tx_begin(vec![node]);
        // Three stores to the same 64 B node.
        p.write(node, 1);
        p.write(node.offset(8), 2);
        p.write(node.offset(16), 3);
        p.tx_end();
        let t = expand(&p).unwrap();
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Store { .. })), 3);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Clwb { .. })), 1);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Sfence)), 1);
        assert_eq!(t.count_matching(|u| u.is_logging()), 0);
    }

    #[test]
    fn non_transactional_stores_not_flushed() {
        let mut p = Program::new(ThreadId::new(0));
        p.write(Addr::new(0x100), 1);
        let t = expand(&p).unwrap();
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Clwb { .. })), 0);
        assert_eq!(t.transactions, 0);
    }
}
