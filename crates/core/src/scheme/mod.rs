//! Scheme expansion: compiling logical programs into micro-op traces.
//!
//! The paper evaluates one set of benchmarks under several logging
//! implementations (§6). This module is the corresponding "compiler":
//! [`expand_program`] takes a scheme-independent [`Program`] and produces
//! the instruction trace that scheme would execute.
//!
//! * [`LoggingSchemeKind::SwPmem`] / [`LoggingSchemeKind::SwPmemPcommit`] —
//!   the four-step software undo protocol of Fig. 2, built from loads,
//!   stores, `clwb`, `sfence` (and `pcommit`).
//! * [`LoggingSchemeKind::NoLog`] — data persistence only (the ideal).
//! * [`LoggingSchemeKind::Atom`] — no logging instructions; hardware logs
//!   at store retirement (the trace carries `tx-begin`/`tx-end` so the
//!   core knows transaction boundaries).
//! * [`LoggingSchemeKind::Proteus`] / [`LoggingSchemeKind::ProteusNoLwr`] —
//!   each transactional store expands into `log-load; log-flush; st`
//!   exactly as in Fig. 4.
//! * [`LoggingSchemeKind::Incll`] — in-cache-line logging: the undo
//!   entry is co-located in the mutated line, with an external-entry
//!   fallback (see [`mod@incll`]'s module docs).
//!
//! Dispatch is table-driven: every per-scheme behaviour lives in one
//! [`registry::SchemeDescriptor`] row, and [`expand_program_with`] simply
//! calls the descriptor's expansion hook.

mod hw;
mod incll;
mod nolog;
pub mod registry;
mod sw;

use crate::isa::Trace;
use crate::layout::AddressLayout;
use crate::pmem::WordImage;
use crate::program::Program;
use proteus_types::config::LoggingSchemeKind;
use proteus_types::SimError;
use std::sync::Arc;

/// Options controlling expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandOptions {
    /// Number of log registers available for round-robin allocation in the
    /// Proteus expansion (Table 1: 8).
    pub log_registers: usize,
    /// Initial memory contents, used by the software expansion to
    /// materialise undo-log values (software reads the data it logs; the
    /// expansion pre-executes those reads so store micro-ops carry literal
    /// values). Shared via [`Arc`] so per-core expansion never deep-copies
    /// the image; the software expansion clones the contents only when it
    /// actually needs a mutable pre-execution scratch copy.
    pub initial_image: Arc<WordImage>,
}

impl Default for ExpandOptions {
    fn default() -> Self {
        ExpandOptions { log_registers: 8, initial_image: Arc::new(WordImage::new()) }
    }
}

/// Expands `program` into the micro-op trace executed under `kind`, with
/// default options (8 log registers, zeroed initial memory).
///
/// # Errors
///
/// Returns an error if the program fails [`Program::validate`], or if the
/// software expansion overflows the per-thread log area within one
/// transaction.
pub fn expand_program(
    program: &Program,
    kind: LoggingSchemeKind,
    layout: &AddressLayout,
) -> Result<Trace, SimError> {
    expand_program_with(program, kind, layout, &ExpandOptions::default())
}

/// Expands `program` with explicit [`ExpandOptions`].
///
/// # Errors
///
/// See [`expand_program`].
pub fn expand_program_with(
    program: &Program,
    kind: LoggingSchemeKind,
    layout: &AddressLayout,
    opts: &ExpandOptions,
) -> Result<Trace, SimError> {
    program.validate()?;
    (registry::descriptor(kind).expand)(program, layout, opts)
}

/// An ordered set of cache lines dirtied within a transaction, used to
/// emit one `clwb` per line at commit (Table 2: one node update needs one
/// `clwb`).
#[derive(Debug, Default)]
pub(crate) struct DirtyLines {
    order: Vec<proteus_types::addr::LineAddr>,
    seen: std::collections::HashSet<proteus_types::addr::LineAddr>,
}

impl DirtyLines {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&mut self, addr: proteus_types::Addr) {
        let line = addr.line();
        if self.seen.insert(line) {
            self.order.push(line);
        }
    }

    pub(crate) fn drain(&mut self) -> Vec<proteus_types::addr::LineAddr> {
        self.seen.clear();
        std::mem::take(&mut self.order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Uop;
    use proteus_types::{Addr, ThreadId};

    fn simple_program() -> Program {
        let mut p = Program::new(ThreadId::new(0));
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0040);
        p.tx_begin(vec![a, b]);
        p.read(a);
        p.write(a, 1);
        p.write(b, 2);
        p.tx_end();
        p
    }

    #[test]
    fn every_scheme_expands() {
        let layout = AddressLayout::default();
        let p = simple_program();
        for kind in LoggingSchemeKind::ALL {
            let t = expand_program(&p, kind, &layout).unwrap();
            assert!(!t.is_empty(), "{kind:?} produced empty trace");
            assert_eq!(t.transactions, 1);
            assert_eq!(t.thread, p.thread);
        }
    }

    #[test]
    fn instruction_count_ordering_matches_paper() {
        // SW logging executes the most instructions, NoLog the fewest,
        // Proteus in between (close to NoLog + 2 per store).
        let layout = AddressLayout::default();
        let p = simple_program();
        let sw = expand_program(&p, LoggingSchemeKind::SwPmem, &layout).unwrap().len();
        let proteus = expand_program(&p, LoggingSchemeKind::Proteus, &layout).unwrap().len();
        let atom = expand_program(&p, LoggingSchemeKind::Atom, &layout).unwrap().len();
        let nolog = expand_program(&p, LoggingSchemeKind::NoLog, &layout).unwrap().len();
        assert!(sw > proteus, "sw={sw} proteus={proteus}");
        assert!(proteus > atom, "proteus={proteus} atom={atom}");
        assert!(atom >= nolog, "atom={atom} nolog={nolog}");
    }

    #[test]
    fn validation_errors_propagate() {
        let layout = AddressLayout::default();
        let mut p = Program::new(ThreadId::new(0));
        p.tx_end();
        assert!(expand_program(&p, LoggingSchemeKind::Proteus, &layout).is_err());
    }

    #[test]
    fn dirty_lines_dedup_in_order() {
        let mut d = DirtyLines::new();
        d.record(Addr::new(0x100));
        d.record(Addr::new(0x108)); // same line
        d.record(Addr::new(0x140));
        d.record(Addr::new(0x100));
        let lines = d.drain();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].base(), Addr::new(0x100));
        assert_eq!(lines[1].base(), Addr::new(0x140));
        assert!(d.drain().is_empty());
    }

    #[test]
    fn hw_traces_carry_tx_markers_sw_traces_do_not() {
        let layout = AddressLayout::default();
        let p = simple_program();
        let has_tx = |t: &Trace| {
            t.count_matching(|u| matches!(u, Uop::TxBegin { .. } | Uop::TxEnd { .. })) > 0
        };
        assert!(has_tx(&expand_program(&p, LoggingSchemeKind::Atom, &layout).unwrap()));
        assert!(has_tx(&expand_program(&p, LoggingSchemeKind::Proteus, &layout).unwrap()));
        assert!(!has_tx(&expand_program(&p, LoggingSchemeKind::SwPmem, &layout).unwrap()));
        assert!(!has_tx(&expand_program(&p, LoggingSchemeKind::NoLog, &layout).unwrap()));
    }
}
