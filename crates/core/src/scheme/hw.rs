//! Hardware-logging expansions: ATOM and Proteus.
//!
//! **ATOM** (paper §3.1, §5.1): software only marks transaction
//! boundaries; the hardware creates undo-log entries automatically right
//! before each transactional store retires. The trace therefore contains
//! no logging instructions at all — just `tx-begin`, the body, per-line
//! `clwb`s, and `tx-end`.
//!
//! **Proteus** (paper §3.2, Fig. 4): the compiler expands every
//! transactional store into the three-instruction sequence
//! `log-load LRn, addr; log-flush LRn, (LTA)+; st addr`. Log registers are
//! assigned round-robin; repeated stores to an already-logged grain still
//! carry the pair (alias analysis is unreliable, §4.2) and are elided at
//! run time by the LLT.

use super::DirtyLines;
use crate::isa::{LogRegId, Trace, Uop};
use crate::program::{Op, Program};
use crate::scheme::ExpandOptions;
use proteus_types::{SimError, TxId};

pub(super) fn expand_atom(program: &Program) -> Result<Trace, SimError> {
    let mut trace = Trace::new(program.thread);
    let mut dirty = DirtyLines::new();
    let mut next_tx = TxId::new(1);
    let mut current: Option<TxId> = None;
    for op in &program.ops {
        match op {
            Op::Read(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: false }),
            Op::ReadDep(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: true }),
            Op::Compute(lat) => trace.uops.push(Uop::Compute { latency: *lat }),
            Op::Write(addr, value) => {
                trace.uops.push(Uop::Store { addr: *addr, value: *value });
                if current.is_some() {
                    dirty.record(*addr);
                }
            }
            Op::TxBegin { .. } => {
                let tx = next_tx;
                next_tx = next_tx.next();
                current = Some(tx);
                trace.uops.push(Uop::TxBegin { tx });
            }
            Op::TxEnd => {
                let tx = current.take().expect("validated program");
                for line in dirty.drain() {
                    trace.uops.push(Uop::Clwb { addr: line.base() });
                }
                trace.uops.push(Uop::TxEnd { tx });
                trace.transactions += 1;
            }
            // Hardware logging reads old values from the coherent cache at
            // run time, so the acquire needs no image pre-execution.
            Op::LockWait { addr, ticket, .. } => {
                trace.uops.push(Uop::WaitValue { addr: *addr, expected: *ticket });
            }
        }
    }
    Ok(trace)
}

pub(super) fn expand_proteus(program: &Program, opts: &ExpandOptions) -> Result<Trace, SimError> {
    if opts.log_registers == 0 {
        return Err(SimError::InvalidConfig("log_registers must be at least 1".into()));
    }
    let mut trace = Trace::new(program.thread);
    let mut dirty = DirtyLines::new();
    let mut next_tx = TxId::new(1);
    let mut current: Option<TxId> = None;
    let mut lr_counter = 0usize;
    for op in &program.ops {
        match op {
            Op::Read(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: false }),
            Op::ReadDep(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: true }),
            Op::Compute(lat) => trace.uops.push(Uop::Compute { latency: *lat }),
            Op::Write(addr, value) => {
                if current.is_some() {
                    let lr = LogRegId((lr_counter % opts.log_registers) as u8);
                    lr_counter += 1;
                    trace.uops.push(Uop::LogLoad { lr, addr: addr.log_grain().base() });
                    trace.uops.push(Uop::LogFlush { lr });
                    dirty.record(*addr);
                }
                trace.uops.push(Uop::Store { addr: *addr, value: *value });
            }
            Op::TxBegin { .. } => {
                let tx = next_tx;
                next_tx = next_tx.next();
                current = Some(tx);
                trace.uops.push(Uop::TxBegin { tx });
            }
            Op::TxEnd => {
                let tx = current.take().expect("validated program");
                for line in dirty.drain() {
                    trace.uops.push(Uop::Clwb { addr: line.base() });
                }
                trace.uops.push(Uop::TxEnd { tx });
                trace.transactions += 1;
            }
            Op::LockWait { addr, ticket, .. } => {
                trace.uops.push(Uop::WaitValue { addr: *addr, expected: *ticket });
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::{Addr, ThreadId};

    fn two_store_tx() -> Program {
        let mut p = Program::new(ThreadId::new(0));
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0040);
        p.tx_begin(vec![a, b]);
        p.write(a, 1);
        p.write(b, 2);
        p.tx_end();
        p
    }

    #[test]
    fn atom_has_no_logging_instructions() {
        let t = expand_atom(&two_store_tx()).unwrap();
        assert_eq!(t.count_matching(|u| u.is_logging()), 0);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::TxBegin { .. })), 1);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::TxEnd { .. })), 1);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Clwb { .. })), 2);
    }

    #[test]
    fn proteus_matches_fig4_shape() {
        // Fig. 4: each store becomes log-load; log-flush; st.
        let t = expand_proteus(&two_store_tx(), &ExpandOptions::default()).unwrap();
        let kinds: Vec<&Uop> = t.uops.iter().collect();
        assert!(matches!(kinds[0], Uop::TxBegin { .. }));
        assert!(matches!(kinds[1], Uop::LogLoad { lr: LogRegId(0), .. }));
        assert!(matches!(kinds[2], Uop::LogFlush { lr: LogRegId(0) }));
        assert!(matches!(kinds[3], Uop::Store { .. }));
        assert!(matches!(kinds[4], Uop::LogLoad { lr: LogRegId(1), .. }));
        assert!(matches!(kinds[5], Uop::LogFlush { lr: LogRegId(1) }));
        assert!(matches!(kinds[6], Uop::Store { .. }));
    }

    #[test]
    fn log_registers_wrap_round_robin() {
        let mut p = Program::new(ThreadId::new(0));
        let base = Addr::new(0x1000_0000);
        let hints: Vec<Addr> = (0..10).map(|i| base.offset(i * 64)).collect();
        p.tx_begin(hints.clone());
        for (i, a) in hints.iter().enumerate() {
            p.write(*a, i as u64);
        }
        p.tx_end();
        let opts = ExpandOptions { log_registers: 4, ..Default::default() };
        let t = expand_proteus(&p, &opts).unwrap();
        let regs: Vec<u8> = t
            .uops
            .iter()
            .filter_map(|u| match u {
                Uop::LogLoad { lr, .. } => Some(lr.0),
                _ => None,
            })
            .collect();
        assert_eq!(regs, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn repeated_grain_stores_still_emit_log_pairs() {
        // The compiler cannot prove aliasing; the LLT dedups at run time.
        let mut p = Program::new(ThreadId::new(0));
        let a = Addr::new(0x1000_0000);
        p.tx_begin(vec![a]);
        p.write(a, 1);
        p.write(a.offset(8), 2); // same grain
        p.tx_end();
        let t = expand_proteus(&p, &ExpandOptions::default()).unwrap();
        assert_eq!(t.count_matching(|u| matches!(u, Uop::LogLoad { .. })), 2);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::LogFlush { .. })), 2);
    }

    #[test]
    fn log_load_targets_grain_base() {
        let mut p = Program::new(ThreadId::new(0));
        let a = Addr::new(0x1000_0038); // not grain aligned
        p.tx_begin(vec![a]);
        p.write(a, 1);
        p.tx_end();
        let t = expand_proteus(&p, &ExpandOptions::default()).unwrap();
        let ll = t
            .uops
            .iter()
            .find_map(|u| match u {
                Uop::LogLoad { addr, .. } => Some(*addr),
                _ => None,
            })
            .unwrap();
        assert_eq!(ll, Addr::new(0x1000_0020));
    }

    #[test]
    fn non_transactional_writes_unlogged() {
        let mut p = Program::new(ThreadId::new(0));
        p.write(Addr::new(0x100), 1);
        let t = expand_proteus(&p, &ExpandOptions::default()).unwrap();
        assert_eq!(t.count_matching(|u| u.is_logging()), 0);
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Store { .. })), 1);
    }

    #[test]
    fn zero_log_registers_rejected() {
        let opts = ExpandOptions { log_registers: 0, ..Default::default() };
        assert!(expand_proteus(&two_store_tx(), &opts).is_err());
    }
}
