//! In-cache-line logging (InCLL).
//!
//! Cohen et al. (ASPLOS'19, arXiv:1902.00660) observe that when a
//! transaction modifies a single word of a cache line, the undo
//! information can live *inside the mutated line itself*: one spare word
//! of the line holds `(txid, word-index, old value)`, so logging adds no
//! separate log-area write — the line carrying data and log entry is
//! written back atomically (under the ADR contract a queued line lands
//! whole; see `proteus_crash::fault`). Lines that do not qualify fall
//! back to ordinary external undo entries, mirroring the paper's hybrid
//! of in-line and external ("redo-log") paths.
//!
//! InCLL is structure-integrated: the original work reserves the log
//! word in the node layout at design time and recovery walks the
//! structure to find embedded entries. The expansion mirrors both
//! choices statically:
//!
//! * a **classification pre-pass** decides, per cache line, whether the
//!   line may ever embed (its word 6 is never program data and starts
//!   zero) and, per transaction, whether it does embed (the transaction
//!   writes exactly one distinct word of the line, and the overwritten
//!   value fits the 40-bit old-value field);
//! * a **directory** — the stand-in for "recovery walks the structure" —
//!   lists every line that may carry an embedded entry. It is written
//!   once into the tail of the thread's log area and made durable by a
//!   fenced prologue before any transaction runs, so recovery always
//!   knows where to look.
//!
//! Per transaction the protocol is two persist barriers (software undo
//! logging needs four):
//!
//! 1. external undo entries for the non-embeddable written grains,
//!    `clwb` + `sfence` (skipped entirely when everything embeds);
//! 2. the body: the first store to an embeddable line is preceded by the
//!    packed entry store into word 6 of the *same line*;
//! 3. commit: `clwb` every dirty line, `sfence`, then publish the commit
//!    record `logFlag = txID`, `clwb`, `sfence`.
//!
//! The fenced commit record is what keeps recovery to a single
//! in-flight transaction: transaction `T` starts only after `T-1`'s
//! record is durable, so at a crash every entry (embedded or external)
//! with `txid > logFlag` belongs to exactly one transaction, and rolling
//! it back lands on the last recorded commit boundary.
//!
//! Recovery runs the external undo pass first and the embedded pass
//! second: an external grain restore may resurrect a *stale* embedded
//! entry captured inside the grain image, and the embedded pass zeroes
//! every entry word it visits, live or stale, restoring the program's
//! view that word 6 of an embeddable line is always zero.
//!
//! A fenced **epilogue** after the last transaction zeroes every line's
//! embedded entry (the paper's epoch-close cleanup), so a run that
//! completes leaves the data region byte-identical to the functional
//! result; a crash inside the epilogue is covered by recovery's
//! zeroing pass.

use super::DirtyLines;
use crate::entry::LogEntry;
use crate::isa::{Trace, Uop};
use crate::layout::AddressLayout;
use crate::pmem::WordImage;
use crate::program::{Op, Program};
use crate::recovery::{apply_undo, earliest_per_grain, ThreadOutcome, WriteBudget};
use crate::scheme::ExpandOptions;
use proteus_types::addr::LineAddr;
use proteus_types::{Addr, SimError, ThreadId, TxId};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Word index within a line reserved for the embedded entry.
const ENTRY_WORD: u64 = 6;
/// Valid bit of a packed embedded entry.
const VALID: u64 = 1 << 63;
/// Shift/width of the mutated word index (3 bits, 0-7, never 6).
const IDX_SHIFT: u32 = 60;
/// Shift of the transaction id field (20 bits).
const TX_SHIFT: u32 = 40;
/// Maximum transaction id an embedded entry can name.
const TX_LIMIT: u64 = 1 << 20;
/// Maximum old value an embedded entry can hold (40 bits — covers the
/// workloads' pointers, u32 payloads, and counters).
const OLD_LIMIT: u64 = 1 << TX_SHIFT;
/// Directory header magic ("InCLLv01" truncated to what fits the eye).
const MAGIC: u64 = 0x496E_434C_4C76_3031;
/// Line addresses packed per directory slot.
const ADDRS_PER_SLOT: usize = 8;

/// Packs an embedded entry word.
fn pack(idx: u64, tx: TxId, old: u64) -> u64 {
    debug_assert!(idx < 8 && idx != ENTRY_WORD && tx.raw() < TX_LIMIT && old < OLD_LIMIT);
    VALID | (idx << IDX_SHIFT) | (tx.raw() << TX_SHIFT) | old
}

/// Unpacks `(word index, txid, old value)`; `None` if the valid bit is
/// clear.
fn unpack(word: u64) -> Option<(u64, TxId, u64)> {
    if word & VALID == 0 {
        return None;
    }
    let idx = (word >> IDX_SHIFT) & 0x7;
    let tx = (word >> TX_SHIFT) & (TX_LIMIT - 1);
    Some((idx, TxId::new(tx), word & (OLD_LIMIT - 1)))
}

/// The most embeddable lines a layout's directory can index: a quarter
/// of the log area is ceded to the directory, the rest stays a circular
/// external-entry buffer.
fn max_directory_lines(layout: &AddressLayout) -> usize {
    (layout.log_area_entries / 4).max(1) * ADDRS_PER_SLOT
}

/// Directory geometry for `count` embeddable lines: number of list
/// slots and the first slot index *past* the external-entry region.
/// Slot `N-1` is the header; list slots grow downward from `N-2`.
fn directory_slots(count: usize) -> usize {
    count.div_ceil(ADDRS_PER_SLOT)
}

/// External (fallback) region capacity given the embeddable-line count.
fn fallback_slots(layout: &AddressLayout, count: usize) -> usize {
    layout.log_area_entries.saturating_sub(1 + directory_slots(count))
}

/// Per-transaction write footprint: distinct word indices per line.
type TxFootprint = BTreeMap<LineAddr, BTreeSet<u64>>;

/// Static classification of one thread's program.
struct Classified {
    /// Per-transaction (in program order) line write footprints.
    txs: Vec<TxFootprint>,
    /// Lines allowed to carry embedded entries, in first-qualifying
    /// order (the directory contents).
    directory: Vec<LineAddr>,
    dir_set: HashSet<LineAddr>,
}

fn classify(program: &Program, layout: &AddressLayout, initial: &WordImage) -> Classified {
    let mut word6_data: HashSet<LineAddr> = HashSet::new();
    let mut txs: Vec<TxFootprint> = Vec::new();
    let mut current: Option<TxFootprint> = None;
    for op in &program.ops {
        match op {
            Op::Write(addr, _) => {
                let idx = (addr.raw() % 64) / 8;
                if idx == ENTRY_WORD {
                    word6_data.insert(addr.line());
                }
                if let Some(tx) = current.as_mut() {
                    tx.entry(addr.line()).or_default().insert(idx);
                }
            }
            Op::TxBegin { .. } => current = Some(TxFootprint::new()),
            Op::TxEnd => txs.push(current.take().unwrap_or_default()),
            _ => {}
        }
    }

    let cap = max_directory_lines(layout);
    let mut directory = Vec::new();
    let mut dir_set = HashSet::new();
    for (t, tx) in txs.iter().enumerate() {
        let txid = t as u64 + 1;
        if txid >= TX_LIMIT {
            break;
        }
        for (line, words) in tx {
            // Shared (coherence-domain) lines never embed: recovery is
            // per-thread, and an embedded entry in a line several threads
            // mutate would be scrubbed or misread by a sibling thread's
            // pass. Shared grains always take the external-entry path,
            // whose log slots are private per thread.
            if words.len() == 1
                && !words.contains(&ENTRY_WORD)
                && !word6_data.contains(line)
                && !proteus_types::sharing::in_coherence_domain(line.base())
                && initial.read_word(line.base().offset(ENTRY_WORD * 8)) == 0
                && !dir_set.contains(line)
                && directory.len() < cap
            {
                directory.push(*line);
                dir_set.insert(*line);
            }
        }
    }
    Classified { txs, directory, dir_set }
}

/// Expands `program` into the InCLL trace (see the module docs for the
/// protocol). Matches the registry's `ExpandFn` signature.
///
/// # Errors
///
/// Returns [`SimError::LogAreaOverflow`] if one transaction's external
/// entries exceed the fallback region.
pub(super) fn expand(
    program: &Program,
    layout: &AddressLayout,
    opts: &ExpandOptions,
) -> Result<Trace, SimError> {
    let cls = classify(program, layout, &opts.initial_image);
    let mut trace = Trace::new(program.thread);
    let mut image = (*opts.initial_image).clone();
    let mut dirty = DirtyLines::new();
    let log_flag = layout.log_flag(program.thread);
    let fb_slots = fallback_slots(layout, cls.directory.len());

    // Fenced prologue: persist the embeddable-line directory into the
    // tail of the log area before any transaction runs.
    {
        let header = layout.log_slot(program.thread, layout.log_area_entries - 1);
        let mut dir_lines: Vec<(Addr, Vec<u64>)> =
            vec![(header, vec![MAGIC, cls.directory.len() as u64])];
        for (chunk_no, chunk) in cls.directory.chunks(ADDRS_PER_SLOT).enumerate() {
            let slot = layout.log_slot(program.thread, layout.log_area_entries - 2 - chunk_no);
            dir_lines.push((slot, chunk.iter().map(|l| l.base().raw()).collect()));
        }
        for (base, words) in dir_lines {
            for (i, w) in words.iter().enumerate() {
                let addr = base.offset(i as u64 * 8);
                trace.uops.push(Uop::Store { addr, value: *w });
                image.write_word(addr, *w);
            }
            trace.uops.push(Uop::Clwb { addr: base });
        }
        trace.uops.push(Uop::Sfence);
    }

    // External-entry cursor over the fallback region (the directory owns
    // the tail, so `LogArea` with its full-area stride cannot be used).
    let mut fb_head = 0usize;
    let mut fb_seq = 0u64;
    let mut next_tx = TxId::new(1);
    // Embeddable lines of the open transaction that have not yet
    // received their entry store, with `(word index, old value)`.
    let mut pending_embed: BTreeMap<LineAddr, (u64, u64)> = BTreeMap::new();
    let mut in_tx: Option<TxId> = None;
    let mut embedded_ever: HashSet<LineAddr> = HashSet::new();

    for op in &program.ops {
        match op {
            Op::Read(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: false }),
            Op::ReadDep(addr) => trace.uops.push(Uop::Load { addr: *addr, dependent: true }),
            Op::Compute(lat) => trace.uops.push(Uop::Compute { latency: *lat }),
            Op::LockWait { addr, ticket, external } => {
                // Fold the other threads' committed writes into the
                // working image (as in the software expansion) so external
                // undo entries logged after the acquire carry the values
                // this thread observes at run time.
                for (a, v) in external {
                    image.write_word(*a, *v);
                }
                trace.uops.push(Uop::WaitValue { addr: *addr, expected: *ticket });
            }
            Op::TxBegin { .. } => {
                let tx = next_tx;
                next_tx = next_tx.next();
                in_tx = Some(tx);
                let footprint = &cls.txs[(tx.raw() - 1) as usize];

                // Split the written lines: embed where permitted, log the
                // touched grains of the rest externally.
                pending_embed.clear();
                let mut fallback_grains: BTreeSet<Addr> = BTreeSet::new();
                for (line, words) in footprint {
                    let idx = *words.iter().next().expect("nonempty write set");
                    let old = image.read_word(line.base().offset(idx * 8));
                    if words.len() == 1
                        && cls.dir_set.contains(line)
                        && tx.raw() < TX_LIMIT
                        && old < OLD_LIMIT
                    {
                        pending_embed.insert(*line, (idx, old));
                    } else {
                        for idx in words {
                            let grain = if *idx < 4 { 0 } else { 32 };
                            fallback_grains.insert(line.base().offset(grain));
                        }
                    }
                }

                let mut tx_entries = 0usize;
                for grain_base in &fallback_grains {
                    tx_entries += 1;
                    if tx_entries > fb_slots {
                        return Err(SimError::LogAreaOverflow {
                            thread: program.thread,
                            capacity: fb_slots,
                        });
                    }
                    // Software reads the original grain...
                    for w in 0..4u64 {
                        trace
                            .uops
                            .push(Uop::Load { addr: grain_base.offset(w * 8), dependent: false });
                    }
                    let slot = layout.log_slot(program.thread, fb_head);
                    fb_head = (fb_head + 1) % fb_slots.max(1);
                    let entry =
                        LogEntry::new(image.read_grain(*grain_base), *grain_base, tx, fb_seq);
                    fb_seq += 1;
                    // ...stores the entry, and flushes the log line.
                    for (i, word) in entry.encode_words().iter().enumerate() {
                        trace
                            .uops
                            .push(Uop::Store { addr: slot.offset(i as u64 * 8), value: *word });
                    }
                    image.write_line(slot.line(), &entry.encode_words());
                    trace.uops.push(Uop::Clwb { addr: slot });
                }
                if !fallback_grains.is_empty() {
                    trace.uops.push(Uop::Sfence);
                }
            }
            Op::Write(addr, value) => {
                if let Some(tx) = in_tx {
                    if let Some((idx, old)) = pending_embed.remove(&addr.line()) {
                        // First store to an embeddable line: read the old
                        // word and drop the packed entry into word 6 of
                        // the same line, directly ahead of the data store.
                        let entry_addr = addr.line().base().offset(ENTRY_WORD * 8);
                        trace.uops.push(Uop::Load {
                            addr: addr.line().base().offset(idx * 8),
                            dependent: false,
                        });
                        let packed = pack(idx, tx, old);
                        trace.uops.push(Uop::Store { addr: entry_addr, value: packed });
                        image.write_word(entry_addr, packed);
                        embedded_ever.insert(addr.line());
                    }
                    dirty.record(*addr);
                }
                trace.uops.push(Uop::Store { addr: *addr, value: *value });
                image.write_word(*addr, *value);
            }
            Op::TxEnd => {
                let tx = in_tx.take().expect("validated program brackets transactions");
                // Persist the data (and embedded-entry) lines...
                for line in dirty.drain() {
                    trace.uops.push(Uop::Clwb { addr: line.base() });
                }
                trace.uops.push(Uop::Sfence);
                // ...then publish the durable commit record. The fence
                // keeps recovery single-transaction: T+1 cannot start
                // logging before T's record is durable.
                trace.uops.push(Uop::Store { addr: log_flag, value: tx.raw() });
                image.write_word(log_flag, tx.raw());
                trace.uops.push(Uop::Clwb { addr: log_flag });
                trace.uops.push(Uop::Sfence);
                trace.transactions += 1;
            }
        }
    }

    // Epoch-close epilogue: zero every line's embedded entry so the
    // data region of a completed run is byte-identical to the
    // functional result. A crash in here is benign — the entries being
    // zeroed all belong to committed transactions, and recovery's
    // embedded pass zeroes whatever the crash left behind.
    let cleanup: Vec<LineAddr> =
        cls.directory.iter().copied().filter(|l| embedded_ever.contains(l)).collect();
    if !cleanup.is_empty() {
        for line in cleanup {
            let entry_addr = line.base().offset(ENTRY_WORD * 8);
            trace.uops.push(Uop::Store { addr: entry_addr, value: 0 });
            image.write_word(entry_addr, 0);
            trace.uops.push(Uop::Clwb { addr: line.base() });
        }
        trace.uops.push(Uop::Sfence);
    }
    Ok(trace)
}

/// InCLL crash recovery for one thread. Matches the registry's
/// `RecoverFn` signature.
///
/// `logFlag` holds the last durably committed transaction id `F`; the
/// single possibly-in-flight transaction is `F+1`. External entries with
/// `tx > F` are undone (earliest per grain), then every directory line's
/// embedded entry is visited: live entries restore their old word, and
/// the entry word is zeroed either way (word 6 of an embeddable line is
/// zero in every program-visible state).
///
/// # Errors
///
/// Never fails structurally: an absent directory header means the crash
/// predates the fenced prologue, so no log state can exist.
pub(super) fn recover_thread(
    image: &mut WordImage,
    layout: &AddressLayout,
    thread: ThreadId,
    budget: &mut WriteBudget,
) -> Result<ThreadOutcome, SimError> {
    let committed = image.read_word(layout.log_flag(thread));
    let header = layout.log_slot(thread, layout.log_area_entries - 1);
    let hwords = image.read_line(header.line());
    if hwords[0] != MAGIC {
        return Ok(ThreadOutcome::Clean);
    }
    let count = (hwords[1] as usize).min(max_directory_lines(layout));
    let fb_slots = fallback_slots(layout, count);

    // Pass 1: external entries of the in-flight transaction.
    let entries: Vec<(Addr, LogEntry)> = (0..fb_slots)
        .filter_map(|slot| {
            let addr = layout.log_slot(thread, slot);
            LogEntry::read_from(image, addr).map(|e| (addr, e))
        })
        .collect();
    let mut live_txs: Vec<TxId> =
        entries.iter().map(|(_, e)| e.tx).filter(|tx| tx.raw() > committed).collect();
    live_txs.sort_unstable();
    live_txs.dedup();
    let mut applied = 0usize;
    let mut rolled: Option<TxId> = None;
    for tx in live_txs.into_iter().rev() {
        let undo = earliest_per_grain(&entries, tx);
        apply_undo(image, &undo, budget);
        applied += undo.len();
        rolled = Some(rolled.map_or(tx, |r| r.max(tx)));
    }

    // Pass 2: embedded entries, after the external pass so that a grain
    // restore resurrecting a stale entry image is re-zeroed here.
    for i in 0..count {
        let slot = layout.log_slot(thread, layout.log_area_entries - 2 - i / ADDRS_PER_SLOT);
        let line_base = Addr::new(image.read_word(slot.offset((i % ADDRS_PER_SLOT) as u64 * 8)));
        if line_base.raw() == 0 {
            continue; // torn prologue: unreached list words are empty
        }
        let entry_addr = line_base.offset(ENTRY_WORD * 8);
        let Some((idx, tx, old)) = unpack(image.read_word(entry_addr)) else {
            continue;
        };
        if tx.raw() > committed {
            if budget.allow() {
                image.write_word(line_base.offset(idx * 8), old);
            }
            applied += 1;
            rolled = Some(rolled.map_or(tx, |r| r.max(tx)));
        }
        if budget.allow() {
            image.write_word(entry_addr, 0);
        }
    }

    Ok(match rolled {
        Some(tx) => ThreadOutcome::RolledBack { tx, entries_applied: applied },
        None if committed > 0 => ThreadOutcome::Committed { tx: TxId::new(committed) },
        None => ThreadOutcome::Clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::{recover, recover_with_budget};
    use proteus_types::config::LoggingSchemeKind;

    fn layout() -> AddressLayout {
        AddressLayout { log_area_entries: 64, ..AddressLayout::default() }
    }

    fn expand_one(p: &Program, layout: &AddressLayout, initial: &WordImage) -> Trace {
        let opts = ExpandOptions {
            initial_image: std::sync::Arc::new(initial.clone()),
            ..Default::default()
        };
        expand(p, layout, &opts).unwrap()
    }

    /// Replays the trace's stores into `initial`, stopping (exclusive)
    /// at the first store `cut` matches — a line-atomic crash image at
    /// that durability point. `|_, _| false` replays to completion.
    fn replay(trace: &Trace, initial: &WordImage, cut: impl Fn(Addr, u64) -> bool) -> WordImage {
        let mut image = initial.clone();
        for u in &trace.uops {
            if let Uop::Store { addr, value } = u {
                if cut(*addr, *value) {
                    break;
                }
                image.write_word(*addr, *value);
            }
        }
        image
    }

    /// Cut matching the durable commit record of transaction `txid` —
    /// "crashed with `txid` fully written back but not yet committed".
    fn before_commit_record(layout: &AddressLayout, txid: u64) -> impl Fn(Addr, u64) -> bool {
        let flag = layout.log_flag(ThreadId::new(0));
        move |addr, value| addr == flag && value == txid
    }

    fn expand_and_final(
        p: &Program,
        layout: &AddressLayout,
        initial: &WordImage,
    ) -> (Trace, WordImage) {
        let t = expand_one(p, layout, initial);
        let img = replay(&t, initial, |_, _| false);
        (t, img)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let w = pack(3, TxId::new(77), 0xAB_CDEF);
        assert_eq!(unpack(w), Some((3, TxId::new(77), 0xAB_CDEF)));
        assert_eq!(unpack(0), None);
        assert_eq!(unpack(0x1234), None, "program data lacks the valid bit");
    }

    #[test]
    fn single_word_tx_embeds_and_skips_the_log_area() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 0xAB);
        p.tx_end();
        let t = expand_one(&p, &layout, &WordImage::new());
        // Just before the commit record, the entry sits in word 6 of the
        // mutated line; the external region (slot 0) stays empty.
        let img = replay(&t, &WordImage::new(), before_commit_record(&layout, 1));
        let packed = img.read_word(node.offset(ENTRY_WORD * 8));
        assert_eq!(unpack(packed), Some((0, TxId::new(1), 0)));
        assert_eq!(LogEntry::read_from(&img, layout.log_slot(ThreadId::new(0), 0)), None);
        // The epilogue scrubs the entry from the completed run.
        let done = replay(&t, &WordImage::new(), |_, _| false);
        assert_eq!(done.read_word(node.offset(ENTRY_WORD * 8)), 0);
        // Two persist barriers per transaction (commit data, commit
        // record) plus the one-time prologue and epilogue fences.
        assert_eq!(t.count_matching(|u| matches!(u, Uop::Sfence)), 4);
    }

    #[test]
    fn multi_word_line_falls_back_to_external_entries() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 1);
        p.write(node.offset(8), 2);
        p.tx_end();
        let (_, img) = expand_and_final(&p, &layout, &WordImage::new());
        assert_eq!(img.read_word(node.offset(ENTRY_WORD * 8)), 0, "no embedded entry");
        let e = LogEntry::read_from(&img, layout.log_slot(ThreadId::new(0), 0)).unwrap();
        assert_eq!(e.log_from, node);
        assert_eq!(e.tx, TxId::new(1));
    }

    #[test]
    fn commit_record_tracks_committed_txids() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut p = Program::new(ThreadId::new(0));
        for v in 1..=3u64 {
            p.tx_begin(vec![node, node.offset(32)]);
            p.write(node, v);
            p.tx_end();
        }
        let (_, img) = expand_and_final(&p, &layout, &WordImage::new());
        assert_eq!(img.read_word(layout.log_flag(ThreadId::new(0))), 3);
    }

    #[test]
    fn directory_lists_embeddable_lines_at_the_area_tail() {
        let layout = layout();
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0040);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![a, a.offset(32), b, b.offset(32)]);
        p.write(a, 1);
        p.write(b, 2);
        p.tx_end();
        let (_, img) = expand_and_final(&p, &layout, &WordImage::new());
        let header = layout.log_slot(ThreadId::new(0), layout.log_area_entries - 1);
        assert_eq!(img.read_word(header), MAGIC);
        assert_eq!(img.read_word(header.offset(8)), 2);
        let list = layout.log_slot(ThreadId::new(0), layout.log_area_entries - 2);
        let listed: HashSet<u64> = (0..2).map(|i| img.read_word(list.offset(i * 8))).collect();
        assert_eq!(listed, HashSet::from([a.raw(), b.raw()]));
    }

    #[test]
    fn shared_lines_never_embed() {
        // A single-word transaction on a coherence-domain line would
        // qualify structurally, but must fall back to an external entry:
        // per-thread recovery cannot own an entry word other threads
        // mutate.
        let layout = layout();
        let shared = Addr::new(proteus_types::sharing::SHARED_ARENA_BASE);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![shared, shared.offset(32)]);
        p.write(shared, 0xAB);
        p.tx_end();
        let (_, img) = expand_and_final(&p, &layout, &WordImage::new());
        let header = layout.log_slot(ThreadId::new(0), layout.log_area_entries - 1);
        assert_eq!(img.read_word(header.offset(8)), 0, "no embeddable lines");
        let e = LogEntry::read_from(&img, layout.log_slot(ThreadId::new(0), 0)).unwrap();
        assert_eq!(e.log_from, shared);
    }

    #[test]
    fn word6_data_lines_never_embed() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut p = Program::new(ThreadId::new(0));
        // Tx 1 writes only word 0; tx 2 writes word 6 as data. The line
        // must be classified out entirely — embedding in tx 1 would let
        // recovery zero tx 2's data.
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 1);
        p.tx_end();
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node.offset(ENTRY_WORD * 8), 7);
        p.tx_end();
        let (_, img) = expand_and_final(&p, &layout, &WordImage::new());
        let header = layout.log_slot(ThreadId::new(0), layout.log_area_entries - 1);
        assert_eq!(img.read_word(header.offset(8)), 0, "no embeddable lines");
        assert_eq!(img.read_word(node.offset(ENTRY_WORD * 8)), 7);
    }

    #[test]
    fn recovery_rolls_back_in_flight_embedded_tx() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut initial = WordImage::new();
        initial.write_word(node, 0x11);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 0xAB);
        p.tx_end();
        // Crash after the data line but before the commit record became
        // durable.
        let t = expand_one(&p, &layout, &initial);
        let mut img = replay(&t, &initial, before_commit_record(&layout, 1));
        let r = recover(&mut img, &layout, LoggingSchemeKind::Incll, &[ThreadId::new(0)]).unwrap();
        assert_eq!(
            r.outcomes[0].1,
            ThreadOutcome::RolledBack { tx: TxId::new(1), entries_applied: 1 }
        );
        assert_eq!(img.read_word(node), 0x11, "old value restored");
        assert_eq!(img.read_word(node.offset(ENTRY_WORD * 8)), 0, "entry zeroed");
    }

    #[test]
    fn recovery_clears_committed_entries_without_restoring() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 0xAB);
        p.tx_end();
        let (_, mut img) = expand_and_final(&p, &layout, &WordImage::new());
        let r = recover(&mut img, &layout, LoggingSchemeKind::Incll, &[ThreadId::new(0)]).unwrap();
        assert_eq!(r.outcomes[0].1, ThreadOutcome::Committed { tx: TxId::new(1) });
        assert_eq!(img.read_word(node), 0xAB, "committed data kept");
        assert_eq!(img.read_word(node.offset(ENTRY_WORD * 8)), 0, "entry zeroed");
    }

    #[test]
    fn recovery_is_clean_before_the_prologue() {
        let layout = layout();
        let mut img = WordImage::new();
        let r = recover(&mut img, &layout, LoggingSchemeKind::Incll, &[ThreadId::new(0)]).unwrap();
        assert_eq!(r.outcomes[0].1, ThreadOutcome::Clean);
    }

    #[test]
    fn external_restore_resurrecting_stale_entry_is_rezeroed() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut p = Program::new(ThreadId::new(0));
        // Tx 1 embeds in word 0 (single-word); tx 2 writes two words of
        // the same line — one in the entry-carrying grain (word 5) — so
        // it external-logs both grains, capturing the stale embedded
        // entry image inside the word-4..7 grain.
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 1);
        p.tx_end();
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 2);
        p.write(node.offset(40), 3);
        p.tx_end();
        // Crash with tx 2 in flight: its record not yet durable.
        let t = expand_one(&p, &layout, &WordImage::new());
        let mut img = replay(&t, &WordImage::new(), before_commit_record(&layout, 2));
        recover(&mut img, &layout, LoggingSchemeKind::Incll, &[ThreadId::new(0)]).unwrap();
        assert_eq!(img.read_word(node), 1, "tx 2 undone to tx 1's value");
        assert_eq!(img.read_word(node.offset(40)), 0);
        assert_eq!(
            img.read_word(node.offset(ENTRY_WORD * 8)),
            0,
            "resurrected stale entry must be re-zeroed"
        );
    }

    #[test]
    fn budgeted_recovery_converges_after_double_crash() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let other = Addr::new(0x1000_0080);
        let mut initial = WordImage::new();
        initial.write_word(node, 5);
        initial.write_word(other, 6);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![node, node.offset(32), other, other.offset(32)]);
        p.write(node, 50);
        p.write(other, 60);
        p.write(other.offset(8), 61);
        p.tx_end();
        // Crash with the commit record not yet durable.
        let t = expand_one(&p, &layout, &initial);
        let pristine = replay(&t, &initial, before_commit_record(&layout, 1));
        let kind = LoggingSchemeKind::Incll;
        let threads = [ThreadId::new(0)];
        let mut full = pristine.clone();
        let done = recover_with_budget(&mut full, &layout, kind, &threads, usize::MAX).unwrap();
        assert!(done.writes >= 3, "grain undo + embedded restore + zero");
        for k in 0..done.writes {
            let mut img = pristine.clone();
            let partial = recover_with_budget(&mut img, &layout, kind, &threads, k).unwrap();
            assert!(partial.exhausted);
            recover(&mut img, &layout, kind, &threads).unwrap();
            assert_eq!(img, full, "double-crash at write {k} must converge");
        }
    }

    #[test]
    fn old_values_beyond_forty_bits_fall_back() {
        let layout = layout();
        let node = Addr::new(0x1000_0000);
        let mut initial = WordImage::new();
        initial.write_word(node, OLD_LIMIT + 5);
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![node, node.offset(32)]);
        p.write(node, 1);
        p.tx_end();
        let t = expand_one(&p, &layout, &initial);
        let mut img = replay(&t, &initial, before_commit_record(&layout, 1));
        assert_eq!(img.read_word(node.offset(ENTRY_WORD * 8)), 0, "no embedded entry");
        recover(&mut img, &layout, LoggingSchemeKind::Incll, &[ThreadId::new(0)]).unwrap();
        assert_eq!(img.read_word(node), OLD_LIMIT + 5, "external entry restored the wide value");
    }
}
