#![warn(missing_docs)]
//! Proteus durable-transaction logging for non-volatile main memory.
//!
//! This crate is the reproduction of the paper's primary contribution:
//! *software supported hardware logging* (SSHL) for durable transactions,
//! plus every logging scheme it is compared against. It provides:
//!
//! * the micro-op ISA including the paper's new `log-load` / `log-flush`
//!   instructions and the Intel PMEM operations (`clwb`, `sfence`,
//!   `pcommit`) — [`isa`];
//! * a functional model of persistent memory contents — [`pmem`];
//! * the 64-byte log entry format (32 B data + log-from address + txID +
//!   flags) — [`entry`];
//! * per-thread circular log areas and the physical address-space layout —
//!   [`logarea`] and [`layout`];
//! * the "compiler": expansion of logical durable transactions into the
//!   micro-op sequence each logging scheme executes — [`program`] and
//!   [`scheme`];
//! * crash-image recovery for both the software (logFlag) and hardware
//!   (txID + commit marker) protocols — [`recovery`].
//!
//! The cycle-level machine that *executes* the micro-ops lives in the
//! `proteus-cpu`, `proteus-cache`, and `proteus-mem` crates; full-system
//! wiring lives in `proteus-sim`.
//!
//! # Example
//!
//! ```
//! use proteus_core::program::Program;
//! use proteus_core::scheme::expand_program;
//! use proteus_core::layout::AddressLayout;
//! use proteus_types::config::LoggingSchemeKind;
//! use proteus_types::{Addr, ThreadId};
//!
//! let layout = AddressLayout::default();
//! let mut prog = Program::new(ThreadId::new(0));
//! prog.tx_begin(vec![Addr::new(0x1000_0000)]);
//! prog.write(Addr::new(0x1000_0000), 42);
//! prog.tx_end();
//! let trace = expand_program(&prog, LoggingSchemeKind::Proteus, &layout)?;
//! assert!(!trace.uops.is_empty());
//! # Ok::<(), proteus_types::SimError>(())
//! ```

pub mod entry;
pub mod isa;
pub mod layout;
pub mod logarea;
pub mod pmem;
pub mod program;
pub mod recovery;
pub mod scheme;

pub use entry::LogEntry;
pub use isa::{Trace, Uop};
pub use layout::AddressLayout;
pub use logarea::LogArea;
pub use pmem::WordImage;
pub use program::{Op, Program};
pub use recovery::{recover, CrashImage, RecoveryReport};
pub use scheme::expand_program;
