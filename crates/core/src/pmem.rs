//! Functional model of memory contents at 8-byte word granularity.
//!
//! The timing simulator moves 64-byte lines; this module provides the
//! *values* inside them so crash-recovery behaviour can be tested
//! end-to-end: stores update cache-line data, write-backs and log flushes
//! carry line data into the memory controller, and NVMM writes land in a
//! [`WordImage`] that represents the durable contents of the machine.

use proteus_types::addr::{LineAddr, CACHE_LINE_SIZE};
use proteus_types::Addr;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of 8-byte words in a cache line.
pub const WORDS_PER_LINE: usize = (CACHE_LINE_SIZE / 8) as usize;

/// The data payload of one cache line.
pub type LineData = [u64; WORDS_PER_LINE];

/// Sparse word-addressed memory contents. Unwritten words read as zero,
/// matching zero-initialised NVMM.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WordImage {
    words: HashMap<u64, u64>,
}

impl WordImage {
    /// Creates an empty (all-zero) image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the 8-byte word containing `addr`.
    pub fn read_word(&self, addr: Addr) -> u64 {
        self.words.get(&(addr.raw() / 8)).copied().unwrap_or(0)
    }

    /// Writes the 8-byte word containing `addr`.
    pub fn write_word(&mut self, addr: Addr, value: u64) {
        if value == 0 {
            self.words.remove(&(addr.raw() / 8));
        } else {
            self.words.insert(addr.raw() / 8, value);
        }
    }

    /// Reads a full cache line.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        let base = line.base();
        std::array::from_fn(|i| self.read_word(base.offset(i as u64 * 8)))
    }

    /// Writes a full cache line.
    pub fn write_line(&mut self, line: LineAddr, data: &LineData) {
        let base = line.base();
        for (i, w) in data.iter().enumerate() {
            self.write_word(base.offset(i as u64 * 8), *w);
        }
    }

    /// Reads the four words of the 32-byte log grain containing `addr`.
    pub fn read_grain(&self, addr: Addr) -> [u64; 4] {
        let base = addr.log_grain().base();
        std::array::from_fn(|i| self.read_word(base.offset(i as u64 * 8)))
    }

    /// Writes the four words of the 32-byte log grain containing `addr`.
    pub fn write_grain(&mut self, addr: Addr, data: &[u64; 4]) {
        let base = addr.log_grain().base();
        for (i, w) in data.iter().enumerate() {
            self.write_word(base.offset(i as u64 * 8), *w);
        }
    }

    /// Number of nonzero words stored (diagnostic).
    pub fn population(&self) -> usize {
        self.words.len()
    }

    /// Iterates over `(word_address, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, u64)> + '_ {
        self.words.iter().map(|(w, v)| (Addr::new(w * 8), *v))
    }

    /// Returns the set of word addresses where `self` and `other` differ,
    /// restricted to `range` if given. Used by recovery tests.
    pub fn diff(&self, other: &WordImage) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = Vec::new();
        for (w, v) in &self.words {
            if other.words.get(w).copied().unwrap_or(0) != *v {
                addrs.push(Addr::new(w * 8));
            }
        }
        for (w, v) in &other.words {
            if *v != 0 && !self.words.contains_key(w) {
                addrs.push(Addr::new(w * 8));
            }
        }
        addrs.sort();
        addrs.dedup();
        addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_default_and_roundtrip() {
        let mut img = WordImage::new();
        assert_eq!(img.read_word(Addr::new(0x100)), 0);
        img.write_word(Addr::new(0x100), 7);
        assert_eq!(img.read_word(Addr::new(0x100)), 7);
        assert_eq!(img.read_word(Addr::new(0x104)), 7); // same word
        assert_eq!(img.read_word(Addr::new(0x108)), 0);
    }

    #[test]
    fn zero_writes_prune_storage() {
        let mut img = WordImage::new();
        img.write_word(Addr::new(0x40), 1);
        assert_eq!(img.population(), 1);
        img.write_word(Addr::new(0x40), 0);
        assert_eq!(img.population(), 0);
    }

    #[test]
    fn line_roundtrip() {
        let mut img = WordImage::new();
        let line = Addr::new(0x2000).line();
        let data: LineData = std::array::from_fn(|i| i as u64 + 1);
        img.write_line(line, &data);
        assert_eq!(img.read_line(line), data);
        assert_eq!(img.read_word(Addr::new(0x2038)), 8);
    }

    #[test]
    fn grain_roundtrip() {
        let mut img = WordImage::new();
        img.write_grain(Addr::new(0x2025), &[9, 8, 7, 6]);
        // Grain base is 0x2020.
        assert_eq!(img.read_word(Addr::new(0x2020)), 9);
        assert_eq!(img.read_word(Addr::new(0x2038)), 6);
        assert_eq!(img.read_grain(Addr::new(0x203f)), [9, 8, 7, 6]);
    }

    #[test]
    fn diff_is_symmetric_set() {
        let mut a = WordImage::new();
        let mut b = WordImage::new();
        a.write_word(Addr::new(0x0), 1);
        b.write_word(Addr::new(0x8), 2);
        a.write_word(Addr::new(0x10), 3);
        b.write_word(Addr::new(0x10), 3);
        let d = a.diff(&b);
        assert_eq!(d, vec![Addr::new(0x0), Addr::new(0x8)]);
        assert_eq!(a.diff(&a), vec![]);
    }
}
