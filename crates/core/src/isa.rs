//! The micro-op ISA executed by the cycle-level core model.
//!
//! The ISA contains ordinary memory operations, the Intel PMEM persistence
//! instructions described in §2.1 of the paper, and the two new Proteus
//! logging instructions from §3.2:
//!
//! * [`Uop::LogLoad`] — load a 32-byte block from the *log-from* address
//!   into a log register;
//! * [`Uop::LogFlush`] — flush that log register to the next *log-to*
//!   address in the thread's log area (the LTA register auto-increments,
//!   so the instruction carries no explicit log-to address).
//!
//! Values are modelled at 8-byte word granularity; a [`Uop::Store`] writes
//! one word. This matches the benchmarks, whose node fields are 8-byte
//! aligned.

use proteus_types::{Addr, ThreadId, TxId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a log register (LR) in the logging data register file.
///
/// The Table 1 configuration provides 8 LRs; the code generator allocates
/// them round-robin since an LR is recycled as soon as its `log-flush`
/// commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogRegId(pub u8);

impl fmt::Display for LogRegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LR{}", self.0)
    }
}

/// One micro-operation in a thread's instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Uop {
    /// Non-memory work occupying the pipeline for `latency` cycles.
    Compute {
        /// Execution latency in cycles (≥ 1).
        latency: u8,
    },
    /// An 8-byte load.
    ///
    /// A *dependent* load's address was produced by an older load
    /// (pointer chasing): it may not issue until every older load has
    /// completed. This is what serialises tree and list traversals the
    /// way real hardware data dependencies do.
    Load {
        /// Word-aligned address.
        addr: Addr,
        /// Whether the address depends on older loads.
        dependent: bool,
    },
    /// An 8-byte store of `value`.
    Store {
        /// Word-aligned address.
        addr: Addr,
        /// Value written.
        value: u64,
    },
    /// Cache-line write-back: flushes the dirty line containing `addr` to
    /// the memory controller without invalidating it. Ordered only against
    /// older stores to the same line and against store fences.
    Clwb {
        /// Any address within the target line.
        addr: Addr,
    },
    /// Store fence: retires only once all older stores, clwbs, and logging
    /// operations have completed (reached the persistency domain).
    Sfence,
    /// `pcommit`: drains the WPQ to NVMM. Deprecated by ADR but modelled
    /// for the PMEM+pcommit baseline. Ordered like a fence.
    Pcommit,
    /// Marks the start of a durable transaction `tx` on the issuing core.
    TxBegin {
        /// Transaction being opened.
        tx: TxId,
    },
    /// Marks the end of a durable transaction: waits for all of the
    /// transaction's data updates to reach the persistency domain, then
    /// clears the LLT and flash-clears the LPQ entries of `tx`.
    TxEnd {
        /// Transaction being committed.
        tx: TxId,
    },
    /// Proteus `log-load`: reads the 32-byte log grain containing `addr`
    /// into log register `lr` together with the log-from address.
    LogLoad {
        /// Destination log register.
        lr: LogRegId,
        /// Address whose grain is captured.
        addr: Addr,
    },
    /// Proteus `log-flush`: writes log register `lr` as a 64-byte log
    /// entry to the thread's log area at the auto-incremented LTA.
    /// Completes when the memory controller acknowledges receipt.
    LogFlush {
        /// Source log register (must match a prior `log-load`).
        lr: LogRegId,
    },
    /// Proteus `log-save` (§4.4): context-switch support. Saves logging
    /// registers and forces the MC to drain this thread's LPQ entries to
    /// NVMM.
    LogSave,
    /// Ticket-lock acquire: a load of the word at `addr` that may not
    /// dispatch until the coherent cache view holds exactly `expected`.
    /// While the value differs the core stalls with `lock-wait`; once it
    /// matches, the op executes as an ordinary load and retires.
    WaitValue {
        /// The ticket-lock word.
        addr: Addr,
        /// The ticket value that grants ownership.
        expected: u64,
    },
}

impl Uop {
    /// Whether this op is one of the Proteus logging instructions.
    pub fn is_logging(&self) -> bool {
        matches!(self, Uop::LogLoad { .. } | Uop::LogFlush { .. } | Uop::LogSave)
    }

    /// Whether this op acts as an ordering fence at retirement
    /// (sfence, pcommit, tx-end).
    pub fn is_fence(&self) -> bool {
        matches!(self, Uop::Sfence | Uop::Pcommit | Uop::TxEnd { .. })
    }

    /// The memory address this op touches, if any.
    pub fn addr(&self) -> Option<Addr> {
        match self {
            Uop::Load { addr, .. }
            | Uop::Store { addr, .. }
            | Uop::Clwb { addr }
            | Uop::LogLoad { addr, .. }
            | Uop::WaitValue { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Uop::Compute { latency } => write!(f, "compute({latency})"),
            Uop::Load { addr, dependent: false } => write!(f, "ld {addr}"),
            Uop::Load { addr, dependent: true } => write!(f, "ld.dep {addr}"),
            Uop::Store { addr, value } => write!(f, "st {addr}, {value:#x}"),
            Uop::Clwb { addr } => write!(f, "clwb {addr}"),
            Uop::Sfence => f.write_str("sfence"),
            Uop::Pcommit => f.write_str("pcommit"),
            Uop::TxBegin { tx } => write!(f, "tx-begin {tx}"),
            Uop::TxEnd { tx } => write!(f, "tx-end {tx}"),
            Uop::LogLoad { lr, addr } => write!(f, "log-load {lr}, {addr}"),
            Uop::LogFlush { lr } => write!(f, "log-flush {lr}, (LTA)+"),
            Uop::LogSave => f.write_str("log-save"),
            Uop::WaitValue { addr, expected } => write!(f, "wait-value {addr}, {expected:#x}"),
        }
    }
}

/// A complete instruction trace for one thread, produced by scheme
/// expansion and consumed by the core model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// The thread this trace belongs to.
    pub thread: ThreadId,
    /// The micro-ops in program order.
    pub uops: Vec<Uop>,
    /// Number of durable transactions in the trace.
    pub transactions: u64,
}

impl Trace {
    /// Creates an empty trace for `thread`.
    pub fn new(thread: ThreadId) -> Self {
        Trace { thread, uops: Vec::new(), transactions: 0 }
    }

    /// Number of micro-ops.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace contains no micro-ops.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Counts ops matching a predicate (handy in tests and reports).
    pub fn count_matching(&self, pred: impl Fn(&Uop) -> bool) -> usize {
        self.uops.iter().filter(|u| pred(u)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Uop::LogFlush { lr: LogRegId(0) }.is_logging());
        assert!(Uop::LogLoad { lr: LogRegId(1), addr: Addr::new(0) }.is_logging());
        assert!(!Uop::Store { addr: Addr::new(0), value: 0 }.is_logging());
        assert!(Uop::Sfence.is_fence());
        assert!(Uop::Pcommit.is_fence());
        assert!(Uop::TxEnd { tx: TxId::new(1) }.is_fence());
        assert!(!Uop::TxBegin { tx: TxId::new(1) }.is_fence());
    }

    #[test]
    fn addresses() {
        assert_eq!(Uop::Load { addr: Addr::new(8), dependent: false }.addr(), Some(Addr::new(8)));
        assert_eq!(Uop::Sfence.addr(), None);
        assert_eq!(
            Uop::WaitValue { addr: Addr::new(0x0E10_0000), expected: 3 }.addr(),
            Some(Addr::new(0x0E10_0000))
        );
        assert_eq!(
            Uop::LogLoad { lr: LogRegId(0), addr: Addr::new(0x20) }.addr(),
            Some(Addr::new(0x20))
        );
    }

    #[test]
    fn display_matches_paper_syntax() {
        let ll = Uop::LogLoad { lr: LogRegId(1), addr: Addr::new(0x40) };
        assert_eq!(ll.to_string(), "log-load LR1, 0x40");
        let lf = Uop::LogFlush { lr: LogRegId(1) };
        assert_eq!(lf.to_string(), "log-flush LR1, (LTA)+");
    }

    #[test]
    fn trace_counting() {
        let mut t = Trace::new(ThreadId::new(0));
        assert!(t.is_empty());
        t.uops.push(Uop::Sfence);
        t.uops.push(Uop::Load { addr: Addr::new(0), dependent: false });
        assert_eq!(t.len(), 2);
        assert_eq!(t.count_matching(|u| u.is_fence()), 1);
    }
}
