//! Logical programs: what a workload *does*, independent of logging scheme.
//!
//! A [`Program`] is a sequence of logical operations — reads, writes,
//! compute, and durable-transaction boundaries. The scheme expanders in
//! [`crate::scheme`] compile the same program into different micro-op
//! traces (software undo logging, ATOM, Proteus, ...), which is exactly
//! the paper's experimental setup: one benchmark, several logging
//! implementations.
//!
//! `tx_begin` carries an *undo hint*: the set of addresses the transaction
//! might modify. Software undo logging needs it because the log must be
//! complete before the first data update (Fig. 2, step 1); for
//! self-balancing trees the hint is conservative, which is what makes the
//! software baseline slow on BT/RT (§6). Hardware schemes ignore the hint
//! and log on demand.

use proteus_types::{Addr, SimError, ThreadId};
use serde::{Deserialize, Serialize};

/// One logical operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Read the 8-byte word at the address.
    Read(Addr),
    /// Read whose address was produced by an earlier read (pointer
    /// chasing): compiled to a dependent load that serialises behind
    /// older loads.
    ReadDep(Addr),
    /// Write `1`-valued word: `(address, value)`.
    Write(Addr, u64),
    /// Non-memory work of the given cycle latency.
    Compute(u8),
    /// Open a durable transaction; the hint lists addresses that may be
    /// written (any address within a 32-byte grain stands for the grain).
    TxBegin {
        /// Conservative write-set hint for software undo logging.
        undo_hint: Vec<Addr>,
    },
    /// Commit the open durable transaction.
    TxEnd,
    /// Acquire a ticket lock on a shared structure: spin until the word
    /// at `addr` holds `ticket`. The matching release is an ordinary
    /// [`Op::Write`] of `ticket + 1` emitted by the workload generator.
    ///
    /// `external` carries the writes *other* threads committed (in the
    /// generator's global schedule) between this thread's previous
    /// synchronization point and this acquire. Scheme expansions that
    /// pre-execute the program against a working image (software undo,
    /// InCLL) fold them in at the acquire point so precomputed undo-log
    /// values match what this thread actually observes at run time.
    LockWait {
        /// The ticket-lock word.
        addr: Addr,
        /// The ticket value that grants ownership.
        ticket: u64,
        /// Other threads' committed writes visible at this acquire.
        external: Vec<(Addr, u64)>,
    },
}

/// A thread's logical operation sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Owning thread.
    pub thread: ThreadId,
    /// Operations in program order.
    pub ops: Vec<Op>,
}

impl Program {
    /// Creates an empty program for `thread`.
    pub fn new(thread: ThreadId) -> Self {
        Program { thread, ops: Vec::new() }
    }

    /// Appends a read.
    pub fn read(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::Read(addr));
        self
    }

    /// Appends a pointer-chasing read (see [`Op::ReadDep`]).
    pub fn read_dep(&mut self, addr: Addr) -> &mut Self {
        self.ops.push(Op::ReadDep(addr));
        self
    }

    /// Appends a write.
    pub fn write(&mut self, addr: Addr, value: u64) -> &mut Self {
        self.ops.push(Op::Write(addr, value));
        self
    }

    /// Appends compute work.
    pub fn compute(&mut self, latency: u8) -> &mut Self {
        self.ops.push(Op::Compute(latency));
        self
    }

    /// Opens a durable transaction with the given undo hint.
    pub fn tx_begin(&mut self, undo_hint: Vec<Addr>) -> &mut Self {
        self.ops.push(Op::TxBegin { undo_hint });
        self
    }

    /// Commits the open durable transaction.
    pub fn tx_end(&mut self) -> &mut Self {
        self.ops.push(Op::TxEnd);
        self
    }

    /// Appends a ticket-lock acquire (see [`Op::LockWait`]).
    pub fn lock_wait(&mut self, addr: Addr, ticket: u64, external: Vec<(Addr, u64)>) -> &mut Self {
        self.ops.push(Op::LockWait { addr, ticket, external });
        self
    }

    /// Number of transactions in the program.
    pub fn transaction_count(&self) -> u64 {
        self.ops.iter().filter(|o| matches!(o, Op::TxEnd)).count() as u64
    }

    /// Validates transaction bracketing and, for each transaction, that
    /// every written grain is covered by the undo hint (required for the
    /// software logging expansion to be failure-safe).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first violation.
    pub fn validate(&self) -> Result<(), SimError> {
        let mut hint_grains: Option<std::collections::HashSet<u64>> = None;
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                Op::TxBegin { undo_hint } => {
                    if hint_grains.is_some() {
                        return Err(SimError::InvalidConfig(format!(
                            "op {i}: nested tx_begin in program for {}",
                            self.thread
                        )));
                    }
                    hint_grains = Some(undo_hint.iter().map(|a| a.log_grain().index()).collect());
                }
                Op::TxEnd => {
                    if hint_grains.take().is_none() {
                        return Err(SimError::InvalidConfig(format!(
                            "op {i}: tx_end without tx_begin in program for {}",
                            self.thread
                        )));
                    }
                }
                Op::Write(addr, _) => {
                    if let Some(grains) = &hint_grains {
                        if !grains.contains(&addr.log_grain().index()) {
                            return Err(SimError::InvalidConfig(format!(
                                "op {i}: write to {addr} not covered by undo hint"
                            )));
                        }
                    }
                }
                Op::LockWait { .. } => {
                    if hint_grains.is_some() {
                        return Err(SimError::InvalidConfig(format!(
                            "op {i}: lock_wait inside a transaction in program for {}",
                            self.thread
                        )));
                    }
                }
                Op::Read(_) | Op::ReadDep(_) | Op::Compute(_) => {}
            }
        }
        if hint_grains.is_some() {
            return Err(SimError::InvalidConfig(format!(
                "program for {} ends inside a transaction",
                self.thread
            )));
        }
        Ok(())
    }

    /// Applies the program's writes directly to `image`, bypassing the
    /// simulator. Used to fast-forward initialization phases (the paper
    /// fast-forwards `#InitOps` before detailed simulation) and to compute
    /// the expected final memory contents in tests.
    pub fn apply_functionally(&self, image: &mut crate::pmem::WordImage) {
        for op in &self.ops {
            if let Op::Write(addr, value) = op {
                image.write_word(*addr, *value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmem::WordImage;

    #[test]
    fn builder_chains() {
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![Addr::new(0x100)])
            .read(Addr::new(0x100))
            .compute(3)
            .write(Addr::new(0x100), 5)
            .tx_end();
        assert_eq!(p.ops.len(), 5);
        assert_eq!(p.transaction_count(), 1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn hint_covers_whole_grain() {
        let mut p = Program::new(ThreadId::new(0));
        // Hint names 0x100; write to 0x118 is in the same 32 B grain.
        p.tx_begin(vec![Addr::new(0x100)]).write(Addr::new(0x118), 1).tx_end();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn uncovered_write_rejected() {
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![Addr::new(0x100)]).write(Addr::new(0x200), 1).tx_end();
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("not covered"));
    }

    #[test]
    fn bracketing_violations_rejected() {
        let mut p = Program::new(ThreadId::new(0));
        p.tx_end();
        assert!(p.validate().is_err());

        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![]).tx_begin(vec![]);
        assert!(p.validate().is_err());

        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn writes_outside_tx_need_no_hint() {
        let mut p = Program::new(ThreadId::new(0));
        p.write(Addr::new(0x500), 9);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn lock_wait_allowed_outside_transactions_only() {
        let lock = Addr::new(0x0E10_0000);
        let mut p = Program::new(ThreadId::new(1));
        p.lock_wait(lock, 0, vec![(Addr::new(0x6000_0000), 7)])
            .tx_begin(vec![Addr::new(0x6000_0000)])
            .write(Addr::new(0x6000_0000), 8)
            .tx_end()
            .write(lock, 1); // release
        assert!(p.validate().is_ok());

        let mut bad = Program::new(ThreadId::new(1));
        bad.tx_begin(vec![]).lock_wait(lock, 0, vec![]).tx_end();
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("lock_wait inside a transaction"));
    }

    #[test]
    fn external_writes_are_not_applied_functionally() {
        // `external` describes *other* threads' writes; applying this
        // thread's program must not replay them.
        let mut p = Program::new(ThreadId::new(0));
        p.lock_wait(Addr::new(0x0E10_0000), 0, vec![(Addr::new(0x6000_0000), 99)]);
        let mut img = WordImage::new();
        p.apply_functionally(&mut img);
        assert_eq!(img.read_word(Addr::new(0x6000_0000)), 0);
    }

    #[test]
    fn functional_application() {
        let mut p = Program::new(ThreadId::new(0));
        p.tx_begin(vec![Addr::new(0x100)]).write(Addr::new(0x100), 5).tx_end();
        p.write(Addr::new(0x200), 6);
        let mut img = WordImage::new();
        p.apply_functionally(&mut img);
        assert_eq!(img.read_word(Addr::new(0x100)), 5);
        assert_eq!(img.read_word(Addr::new(0x200)), 6);
    }
}
