//! Per-thread circular log area management.
//!
//! Paper §4.1: software allocates one log area per thread, treated as a
//! circular buffer; if a single transaction overflows the area the
//! processor raises an exception. [`LogArea`] tracks the current free slot
//! (the `curlog` register), a per-thread monotonic sequence counter, and
//! the per-transaction entry count used to detect overflow.

use crate::layout::AddressLayout;
use proteus_types::{Addr, SimError, ThreadId, TxId};
use serde::{Deserialize, Serialize};

/// Runtime state of one thread's log area: the architectural
/// `log-start`/`log-end`/`curlog` registers from Fig. 5 plus the sequence
/// counter used to order entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogArea {
    thread: ThreadId,
    base: Addr,
    entries: usize,
    head: usize,
    seq: u64,
    entries_this_tx: usize,
    current_tx: Option<TxId>,
    last_slot: Option<Addr>,
}

impl LogArea {
    /// Creates the log area of `thread` under `layout`.
    pub fn new(thread: ThreadId, layout: &AddressLayout) -> Self {
        LogArea {
            thread,
            base: layout.log_area(thread).start,
            entries: layout.log_area_entries,
            head: 0,
            seq: 0,
            entries_this_tx: 0,
            current_tx: None,
            last_slot: None,
        }
    }

    /// The owning thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The transaction currently writing entries, if any.
    pub fn current_tx(&self) -> Option<TxId> {
        self.current_tx
    }

    /// The slot address of the most recently allocated entry, if any.
    pub fn last_slot(&self) -> Option<Addr> {
        self.last_slot
    }

    /// Total entries allocated over the area's lifetime.
    pub fn total_allocated(&self) -> u64 {
        self.seq
    }

    /// Begins a transaction: subsequent allocations belong to `tx`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NestedTransaction`] semantics via
    /// [`SimError::InvalidConfig`]-free typed error if a transaction is
    /// already open.
    pub fn begin_tx(&mut self, tx: TxId) -> Result<(), SimError> {
        if self.current_tx.is_some() {
            return Err(SimError::NestedTransaction {
                core: proteus_types::CoreId::new(self.thread.raw()),
            });
        }
        self.current_tx = Some(tx);
        self.entries_this_tx = 0;
        Ok(())
    }

    /// Ends the current transaction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnmatchedTxEnd`] if no transaction is open.
    pub fn end_tx(&mut self) -> Result<(), SimError> {
        if self.current_tx.is_none() {
            return Err(SimError::UnmatchedTxEnd {
                core: proteus_types::CoreId::new(self.thread.raw()),
            });
        }
        self.current_tx = None;
        Ok(())
    }

    /// Allocates the next log slot (the hardware's LTA auto-increment, or
    /// software's cursor bump) and returns `(slot_address, sequence)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::LogAreaOverflow`] if the current transaction
    /// has filled the whole area, or
    /// [`SimError::LoggingOutsideTransaction`] if no transaction is open.
    pub fn alloc(&mut self) -> Result<(Addr, u64), SimError> {
        if self.current_tx.is_none() {
            return Err(SimError::LoggingOutsideTransaction {
                core: proteus_types::CoreId::new(self.thread.raw()),
            });
        }
        if self.entries_this_tx >= self.entries {
            return Err(SimError::LogAreaOverflow { thread: self.thread, capacity: self.entries });
        }
        let slot = self.base.offset(self.head as u64 * proteus_types::addr::CACHE_LINE_SIZE);
        self.head = (self.head + 1) % self.entries;
        let seq = self.seq;
        self.seq += 1;
        self.entries_this_tx += 1;
        self.last_slot = Some(slot);
        Ok((slot, seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn area() -> LogArea {
        let layout = AddressLayout { log_area_entries: 4, ..AddressLayout::default() };
        LogArea::new(ThreadId::new(1), &layout)
    }

    #[test]
    fn sequential_allocation() {
        let mut a = area();
        a.begin_tx(TxId::new(1)).unwrap();
        let (s0, q0) = a.alloc().unwrap();
        let (s1, q1) = a.alloc().unwrap();
        assert_eq!(s1.raw() - s0.raw(), 64);
        assert_eq!((q0, q1), (0, 1));
        assert_eq!(a.last_slot(), Some(s1));
        a.end_tx().unwrap();
    }

    #[test]
    fn wraps_circularly_across_transactions() {
        let mut a = area();
        let mut slots = Vec::new();
        for t in 0..3u64 {
            a.begin_tx(TxId::new(t + 1)).unwrap();
            for _ in 0..3 {
                slots.push(a.alloc().unwrap().0);
            }
            a.end_tx().unwrap();
        }
        // 9 allocations over a 4-slot area: slot addresses repeat mod 4.
        assert_eq!(slots[0], slots[4]);
        assert_eq!(slots[1], slots[5]);
        assert_eq!(a.total_allocated(), 9);
    }

    #[test]
    fn overflow_within_one_tx_errors() {
        let mut a = area();
        a.begin_tx(TxId::new(1)).unwrap();
        for _ in 0..4 {
            a.alloc().unwrap();
        }
        assert!(matches!(a.alloc(), Err(SimError::LogAreaOverflow { .. })));
    }

    #[test]
    fn logging_outside_tx_errors() {
        let mut a = area();
        assert!(matches!(a.alloc(), Err(SimError::LoggingOutsideTransaction { .. })));
    }

    #[test]
    fn nested_and_unmatched_tx_errors() {
        let mut a = area();
        a.begin_tx(TxId::new(1)).unwrap();
        assert!(matches!(a.begin_tx(TxId::new(2)), Err(SimError::NestedTransaction { .. })));
        a.end_tx().unwrap();
        assert!(matches!(a.end_tx(), Err(SimError::UnmatchedTxEnd { .. })));
    }

    #[test]
    fn sequence_is_monotonic_across_wrap() {
        let mut a = area();
        let mut last = None;
        for t in 0..5u64 {
            a.begin_tx(TxId::new(t + 1)).unwrap();
            let (_, q) = a.alloc().unwrap();
            if let Some(prev) = last {
                assert!(q > prev);
            }
            last = Some(q);
            a.end_tx().unwrap();
        }
    }
}
