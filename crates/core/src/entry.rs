//! The 64-byte log entry format.
//!
//! Paper §4.1: the logging data size is 32 bytes, leaving the remainder of
//! a 64-byte cache line for metadata, so one `log-flush` writes exactly one
//! line. The layout used here (as 8-byte words):
//!
//! | word | contents |
//! |------|----------|
//! | 0-3  | 32 B of original data from the log-from grain |
//! | 4    | log-from grain base address |
//! | 5    | transaction ID |
//! | 6    | flags: bit 0 = valid, bit 1 = commit marker |
//! | 7    | per-thread monotonic sequence number |
//!
//! The sequence number makes "use the earliest log entry" (§4.2's
//! out-of-order flush rule) well defined even after the circular log area
//! wraps: recovery applies, per grain, the entry with the lowest sequence
//! number of the transaction being undone.

use crate::pmem::WordImage;
use bytes::{Buf, BufMut, BytesMut};
use proteus_types::{Addr, TxId};
use serde::{Deserialize, Serialize};

/// Flag bit: entry holds live data.
pub const FLAG_VALID: u64 = 1 << 0;
/// Flag bit: entry is the last of its transaction (commit marker, §4.3).
pub const FLAG_COMMIT_MARKER: u64 = 1 << 1;

/// A decoded undo-log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The 32 bytes of pre-transaction data.
    pub data: [u64; 4],
    /// Base address of the 32-byte grain the data came from.
    pub log_from: Addr,
    /// Transaction that created the entry.
    pub tx: TxId,
    /// Whether this entry is its transaction's commit marker.
    pub commit_marker: bool,
    /// Per-thread monotonic sequence number (program order of flushes).
    pub seq: u64,
}

impl LogEntry {
    /// Creates a (non-marker) entry.
    pub fn new(data: [u64; 4], log_from: Addr, tx: TxId, seq: u64) -> Self {
        LogEntry { data, log_from, tx, commit_marker: false, seq }
    }

    /// Returns this entry with the commit marker set.
    pub fn with_commit_marker(mut self) -> Self {
        self.commit_marker = true;
        self
    }

    /// Encodes the entry into its 8-word line image.
    pub fn encode_words(&self) -> [u64; 8] {
        let mut flags = FLAG_VALID;
        if self.commit_marker {
            flags |= FLAG_COMMIT_MARKER;
        }
        [
            self.data[0],
            self.data[1],
            self.data[2],
            self.data[3],
            self.log_from.raw(),
            self.tx.raw(),
            flags,
            self.seq,
        ]
    }

    /// Decodes an entry from a line image; `None` if the valid bit is
    /// clear (an empty or cleared slot).
    pub fn decode_words(words: &[u64; 8]) -> Option<LogEntry> {
        if words[6] & FLAG_VALID == 0 {
            return None;
        }
        Some(LogEntry {
            data: [words[0], words[1], words[2], words[3]],
            log_from: Addr::new(words[4]),
            tx: TxId::new(words[5]),
            commit_marker: words[6] & FLAG_COMMIT_MARKER != 0,
            seq: words[7],
        })
    }

    /// Encodes the entry to its 64-byte wire representation
    /// (little-endian words).
    pub fn encode_bytes(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(64);
        for w in self.encode_words() {
            buf.put_u64_le(w);
        }
        buf
    }

    /// Decodes an entry from a 64-byte buffer.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is shorter than 64 bytes.
    pub fn decode_bytes(mut bytes: &[u8]) -> Option<LogEntry> {
        assert!(bytes.len() >= 64, "log entry requires 64 bytes");
        let words: [u64; 8] = std::array::from_fn(|_| bytes.get_u64_le());
        Self::decode_words(&words)
    }

    /// Writes the entry into `image` at log slot address `slot`
    /// (line-aligned).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not cache-line aligned.
    pub fn write_to(&self, image: &mut WordImage, slot: Addr) {
        assert!(slot.is_line_aligned(), "log slot must be line aligned");
        image.write_line(slot.line(), &self.encode_words());
    }

    /// Reads an entry from `image` at log slot address `slot`.
    pub fn read_from(image: &WordImage, slot: Addr) -> Option<LogEntry> {
        Self::decode_words(&image.read_line(slot.line()))
    }

    /// Clears the slot at `slot` in `image` (marks it invalid).
    pub fn clear_slot(image: &mut WordImage, slot: Addr) {
        image.write_line(slot.line(), &[0; 8]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LogEntry {
        LogEntry::new([1, 2, 3, 4], Addr::new(0x1000_0020), TxId::new(9), 77)
    }

    #[test]
    fn word_roundtrip() {
        let e = sample();
        assert_eq!(LogEntry::decode_words(&e.encode_words()), Some(e));
        let m = sample().with_commit_marker();
        let decoded = LogEntry::decode_words(&m.encode_words()).unwrap();
        assert!(decoded.commit_marker);
    }

    #[test]
    fn byte_roundtrip() {
        let e = sample();
        let bytes = e.encode_bytes();
        assert_eq!(bytes.len(), 64);
        assert_eq!(LogEntry::decode_bytes(&bytes), Some(e));
    }

    #[test]
    fn empty_slot_decodes_none() {
        assert_eq!(LogEntry::decode_words(&[0; 8]), None);
        assert_eq!(LogEntry::decode_bytes(&[0u8; 64]), None);
    }

    #[test]
    fn image_roundtrip_and_clear() {
        let mut img = WordImage::new();
        let slot = Addr::new(0x8000_0040);
        let e = sample();
        e.write_to(&mut img, slot);
        assert_eq!(LogEntry::read_from(&img, slot), Some(e));
        LogEntry::clear_slot(&mut img, slot);
        assert_eq!(LogEntry::read_from(&img, slot), None);
    }

    #[test]
    #[should_panic(expected = "line aligned")]
    fn unaligned_slot_rejected() {
        let mut img = WordImage::new();
        sample().write_to(&mut img, Addr::new(0x8000_0008));
    }
}
