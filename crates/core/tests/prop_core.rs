//! Property-based tests for the core library's data structures and the
//! scheme compiler.

use proptest::prelude::*;
use proteus_core::entry::LogEntry;
use proteus_core::isa::Uop;
use proteus_core::layout::AddressLayout;
use proteus_core::logarea::LogArea;
use proteus_core::pmem::WordImage;
use proteus_core::program::{Op, Program};
use proteus_core::recovery::{recover, scan_log_area};
use proteus_core::scheme::expand_program;
use proteus_types::config::LoggingSchemeKind;
use proteus_types::{Addr, ThreadId, TxId};
use std::collections::HashMap;

fn arb_entry() -> impl Strategy<Value = LogEntry> {
    (
        prop::array::uniform4(any::<u64>()),
        0u64..0x4000_0000,
        1u64..1_000_000,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(data, grain_idx, tx, marker, seq)| {
            let e = LogEntry::new(data, Addr::new(grain_idx * 32), TxId::new(tx), seq);
            if marker {
                e.with_commit_marker()
            } else {
                e
            }
        })
}

proptest! {
    #[test]
    fn log_entry_word_roundtrip(entry in arb_entry()) {
        let words = entry.encode_words();
        prop_assert_eq!(LogEntry::decode_words(&words), Some(entry));
    }

    #[test]
    fn log_entry_byte_roundtrip(entry in arb_entry()) {
        let bytes = entry.encode_bytes();
        prop_assert_eq!(LogEntry::decode_bytes(&bytes), Some(entry));
    }

    #[test]
    fn word_image_behaves_like_a_map(ops in prop::collection::vec(
        (0u64..2048, any::<u64>(), any::<bool>()), 1..200))
    {
        let mut image = WordImage::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (word, value, is_write) in ops {
            let addr = Addr::new(word * 8);
            if is_write {
                image.write_word(addr, value);
                reference.insert(word, value);
            } else {
                let expected = reference.get(&word).copied().unwrap_or(0);
                prop_assert_eq!(image.read_word(addr), expected);
            }
        }
        for (word, value) in &reference {
            prop_assert_eq!(image.read_word(Addr::new(word * 8)), *value);
        }
    }

    #[test]
    fn word_image_line_and_grain_views_agree(words in prop::array::uniform8(any::<u64>())) {
        let mut image = WordImage::new();
        let line = Addr::new(0x40_0000).line();
        image.write_line(line, &words);
        let g0 = image.read_grain(line.base());
        let g1 = image.read_grain(line.base().offset(32));
        prop_assert_eq!([g0[0], g0[1], g0[2], g0[3], g1[0], g1[1], g1[2], g1[3]], words);
    }

    #[test]
    fn log_area_slots_stay_in_bounds_and_wrap(
        txs in prop::collection::vec(1usize..20, 1..40))
    {
        let layout = AddressLayout { log_area_entries: 32, ..AddressLayout::default() };
        let thread = ThreadId::new(3);
        let region = layout.log_area(thread);
        let mut area = LogArea::new(thread, &layout);
        let mut tx_id = TxId::new(1);
        let mut prev_seq = None;
        for entries in txs {
            area.begin_tx(tx_id).unwrap();
            for _ in 0..entries.min(32) {
                let (slot, seq) = area.alloc().unwrap();
                prop_assert!(region.contains(slot), "slot {slot} outside area");
                prop_assert!(slot.is_line_aligned());
                if let Some(p) = prev_seq {
                    prop_assert!(seq > p, "sequence must be monotonic");
                }
                prev_seq = Some(seq);
            }
            area.end_tx().unwrap();
            tx_id = tx_id.next();
        }
    }
}

/// A random single-thread program with well-formed transactions.
fn arb_program() -> impl Strategy<Value = Program> {
    let tx = (
        prop::collection::vec((0u64..64, any::<u64>()), 1..8),
        prop::collection::vec(0u64..64, 0..8),
    );
    prop::collection::vec(tx, 1..10).prop_map(|txs| {
        let mut p = Program::new(ThreadId::new(0));
        let base = Addr::new(0x1000_0000);
        for (writes, reads) in txs {
            let hint: Vec<Addr> = writes
                .iter()
                .flat_map(|(node, _)| {
                    let a = base.offset(node * 64);
                    [a, a.offset(32)]
                })
                .collect();
            for r in &reads {
                p.read(base.offset(r * 64));
            }
            p.tx_begin(hint);
            for (node, value) in &writes {
                p.write(base.offset(node * 64 + (value % 8) * 8), *value);
            }
            p.tx_end();
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every scheme expansion preserves the program's store sequence
    /// (same addresses and values, same order).
    #[test]
    fn expansion_preserves_data_stores(program in arb_program()) {
        let layout = AddressLayout::default();
        let expected: Vec<(Addr, u64)> = program
            .ops
            .iter()
            .filter_map(|op| match op {
                Op::Write(a, v) => Some((*a, *v)),
                _ => None,
            })
            .collect();
        for scheme in LoggingSchemeKind::ALL {
            let trace = expand_program(&program, scheme, &layout).unwrap();
            let stores: Vec<(Addr, u64)> = trace
                .uops
                .iter()
                .filter_map(|u| match u {
                    Uop::Store { addr, value }
                        if addr.raw() >= 0x1000_0000 && addr.raw() < 0x8000_0000 =>
                    {
                        Some((*addr, *value))
                    }
                    _ => None,
                })
                .filter(|(a, _)| *a != layout.log_flag(ThreadId::new(0)))
                .collect();
            prop_assert_eq!(&stores, &expected, "{:?}", scheme);
        }
    }

    /// Proteus expansion: every transactional store is immediately
    /// preceded by its log-load/log-flush pair.
    #[test]
    fn proteus_pairs_guard_every_store(program in arb_program()) {
        let layout = AddressLayout::default();
        let trace = expand_program(&program, LoggingSchemeKind::Proteus, &layout).unwrap();
        let mut in_tx = false;
        for (i, u) in trace.uops.iter().enumerate() {
            match u {
                Uop::TxBegin { .. } => in_tx = true,
                Uop::TxEnd { .. } => in_tx = false,
                Uop::Store { addr, .. } if in_tx => {
                    prop_assert!(i >= 2, "store needs a preceding pair");
                    let lf = &trace.uops[i - 1];
                    let ll = &trace.uops[i - 2];
                    prop_assert!(matches!(lf, Uop::LogFlush { .. }), "at {i}: {lf}");
                    match ll {
                        Uop::LogLoad { addr: la, .. } => {
                            prop_assert_eq!(la.log_grain(), addr.log_grain());
                        }
                        other => prop_assert!(false, "at {}: {}", i, other),
                    }
                }
                _ => {}
            }
        }
    }

    /// Functional recovery invariant, schemes aside: writing entries for
    /// a transaction and recovering always restores exactly the grains
    /// the transaction logged, using the earliest entry per grain.
    #[test]
    fn recovery_applies_earliest_entry_per_grain(
        entries in prop::collection::vec((0u64..16, any::<u64>()), 1..24))
    {
        let layout = AddressLayout { log_area_entries: 64, ..AddressLayout::default() };
        let thread = ThreadId::new(0);
        let tx = TxId::new(5);
        let mut image = WordImage::new();
        // Live data is "current" everywhere.
        for g in 0u64..16 {
            image.write_word(Addr::new(0x1000_0000 + g * 32), 0xFFFF);
        }
        let mut first_per_grain: HashMap<u64, u64> = HashMap::new();
        for (slot, (grain, value)) in entries.iter().enumerate() {
            let from = Addr::new(0x1000_0000 + grain * 32);
            LogEntry::new([*value, 0, 0, 0], from, tx, slot as u64)
                .write_to(&mut image, layout.log_slot(thread, slot));
            first_per_grain.entry(*grain).or_insert(*value);
        }
        let report = recover(&mut image, &layout, LoggingSchemeKind::Proteus, &[thread]).unwrap();
        prop_assert_eq!(report.entries_applied(), first_per_grain.len());
        for (grain, value) in first_per_grain {
            prop_assert_eq!(
                image.read_word(Addr::new(0x1000_0000 + grain * 32)),
                value,
                "grain {} must hold its earliest logged value", grain
            );
        }
        // Idempotence: the tx is now resolved.
        let again = scan_log_area(&image, &layout, thread);
        prop_assert!(again.iter().any(|(_, e)| e.tx == tx && e.commit_marker));
    }
}
