//! The memory controller: read queue, WPQ, LPQ, arbiter, and the
//! persistency-domain machinery of §4.3.
//!
//! Key behaviours reproduced from the paper:
//!
//! * **ADR**: the WPQ and LPQ are inside the persistency domain. Writes
//!   and log flushes are durable — and acknowledged — on queue acceptance,
//!   not on NVMM writeback. [`MemoryController::crash_image`] accordingly
//!   folds both queues into the durable image.
//! * **LPQ**: log flushes go only to the LPQ; reads never check it. The
//!   arbiter prioritises reads, then WPQ writes, and drains the LPQ only
//!   under occupancy pressure (log entries are "kept as long as possible").
//! * **Flash clear**: at `tx-end`, LPQ entries of the committed
//!   transaction are discarded without ever being written to NVMM — except
//!   the transaction's last entry, which carries the commit marker and is
//!   retained until the next transaction's first log entry arrives from
//!   the same core (and is then dropped too).
//! * **ATOM source-log engine**: log entries are created *at the
//!   controller* from [`McRequest::AtomLog`] messages, inserted into the
//!   WPQ (ATOM has no LPQ), acknowledged immediately (posted log), and
//!   truncated at commit with per-entry invalidation writes.

use crate::bank::{Bank, BankMap};
use crate::persist_event::{CrashFaults, PersistEvent, PersistEventKind};
use crate::request::{McEvent, McRequest};
use crate::timing::ServiceTiming;
use proteus_core::entry::{FLAG_COMMIT_MARKER, FLAG_VALID};
use proteus_core::layout::AddressLayout;
use proteus_core::logarea::LogArea;
use proteus_core::pmem::{LineData, WordImage};
use proteus_trace::{PersistKind, QueueId, TraceEventKind, Tracer, TrackDump};
use proteus_types::addr::LineAddr;
use proteus_types::clock::{ClockRatio, Cycle, NextEvent};
use proteus_types::config::MemConfig;
use proteus_types::stats::MemStats;
use proteus_types::FastSet;
use proteus_types::{CoreId, ThreadId, TxId};
use std::collections::VecDeque;

/// How the LPQ treats log entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogDrainMode {
    /// Proteus log write removal: keep entries in the LPQ until their
    /// transaction commits, then flash clear them.
    KeepUntilCommit,
    /// Proteus+NoLWR: entries drain to NVMM like ordinary writes.
    DrainAlways,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriteKind {
    Data,
    Log,
    LogInvalidate,
}

#[derive(Debug, Clone)]
struct WpqEntry {
    line: LineAddr,
    data: LineData,
    kind: WriteKind,
    in_service: bool,
}

impl WpqEntry {
    /// ATOM log entries and their truncation writes must each reach the
    /// NVMM individually (ATOM lacks log write removal); only ordinary
    /// data write-backs coalesce.
    fn coalescable(&self) -> bool {
        self.kind == WriteKind::Data && !self.in_service
    }
}

#[derive(Debug, Clone)]
struct LpqEntry {
    slot_line: LineAddr,
    words: [u64; 8],
    core: CoreId,
    tx: TxId,
    seq: u64,
    /// Commit marker retained until the next transaction's first entry.
    retained_marker: bool,
    /// Forced to NVMM (context switch).
    must_drain: bool,
    in_service: bool,
}

#[derive(Debug, Clone)]
struct ReadEntry {
    line: LineAddr,
    req_id: u64,
    arrived: Cycle,
}

/// Last log entry observed per core, used to guarantee commit-marker
/// durability when the entry already left the LPQ.
#[derive(Debug, Clone, Copy)]
struct LastEntry {
    tx: TxId,
    slot_line: LineAddr,
    words: [u64; 8],
    seq: u64,
}

#[derive(Debug)]
struct AtomCoreState {
    area: LogArea,
    /// Slots written by the active transaction (for truncation writes).
    tx_slots: Vec<LineAddr>,
}

/// The memory controller.
#[derive(Debug)]
pub struct MemoryController {
    cfg: MemConfig,
    timing: ServiceTiming,
    map: BankMap,
    banks: Vec<Bank>,
    nvmm: WordImage,
    layout: AddressLayout,
    drain_mode: LogDrainMode,

    intake: VecDeque<(Cycle, McRequest)>,
    read_queue: Vec<ReadEntry>,
    wpq: Vec<WpqEntry>,
    /// Index over `wpq`: the lines of its coalescable entries (data
    /// write-backs not yet in service; at most one per line). Writeback
    /// intake retries probe the WPQ for a coalescing target every cycle
    /// while the queue is full, so the probe must not be a queue scan.
    wpq_coalescable: FastSet<LineAddr>,
    /// Entries `intake[..blocked_prefix]` are due write-backs (or ATOM
    /// log appends) that were rejected by a full WPQ and provably stay
    /// rejected while the WPQ remains full: a new coalescing target can
    /// only appear via a push, and a push needs a free slot. The prefix
    /// lets `process_intake` charge their per-cycle rejections in bulk
    /// instead of re-checking hundreds of parked entries every cycle.
    /// Reset to zero whenever the WPQ has room (or a tracer is attached,
    /// which needs the per-entry reject events). Purely an accelerator:
    /// never hashed into the machine state.
    blocked_prefix: usize,
    lpq: Vec<LpqEntry>,
    /// Background truncation/marker writes waiting for WPQ space.
    pending_writes: VecDeque<(LineAddr, [u64; 8], WriteKind)>,
    pending_pcommits: Vec<u64>,
    pending_tx_ends: Vec<(CoreId, TxId)>,
    in_flight: Vec<(Cycle, InFlight)>,
    events: Vec<McEvent>,

    atom: Vec<AtomCoreState>,
    last_entry: Vec<Option<LastEntry>>,
    wpq_draining: bool,
    mem_ticks: u64,
    next_mem_tick: Cycle,
    stats: MemStats,

    /// Monotonic count of durable-state transitions (crash-point index).
    persist_seq: u64,
    /// Cycle of the current tick, for timestamping persist events.
    clock: Cycle,
    record_persist: bool,
    timeline: Vec<PersistEvent>,
    tracer: Tracer,
}

#[derive(Debug)]
enum InFlight {
    Read { req_id: u64 },
    WpqWrite { index_line: LineAddr },
    LpqWrite { index_line: LineAddr, seq: u64 },
}

impl MemoryController {
    /// Creates a controller for `cfg` over the given address layout, in
    /// the given log-drain mode.
    pub fn new(cfg: MemConfig, layout: AddressLayout, drain_mode: LogDrainMode) -> Self {
        let ratio = ClockRatio::cpu_over_ddr3_1600();
        let timing = ServiceTiming::from_timing(&cfg.tech.timing(), ratio);
        let map = BankMap::new(cfg.banks, cfg.row_buffer_bytes);
        let banks = vec![Bank::default(); cfg.banks];
        let atom = (0..layout.max_threads)
            .map(|i| AtomCoreState {
                area: LogArea::new(ThreadId::new(i as u32), &layout),
                tx_slots: Vec::new(),
            })
            .collect();
        let last_entry = vec![None; layout.max_threads];
        MemoryController {
            cfg,
            timing,
            map,
            banks,
            nvmm: WordImage::new(),
            layout,
            drain_mode,
            intake: VecDeque::new(),
            blocked_prefix: 0,
            read_queue: Vec::new(),
            wpq: Vec::new(),
            wpq_coalescable: FastSet::default(),
            lpq: Vec::new(),
            pending_writes: VecDeque::new(),
            pending_pcommits: Vec::new(),
            pending_tx_ends: Vec::new(),
            in_flight: Vec::new(),
            events: Vec::new(),
            atom,
            last_entry,
            wpq_draining: false,
            mem_ticks: 0,
            next_mem_tick: 0,
            stats: MemStats::new(),
            persist_seq: 0,
            clock: 0,
            record_persist: false,
            timeline: Vec::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer for the controller's event stream (disabled by
    /// default; the simulator installs one when tracing is configured).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Ring capacity of the installed tracer (0 when disabled).
    pub fn trace_capacity(&self) -> usize {
        self.tracer.capacity()
    }

    /// Detaches the tracer's collected data, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<TrackDump> {
        self.tracer.take_dump()
    }

    /// Pre-loads the NVMM image (initialisation fast-forward).
    pub fn load_image(&mut self, image: WordImage) {
        self.nvmm = image;
    }

    /// Direct read access to the NVMM image (tests, recovery tooling).
    pub fn nvmm(&self) -> &WordImage {
        &self.nvmm
    }

    /// Collected statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Submits a request that arrives at the controller at `deliver_at`.
    pub fn submit(&mut self, request: McRequest, deliver_at: Cycle) {
        self.intake.push_back((deliver_at, request));
    }

    /// Whether the controller has no pending work that will ever make
    /// progress on its own. Under [`LogDrainMode::KeepUntilCommit`],
    /// LPQ-resident entries (including retained markers) are quiescent by
    /// design — they wait for a commit or a crash.
    pub fn is_quiescent(&self) -> bool {
        let lpq_idle = match self.drain_mode {
            LogDrainMode::KeepUntilCommit => self.lpq.iter().all(|e| !e.must_drain),
            LogDrainMode::DrainAlways => self.lpq.is_empty(),
        };
        // Data write-backs below the low watermark are durable (ADR) and
        // will never drain on their own — that is quiescent. Log-kind
        // entries always drain.
        let wpq_idle =
            self.wpq.iter().all(|e| e.kind == WriteKind::Data) && (self.wpq_draining_would_stop());
        self.intake.is_empty()
            && self.read_queue.is_empty()
            && self.in_flight.is_empty()
            && self.pending_writes.is_empty()
            && self.pending_pcommits.is_empty()
            && self.pending_tx_ends.is_empty()
            && wpq_idle
            && lpq_idle
    }

    fn wpq_draining_would_stop(&self) -> bool {
        let occ_pct = 100 * self.wpq.len() / self.cfg.wpq_entries.max(1);
        !self.wpq_draining && occ_pct <= self.cfg.wpq_low_watermark_pct as usize
    }

    /// Drains accumulated events.
    pub fn drain_events(&mut self) -> Vec<McEvent> {
        std::mem::take(&mut self.events)
    }

    /// The durable state at a crash: NVMM contents plus — under ADR — the
    /// battery-drained WPQ and LPQ (including retained commit markers).
    pub fn crash_image(&self) -> WordImage {
        self.crash_image_with(&CrashFaults::clean())
    }

    /// The durable state at a crash under the given fault model (see
    /// [`CrashFaults`] for the semantics of each knob). Requests still in
    /// the intake were never acknowledged and are always lost.
    pub fn crash_image_with(&self, faults: &CrashFaults) -> WordImage {
        let mut image = self.nvmm.clone();
        if let Some(mask) = faults.torn_word_mask {
            // In-service bank writes landed partially. Entries stay
            // queue-resident until the bank write completes, so a full
            // ADR drain below overwrites the torn lines again.
            for e in self.wpq.iter().filter(|e| e.in_service) {
                Self::write_torn_line(&mut image, e.line, &e.data, mask);
            }
            for e in self.lpq.iter().filter(|e| e.in_service) {
                Self::write_torn_line(&mut image, e.slot_line, &e.words, mask);
            }
        }
        if self.cfg.adr {
            let wpq_keep = faults.wpq_survivors.unwrap_or(self.wpq.len());
            for e in self.wpq.iter().take(wpq_keep) {
                image.write_line(e.line, &e.data);
            }
            let lpq_keep = faults.lpq_survivors.unwrap_or(self.lpq.len());
            for e in self.lpq.iter().take(lpq_keep) {
                image.write_line(e.slot_line, &e.words);
            }
        }
        image
    }

    fn write_torn_line(image: &mut WordImage, line: LineAddr, data: &LineData, mask: u8) {
        for (i, word) in data.iter().enumerate() {
            if mask & (1 << i) != 0 {
                image.write_word(line.base().offset(i as u64 * 8), *word);
            }
        }
    }

    /// Total durable-state transitions so far (the crash-point index
    /// space: "crash at event k" = the state right after `persist_seq`
    /// first reached k).
    pub fn persist_seq(&self) -> u64 {
        self.persist_seq
    }

    /// Enables or disables persist-event recording. The sequence counter
    /// always runs; recording additionally keeps the per-event timeline.
    pub fn set_record_persist_events(&mut self, on: bool) {
        self.record_persist = on;
        if !on {
            self.timeline.clear();
        }
    }

    /// The recorded timeline (empty unless recording is enabled).
    pub fn persist_timeline(&self) -> &[PersistEvent] {
        &self.timeline
    }

    fn persist_event(&mut self, kind: PersistEventKind) {
        self.persist_seq += 1;
        if self.tracer.is_enabled() {
            let mapped = match kind {
                PersistEventKind::WpqAccept { .. } => PersistKind::WpqAccept,
                PersistEventKind::WpqDrain { .. } => PersistKind::WpqDrain,
                PersistEventKind::LpqAccept { .. } => PersistKind::LpqAccept,
                PersistEventKind::LpqDrain { .. } => PersistKind::LpqDrain,
                PersistEventKind::LogClear { .. } => PersistKind::LogClear,
                PersistEventKind::MarkerStamp { .. } => PersistKind::MarkerStamp,
                PersistEventKind::MarkerDrop { .. } => PersistKind::MarkerDrop,
            };
            self.tracer.emit(self.clock, TraceEventKind::Persist(mapped));
        }
        if self.record_persist {
            self.timeline.push(PersistEvent { seq: self.persist_seq, at: self.clock, kind });
        }
    }

    /// Advances the controller to CPU cycle `now`.
    ///
    /// `now` need not increase by exactly one between calls: when the
    /// engine fast-forwards over a quiescent window, the first tick after
    /// the jump first replays the skipped memory-clock edges against the
    /// window's (frozen) state, then runs this cycle's phases as usual.
    pub fn tick(&mut self, now: Cycle) {
        self.clock = now;
        if self.tracer.is_enabled() {
            self.tracer.maybe_sample(
                now,
                &[
                    (QueueId::ReadQ, self.read_queue.len() as u32),
                    (QueueId::Wpq, self.wpq.len() as u32),
                    (QueueId::Lpq, self.lpq.len() as u32),
                ],
            );
        }
        self.catch_up_edges(now);
        self.process_intake(now);
        self.feed_pending_writes();
        self.resolve_tx_ends(now);
        self.resolve_pcommits(now);
        self.complete_in_flight(now);
        while now >= self.next_mem_tick {
            self.schedule_command(self.next_mem_tick);
            self.advance_mem_tick();
        }
        self.stats.wpq_peak_occupancy = self.stats.wpq_peak_occupancy.max(self.wpq.len());
        self.stats.lpq_peak_occupancy = self.stats.lpq_peak_occupancy.max(self.lpq.len());
    }

    fn advance_mem_tick(&mut self) {
        self.mem_ticks += 1;
        // Exact 17/4 CPU cycles per memory cycle.
        self.next_mem_tick = Self::edge_of(self.mem_ticks);
    }

    /// The CPU cycle of memory-clock edge `k` (exact 17/4 ratio).
    fn edge_of(k: u64) -> Cycle {
        (k * 17).div_ceil(4)
    }

    /// The smallest memory-tick index whose CPU-cycle edge is `>= x`.
    fn mem_tick_at_or_after(x: Cycle) -> u64 {
        // ceil(17k/4) >= x  ⇔  k >= (4x - 3) / 17, rounded up.
        (4 * x).saturating_sub(3).div_ceil(17)
    }

    /// Re-aims the edge loop at the first edge at or after `x` (never
    /// moving backwards).
    fn jump_to_edge(&mut self, x: Cycle) {
        let k = Self::mem_tick_at_or_after(x).max(self.mem_ticks);
        self.mem_ticks = k;
        self.next_mem_tick = Self::edge_of(k);
    }

    /// Replays memory-clock edges that fell strictly before `now`.
    ///
    /// In single-step mode this never fires: each edge is an integer
    /// cycle and is processed by the tick of that exact cycle, so
    /// `next_mem_tick` can never lag `now`. After a fast-forward jump the
    /// skipped window's state is frozen by construction (the [`NextEvent`]
    /// contract wakes the engine for any phase activity or command
    /// issue), so replaying the stale edges against the current pre-phase
    /// state does exactly what per-cycle ticking would have done — and
    /// edges at which provably no command can issue are hopped in O(1)
    /// instead of scanned one by one.
    fn catch_up_edges(&mut self, now: Cycle) {
        while self.next_mem_tick < now {
            self.schedule_command(self.next_mem_tick);
            self.advance_mem_tick();
            if self.next_mem_tick >= now {
                break;
            }
            match self.next_issue_boundary() {
                Some(t) if t < now => self.jump_to_edge(t),
                // Nothing can issue before `now`: land on the first edge
                // at or after it and let the post-phase loop take over.
                _ => self.jump_to_edge(now),
            }
        }
    }

    /// The earliest memory-clock edge at or after `next_mem_tick` at
    /// which the arbiter could issue a command, or `None` if nothing is
    /// currently eligible. Exact while the queues are frozen: eligibility
    /// only changes through the per-cycle phases (which wake the engine)
    /// or through command issue itself (which happens no earlier than the
    /// returned edge).
    fn next_issue_boundary(&self) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let consider = |busy_until: Cycle, best: &mut Option<Cycle>| {
            *best = Some(best.map_or(busy_until, |b: Cycle| b.min(busy_until)));
        };
        // 1. Reads not yet dispatched to a bank.
        for r in self.read_queue.iter().filter(|r| {
            !self
                .in_flight
                .iter()
                .any(|(_, f)| matches!(f, InFlight::Read { req_id } if *req_id == r.req_id))
        }) {
            consider(self.banks[self.map.bank_of(r.line)].busy_until(), &mut best);
        }
        // 2. WPQ entries, under the hysteresis state the next arbiter
        // call will compute from the current occupancy.
        let occ_pct = 100 * self.wpq.len() / self.cfg.wpq_entries.max(1);
        let draining = if occ_pct >= self.cfg.wpq_high_watermark_pct as usize {
            true
        } else if occ_pct <= self.cfg.wpq_low_watermark_pct as usize {
            false
        } else {
            self.wpq_draining
        };
        let drain_wpq = draining
            || !self.pending_pcommits.is_empty()
            || (self.read_queue.is_empty() && occ_pct > self.cfg.wpq_low_watermark_pct as usize);
        let mut wpq_has_eligible = false;
        for e in
            self.wpq.iter().filter(|e| !e.in_service && (drain_wpq || e.kind != WriteKind::Data))
        {
            wpq_has_eligible = true;
            consider(self.banks[self.map.bank_of(e.line)].busy_until(), &mut best);
        }
        // 3. LPQ entries under the log-drain policy.
        let lpq_occ_pct = 100 * self.lpq.len() / self.cfg.lpq_entries.max(1);
        let drain_lpq = match self.drain_mode {
            LogDrainMode::KeepUntilCommit => lpq_occ_pct >= 90,
            LogDrainMode::DrainAlways => !wpq_has_eligible,
        };
        for e in self
            .lpq
            .iter()
            .filter(|e| !e.in_service && !e.retained_marker && (drain_lpq || e.must_drain))
        {
            consider(self.banks[self.map.bank_of(e.slot_line)].busy_until(), &mut best);
        }
        best.map(|b| Self::edge_of(Self::mem_tick_at_or_after(b).max(self.mem_ticks)))
    }

    /// Hashes the externally observable simulation state — not stats, not
    /// clock bookkeeping. Used by the paranoid engine cross-check to
    /// prove that skipped windows were genuinely quiescent.
    #[doc(hidden)]
    pub fn debug_fingerprint(&self, h: &mut impl std::hash::Hasher) {
        use std::hash::Hash;
        self.persist_seq.hash(h);
        self.intake.len().hash(h);
        self.read_queue.len().hash(h);
        self.wpq.len().hash(h);
        self.wpq.iter().filter(|e| e.in_service).count().hash(h);
        self.lpq.len().hash(h);
        self.lpq.iter().filter(|e| e.in_service).count().hash(h);
        self.lpq.iter().filter(|e| e.retained_marker).count().hash(h);
        self.pending_writes.len().hash(h);
        self.pending_pcommits.len().hash(h);
        self.pending_tx_ends.len().hash(h);
        self.in_flight.len().hash(h);
        self.events.len().hash(h);
        // `wpq_draining` is deliberately excluded: the hysteresis flag is
        // recomputed at every memory-clock edge and may settle to its
        // fixpoint one edge into a quiescent window. The flip is pure
        // bookkeeping (its observable consequence — a newly eligible
        // write — is what `next_issue_boundary` wakes on) and is replayed
        // bit-exactly by `catch_up_edges`.
        for b in &self.banks {
            b.busy_until().hash(h);
        }
    }

    fn process_intake(&mut self, now: Cycle) {
        // Walk the deque in place. A due entry that is certainly blocked
        // (its queue is full and nothing lets it cut in) stays where it
        // sits, paying only the same reject bookkeeping `try_accept`
        // would; everything else is pulled out and offered to
        // `try_accept`, which remains the sole authority on acceptance.
        // The in-place walk matters: a blocked machine retries every due
        // entry every cycle, and rotating ~100-byte requests through the
        // deque for each retry dominated whole-run wall time.
        //
        // On top of the walk sits the `blocked_prefix` bulk path. While
        // the WPQ is full, no new coalescing target can appear (a push
        // needs a free slot) and no parked write-back can be accepted,
        // so a prefix of already-rejected write-backs needs no
        // re-examination at all — only its per-cycle rejection stats.
        // Any cycle that starts with WPQ headroom resets the prefix and
        // walks everything exactly.
        let wpq_pinned = self.wpq.len() >= self.cfg.wpq_entries && !self.tracer.is_enabled();
        if !wpq_pinned {
            self.blocked_prefix = 0;
        } else {
            debug_assert!(self.blocked_prefix <= self.intake.len());
            debug_assert!(self.intake.iter().take(self.blocked_prefix).all(|(at, req)| {
                *at <= now
                    && match req {
                        McRequest::WriteBack { line, .. } => !self.wpq_coalescable.contains(line),
                        McRequest::AtomLog { .. } => true,
                        _ => false,
                    }
            }));
            // Each parked entry would have been offered to `try_accept`
            // this cycle and rejected with exactly one WPQ-full tick.
            self.stats.wpq_full_rejections += self.blocked_prefix as u64;
        }
        let mut i = self.blocked_prefix;
        // The prefix may grow only while it stays contiguous with the
        // rejections seen during this walk.
        let mut extending = wpq_pinned;
        while i < self.intake.len() {
            let (at, ref req) = self.intake[i];
            if at > now {
                // Delivery cycles are monotone in arrival order, so
                // nothing beyond this point is due either; but the walk
                // stays correct even if a caller breaks that, so keep
                // scanning entry by entry.
                extending = false;
                i += 1;
                continue;
            }
            // Mirror of `try_accept`'s reject conditions, by reference.
            // Each arm must replicate that path's stats and trace events
            // exactly; acceptance-side effects stay in `try_accept`.
            let blocked = match req {
                McRequest::Read { line, .. } => {
                    let line = *line;
                    !self.wpq.iter().rev().any(|e| e.line == line)
                        && self.read_queue.len() >= self.cfg.read_queue_entries
                        && {
                            self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::ReadQ });
                            true
                        }
                }
                McRequest::WriteBack { line, .. } => {
                    // `wpq_coalescable` only ever holds data-kind lines,
                    // so a hit implies `classify(line) == Data` and a
                    // guaranteed coalesce; a miss with a full WPQ rejects
                    // for data and log write-backs alike.
                    !self.wpq_coalescable.contains(line)
                        && self.wpq.len() >= self.cfg.wpq_entries
                        && {
                            self.stats.wpq_full_rejections += 1;
                            self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::Wpq });
                            true
                        }
                }
                McRequest::LogFlush { .. } => {
                    extending = false;
                    self.lpq.len() >= self.cfg.lpq_entries && {
                        self.stats.lpq_full_rejections += 1;
                        self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::Lpq });
                        true
                    }
                }
                McRequest::AtomLog { .. } => {
                    self.wpq.len() >= self.cfg.wpq_entries && {
                        self.stats.wpq_full_rejections += 1;
                        self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::Wpq });
                        true
                    }
                }
                // TxEnd, Pcommit, and DrainCoreLogs are always accepted.
                _ => false,
            };
            if blocked {
                if extending && i == self.blocked_prefix {
                    match self.intake[i].1 {
                        McRequest::WriteBack { .. } | McRequest::AtomLog { .. } => {
                            self.blocked_prefix += 1;
                        }
                        _ => extending = false,
                    }
                } else {
                    extending = false;
                }
                i += 1;
                continue;
            }
            extending = false;
            let (at, req) = self.intake.remove(i).expect("index in range");
            if let Err(req) = self.try_accept(req, now) {
                // The pre-filter said "maybe"; `try_accept` said no and
                // already recorded the rejection. Put the entry back in
                // its slot so the retry order matches the rotate-based
                // implementation exactly.
                debug_assert!(false, "in-place intake pre-filter missed a reject condition");
                self.intake.insert(i, (at, req));
                i += 1;
            }
        }
    }

    fn try_accept(&mut self, req: McRequest, now: Cycle) -> Result<(), McRequest> {
        match req {
            McRequest::Read { line, req_id } => {
                // Forward from the WPQ: the newest matching entry wins.
                if let Some(e) = self.wpq.iter().rev().find(|e| e.line == line) {
                    self.events.push(McEvent::ReadDone {
                        req_id,
                        data: e.data,
                        at: now + self.timing.burst(),
                    });
                    return Ok(());
                }
                if self.read_queue.len() >= self.cfg.read_queue_entries {
                    self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::ReadQ });
                    return Err(McRequest::Read { line, req_id });
                }
                self.read_queue.push(ReadEntry { line, req_id, arrived: now });
                self.tracer.emit(
                    now,
                    TraceEventKind::Enqueue {
                        queue: QueueId::ReadQ,
                        occupancy: self.read_queue.len() as u32,
                    },
                );
                Ok(())
            }
            McRequest::WriteBack { line, data, ack_id } => {
                if !self.insert_wpq(line, data, self.classify(line)) {
                    self.stats.wpq_full_rejections += 1;
                    self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::Wpq });
                    return Err(McRequest::WriteBack { line, data, ack_id });
                }
                if let Some(id) = ack_id {
                    self.events.push(McEvent::WritebackAck { ack_id: id, at: now });
                }
                Ok(())
            }
            McRequest::LogFlush { slot, words, core, tx, flush_id } => {
                if self.lpq.len() >= self.cfg.lpq_entries {
                    self.stats.lpq_full_rejections += 1;
                    self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::Lpq });
                    return Err(McRequest::LogFlush { slot, words, core, tx, flush_id });
                }
                // A new transaction's first entry retires the previous
                // transaction's retained commit marker (§4.3).
                let dropped_before = self.lpq.len();
                self.lpq.retain(|e| !(e.core == core && e.retained_marker && e.tx < tx));
                let dropped = dropped_before - self.lpq.len();
                self.stats.wpq_log_dropped += dropped as u64;
                if dropped > 0 {
                    self.persist_event(PersistEventKind::MarkerDrop { entries: dropped as u32 });
                }

                let seq = words[7];
                self.lpq.push(LpqEntry {
                    slot_line: slot.line(),
                    words,
                    core,
                    tx,
                    seq,
                    retained_marker: false,
                    must_drain: false,
                    in_service: false,
                });
                self.stats.lpq_inserts += 1;
                self.persist_event(PersistEventKind::LpqAccept { slot_line: slot.line() });
                self.tracer.emit(
                    now,
                    TraceEventKind::Enqueue {
                        queue: QueueId::Lpq,
                        occupancy: self.lpq.len() as u32,
                    },
                );
                self.last_entry[core.index()] =
                    Some(LastEntry { tx, slot_line: slot.line(), words, seq });
                self.events.push(McEvent::LogFlushAck { flush_id, at: now });
                Ok(())
            }
            McRequest::AtomLog { grain, old_data, core, tx, log_id } => {
                // Check WPQ space up front: log entries never coalesce,
                // and a rejected request is retried, so the slot must
                // only be allocated once acceptance is certain.
                if self.wpq.len() >= self.cfg.wpq_entries {
                    self.stats.wpq_full_rejections += 1;
                    self.tracer.emit(now, TraceEventKind::Reject { queue: QueueId::Wpq });
                    return Err(McRequest::AtomLog { grain, old_data, core, tx, log_id });
                }
                // Source-log optimisation: on a core-side cache miss the
                // controller reads the pre-store grain from its own
                // durable view (WPQ entries shadow the NVMM array).
                let data = old_data.unwrap_or_else(|| {
                    let line = grain.line();
                    let line_data = self
                        .wpq
                        .iter()
                        .rev()
                        .find(|e| e.line == line)
                        .map(|e| e.data)
                        .unwrap_or_else(|| self.nvmm.read_line(line));
                    let base = (grain.log_grain().index() % 2) as usize * 4;
                    [line_data[base], line_data[base + 1], line_data[base + 2], line_data[base + 3]]
                });
                let state = &mut self.atom[core.index()];
                if state.area.current_tx() != Some(tx) {
                    if state.area.current_tx().is_some() {
                        state.area.end_tx().expect("open tx");
                    }
                    state.area.begin_tx(tx).expect("fresh tx");
                    state.tx_slots.clear();
                }
                let (slot, seq) =
                    state.area.alloc().expect("ATOM hardware log area overflow; enlarge layout");
                let entry = proteus_core::entry::LogEntry::new(data, grain, tx, seq);
                let words = entry.encode_words();
                let accepted = self.insert_wpq(slot.line(), words, WriteKind::Log);
                debug_assert!(accepted, "space was checked above");
                let state = &mut self.atom[core.index()];
                state.tx_slots.push(slot.line());
                self.last_entry[core.index()] =
                    Some(LastEntry { tx, slot_line: slot.line(), words, seq });
                self.events.push(McEvent::AtomLogAck { log_id, at: now });
                Ok(())
            }
            McRequest::TxEnd { core, tx } => {
                self.pending_tx_ends.push((core, tx));
                Ok(())
            }
            McRequest::Pcommit { commit_id } => {
                self.pending_pcommits.push(commit_id);
                self.stats.pcommits += 1;
                Ok(())
            }
            McRequest::DrainCoreLogs { core } => {
                for e in &mut self.lpq {
                    if e.core == core {
                        e.must_drain = true;
                    }
                }
                Ok(())
            }
        }
    }

    fn classify(&self, line: LineAddr) -> WriteKind {
        if self.layout.log_area_owner(line.base()).is_some() {
            WriteKind::Log
        } else {
            WriteKind::Data
        }
    }

    fn insert_wpq(&mut self, line: LineAddr, data: LineData, kind: WriteKind) -> bool {
        debug_assert_eq!(
            self.wpq_coalescable.len(),
            self.wpq.iter().filter(|e| e.coalescable()).count(),
            "coalescable index out of sync with the WPQ"
        );
        // Coalesce onto an existing same-line data entry not yet in
        // service (normal write-back coalescing). The index keeps the
        // common full-queue retry (no coalescing target) off the queue
        // scan; a hit scans, but a hit also accepts the request.
        if kind == WriteKind::Data && self.wpq_coalescable.contains(&line) {
            let e = self
                .wpq
                .iter_mut()
                .find(|e| e.line == line && e.coalescable())
                .expect("indexed line has a coalescable entry");
            e.data = data;
            self.stats.wpq_inserts += 1;
            self.persist_event(PersistEventKind::WpqAccept { line });
            return true;
        }
        if self.wpq.len() >= self.cfg.wpq_entries {
            return false;
        }
        self.wpq.push(WpqEntry { line, data, kind, in_service: false });
        if kind == WriteKind::Data {
            self.wpq_coalescable.insert(line);
        }
        self.stats.wpq_inserts += 1;
        self.persist_event(PersistEventKind::WpqAccept { line });
        self.tracer.emit(
            self.clock,
            TraceEventKind::Enqueue { queue: QueueId::Wpq, occupancy: self.wpq.len() as u32 },
        );
        true
    }

    fn feed_pending_writes(&mut self) {
        while let Some((line, words, kind)) = self.pending_writes.front().copied() {
            if self.insert_wpq(line, words, kind) {
                self.pending_writes.pop_front();
            } else {
                break;
            }
        }
    }

    /// Commit-time work: flash clear, marker durability, ATOM truncation.
    fn resolve_tx_ends(&mut self, now: Cycle) {
        let pending = std::mem::take(&mut self.pending_tx_ends);
        for (core, tx) in pending {
            if self.finish_tx_end(core, tx) {
                self.events.push(McEvent::TxEndDone { core, tx, at: now });
            } else {
                self.pending_tx_ends.push((core, tx));
            }
        }
    }

    fn finish_tx_end(&mut self, core: CoreId, tx: TxId) -> bool {
        // ATOM: ensure marker durability and truncate the log with
        // per-entry invalidation writes.
        let atom_slots = {
            let state = &mut self.atom[core.index()];
            if state.area.current_tx() == Some(tx) {
                state.area.end_tx().expect("open tx");
                Some(std::mem::take(&mut state.tx_slots))
            } else {
                None
            }
        };
        if let Some(slots) = atom_slots {
            if let Some(last) = self.last_entry[core.index()] {
                if last.tx == tx {
                    // Commit marker must be durable before the commit
                    // completes: stamp it onto the WPQ-resident last
                    // entry, or write it out if the entry escaped.
                    let stamped = self
                        .wpq
                        .iter_mut()
                        .find(|e| {
                            e.line == last.slot_line && e.kind == WriteKind::Log && !e.in_service
                        })
                        .map(|e| e.data[6] |= FLAG_COMMIT_MARKER)
                        .is_some();
                    if stamped {
                        self.persist_event(PersistEventKind::MarkerStamp {
                            slot_line: last.slot_line,
                        });
                    }
                    if !stamped {
                        let mut words = last.words;
                        words[6] |= FLAG_COMMIT_MARKER;
                        if !self.insert_wpq(last.slot_line, words, WriteKind::Log) {
                            // Re-register the slots and retry next tick.
                            self.atom[core.index()].area.begin_tx(tx).expect("reopen");
                            self.atom[core.index()].tx_slots = slots;
                            return false;
                        }
                    }
                    // Truncation (§4.3): the MC's tracker clears entries
                    // that are still buffered; entries that already
                    // drained to NVMM must be invalidated manually one by
                    // one (a read plus a write each).
                    for slot in slots {
                        if slot == last.slot_line {
                            continue;
                        }
                        let before = self.wpq.len();
                        self.wpq.retain(|e| {
                            !(e.line == slot && e.kind == WriteKind::Log && !e.in_service)
                        });
                        if self.wpq.len() < before {
                            self.stats.wpq_log_dropped += 1;
                            self.persist_event(PersistEventKind::LogClear { entries: 1 });
                        } else {
                            self.stats.nvmm_reads += 1; // read-modify-write
                            let mut cleared = [0u64; 8];
                            cleared[6] = 0; // valid bit off
                            self.pending_writes.push_back((
                                slot,
                                cleared,
                                WriteKind::LogInvalidate,
                            ));
                        }
                    }
                }
            }
            return true;
        }

        // Proteus: flash clear this transaction's LPQ entries, retaining
        // the commit marker on the last one.
        let last = self.last_entry[core.index()];
        match self.drain_mode {
            LogDrainMode::KeepUntilCommit => {
                let before = self.lpq.len();
                let last_seq = last.filter(|l| l.tx == tx).map(|l| l.seq);
                self.lpq.retain(|e| {
                    !(e.core == core && e.tx == tx && !e.in_service && Some(e.seq) != last_seq)
                });
                let cleared = before - self.lpq.len();
                self.stats.lpq_flash_cleared += cleared as u64;
                if cleared > 0 {
                    self.persist_event(PersistEventKind::LogClear { entries: cleared as u32 });
                    self.tracer.emit(
                        self.clock,
                        TraceEventKind::Dequeue {
                            queue: QueueId::Lpq,
                            occupancy: self.lpq.len() as u32,
                        },
                    );
                }
                if let Some(l) = last.filter(|l| l.tx == tx) {
                    if let Some(e) =
                        self.lpq.iter_mut().find(|e| e.core == core && e.tx == tx && e.seq == l.seq)
                    {
                        e.words[6] |= FLAG_COMMIT_MARKER;
                        e.retained_marker = true;
                        let slot_line = e.slot_line;
                        self.persist_event(PersistEventKind::MarkerStamp { slot_line });
                    } else {
                        // Last entry already escaped to NVMM: rewrite it
                        // there with the marker set.
                        let mut words = l.words;
                        words[6] |= FLAG_COMMIT_MARKER | FLAG_VALID;
                        self.pending_writes.push_back((
                            l.slot_line,
                            words,
                            WriteKind::LogInvalidate,
                        ));
                    }
                }
                true
            }
            LogDrainMode::DrainAlways => {
                // No removal; only set the marker on the last entry.
                if let Some(l) = last.filter(|l| l.tx == tx) {
                    if let Some(e) = self
                        .lpq
                        .iter_mut()
                        .find(|e| e.core == core && e.tx == tx && e.seq == l.seq && !e.in_service)
                    {
                        e.words[6] |= FLAG_COMMIT_MARKER;
                        let slot_line = e.slot_line;
                        self.persist_event(PersistEventKind::MarkerStamp { slot_line });
                    } else {
                        let mut words = l.words;
                        words[6] |= FLAG_COMMIT_MARKER | FLAG_VALID;
                        self.pending_writes.push_back((
                            l.slot_line,
                            words,
                            WriteKind::LogInvalidate,
                        ));
                    }
                }
                true
            }
        }
    }

    fn resolve_pcommits(&mut self, now: Cycle) {
        if self.pending_pcommits.is_empty() {
            return;
        }
        let drained = self.wpq.is_empty() && self.pending_writes.is_empty();
        if drained {
            for commit_id in std::mem::take(&mut self.pending_pcommits) {
                self.events.push(McEvent::PcommitDone { commit_id, at: now });
            }
        }
    }

    fn complete_in_flight(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].0 > now {
                i += 1;
                continue;
            }
            let (_, action) = self.in_flight.remove(i);
            match action {
                InFlight::Read { req_id } => {
                    // Data was captured at completion time from NVMM.
                    // (Same-line writes serialise on the same bank.)
                    let line = self
                        .read_queue
                        .iter()
                        .position(|r| r.req_id == req_id)
                        .map(|pos| self.read_queue.remove(pos))
                        .expect("read completion without queue entry");
                    let waited = now.saturating_sub(line.arrived);
                    self.stats.read_queue_wait_cycles += waited;
                    if self.tracer.is_enabled() {
                        self.tracer.record_wait(QueueId::ReadQ, waited);
                        self.tracer.emit(
                            now,
                            TraceEventKind::Dequeue {
                                queue: QueueId::ReadQ,
                                occupancy: self.read_queue.len() as u32,
                            },
                        );
                    }
                    let data = self.nvmm.read_line(line.line);
                    self.events.push(McEvent::ReadDone { req_id, data, at: now });
                }
                InFlight::WpqWrite { index_line } => {
                    if let Some(pos) =
                        self.wpq.iter().position(|e| e.line == index_line && e.in_service)
                    {
                        let e = self.wpq.remove(pos);
                        self.nvmm.write_line(e.line, &e.data);
                        self.persist_event(PersistEventKind::WpqDrain { line: e.line });
                        self.tracer.emit(
                            now,
                            TraceEventKind::Dequeue {
                                queue: QueueId::Wpq,
                                occupancy: self.wpq.len() as u32,
                            },
                        );
                        match e.kind {
                            WriteKind::Data => self.stats.nvmm_data_writes += 1,
                            WriteKind::Log => self.stats.nvmm_log_writes += 1,
                            WriteKind::LogInvalidate => {
                                self.stats.nvmm_log_invalidation_writes += 1
                            }
                        }
                    }
                }
                InFlight::LpqWrite { index_line, seq } => {
                    if let Some(pos) = self
                        .lpq
                        .iter()
                        .position(|e| e.slot_line == index_line && e.seq == seq && e.in_service)
                    {
                        let e = self.lpq.remove(pos);
                        self.nvmm.write_line(e.slot_line, &e.words);
                        self.persist_event(PersistEventKind::LpqDrain { slot_line: e.slot_line });
                        self.tracer.emit(
                            now,
                            TraceEventKind::Dequeue {
                                queue: QueueId::Lpq,
                                occupancy: self.lpq.len() as u32,
                            },
                        );
                        self.stats.nvmm_log_writes += 1;
                        self.stats.lpq_drained += 1;
                    }
                }
            }
        }
    }

    /// Issues at most one bank command per memory-clock edge:
    /// reads first, then WPQ writes under the watermark policy, then LPQ
    /// drains under the log policy.
    fn schedule_command(&mut self, now: Cycle) {
        // 1. Oldest read whose bank is idle.
        let in_service: Vec<u64> = self
            .in_flight
            .iter()
            .filter_map(|(_, f)| match f {
                InFlight::Read { req_id } => Some(*req_id),
                _ => None,
            })
            .collect();
        if let Some(r) = self
            .read_queue
            .iter()
            .filter(|r| !in_service.contains(&r.req_id))
            .find(|r| self.banks[self.map.bank_of(r.line)].is_idle(now))
            .map(|r| (r.line, r.req_id))
        {
            let bank = self.map.bank_of(r.0);
            let row = self.map.row_of(r.0);
            let done = self.banks[bank].start_read(row, now, &self.timing);
            self.stats.nvmm_reads += 1;
            self.in_flight.push((done, InFlight::Read { req_id: r.1 }));
            return;
        }

        // 2. WPQ drain under watermark hysteresis (always drain during a
        // pending pcommit or when the controller is otherwise idle).
        let occ_pct = 100 * self.wpq.len() / self.cfg.wpq_entries.max(1);
        if occ_pct >= self.cfg.wpq_high_watermark_pct as usize {
            self.wpq_draining = true;
        } else if occ_pct <= self.cfg.wpq_low_watermark_pct as usize {
            self.wpq_draining = false;
        }
        // Opportunistic draining only once the queue holds a meaningful
        // batch (above the low watermark): with ADR there is no urgency,
        // and leaving small residues buffered is what gives ATOM's
        // tracker its clearing window.
        let drain_wpq = self.wpq_draining
            || !self.pending_pcommits.is_empty()
            || (self.read_queue.is_empty() && occ_pct > self.cfg.wpq_low_watermark_pct as usize);
        {
            // Log-kind entries (ATOM entries, truncation writes, SW log
            // write-backs) drain regardless of the watermark: ATOM's log
            // lives in NVMM, not in the controller.
            if let Some((line, bank, row)) = self
                .wpq
                .iter()
                .filter(|e| !e.in_service && (drain_wpq || e.kind != WriteKind::Data))
                .map(|e| (e.line, self.map.bank_of(e.line), self.map.row_of(e.line)))
                .find(|(_, bank, _)| self.banks[*bank].is_idle(now))
            {
                let done = self.banks[bank].start_write(row, now, &self.timing);
                if let Some(e) = self.wpq.iter_mut().find(|e| e.line == line && !e.in_service) {
                    e.in_service = true;
                    if e.kind == WriteKind::Data {
                        self.wpq_coalescable.remove(&e.line);
                    }
                }
                self.in_flight.push((done, InFlight::WpqWrite { index_line: line }));
                return;
            }
        }

        // 3. LPQ drain: only under pressure (KeepUntilCommit) or under the
        // same opportunistic policy as the WPQ (DrainAlways). Forced
        // entries (context switch) always drain.
        let lpq_occ_pct = 100 * self.lpq.len() / self.cfg.lpq_entries.max(1);
        let wpq_has_eligible =
            self.wpq.iter().any(|e| !e.in_service && (drain_wpq || e.kind != WriteKind::Data));
        let drain_lpq = match self.drain_mode {
            LogDrainMode::KeepUntilCommit => lpq_occ_pct >= 90,
            // NoLWR: log entries drain like ordinary writes. They already
            // sit at the lowest arbiter priority (after reads and WPQ),
            // so no further gating — gating on an idle read queue starves
            // the LPQ under multicore read traffic and backpressures
            // dispatch, which the paper's NoLWR does not exhibit.
            LogDrainMode::DrainAlways => !wpq_has_eligible,
        };
        let forced = self.lpq.iter().any(|e| e.must_drain && !e.in_service);
        if drain_lpq || forced {
            if let Some((line, seq, bank, row)) = self
                .lpq
                .iter()
                .filter(|e| !e.in_service && !e.retained_marker && (drain_lpq || e.must_drain))
                .map(|e| {
                    (
                        e.slot_line,
                        e.seq,
                        self.map.bank_of(e.slot_line),
                        self.map.row_of(e.slot_line),
                    )
                })
                .find(|(_, _, bank, _)| self.banks[*bank].is_idle(now))
            {
                let done = self.banks[bank].start_write(row, now, &self.timing);
                if let Some(e) = self
                    .lpq
                    .iter_mut()
                    .find(|e| e.slot_line == line && e.seq == seq && !e.in_service)
                {
                    e.in_service = true;
                }
                self.in_flight.push((done, InFlight::LpqWrite { index_line: line, seq }));
            }
        }
    }
}

impl NextEvent for MemoryController {
    fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        // The cheap immediate-wake checks come first and return early:
        // `now` is already the floor, so nothing later can beat it, and
        // skipping the queue scans matters — this runs on every engine
        // probe.
        //
        // Undelivered events must reach the cores (normally drained by
        // the system right after each tick — this is a safety net).
        // Commit resolution retries mutate the ATOM log area, so pending
        // tx-ends are never skipped over either.
        if !self.events.is_empty() || !self.pending_tx_ends.is_empty() {
            return Some(now);
        }
        if !self.pending_pcommits.is_empty()
            && self.wpq.is_empty()
            && self.pending_writes.is_empty()
        {
            return Some(now);
        }
        if let Some((line, _, kind)) = self.pending_writes.front() {
            let fits = self.wpq.len() < self.cfg.wpq_entries
                || (*kind == WriteKind::Data && self.wpq_coalescable.contains(line));
            if fits {
                return Some(now);
            }
        }
        let mut best: Option<Cycle> = None;
        let wake = |at: Cycle, best: &mut Option<Cycle>| {
            let at = at.max(now);
            *best = Some(best.map_or(at, |b: Cycle| b.min(at)));
        };
        // Intake entries retry — and count their per-cycle rejection
        // stats — every cycle once due, so a due entry forces
        // single-stepping; a future one wakes us at its delivery.
        for (deliver_at, _) in &self.intake {
            wake(*deliver_at, &mut best);
        }
        for (done, _) in &self.in_flight {
            wake(*done, &mut best);
        }
        if best == Some(now) {
            return best;
        }
        if let Some(t) = self.next_issue_boundary() {
            wake(t, &mut best);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_core::entry::LogEntry;
    use proteus_types::Addr;

    fn small_cfg() -> MemConfig {
        MemConfig { read_queue_entries: 8, wpq_entries: 8, lpq_entries: 8, ..MemConfig::default() }
    }

    fn layout() -> AddressLayout {
        AddressLayout { log_area_entries: 64, ..AddressLayout::default() }
    }

    fn run_until_quiescent(mc: &mut MemoryController, mut now: Cycle) -> (Vec<McEvent>, Cycle) {
        let mut events = Vec::new();
        for _ in 0..200_000 {
            mc.tick(now);
            events.extend(mc.drain_events());
            if mc.is_quiescent() {
                break;
            }
            now += 1;
        }
        (events, now)
    }

    #[test]
    fn read_returns_nvmm_data() {
        let mut mc = MemoryController::new(small_cfg(), layout(), LogDrainMode::KeepUntilCommit);
        let mut img = WordImage::new();
        let addr = Addr::new(0x1000_0000);
        img.write_word(addr, 42);
        mc.load_image(img);
        mc.submit(McRequest::Read { line: addr.line(), req_id: 1 }, 0);
        let (events, _) = run_until_quiescent(&mut mc, 0);
        let done = events
            .iter()
            .find_map(|e| match e {
                McEvent::ReadDone { req_id: 1, data, at } => Some((*data, *at)),
                _ => None,
            })
            .expect("read completion");
        assert_eq!(done.0[0], 42);
        assert!(done.1 > 100, "NVM read must take ~50ns ≈ 170 cycles, got {}", done.1);
        assert_eq!(mc.stats().nvmm_reads, 1);
    }

    #[test]
    fn writeback_acked_on_wpq_acceptance_under_adr() {
        let mut mc = MemoryController::new(small_cfg(), layout(), LogDrainMode::KeepUntilCommit);
        let addr = Addr::new(0x1000_0000);
        let mut data = [0u64; 8];
        data[0] = 7;
        mc.submit(McRequest::WriteBack { line: addr.line(), data, ack_id: Some(9) }, 5);
        mc.tick(5);
        let events = mc.drain_events();
        assert!(
            matches!(events.as_slice(), [McEvent::WritebackAck { ack_id: 9, at: 5 }]),
            "ADR must ack at acceptance, got {events:?}"
        );
        // Durable in the crash image immediately, before any NVMM write.
        assert_eq!(mc.crash_image().read_word(addr), 7);
        assert_eq!(mc.stats().nvmm_data_writes, 0);
    }

    #[test]
    fn read_forwards_from_wpq() {
        let mut mc = MemoryController::new(small_cfg(), layout(), LogDrainMode::KeepUntilCommit);
        let addr = Addr::new(0x1000_0000);
        let mut data = [0u64; 8];
        data[0] = 99;
        mc.submit(McRequest::WriteBack { line: addr.line(), data, ack_id: None }, 0);
        mc.submit(McRequest::Read { line: addr.line(), req_id: 3 }, 1);
        mc.tick(0);
        mc.tick(1);
        mc.tick(2);
        let events = mc.drain_events();
        let fwd = events.iter().find_map(|e| match e {
            McEvent::ReadDone { req_id: 3, data, at } => Some((data[0], *at)),
            _ => None,
        });
        let (val, at) = fwd.expect("forwarded read");
        assert_eq!(val, 99);
        assert!(at < 30, "WPQ forward must be fast, got {at}");
    }

    fn flush_entry(
        mc: &mut MemoryController,
        layout: &AddressLayout,
        slot_idx: usize,
        grain: Addr,
        tx: u64,
        seq: u64,
        at: Cycle,
    ) -> Addr {
        let slot = layout.log_slot(ThreadId::new(0), slot_idx);
        let entry = LogEntry::new([seq, 0, 0, 0], grain, TxId::new(tx), seq);
        mc.submit(
            McRequest::LogFlush {
                slot,
                words: entry.encode_words(),
                core: CoreId::new(0),
                tx: TxId::new(tx),
                flush_id: seq,
            },
            at,
        );
        slot
    }

    #[test]
    fn flash_clear_drops_log_writes() {
        let lay = layout();
        let mut mc = MemoryController::new(small_cfg(), lay.clone(), LogDrainMode::KeepUntilCommit);
        let grain = Addr::new(0x1000_0000);
        for i in 0..3 {
            flush_entry(&mut mc, &lay, i, grain.offset(i as u64 * 32), 1, i as u64, 0);
        }
        mc.submit(McRequest::TxEnd { core: CoreId::new(0), tx: TxId::new(1) }, 10);
        let (events, _) = run_until_quiescent(&mut mc, 0);
        assert!(events.iter().any(|e| matches!(e, McEvent::TxEndDone { .. })));
        // Two entries flash cleared, marker retained; NO log write ever
        // reached the NVMM banks.
        assert_eq!(mc.stats().lpq_flash_cleared, 2);
        assert_eq!(mc.stats().nvmm_log_writes, 0);
        // The retained marker is still durable via ADR.
        let img = mc.crash_image();
        let marker = LogEntry::read_from(&img, lay.log_slot(ThreadId::new(0), 2)).unwrap();
        assert!(marker.commit_marker);
    }

    #[test]
    fn next_tx_first_entry_drops_retained_marker() {
        let lay = layout();
        let mut mc = MemoryController::new(small_cfg(), lay.clone(), LogDrainMode::KeepUntilCommit);
        flush_entry(&mut mc, &lay, 0, Addr::new(0x1000_0000), 1, 0, 0);
        mc.submit(McRequest::TxEnd { core: CoreId::new(0), tx: TxId::new(1) }, 5);
        mc.tick(5);
        mc.tick(6);
        // tx2's first entry arrives: tx1's marker is discarded unwritten.
        flush_entry(&mut mc, &lay, 1, Addr::new(0x1000_0040), 2, 1, 7);
        mc.tick(7);
        let img = mc.crash_image();
        assert!(
            LogEntry::read_from(&img, lay.log_slot(ThreadId::new(0), 0)).is_none(),
            "tx1 marker must be dropped once tx2's entry is durable"
        );
        assert!(LogEntry::read_from(&img, lay.log_slot(ThreadId::new(0), 1)).is_some());
        assert_eq!(mc.stats().nvmm_log_writes, 0);
    }

    #[test]
    fn drain_always_mode_writes_logs_to_nvmm() {
        let lay = layout();
        let mut mc = MemoryController::new(small_cfg(), lay.clone(), LogDrainMode::DrainAlways);
        for i in 0..3 {
            flush_entry(
                &mut mc,
                &lay,
                i,
                Addr::new(0x1000_0000).offset(i as u64 * 32),
                1,
                i as u64,
                0,
            );
        }
        mc.submit(McRequest::TxEnd { core: CoreId::new(0), tx: TxId::new(1) }, 10);
        let (_, _) = run_until_quiescent(&mut mc, 0);
        assert_eq!(mc.stats().lpq_flash_cleared, 0);
        assert_eq!(mc.stats().nvmm_log_writes, 3, "NoLWR must write all entries");
    }

    #[test]
    fn atom_logs_written_and_truncated() {
        let lay = layout();
        let mut mc = MemoryController::new(small_cfg(), lay.clone(), LogDrainMode::KeepUntilCommit);
        for i in 0..3u64 {
            mc.submit(
                McRequest::AtomLog {
                    grain: Addr::new(0x1000_0000 + i * 32),
                    old_data: Some([i, 0, 0, 0]),
                    core: CoreId::new(0),
                    tx: TxId::new(1),
                    log_id: i,
                },
                0,
            );
        }
        mc.submit(McRequest::TxEnd { core: CoreId::new(0), tx: TxId::new(1) }, 10);
        let (events, _) = run_until_quiescent(&mut mc, 0);
        assert_eq!(events.iter().filter(|e| matches!(e, McEvent::AtomLogAck { .. })).count(), 3);
        let s = mc.stats();
        // Every non-marker entry is either cleared by the tracker while
        // still buffered, or — having escaped to NVMM — invalidated
        // manually (§4.3's description of ATOM).
        assert_eq!(s.wpq_log_dropped + s.nvmm_log_invalidation_writes, 2, "{s:?}");
        // The commit marker always reaches NVMM.
        assert!(s.nvmm_log_writes >= 1, "{s:?}");
        let img = mc.nvmm();
        let marker = LogEntry::read_from(img, lay.log_slot(ThreadId::new(0), 2))
            .expect("marker entry durable");
        assert!(marker.commit_marker);
    }

    #[test]
    fn pcommit_waits_for_wpq_drain() {
        let mut mc = MemoryController::new(small_cfg(), layout(), LogDrainMode::KeepUntilCommit);
        let addr = Addr::new(0x1000_0000);
        let mut data = [0u64; 8];
        data[0] = 1;
        mc.submit(McRequest::WriteBack { line: addr.line(), data, ack_id: None }, 0);
        mc.submit(McRequest::Pcommit { commit_id: 77 }, 1);
        let (events, _) = run_until_quiescent(&mut mc, 0);
        let done_at = events
            .iter()
            .find_map(|e| match e {
                McEvent::PcommitDone { commit_id: 77, at } => Some(*at),
                _ => None,
            })
            .expect("pcommit done");
        // Must wait for the slow NVM write (~480 cycles), unlike the ADR ack.
        assert!(done_at > 400, "pcommit completed too early at {done_at}");
        assert_eq!(mc.nvmm().read_word(addr), 1);
    }

    #[test]
    fn context_switch_forces_log_drain() {
        let lay = layout();
        let mut mc = MemoryController::new(small_cfg(), lay.clone(), LogDrainMode::KeepUntilCommit);
        flush_entry(&mut mc, &lay, 0, Addr::new(0x1000_0000), 1, 0, 0);
        mc.submit(McRequest::DrainCoreLogs { core: CoreId::new(0) }, 5);
        let (_, _) = run_until_quiescent(&mut mc, 0);
        assert_eq!(mc.stats().nvmm_log_writes, 1, "log-save must force NVMM write");
        assert!(LogEntry::read_from(mc.nvmm(), lay.log_slot(ThreadId::new(0), 0)).is_some());
    }

    #[test]
    fn wpq_backpressure_rejects_then_accepts() {
        let mut cfg = small_cfg();
        cfg.wpq_entries = 2;
        let mut mc = MemoryController::new(cfg, layout(), LogDrainMode::KeepUntilCommit);
        for i in 0..4u64 {
            let mut data = [0u64; 8];
            data[0] = i + 1;
            mc.submit(
                McRequest::WriteBack {
                    line: Addr::new(0x1000_0000 + i * 64).line(),
                    data,
                    ack_id: Some(i),
                },
                0,
            );
        }
        let (events, _) = run_until_quiescent(&mut mc, 0);
        // All four eventually accepted despite a 2-entry WPQ.
        assert_eq!(events.iter().filter(|e| matches!(e, McEvent::WritebackAck { .. })).count(), 4);
        assert!(mc.stats().wpq_full_rejections > 0);
        assert_eq!(mc.stats().nvmm_data_writes, 4);
    }

    #[test]
    fn persist_events_number_durable_transitions() {
        let lay = layout();
        let mut mc = MemoryController::new(small_cfg(), lay.clone(), LogDrainMode::KeepUntilCommit);
        mc.set_record_persist_events(true);
        assert_eq!(mc.persist_seq(), 0);
        let addr = Addr::new(0x1000_0000);
        let mut data = [0u64; 8];
        data[0] = 7;
        mc.submit(McRequest::WriteBack { line: addr.line(), data, ack_id: None }, 0);
        flush_entry(&mut mc, &lay, 0, addr, 1, 0, 0);
        mc.submit(McRequest::TxEnd { core: CoreId::new(0), tx: TxId::new(1) }, 5);
        let (_, _) = run_until_quiescent(&mut mc, 0);
        let timeline = mc.persist_timeline();
        assert_eq!(mc.persist_seq(), timeline.len() as u64);
        assert!(timeline.iter().any(|e| matches!(e.kind, PersistEventKind::WpqAccept { .. })));
        assert!(timeline.iter().any(|e| matches!(e.kind, PersistEventKind::LpqAccept { .. })));
        assert!(timeline.iter().any(|e| matches!(e.kind, PersistEventKind::MarkerStamp { .. })));
        assert_eq!(timeline.first().map(|e| e.seq), Some(1), "indices are 1-based");
        assert!(timeline.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn partial_adr_drain_loses_the_queue_suffix() {
        let mut mc = MemoryController::new(small_cfg(), layout(), LogDrainMode::KeepUntilCommit);
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1000_0040);
        for (i, addr) in [a, b].iter().enumerate() {
            let mut data = [0u64; 8];
            data[0] = i as u64 + 1;
            mc.submit(McRequest::WriteBack { line: addr.line(), data, ack_id: None }, 0);
        }
        mc.tick(0);
        assert_eq!(mc.crash_image().read_word(b), 2, "clean drain folds everything");
        let faults = CrashFaults { wpq_survivors: Some(1), ..CrashFaults::clean() };
        let img = mc.crash_image_with(&faults);
        assert_eq!(img.read_word(a), 1);
        assert_eq!(img.read_word(b), 0, "second WPQ entry must be lost");
    }

    #[test]
    fn torn_in_service_writes_are_masked_by_a_full_adr_drain() {
        let mut mc = MemoryController::new(small_cfg(), layout(), LogDrainMode::KeepUntilCommit);
        for i in 0..3u64 {
            let data = [i + 1; 8];
            mc.submit(
                McRequest::WriteBack {
                    line: Addr::new(0x1000_0000 + i * 64).line(),
                    data,
                    ack_id: None,
                },
                0,
            );
        }
        for now in 0..10_000 {
            mc.tick(now);
            mc.drain_events();
            if mc.wpq.iter().any(|e| e.in_service) {
                break;
            }
        }
        let e = mc.wpq.iter().find(|e| e.in_service).expect("a bank write in flight").clone();
        let torn = CrashFaults { torn_word_mask: Some(0b0000_0001), ..CrashFaults::clean() };
        assert_eq!(
            mc.crash_image_with(&torn),
            mc.crash_image(),
            "queue-resident entries must paper over torn bank writes"
        );
        // Without the fold (battery dead), the torn line shows through.
        let bare = CrashFaults {
            torn_word_mask: Some(0b0000_0001),
            wpq_survivors: Some(0),
            lpq_survivors: Some(0),
        };
        let img = mc.crash_image_with(&bare);
        assert_eq!(img.read_word(e.line.base()), e.data[0], "masked word landed");
        assert_eq!(img.read_word(e.line.base().offset(8)), 0, "unmasked word must not land");
    }

    #[test]
    fn crash_image_without_adr_loses_queues() {
        let mut cfg = small_cfg();
        cfg.adr = false;
        let mut mc = MemoryController::new(cfg, layout(), LogDrainMode::KeepUntilCommit);
        let addr = Addr::new(0x1000_0000);
        let mut data = [0u64; 8];
        data[0] = 5;
        mc.submit(McRequest::WriteBack { line: addr.line(), data, ack_id: None }, 0);
        mc.tick(0);
        assert_eq!(mc.crash_image().read_word(addr), 0, "non-ADR WPQ is volatile");
    }
}
