//! The persist-event timeline and crash fault models.
//!
//! Every transition of the controller's *durable* state — the NVMM array
//! plus, under ADR, the WPQ and LPQ — is a persist event. The controller
//! numbers them with a monotonic sequence counter so a crash point can be
//! named as "immediately after the k-th durable transition", independent
//! of cycle counts. `proteus-crash` enumerates these indices to explore
//! crash states systematically.
//!
//! [`CrashFaults`] describes how the dying machine deviates from a clean
//! ADR drain when the crash image is built. The clean model (everything
//! queue-resident survives, everything unaccepted is lost) is exactly what
//! the acknowledgement protocol promises software; the fault knobs let the
//! checker probe both sides of that contract.

use proteus_types::addr::LineAddr;
use proteus_types::clock::Cycle;

/// What kind of durable-state transition occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistEventKind {
    /// A write became durable by acceptance into the ADR-protected WPQ
    /// (fresh insert or coalesce onto a pending entry).
    WpqAccept {
        /// Line that became (or re-became) durable.
        line: LineAddr,
    },
    /// A WPQ entry finished its NVMM bank write and left the queue.
    WpqDrain {
        /// Line written to the NVMM array.
        line: LineAddr,
    },
    /// A log flush became durable by acceptance into the LPQ.
    LpqAccept {
        /// Log slot line that became durable.
        slot_line: LineAddr,
    },
    /// An LPQ entry finished its NVMM bank write and left the queue.
    LpqDrain {
        /// Log slot line written to the NVMM array.
        slot_line: LineAddr,
    },
    /// Commit-time truncation dropped durable log entries (Proteus flash
    /// clear, or one ATOM tracker clear).
    LogClear {
        /// Entries discarded from the durable image.
        entries: u32,
    },
    /// A commit marker was stamped onto a queue-resident log entry.
    MarkerStamp {
        /// Slot line of the entry that gained the marker.
        slot_line: LineAddr,
    },
    /// A retained commit marker was dropped by the next transaction's
    /// first log entry (§4.3).
    MarkerDrop {
        /// Retained entries discarded.
        entries: u32,
    },
}

/// One durable-state transition, as recorded on the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistEvent {
    /// Monotonic index (1-based: the first transition has `seq == 1`).
    pub seq: u64,
    /// CPU cycle at which the transition happened.
    pub at: Cycle,
    /// What happened.
    pub kind: PersistEventKind,
}

/// How a crash deviates from a clean ADR drain when the durable image is
/// built. `CrashFaults::default()` is the clean crash.
///
/// Semantics of each knob:
///
/// * `torn_word_mask` — every queue entry whose NVMM bank write is *in
///   service* at the crash first lands partially: only the words selected
///   by the mask (bit i ⇒ word i of the 8-word line) reach the array.
///   Because the controller keeps in-service entries queue-resident until
///   the bank write completes, a correct ADR drain then overwrites the
///   torn line with the full entry — so with ADR enabled this fault must
///   be invisible. It exists to catch a future controller that frees
///   entries before bank-write completion (an "ack early" bug), where the
///   torn line would suddenly show through.
/// * `wpq_survivors` / `lpq_survivors` — the dying battery drains only the
///   first N entries of the respective queue (the rest are lost). This
///   *exceeds* the ADR guarantee, so consistency is not expected; the
///   checker reports such violations separately as expected detections.
/// * Requests still in the controller intake (submitted but never
///   accepted, hence never acknowledged) are always lost — that is the
///   clean model already, not a fault knob: no scheme may depend on
///   unacknowledged requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrashFaults {
    /// Bit i set ⇒ word i of each in-service line write landed.
    pub torn_word_mask: Option<u8>,
    /// Drain only the first N WPQ entries (`None` = all, the guarantee).
    pub wpq_survivors: Option<usize>,
    /// Drain only the first N LPQ entries (`None` = all, the guarantee).
    pub lpq_survivors: Option<usize>,
}

impl CrashFaults {
    /// The clean crash: full ADR drain, nothing torn.
    pub fn clean() -> Self {
        CrashFaults::default()
    }

    /// Whether this is the clean model (no deviation).
    pub fn is_clean(&self) -> bool {
        *self == CrashFaults::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_faults_are_default() {
        assert!(CrashFaults::clean().is_clean());
        assert!(!CrashFaults { torn_word_mask: Some(0x0F), ..CrashFaults::clean() }.is_clean());
        assert!(!CrashFaults { wpq_survivors: Some(0), ..CrashFaults::clean() }.is_clean());
    }
}
