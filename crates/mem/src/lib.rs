#![warn(missing_docs)]
//! Memory system model: NVM/DRAM bank timing and the memory controller.
//!
//! This crate is the substrate that replaces DRAMSim2 in the paper's
//! evaluation stack. It provides:
//!
//! * [`timing`] — service-latency derivation from the DDR3/NVM timing
//!   parameters of Table 1, with the memory clock converted exactly into
//!   CPU cycles;
//! * [`bank`] — per-bank row-buffer state machines;
//! * [`controller`] — the memory controller with its read queue, write
//!   pending queue (WPQ), and Proteus' log pending queue (LPQ), the ADR
//!   persistency domain, the write/log arbiter, flash clearing of log
//!   entries at transaction end (§4.3), and ATOM's source-log engine.
//!
//! The controller is message-driven: requesters submit [`request::McRequest`]s
//! with a delivery cycle, call [`controller::MemoryController::tick`] every
//! CPU cycle, and drain [`request::McEvent`]s.

pub mod bank;
pub mod controller;
pub mod persist_event;
pub mod request;
pub mod timing;

pub use controller::{LogDrainMode, MemoryController};
pub use persist_event::{CrashFaults, PersistEvent, PersistEventKind};
pub use request::{McEvent, McRequest};
pub use timing::ServiceTiming;
