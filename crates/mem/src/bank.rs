//! Per-bank row-buffer state machines and address mapping.

use crate::timing::{RowState, ServiceTiming};
use proteus_types::addr::LineAddr;
use proteus_types::clock::Cycle;

/// Maps line addresses onto `(bank, row)` with row-granularity
/// interleaving: consecutive lines share a row (preserving row-buffer
/// locality) and consecutive rows stripe across banks.
#[derive(Debug, Clone, Copy)]
pub struct BankMap {
    banks: usize,
    lines_per_row: u64,
}

impl BankMap {
    /// Creates a map for `banks` banks with `row_bytes`-sized rows.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate.
    pub fn new(banks: usize, row_bytes: u64) -> Self {
        assert!(banks > 0, "need at least one bank");
        let lines_per_row = row_bytes / proteus_types::addr::CACHE_LINE_SIZE;
        assert!(lines_per_row > 0, "row must hold at least one line");
        BankMap { banks, lines_per_row }
    }

    /// The bank index servicing `line`.
    pub fn bank_of(&self, line: LineAddr) -> usize {
        ((line.index() / self.lines_per_row) % self.banks as u64) as usize
    }

    /// The row index (within its bank) holding `line`.
    pub fn row_of(&self, line: LineAddr) -> u64 {
        line.index() / self.lines_per_row / self.banks as u64
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }
}

/// One bank: an open-row tracker and a busy-until timestamp.
#[derive(Debug, Clone, Default)]
pub struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

impl Bank {
    /// Whether the bank can accept a new command at `now`.
    pub fn is_idle(&self, now: Cycle) -> bool {
        self.busy_until <= now
    }

    /// The first cycle at which the bank is idle again (event scheduling).
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// The row-buffer state an access to `row` would see.
    pub fn row_state(&self, row: u64) -> RowState {
        match self.open_row {
            Some(open) if open == row => RowState::Hit,
            Some(_) => RowState::Conflict,
            None => RowState::Closed,
        }
    }

    /// Starts a read of `row` at `now`; returns the cycle data is ready.
    ///
    /// # Panics
    ///
    /// Panics if the bank is busy (callers must check [`Bank::is_idle`]).
    pub fn start_read(&mut self, row: u64, now: Cycle, timing: &ServiceTiming) -> Cycle {
        assert!(self.is_idle(now), "bank busy until {}", self.busy_until);
        let done = now + timing.read_latency(self.row_state(row));
        self.open_row = Some(row);
        self.busy_until = done;
        done
    }

    /// Starts a write of `row` at `now`; returns the cycle the write is
    /// durable in the array. The bank stays busy through write recovery.
    ///
    /// # Panics
    ///
    /// Panics if the bank is busy.
    pub fn start_write(&mut self, row: u64, now: Cycle, timing: &ServiceTiming) -> Cycle {
        assert!(self.is_idle(now), "bank busy until {}", self.busy_until);
        let done = now + timing.write_latency(self.row_state(row));
        self.open_row = Some(row);
        self.busy_until = done + timing.write_recovery();
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::clock::ClockRatio;
    use proteus_types::config::DramTiming;

    fn timing() -> ServiceTiming {
        ServiceTiming::from_timing(&DramTiming::ddr3_1600(), ClockRatio::cpu_over_ddr3_1600())
    }

    #[test]
    fn mapping_interleaves_rows_across_banks() {
        let map = BankMap::new(16, 2048);
        let l0 = LineAddr::from_index(0);
        let l31 = LineAddr::from_index(31); // same 2 KB row
        let l32 = LineAddr::from_index(32); // next row, next bank
        assert_eq!(map.bank_of(l0), map.bank_of(l31));
        assert_eq!(map.row_of(l0), map.row_of(l31));
        assert_ne!(map.bank_of(l0), map.bank_of(l32));
        // 16 banks later we return to bank 0 with the next row.
        let l512 = LineAddr::from_index(32 * 16);
        assert_eq!(map.bank_of(l512), 0);
        assert_eq!(map.row_of(l512), 1);
    }

    #[test]
    fn row_hit_sequence_faster_than_conflicts() {
        let t = timing();
        let mut hitter = Bank::default();
        let first = hitter.start_read(5, 0, &t);
        let hit = hitter.start_read(5, first, &t) - first;

        let mut conflicter = Bank::default();
        let first_c = conflicter.start_read(5, 0, &t);
        let conflict = conflicter.start_read(6, first_c, &t) - first_c;
        assert!(hit < conflict);
    }

    #[test]
    fn write_recovery_keeps_bank_busy() {
        let t = timing();
        let mut bank = Bank::default();
        let done = bank.start_write(1, 0, &t);
        assert!(!bank.is_idle(done), "bank must stay busy during write recovery");
        assert!(bank.is_idle(done + t.write_recovery()));
    }

    #[test]
    #[should_panic(expected = "bank busy")]
    fn busy_bank_rejects_commands() {
        let t = timing();
        let mut bank = Bank::default();
        bank.start_read(0, 0, &t);
        bank.start_read(0, 1, &t);
    }
}
