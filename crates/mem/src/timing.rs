//! Service-latency derivation from bank timing parameters.
//!
//! The bank model charges, per access, the JEDEC-style command sequence
//! appropriate to the row-buffer state:
//!
//! * **read, row hit**: `tCAS + tBURST`
//! * **read, row closed**: `tRCD(read) + tCAS + tBURST`
//! * **read, row conflict**: `tRP + tRCD(read) + tCAS + tBURST`
//! * **write, row hit**: `tCAS + tBURST` — writes into an open row buffer
//!   are fast even on NVM;
//! * **write, row closed/conflict**: `[tRP] + tRCD(write) + tCAS +
//!   tBURST` — the paper models NVM by raising tRCD to 29 (read) and 109
//!   (write) in DRAMSim2 (§5.1), i.e. the slow array access is paid on
//!   *activation*, which is what makes its closed-row write ≈150 ns
//!   (≈300 ns for the §7.1 slow preset) while sequential streams retain
//!   row-buffer locality.
//!
//! All latencies are converted from memory-clock to CPU cycles with the
//! exact 17/4 ratio of a 3.4 GHz core over an 800 MHz DDR3-1600 bus.

use proteus_types::clock::{ClockRatio, Cycle};
use proteus_types::config::DramTiming;

/// Row-buffer state relative to an incoming access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// The target row is open in the row buffer.
    Hit,
    /// No row is open.
    Closed,
    /// A different row is open and must be precharged first.
    Conflict,
}

/// Pre-converted service latencies in CPU cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceTiming {
    read_hit: Cycle,
    read_closed: Cycle,
    read_conflict: Cycle,
    write_hit: Cycle,
    write_closed: Cycle,
    write_conflict: Cycle,
    write_recovery: Cycle,
    burst: Cycle,
}

impl ServiceTiming {
    /// Derives CPU-cycle service latencies from memory-clock parameters.
    pub fn from_timing(t: &DramTiming, ratio: ClockRatio) -> Self {
        let c = |mem_cycles: u64| ratio.to_cpu_cycles(mem_cycles);
        ServiceTiming {
            read_hit: c(t.t_cas + t.t_burst),
            read_closed: c(t.t_rcd_read + t.t_cas + t.t_burst),
            read_conflict: c(t.t_rp + t.t_rcd_read + t.t_cas + t.t_burst),
            write_hit: c(t.t_cas + t.t_burst),
            write_closed: c(t.t_rcd_write + t.t_cas + t.t_burst),
            write_conflict: c(t.t_rp + t.t_rcd_write + t.t_cas + t.t_burst),
            write_recovery: c(t.t_wr),
            burst: c(t.t_burst),
        }
    }

    /// Latency until read data is available.
    pub fn read_latency(&self, state: RowState) -> Cycle {
        match state {
            RowState::Hit => self.read_hit,
            RowState::Closed => self.read_closed,
            RowState::Conflict => self.read_conflict,
        }
    }

    /// Latency until a write is committed to the array.
    pub fn write_latency(&self, state: RowState) -> Cycle {
        match state {
            RowState::Hit => self.write_hit,
            RowState::Closed => self.write_closed,
            RowState::Conflict => self.write_conflict,
        }
    }

    /// Additional bank-busy time after a write completes (write recovery).
    pub fn write_recovery(&self) -> Cycle {
        self.write_recovery
    }

    /// Data-bus occupancy of one transfer.
    pub fn burst(&self) -> Cycle {
        self.burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proteus_types::config::DramTiming;

    fn cpu(t: &DramTiming) -> ServiceTiming {
        ServiceTiming::from_timing(t, ClockRatio::cpu_over_ddr3_1600())
    }

    #[test]
    fn nvm_fast_read_is_about_50ns() {
        let t = cpu(&DramTiming::nvm_fast());
        // Closed-row read: (29 + 11 + 4) mem cycles = 44 * 4.25 = 187 CPU
        // cycles = 55 ns at 3.4 GHz. Paper assumes ≈50 ns.
        assert_eq!(t.read_latency(RowState::Closed), 187);
        let ns = 187.0 / 3.4;
        assert!((45.0..65.0).contains(&ns), "read latency {ns} ns out of band");
    }

    #[test]
    fn nvm_fast_write_is_about_150ns() {
        let t = cpu(&DramTiming::nvm_fast());
        // (109 + 11 + 4) mem cycles = 124 * 4.25 = 527 CPU cycles ≈ 155 ns.
        let cycles = t.write_latency(RowState::Closed);
        let ns = cycles as f64 / 3.4;
        assert!((130.0..170.0).contains(&ns), "write latency {ns} ns out of band");
        // Row-buffer hits stay fast even on NVM (writes land in the
        // buffer; the array cost is an activation cost).
        assert!(t.write_latency(RowState::Hit) < cycles / 5);
    }

    #[test]
    fn nvm_slow_write_is_about_300ns() {
        let t = cpu(&DramTiming::nvm_slow());
        let ns = t.write_latency(RowState::Closed) as f64 / 3.4;
        assert!((280.0..320.0).contains(&ns), "slow write latency {ns} ns out of band");
    }

    #[test]
    fn dram_write_much_faster_than_nvm() {
        let dram = cpu(&DramTiming::ddr3_1600());
        let nvm = cpu(&DramTiming::nvm_fast());
        assert!(dram.write_latency(RowState::Closed) * 3 < nvm.write_latency(RowState::Closed));
        // Reads differ less (NVM read ≈ 50ns vs DRAM ≈ 32ns closed-row).
        assert!(dram.read_latency(RowState::Closed) < nvm.read_latency(RowState::Closed));
    }

    #[test]
    fn row_hit_cheaper_than_conflict() {
        for t in [DramTiming::ddr3_1600(), DramTiming::nvm_fast(), DramTiming::nvm_slow()] {
            let s = cpu(&t);
            assert!(s.read_latency(RowState::Hit) < s.read_latency(RowState::Closed));
            assert!(s.read_latency(RowState::Closed) < s.read_latency(RowState::Conflict));
            assert!(s.write_latency(RowState::Hit) <= s.write_latency(RowState::Closed));
            assert!(s.write_latency(RowState::Closed) < s.write_latency(RowState::Conflict));
        }
    }
}
