//! Messages into and events out of the memory controller.

use proteus_core::pmem::LineData;
use proteus_types::addr::LineAddr;
use proteus_types::clock::Cycle;
use proteus_types::{Addr, CoreId, TxId};

/// A request delivered to the memory controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McRequest {
    /// Fetch a line (L3 miss). Answered by [`McEvent::ReadDone`].
    Read {
        /// Line to fetch.
        line: LineAddr,
        /// Requester-chosen correlation id.
        req_id: u64,
    },
    /// A dirty-line write-back or `clwb` flush. With ADR the data is
    /// durable once accepted into the WPQ; if `ack_id` is set the
    /// acceptance is acknowledged with [`McEvent::WritebackAck`].
    WriteBack {
        /// Line being written.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// Correlation id for the acceptance ack (used by `clwb`).
        ack_id: Option<u64>,
    },
    /// A Proteus `log-flush`: a 64-byte log entry headed for the LPQ.
    /// Acknowledged on acceptance by [`McEvent::LogFlushAck`] — this ack
    /// is what completes the `log-flush` instruction (§3.2).
    LogFlush {
        /// Log-slot address (line aligned).
        slot: Addr,
        /// Encoded log entry.
        words: [u64; 8],
        /// Issuing core.
        core: CoreId,
        /// Transaction the entry belongs to.
        tx: TxId,
        /// Correlation id for the ack.
        flush_id: u64,
    },
    /// An ATOM hardware log entry, created at the memory controller
    /// (source-log optimisation): when the core has the line cached it
    /// supplies the pre-store data; on a cache miss `old_data` is `None`
    /// and the controller reads the grain from its own WPQ/NVMM view —
    /// "on a cache miss with a logging operation, a log entry is created
    /// in the MC before the data is sent to the cache" (§5.1).
    /// Acknowledged by [`McEvent::AtomLogAck`] (posted-log optimisation:
    /// the ack is what unblocks the store's retirement).
    AtomLog {
        /// Grain base address being logged.
        grain: Addr,
        /// Pre-store grain contents, if the core had the line cached.
        old_data: Option<[u64; 4]>,
        /// Issuing core.
        core: CoreId,
        /// Transaction the entry belongs to.
        tx: TxId,
        /// Correlation id for the ack.
        log_id: u64,
    },
    /// Transaction commit notification: triggers flash clearing of the
    /// transaction's LPQ entries (Proteus), commit-marker durability, and
    /// ATOM's log truncation writes. Answered by [`McEvent::TxEndDone`].
    TxEnd {
        /// Committing core.
        core: CoreId,
        /// Committing transaction.
        tx: TxId,
    },
    /// `pcommit`: drain the WPQ to NVMM. Answered by
    /// [`McEvent::PcommitDone`].
    Pcommit {
        /// Correlation id.
        commit_id: u64,
    },
    /// Context switch (`log-save`, §4.4): force the core's LPQ entries to
    /// NVMM.
    DrainCoreLogs {
        /// Core being switched out.
        core: CoreId,
    },
}

/// An event produced by the memory controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McEvent {
    /// Read data available.
    ReadDone {
        /// Correlation id from the request.
        req_id: u64,
        /// Line contents.
        data: LineData,
        /// Controller-side completion cycle.
        at: Cycle,
    },
    /// Write-back accepted into the WPQ (durable under ADR).
    WritebackAck {
        /// Correlation id from the request.
        ack_id: u64,
        /// Acceptance cycle.
        at: Cycle,
    },
    /// Log flush accepted into the LPQ (durable under ADR).
    LogFlushAck {
        /// Correlation id from the request.
        flush_id: u64,
        /// Acceptance cycle.
        at: Cycle,
    },
    /// ATOM log entry created and durable.
    AtomLogAck {
        /// Correlation id from the request.
        log_id: u64,
        /// Acceptance cycle.
        at: Cycle,
    },
    /// All commit-time controller work for the transaction is durable.
    TxEndDone {
        /// Committing core.
        core: CoreId,
        /// Committed transaction.
        tx: TxId,
        /// Completion cycle.
        at: Cycle,
    },
    /// WPQ fully drained to NVMM.
    PcommitDone {
        /// Correlation id from the request.
        commit_id: u64,
        /// Completion cycle.
        at: Cycle,
    },
}

impl McEvent {
    /// The controller-side cycle at which the event fired.
    pub fn at(&self) -> Cycle {
        match self {
            McEvent::ReadDone { at, .. }
            | McEvent::WritebackAck { at, .. }
            | McEvent::LogFlushAck { at, .. }
            | McEvent::AtomLogAck { at, .. }
            | McEvent::TxEndDone { at, .. }
            | McEvent::PcommitDone { at, .. } => *at,
        }
    }
}
