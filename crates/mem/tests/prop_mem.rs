//! Property-based tests for the memory controller: liveness (every
//! accepted request completes) and the ADR durability contract (every
//! acknowledged write/flush appears in the crash image).

use proptest::prelude::*;
use proteus_core::entry::LogEntry;
use proteus_core::layout::AddressLayout;
use proteus_core::pmem::WordImage;
use proteus_mem::{LogDrainMode, McEvent, McRequest, MemoryController};
use proteus_types::config::MemConfig;
use proteus_types::{Addr, CoreId, ThreadId, TxId};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Stim {
    Read { line_idx: u64 },
    Write { line_idx: u64, value: u64 },
    LogFlush { slot_idx: u64, grain_idx: u64, value: u64 },
    TxEnd,
    Pcommit,
}

fn arb_stims() -> impl Strategy<Value = Vec<Stim>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(|line_idx| Stim::Read { line_idx }),
            ((0u64..64), any::<u64>())
                .prop_map(|(line_idx, value)| Stim::Write { line_idx, value }),
            ((0u64..512), (0u64..64), any::<u64>()).prop_map(|(slot_idx, grain_idx, value)| {
                Stim::LogFlush { slot_idx, grain_idx, value }
            }),
            Just(Stim::TxEnd),
            Just(Stim::Pcommit),
        ],
        1..80,
    )
}

fn layout() -> AddressLayout {
    AddressLayout { log_area_entries: 512, ..AddressLayout::default() }
}

fn run(stims: Vec<Stim>, mode: LogDrainMode) -> Result<(), TestCaseError> {
    let cfg = MemConfig { wpq_entries: 8, lpq_entries: 16, ..MemConfig::default() };
    let lay = layout();
    let mut mc = MemoryController::new(cfg, lay.clone(), mode);
    let mut img = WordImage::new();
    for i in 0..64u64 {
        img.write_word(Addr::new(0x1000_0000 + i * 64), i + 1);
    }
    mc.load_image(img);

    let mut tx = TxId::new(1);
    let mut next_id = 0u64;
    let mut expected_reads: HashMap<u64, u64> = HashMap::new(); // req_id -> line_idx
    let mut acked_writes: HashMap<u64, (Addr, u64)> = HashMap::new();
    let mut acked_flushes: HashMap<u64, (Addr, [u64; 8])> = HashMap::new();
    let mut seq = 0u64;
    let mut slot_of_seq: Vec<Addr> = Vec::new();
    let mut now = 0u64;

    for stim in &stims {
        match stim {
            Stim::Read { line_idx } => {
                let line = Addr::new(0x1000_0000 + line_idx * 64).line();
                next_id += 1;
                expected_reads.insert(next_id, *line_idx);
                mc.submit(McRequest::Read { line, req_id: next_id }, now);
            }
            Stim::Write { line_idx, value } => {
                let line = Addr::new(0x1000_0000 + line_idx * 64).line();
                let mut data = [0u64; 8];
                data[0] = *value;
                next_id += 1;
                acked_writes.insert(next_id, (line.base(), *value));
                mc.submit(McRequest::WriteBack { line, data, ack_id: Some(next_id) }, now);
            }
            Stim::LogFlush { slot_idx, grain_idx, value } => {
                let slot = lay.log_slot(ThreadId::new(0), (*slot_idx % 512) as usize);
                let grain = Addr::new(0x1000_0000 + grain_idx * 32);
                let entry = LogEntry::new([*value, 0, 0, 0], grain, tx, seq);
                seq += 1;
                slot_of_seq.push(slot);
                next_id += 1;
                acked_flushes.insert(next_id, (slot, entry.encode_words()));
                mc.submit(
                    McRequest::LogFlush {
                        slot,
                        words: entry.encode_words(),
                        core: CoreId::new(0),
                        tx,
                        flush_id: next_id,
                    },
                    now,
                );
            }
            Stim::TxEnd => {
                mc.submit(McRequest::TxEnd { core: CoreId::new(0), tx }, now);
                tx = tx.next();
            }
            Stim::Pcommit => {
                next_id += 1;
                mc.submit(McRequest::Pcommit { commit_id: next_id }, now);
            }
        }
        now += 3;
    }

    // Drive to quiescence, collecting events.
    let mut events: Vec<McEvent> = Vec::new();
    for _ in 0..2_000_000u64 {
        mc.tick(now);
        events.extend(mc.drain_events());
        if mc.is_quiescent() {
            break;
        }
        now += 1;
    }
    prop_assert!(mc.is_quiescent(), "controller failed to quiesce");

    // Liveness: every read answered exactly once, with the stored line.
    let mut read_done = 0;
    for e in &events {
        match e {
            McEvent::ReadDone { req_id, data, .. } => {
                if let Some(line_idx) = expected_reads.get(req_id) {
                    read_done += 1;
                    // Word 0 is either the initial value or an acked write.
                    let initial = line_idx + 1;
                    let possible: Vec<u64> = acked_writes
                        .values()
                        .filter(|(a, _)| a.raw() == 0x1000_0000 + line_idx * 64)
                        .map(|(_, v)| *v)
                        .chain([initial])
                        .collect();
                    prop_assert!(
                        possible.contains(&data[0]),
                        "read of line {} returned {}, not one of {:?}",
                        line_idx,
                        data[0],
                        possible
                    );
                }
            }
            _ => {}
        }
    }
    prop_assert_eq!(read_done, expected_reads.len(), "missing read completions");

    // Every ack'd writeback and flush occurred.
    let wb_acks = events.iter().filter(|e| matches!(e, McEvent::WritebackAck { .. })).count();
    prop_assert_eq!(wb_acks, acked_writes.len());
    let fl_acks = events.iter().filter(|e| matches!(e, McEvent::LogFlushAck { .. })).count();
    prop_assert_eq!(fl_acks, acked_flushes.len());

    // ADR durability: the final crash image holds, for every written
    // line, its latest acked value (writes to the same line coalesce;
    // the last submission wins).
    let image = mc.crash_image();
    let mut latest: HashMap<u64, u64> = HashMap::new();
    for stim in &stims {
        if let Stim::Write { line_idx, value } = stim {
            latest.insert(*line_idx, *value);
        }
    }
    for (line_idx, value) in latest {
        prop_assert_eq!(
            image.read_word(Addr::new(0x1000_0000 + line_idx * 64)),
            value,
            "acked write to line {} lost",
            line_idx
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn controller_is_live_and_durable_keep_until_commit(stims in arb_stims()) {
        run(stims, LogDrainMode::KeepUntilCommit)?;
    }

    #[test]
    fn controller_is_live_and_durable_drain_always(stims in arb_stims()) {
        run(stims, LogDrainMode::DrainAlways)?;
    }
}
