//! End-to-end pipeline tests: one core + caches + memory controller
//! executing every logging scheme, with functional-correctness and
//! crash-recovery checks.

use proteus_cache::CacheSystem;
use proteus_core::layout::AddressLayout;
use proteus_core::pmem::WordImage;
use proteus_core::program::Program;
use proteus_core::recovery::recover;
use proteus_core::scheme::{expand_program_with, registry, ExpandOptions};
use proteus_cpu::core::{Core, MC_LINK_DELAY};
use proteus_mem::{LogDrainMode, McEvent, MemoryController};
use proteus_types::clock::Cycle;
use proteus_types::config::{LoggingSchemeKind, SystemConfig};
use proteus_types::{Addr, CoreId, ThreadId};
use std::sync::Arc;

struct Rig {
    core: Core,
    caches: CacheSystem,
    mc: MemoryController,
    inbox: Vec<(Cycle, McEvent)>,
    now: Cycle,
}

fn layout() -> AddressLayout {
    AddressLayout { log_area_entries: 1024, ..AddressLayout::default() }
}

fn build(scheme: LoggingSchemeKind, program: &Program, initial: &WordImage) -> Rig {
    let cfg = SystemConfig::skylake_like().with_num_cores(1);
    let layout = layout();
    let opts = ExpandOptions { initial_image: Arc::new(initial.clone()), ..Default::default() };
    let trace = expand_program_with(program, scheme, &layout, &opts).expect("expansion");
    let caches = CacheSystem::new(&cfg);
    let drain_mode = match registry::descriptor(scheme).drain {
        registry::DrainPolicy::KeepUntilCommit => LogDrainMode::KeepUntilCommit,
        registry::DrainPolicy::DrainAlways => LogDrainMode::DrainAlways,
    };
    let mut mc = MemoryController::new(cfg.mem.clone(), layout.clone(), drain_mode);
    mc.load_image(initial.clone());
    let core = Core::new(CoreId::new(0), &cfg, scheme, &layout, trace);
    Rig { core, caches, mc, inbox: Vec::new(), now: 0 }
}

impl Rig {
    fn step(&mut self) {
        let now = self.now;
        self.core.tick(now, &mut self.caches);
        for (at, req) in self.core.drain_requests() {
            self.mc.submit(req, at);
        }
        self.mc.tick(now);
        for ev in self.mc.drain_events() {
            self.inbox.push((ev.at() + MC_LINK_DELAY, ev));
        }
        let mut pending = Vec::new();
        for (at, ev) in std::mem::take(&mut self.inbox) {
            if at <= now {
                self.core.handle_event(&ev, now, &mut self.caches);
            } else {
                pending.push((at, ev));
            }
        }
        self.inbox = pending;
        self.now += 1;
    }

    fn run_to_completion(&mut self) -> Cycle {
        while !self.core.is_done() {
            assert!(self.now < 50_000_000, "simulation did not terminate");
            self.step();
        }
        self.now
    }

    /// After the core finishes, lets the memory controller write out its
    /// remaining queued work (for write-count assertions).
    fn drain_mc(&mut self) {
        while !self.mc.is_quiescent() || !self.inbox.is_empty() {
            assert!(self.now < 50_000_000, "controller did not drain");
            self.step();
        }
    }
}

fn data_region_diff(a: &WordImage, b: &WordImage, layout: &AddressLayout) -> Vec<Addr> {
    a.diff(b)
        .into_iter()
        .filter(|addr| {
            layout.log_area_owner(*addr).is_none()
                && *addr < layout.log_base
                && !(layout.log_header_base <= *addr
                    && *addr < layout.log_header_base.offset(64 * 16))
        })
        .collect()
}

fn two_tx_program() -> (Program, WordImage) {
    let mut initial = WordImage::new();
    let a = Addr::new(0x1000_0000);
    let b = Addr::new(0x1000_0100);
    let c = Addr::new(0x1000_0200);
    initial.write_word(a, 0xA0);
    initial.write_word(b, 0xB0);
    initial.write_word(c, 0xC0);
    let mut p = Program::new(ThreadId::new(0));
    p.tx_begin(vec![a, b]);
    p.read(a);
    p.write(a, 0xA1);
    p.write(b, 0xB1);
    p.tx_end();
    p.compute(5);
    p.tx_begin(vec![b, c]);
    p.write(b, 0xB2);
    p.write(c, 0xC2);
    p.tx_end();
    (p, initial)
}

#[test]
fn every_scheme_executes_and_lands_correct_data() {
    let (program, initial) = two_tx_program();
    let mut expected = initial.clone();
    program.apply_functionally(&mut expected);
    for scheme in LoggingSchemeKind::ALL {
        let mut rig = build(scheme, &program, &initial);
        rig.run_to_completion();
        let image = rig.mc.crash_image();
        let diff = data_region_diff(&image, &expected, &layout());
        assert!(diff.is_empty(), "{scheme:?}: data mismatch at {diff:?}");
    }
}

#[test]
fn scheme_performance_ordering_matches_paper() {
    let (program, initial) = two_tx_program();
    let cycles = |scheme| {
        let mut rig = build(scheme, &program, &initial);
        rig.run_to_completion()
    };
    let sw = cycles(LoggingSchemeKind::SwPmem);
    let sw_pcommit = cycles(LoggingSchemeKind::SwPmemPcommit);
    let proteus = cycles(LoggingSchemeKind::Proteus);
    let nolog = cycles(LoggingSchemeKind::NoLog);
    assert!(sw_pcommit > sw, "pcommit must cost extra: {sw_pcommit} <= {sw}");
    assert!(sw > proteus, "software logging must cost more than Proteus: {sw} <= {proteus}");
    assert!(proteus >= nolog, "nothing beats no logging: {proteus} < {nolog}");
}

#[test]
fn proteus_drops_log_writes_atom_does_not() {
    let (program, initial) = two_tx_program();
    let mut proteus = build(LoggingSchemeKind::Proteus, &program, &initial);
    proteus.run_to_completion();
    assert_eq!(
        proteus.mc.stats().nvmm_log_writes,
        0,
        "Proteus LWR must keep log writes out of NVMM"
    );
    assert!(proteus.mc.stats().lpq_flash_cleared > 0);

    let mut atom = build(LoggingSchemeKind::Atom, &program, &initial);
    atom.run_to_completion();
    atom.drain_mc();
    let s = atom.mc.stats();
    assert!(
        s.nvmm_log_writes + s.nvmm_log_invalidation_writes >= 4,
        "ATOM must write and truncate log entries in NVMM, got {s:?}"
    );

    let mut nolwr = build(LoggingSchemeKind::ProteusNoLwr, &program, &initial);
    nolwr.run_to_completion();
    nolwr.drain_mc();
    assert!(nolwr.mc.stats().nvmm_log_writes > 0, "NoLWR drains log entries to NVMM");
}

#[test]
fn llt_elides_repeated_grain_logging() {
    let node = Addr::new(0x1000_0000);
    let mut initial = WordImage::new();
    initial.write_word(node, 1);
    let mut p = Program::new(ThreadId::new(0));
    p.tx_begin(vec![node]);
    // Four stores into the same 32-byte grain.
    for i in 0..4 {
        p.write(node.offset(i * 8), i + 10);
    }
    p.tx_end();
    let mut rig = build(LoggingSchemeKind::Proteus, &p, &initial);
    rig.run_to_completion();
    let stats = rig.core.stats();
    assert_eq!(stats.log_flushes, 4);
    assert_eq!(stats.log_flushes_elided, 3, "LLT must elide repeats");
    assert_eq!(stats.llt_lookups, 4);
    assert_eq!(stats.llt_hits, 3);
    // Only one log entry ever went to the LPQ.
    assert_eq!(rig.mc.stats().lpq_inserts, 1);
}

#[test]
fn sw_logging_executes_many_more_uops() {
    let (program, initial) = two_tx_program();
    let count = |scheme| {
        let mut rig = build(scheme, &program, &initial);
        rig.run_to_completion();
        rig.core.stats().uops_retired
    };
    let sw = count(LoggingSchemeKind::SwPmem);
    let nolog = count(LoggingSchemeKind::NoLog);
    let proteus = count(LoggingSchemeKind::Proteus);
    assert!(sw > 2 * nolog, "SW logging instruction overhead too low: {sw} vs {nolog}");
    assert!(proteus < sw, "Proteus executes fewer instructions than SW");
}

/// Crash the machine at `crash_cycle`, recover, and return the recovered
/// image.
fn crash_and_recover(
    scheme: LoggingSchemeKind,
    program: &Program,
    initial: &WordImage,
    crash_cycle: Cycle,
) -> WordImage {
    let mut rig = build(scheme, program, initial);
    while !rig.core.is_done() && rig.now < crash_cycle {
        rig.step();
    }
    let mut image = rig.mc.crash_image();
    recover(&mut image, &layout(), scheme, &[ThreadId::new(0)]).expect("recovery");
    image
}

#[test]
fn crash_recovery_is_atomic_at_every_probe_point() {
    let (program, initial) = two_tx_program();
    // Functional states after 0, 1, 2 transactions.
    let state0 = initial.clone();
    let mut state1 = initial.clone();
    {
        let mut p1 = Program::new(ThreadId::new(0));
        p1.tx_begin(vec![Addr::new(0x1000_0000), Addr::new(0x1000_0100)]);
        p1.write(Addr::new(0x1000_0000), 0xA1);
        p1.write(Addr::new(0x1000_0100), 0xB1);
        p1.tx_end();
        p1.apply_functionally(&mut state1);
    }
    let mut state2 = initial.clone();
    program.apply_functionally(&mut state2);
    let states = [&state0, &state1, &state2];

    for scheme in [
        LoggingSchemeKind::SwPmem,
        LoggingSchemeKind::Atom,
        LoggingSchemeKind::Proteus,
        LoggingSchemeKind::ProteusNoLwr,
    ] {
        // Find the total runtime, then probe a grid of crash points.
        let total = {
            let mut rig = build(scheme, &program, &initial);
            rig.run_to_completion()
        };
        for k in 0..24 {
            let crash_cycle = total * k / 23 + 1;
            let recovered = crash_and_recover(scheme, &program, &initial, crash_cycle);
            let ok = states.iter().any(|s| data_region_diff(&recovered, s, &layout()).is_empty());
            assert!(
                ok,
                "{scheme:?}: crash at {crash_cycle}/{total} recovered to a state \
                 that is none of the transaction boundaries"
            );
        }
    }
}

#[test]
fn front_end_stalls_higher_for_atom_than_proteus() {
    // A store-heavy workload where ATOM's retirement serialisation bites.
    let mut initial = WordImage::new();
    let base = Addr::new(0x1000_0000);
    let mut p = Program::new(ThreadId::new(0));
    for t in 0..20u64 {
        let hints: Vec<Addr> = (0..4).map(|i| base.offset(t * 512 + i * 64)).collect();
        for h in &hints {
            initial.write_word(*h, t);
        }
        p.tx_begin(hints.clone());
        for h in &hints {
            p.write(*h, t + 100);
        }
        p.tx_end();
    }
    let stalls = |scheme| {
        let mut rig = build(scheme, &p, &initial);
        rig.run_to_completion();
        rig.core.stats().total_stall_cycles()
    };
    let atom = stalls(LoggingSchemeKind::Atom);
    let proteus = stalls(LoggingSchemeKind::Proteus);
    assert!(atom > proteus, "ATOM must stall the front-end more than Proteus: {atom} <= {proteus}");
}

#[test]
fn id_encoding_roundtrips_across_cores() {
    use proteus_cpu::core::{decode_core, decode_local, encode_id};
    for core in [0u32, 1, 3, 255] {
        for local in [0u64, 1, 0xFFFF, 0xFFFF_FFFF] {
            let id = encode_id(CoreId::new(core), local);
            assert_eq!(decode_core(id), CoreId::new(core));
            assert_eq!(decode_local(id), local);
        }
    }
    // Distinct cores never collide even with equal locals.
    assert_ne!(encode_id(CoreId::new(0), 7), encode_id(CoreId::new(1), 7));
}

#[test]
fn log_save_forces_log_entries_to_nvmm() {
    // §4.4: a context switch (log-save) drains the thread's LPQ entries
    // to NVMM and clears the LLT, so another thread cannot observe stale
    // elision state and the log is durable across the switch.
    let node = Addr::new(0x1000_0000);
    let mut initial = WordImage::new();
    initial.write_word(node, 5);
    let mut p = Program::new(ThreadId::new(0));
    p.tx_begin(vec![node]);
    p.write(node, 6);
    p.tx_end();
    let layout_v = layout();
    let opts = ExpandOptions { initial_image: Arc::new(initial.clone()), ..Default::default() };
    let mut trace = expand_program_with(&p, LoggingSchemeKind::Proteus, &layout_v, &opts).unwrap();
    // Splice a log-save between the flush and the commit: the entry must
    // hit NVMM even though the transaction later flash-clears.
    let store_pos =
        trace.uops.iter().position(|u| matches!(u, proteus_core::isa::Uop::Store { .. })).unwrap();
    trace.uops.insert(store_pos, proteus_core::isa::Uop::LogSave);

    let cfg = SystemConfig::skylake_like().with_num_cores(1);
    let caches = proteus_cache::CacheSystem::new(&cfg);
    let mut mc = proteus_mem::MemoryController::new(
        cfg.mem.clone(),
        layout_v.clone(),
        proteus_mem::LogDrainMode::KeepUntilCommit,
    );
    mc.load_image(initial);
    let core =
        proteus_cpu::Core::new(CoreId::new(0), &cfg, LoggingSchemeKind::Proteus, &layout_v, trace);
    let mut rig = Rig { core, caches, mc, inbox: Vec::new(), now: 0 };
    rig.run_to_completion();
    rig.drain_mc();
    assert!(
        rig.mc.stats().nvmm_log_writes >= 1,
        "log-save must force the in-flight log entry to NVMM: {:?}",
        rig.mc.stats()
    );
}
