//! The Log Lookup Table (paper §4.2).
//!
//! A small set-associative table of recently logged 32-byte log-from
//! grains. A `log-flush` that hits in the LLT has already been logged in
//! the current transaction, so the `log-load`/`log-flush` pair completes
//! immediately and no log entry is written. The table is cleared at
//! `tx-end` and on context switches so stale entries can never suppress a
//! required log. For the Table 1 size (64 entries, 8-way) the hardware
//! overhead is ~410 bytes.

use proteus_types::addr::LogGrainAddr;

#[derive(Debug, Clone, Copy)]
struct LltWay {
    grain: u64,
    lru: u64,
}

/// The Log Lookup Table.
#[derive(Debug)]
pub struct Llt {
    sets: Vec<Vec<LltWay>>,
    ways: usize,
    clock: u64,
    lookups: u64,
    hits: u64,
}

impl Llt {
    /// Creates a table with `entries` total entries and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is zero-sized.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "LLT must be non-empty");
        assert_eq!(entries % ways, 0, "LLT entries must divide by ways");
        let sets = entries / ways;
        Llt {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            clock: 0,
            lookups: 0,
            hits: 0,
        }
    }

    fn set_of(&self, grain: LogGrainAddr) -> usize {
        (grain.index() % self.sets.len() as u64) as usize
    }

    /// Looks up `grain`; on a miss the grain is inserted (evicting LRU if
    /// needed). Returns `true` on a hit — the logging pair is elided.
    pub fn lookup_insert(&mut self, grain: LogGrainAddr) -> bool {
        self.clock += 1;
        self.lookups += 1;
        let clock = self.clock;
        let ways = self.ways;
        let set_idx = self.set_of(grain);
        let set = &mut self.sets[set_idx];
        if let Some(w) = set.iter_mut().find(|w| w.grain == grain.index()) {
            w.lru = clock;
            self.hits += 1;
            return true;
        }
        if set.len() >= ways {
            let (pos, _) =
                set.iter().enumerate().min_by_key(|(_, w)| w.lru).expect("full set nonempty");
            set.swap_remove(pos);
        }
        set.push(LltWay { grain: grain.index(), lru: clock });
        false
    }

    /// Whether a [`Llt::lookup_insert`] of `grain` would hit, without
    /// touching the table: no LRU refresh, no insertion, no counter
    /// movement. Used by the event engine to predict dispatch outcomes —
    /// a real lookup mutates state even on the failure paths, so stalled
    /// `log-load` dispatch retries can never be skipped over.
    pub fn would_hit(&self, grain: LogGrainAddr) -> bool {
        self.sets[self.set_of(grain)].iter().any(|w| w.grain == grain.index())
    }

    /// Removes `grain`, undoing a just-performed miss-insert when the
    /// pipeline could not actually queue the flush (LogQ full) and must
    /// retry the dispatch. Also decrements the lookup counter so retries
    /// do not skew the Table 4 miss rates.
    pub fn undo_insert(&mut self, grain: LogGrainAddr) {
        let set_idx = self.set_of(grain);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.grain == grain.index()) {
            set.swap_remove(pos);
        }
        self.lookups = self.lookups.saturating_sub(1);
    }

    /// Clears every entry (tx-end, context switch).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// `(lookups, hits)` counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Resident entries across all sets (occupancy tracing).
    pub fn len(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Internal LRU clock. Exposed only so the engine cross-check can
    /// detect wrongly-skipped `log-load` retry windows (which refresh
    /// LRU state even when the dispatch ultimately fails).
    #[doc(hidden)]
    pub fn lru_clock(&self) -> u64 {
        self.clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grain(i: u64) -> LogGrainAddr {
        LogGrainAddr::from_index(i)
    }

    #[test]
    fn first_lookup_misses_second_hits() {
        let mut llt = Llt::new(64, 8);
        assert!(!llt.lookup_insert(grain(5)));
        assert!(llt.lookup_insert(grain(5)));
        assert_eq!(llt.counters(), (2, 1));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut llt = Llt::new(64, 8);
        llt.lookup_insert(grain(1));
        llt.clear();
        assert!(!llt.lookup_insert(grain(1)), "cleared entry must miss");
    }

    #[test]
    fn lru_eviction_within_set() {
        // 2 sets x 2 ways; grains 0,2,4 map to set 0.
        let mut llt = Llt::new(4, 2);
        assert!(!llt.lookup_insert(grain(0)));
        assert!(!llt.lookup_insert(grain(2)));
        assert!(llt.lookup_insert(grain(0))); // refresh 0 → 2 is LRU
        assert!(!llt.lookup_insert(grain(4))); // evicts 2
        assert!(llt.lookup_insert(grain(0)));
        assert!(!llt.lookup_insert(grain(2)), "evicted grain must miss again");
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_geometry_rejected() {
        let _ = Llt::new(10, 4);
    }
}
